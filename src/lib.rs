//! # streaming-kmeans
//!
//! A from-scratch Rust reproduction of *Streaming k-Means Clustering with
//! Fast Queries* (Zhang, Tangwongsan, Tirthapura — ICDE 2017).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`clustering`] — weighted point sets, k-means++, Lloyd's algorithm and
//!   the k-means (SSQ) cost.
//! * [`coreset`] — k-means coresets with span/level bookkeeping and
//!   merge-and-reduce.
//! * [`stream`] — the streaming algorithms: the CT baseline (streamkm++),
//!   and the paper's CC, RCC and OnlineCC, plus Sequential k-means and a
//!   batch reference.
//! * [`data`] — workload generators (Gaussian mixtures, UCI-like synthetic
//!   datasets, drifting RBF streams) and query schedules.
//! * [`serve`] — the network serving layer: TCP/JSON ingest+query server,
//!   blocking client, load generator and snapshot/restore.
//! * [`metrics`] — measurement utilities used by the experiment harness.
//!
//! ## Quick start
//!
//! ```
//! use streaming_kmeans::prelude::*;
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! // A stream of 2-d points drawn from three clusters.
//! let mut rng = ChaCha8Rng::seed_from_u64(1);
//! let dataset = GaussianMixture::new(3, 2).unwrap().generate(3_000, &mut rng);
//!
//! // CC: coreset tree with caching, k = 3.
//! let config = StreamConfig::new(3).with_bucket_size(60);
//! let mut cc = CachedCoresetTree::new(config, 42).unwrap();
//! for (point, _) in dataset.points().iter() {
//!     cc.update(point).unwrap();
//! }
//! let centers = cc.query().unwrap();
//! assert_eq!(centers.len(), 3);
//! ```

pub use skm_clustering as clustering;
pub use skm_coreset as coreset;
pub use skm_data as data;
pub use skm_metrics as metrics;
pub use skm_serve as serve;
pub use skm_stream as stream;

/// One-stop prelude with the most common types from every sub-crate.
pub mod prelude {
    pub use skm_clustering::prelude::*;
    pub use skm_coreset::prelude::*;
    pub use skm_data::prelude::*;
    pub use skm_stream::prelude::*;
}
