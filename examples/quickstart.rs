//! Quickstart: cluster a synthetic stream with the Cached Coreset Tree (CC)
//! and query it as the stream flows by.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use streaming_kmeans::clustering::cost::kmeans_cost;
use streaming_kmeans::prelude::*;

fn main() {
    // 1. A stream: 20,000 points drawn from 5 Gaussian clusters in 8-d.
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    let mixture = GaussianMixture::new(5, 8).expect("valid generator");
    let dataset = mixture.generate(20_000, &mut rng).shuffled(&mut rng);
    println!(
        "stream: {} points, {} dimensions, 5 ground-truth clusters",
        dataset.len(),
        dataset.dim()
    );

    // 2. A streaming clusterer: CC with k = 5 and the paper's default
    //    bucket size m = 20·k.
    let config = StreamConfig::new(5);
    let mut clusterer = CachedCoresetTree::new(config, 42).expect("valid configuration");

    // 3. Stream the points; ask for cluster centers every 2,000 points.
    for (i, point) in dataset.stream().enumerate() {
        clusterer.update(point).expect("consistent dimensions");
        if (i + 1) % 2_000 == 0 {
            let centers = clusterer.query().expect("at least one point observed");
            let cost = kmeans_cost(dataset.points(), &centers).expect("cost");
            println!(
                "after {:>6} points: {} centers, cost on full data = {:.3e}, memory = {} points",
                i + 1,
                centers.len(),
                cost,
                clusterer.memory_points()
            );
        }
    }

    // 4. Final answer.
    let centers = clusterer.query().expect("non-empty stream");
    println!("\nfinal centers:");
    for (j, c) in centers.iter().enumerate() {
        let head: Vec<String> = c.iter().take(3).map(|v| format!("{v:.2}")).collect();
        println!("  center {j}: [{}, ...]", head.join(", "));
    }
    println!(
        "\nthe clusterer stored {} points — the stream had {}.",
        clusterer.memory_points(),
        dataset.len()
    );
}
