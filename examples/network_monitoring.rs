//! Network monitoring: frequent clustering queries over a skewed
//! intrusion-detection-like stream.
//!
//! This is the scenario that motivates the paper: an operator wants cluster
//! centers of the traffic seen so far in (near) real time, so queries arrive
//! every few hundred points. The example compares the query cost and the
//! answer quality of OnlineCC (the paper's fastest algorithm), CC, the
//! streamkm++ baseline and Sequential k-means on an Intrusion-like stream.
//!
//! ```text
//! cargo run --release --example network_monitoring
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;
use streaming_kmeans::clustering::cost::kmeans_cost;
use streaming_kmeans::data::uci_like::intrusion_like;
use streaming_kmeans::prelude::*;

const STREAM_POINTS: usize = 30_000;
const QUERY_INTERVAL: usize = 500;
const K: usize = 10;

fn run(name: &str, clusterer: &mut dyn StreamingClusterer, dataset: &Dataset) {
    let mut update_time = 0.0f64;
    let mut query_time = 0.0f64;
    let mut queries = 0u32;
    for (i, point) in dataset.stream().enumerate() {
        let t = Instant::now();
        clusterer.update(point).expect("update");
        update_time += t.elapsed().as_secs_f64();
        if (i + 1) % QUERY_INTERVAL == 0 {
            let t = Instant::now();
            clusterer.query().expect("query");
            query_time += t.elapsed().as_secs_f64();
            queries += 1;
        }
    }
    let centers = clusterer.query().expect("final query");
    let cost = kmeans_cost(dataset.points(), &centers).expect("cost");
    println!(
        "{name:<12} update {update_time:>7.3}s   query {query_time:>7.3}s ({queries} queries)   \
         final cost {cost:.3e}   memory {} points",
        clusterer.memory_points()
    );
}

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(1999);
    let dataset = intrusion_like(STREAM_POINTS, &mut rng).shuffled(&mut rng);
    println!(
        "intrusion-like stream: {} points, {} dims, query every {} points, k = {K}\n",
        dataset.len(),
        dataset.dim(),
        QUERY_INTERVAL
    );

    let config = StreamConfig::new(K)
        .with_kmeans_runs(2)
        .with_lloyd_iterations(5);

    let mut online = OnlineCC::new(config, 1.2, 7).expect("valid config");
    run("OnlineCC", &mut online, &dataset);
    println!(
        "             (OnlineCC fell back to CC {} times)",
        online.fallback_count()
    );

    let mut cc = CachedCoresetTree::new(config, 7).expect("valid config");
    run("CC", &mut cc, &dataset);

    let mut streamkm = CoresetTreeClusterer::new(config, 7).expect("valid config");
    run("StreamKM++", &mut streamkm, &dataset);

    let mut sequential = SequentialKMeans::new(K).expect("valid k");
    run("Sequential", &mut sequential, &dataset);

    println!(
        "\nExpected shape (paper, Figures 4c and 5c): OnlineCC and CC answer queries much faster\n\
         than StreamKM++ at similar cost; Sequential is fastest but its cost is far higher on\n\
         this skewed stream."
    );
}
