//! Sensor-fleet drift: clustering a stream whose cluster centers move over
//! time (the paper's Drift dataset), watching how the streaming clusterers
//! track the movement.
//!
//! OnlineCC is interesting here: its cheap sequentially-maintained centers
//! degrade as the distribution drifts, and its cost-estimate trigger decides
//! when to fall back to CC to recover accuracy.
//!
//! ```text
//! cargo run --release --example sensor_drift
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use streaming_kmeans::clustering::cost::kmeans_cost;
use streaming_kmeans::clustering::PointSet;
use streaming_kmeans::data::RbfDriftGenerator;
use streaming_kmeans::prelude::*;

const K: usize = 8;
const WINDOW: usize = 5_000;
const WINDOWS: usize = 6;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(7_777);
    // 8 drifting centers in 12 dimensions; fast drift to make the effect visible.
    let generator = RbfDriftGenerator::new(K, 12)
        .expect("valid generator")
        .with_speed(1.5)
        .with_points_per_step(50)
        .with_std_dev(1.0);
    let dataset = generator.generate(WINDOW * WINDOWS, &mut rng);
    println!(
        "drifting stream: {} points, {} dims, {} drifting ground-truth centers\n",
        dataset.len(),
        dataset.dim(),
        K
    );

    let config = StreamConfig::new(K)
        .with_kmeans_runs(2)
        .with_lloyd_iterations(5);
    let mut online = OnlineCC::new(config, 1.5, 3).expect("valid config");
    let mut cc = CachedCoresetTree::new(config, 3).expect("valid config");

    println!("window   OnlineCC cost (window)   CC cost (window)   OnlineCC fallbacks");
    let mut fallbacks_before = 0;
    let mut window_points = PointSet::new(dataset.dim());
    for (i, point) in dataset.stream().enumerate() {
        online.update(point).expect("update");
        cc.update(point).expect("update");
        window_points.push(point, 1.0);

        if (i + 1) % WINDOW == 0 {
            let online_centers = online.query().expect("query");
            let cc_centers = cc.query().expect("query");
            // Evaluate both on the *most recent window*, which is what a
            // drift-aware operator cares about.
            let online_cost = kmeans_cost(&window_points, &online_centers).expect("cost");
            let cc_cost = kmeans_cost(&window_points, &cc_centers).expect("cost");
            let new_fallbacks = online.fallback_count() - fallbacks_before;
            fallbacks_before = online.fallback_count();
            println!(
                "{:>6}   {:>22.3e}   {:>16.3e}   {:>18}",
                (i + 1) / WINDOW,
                online_cost,
                cc_cost,
                new_fallbacks
            );
            window_points.clear();
        }
    }

    println!(
        "\nBoth algorithms keep tracking the drifting centers; OnlineCC falls back to CC whenever\n\
         its running cost estimate exceeds α × the cost at its last rebuild (α = 1.5 here)."
    );
}
