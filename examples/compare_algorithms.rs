//! Side-by-side comparison of every algorithm in the crate on one stream:
//! Sequential k-means, StreamKM++ (CT), CC, RCC, OnlineCC and the batch
//! k-means++ reference — a miniature version of the paper's Figure 4 / 5
//! columns for a single dataset.
//!
//! ```text
//! cargo run --release --example compare_algorithms [covtype|power|intrusion|drift] [points]
//! ```

use std::time::Instant;
use streaming_kmeans::clustering::cost::kmeans_cost;
use streaming_kmeans::prelude::*;

const QUERY_INTERVAL: usize = 500;
const K: usize = 15;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dataset_name = args.first().map_or("covtype", String::as_str);
    let points: usize = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(20_000);

    // The bench crate is not a dependency of the examples, so rebuild the
    // dataset with the data crate directly.
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let dataset = match dataset_name.to_ascii_lowercase().as_str() {
        "power" => streaming_kmeans::data::uci_like::power_like(points, &mut rng),
        "intrusion" => streaming_kmeans::data::uci_like::intrusion_like(points, &mut rng),
        "drift" => streaming_kmeans::data::RbfDriftGenerator::paper_default()
            .expect("valid generator")
            .generate(points, &mut rng),
        _ => streaming_kmeans::data::uci_like::covtype_like(points, &mut rng),
    }
    .shuffled(&mut rng);

    println!(
        "dataset {:>10}: {} points x {} dims, k = {K}, query every {QUERY_INTERVAL} points\n",
        dataset.name(),
        dataset.len(),
        dataset.dim()
    );
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>14} {:>10}",
        "algorithm", "update (s)", "query (s)", "total (s)", "final cost", "memory"
    );

    let config = StreamConfig::new(K)
        .with_kmeans_runs(2)
        .with_lloyd_iterations(5);

    let mut algorithms: Vec<(String, Box<dyn StreamingClusterer>)> = vec![
        (
            "Sequential".into(),
            Box::new(SequentialKMeans::new(K).expect("valid k")),
        ),
        (
            "StreamKM++ (CT)".into(),
            Box::new(CoresetTreeClusterer::new(config, 5).expect("valid config")),
        ),
        (
            "CC".into(),
            Box::new(CachedCoresetTree::new(config, 5).expect("valid config")),
        ),
        (
            "RCC (depth 3)".into(),
            Box::new(
                RecursiveCachedTree::for_stream_length(config, 3, dataset.len(), 5)
                    .expect("valid config"),
            ),
        ),
        (
            "OnlineCC".into(),
            Box::new(OnlineCC::new(config, 1.2, 5).expect("valid config")),
        ),
        (
            "KMeans++ (batch)".into(),
            Box::new(BatchKMeansPP::new(config, 5).expect("valid config")),
        ),
    ];

    for (name, algorithm) in &mut algorithms {
        let mut update_time = 0.0;
        let mut query_time = 0.0;
        for (i, point) in dataset.stream().enumerate() {
            let t = Instant::now();
            algorithm.update(point).expect("update");
            update_time += t.elapsed().as_secs_f64();
            if (i + 1) % QUERY_INTERVAL == 0 {
                let t = Instant::now();
                algorithm.query().expect("query");
                query_time += t.elapsed().as_secs_f64();
            }
        }
        let centers = algorithm.query().expect("final query");
        let cost = kmeans_cost(dataset.points(), &centers).expect("cost");
        println!(
            "{:<18} {:>12.3} {:>12.3} {:>12.3} {:>14.4e} {:>10}",
            name,
            update_time,
            query_time,
            update_time + query_time,
            cost,
            algorithm.memory_points()
        );
    }

    println!(
        "\nExpected shape (paper): the coreset algorithms match the batch cost; Sequential is\n\
         cheap but (much) less accurate; CC/RCC/OnlineCC spend far less time on queries than\n\
         StreamKM++, with OnlineCC the cheapest overall."
    );
}
