//! Sharded multi-threaded ingestion: partition one heavy stream across
//! several worker threads (each owning its own CC clusterer) and answer
//! queries by merging the per-shard coresets.
//!
//! The example streams a Gaussian mixture through a single-threaded CC and
//! through `ShardedStream` at several shard counts, showing that
//!
//! * ingestion throughput scales with available cores (on a single-core
//!   machine the sharded figures collapse onto the baseline plus channel
//!   overhead — that is expected),
//! * the clustering cost stays in the same approximation band regardless
//!   of the shard count, and
//! * repeated runs at a fixed `(seed, shards)` return bit-identical
//!   centers.
//!
//! ```text
//! cargo run --release --example sharded_ingest
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;
use streaming_kmeans::clustering::cost::kmeans_cost;
use streaming_kmeans::prelude::*;

const K: usize = 6;
const POINTS: usize = 40_000;
const BATCH: usize = 256;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    let dataset = GaussianMixture::new(K, 16)
        .expect("valid generator")
        .generate(POINTS, &mut rng);
    let dataset = dataset.shuffled(&mut rng);
    println!(
        "stream: {} points, {} dims, {} clusters\n",
        dataset.len(),
        dataset.dim(),
        K
    );

    let config = StreamConfig::new(K)
        .with_kmeans_runs(2)
        .with_lloyd_iterations(5);

    // Single-threaded CC baseline.
    let mut cc = CachedCoresetTree::new(config, 9).expect("valid config");
    let start = Instant::now();
    for point in dataset.stream() {
        cc.update(point).expect("update");
    }
    let baseline_secs = start.elapsed().as_secs_f64();
    let baseline_cost = kmeans_cost(dataset.points(), &cc.query().expect("query")).expect("cost");
    println!("   shards   ingest (s)   speedup   final cost (vs CC {baseline_cost:.3e})");
    println!("baseline   {baseline_secs:>10.3}      1.00x");

    for shards in [1, 2, 4, 8] {
        let mut sharded = ShardedStream::cc(config, shards, BATCH, 9).expect("valid configuration");
        let start = Instant::now();
        for point in dataset.stream() {
            sharded.update(point).expect("update");
        }
        sharded.drain().expect("drain");
        let secs = start.elapsed().as_secs_f64();
        let centers = sharded.query().expect("query");
        let cost = kmeans_cost(dataset.points(), &centers).expect("cost");
        let stats = sharded.last_query_stats().expect("queried");
        println!(
            "{shards:>8}   {secs:>10.3}   {:>6.2}x   {cost:.3e}  ({} candidates from {} coresets)",
            baseline_secs / secs,
            stats.candidate_points,
            stats.coresets_merged,
        );
    }

    // Determinism: same seed + same shard count => bit-identical answer.
    let run = || {
        let mut s = ShardedStream::cc(config, 4, BATCH, 123).expect("valid configuration");
        for point in dataset.stream() {
            s.update(point).expect("update");
        }
        s.query().expect("query")
    };
    assert_eq!(run(), run());
    println!("\nrepeated run at fixed (seed, shards): centers are bit-identical ✓");
}
