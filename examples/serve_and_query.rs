//! Serve a live stream over TCP and query it while it drifts.
//!
//! Spawns the `skm-serve` server on an ephemeral port in-process, streams a
//! drifting Gaussian mixture to it over real TCP connections (batched
//! ingest requests), issues interleaved queries while ingestion is running
//! and prints how the served centers track the drift. Finishes with a
//! snapshot → restore round trip to show cold-starting from persisted
//! state — no copy-pasted `curl` incantations needed.
//!
//! ```text
//! cargo run --release --example serve_and_query
//! ```

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use skm_serve::prelude::*;
use std::sync::Arc;

const K: usize = 3;
const PHASES: usize = 6;
const POINTS_PER_PHASE: usize = 4_000;
const BATCH: usize = 256;

/// A 2-d mixture whose anchors rotate a little every phase.
fn phase_points(phase: usize, rng: &mut ChaCha8Rng) -> Vec<Vec<f64>> {
    let angle = phase as f64 * 0.35;
    let anchors: Vec<[f64; 2]> = (0..K)
        .map(|c| {
            let base = c as f64 * std::f64::consts::TAU / K as f64 + angle;
            [30.0 * base.cos(), 30.0 * base.sin()]
        })
        .collect();
    (0..POINTS_PER_PHASE)
        .map(|i| {
            let a = anchors[i % K];
            vec![a[0] + rng.gen::<f64>(), a[1] + rng.gen::<f64>()]
        })
        .collect()
}

fn centroid_drift(prev: &[Vec<f64>], now: &[Vec<f64>]) -> f64 {
    // Sum over current centers of the distance to the nearest previous
    // center — a cheap, assignment-free drift measure.
    now.iter()
        .map(|c| {
            prev.iter()
                .map(|p| {
                    c.iter()
                        .zip(p)
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f64>()
                        .sqrt()
                })
                .fold(f64::INFINITY, f64::min)
        })
        .sum()
}

fn main() {
    let config = StreamConfig::new(K)
        .with_kmeans_runs(2)
        .with_lloyd_iterations(5);
    let engine =
        Arc::new(Engine::new(&EngineSpec::sharded_cc(config, 4, BATCH, 2024)).expect("valid spec"));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&engine), None).expect("bind");
    let handle = server.spawn().expect("spawn server");
    println!("serving on {} (sharded CC, 4 shards)\n", handle.addr());

    let mut ingest = Client::connect(handle.addr()).expect("connect ingest client");
    // The query client negotiates the compact binary codec on connect; the
    // ingest client stays on newline-JSON — the server speaks both at once.
    let mut query = Client::builder(handle.addr())
        .codec(CodecKind::Binary)
        .connect()
        .expect("connect query client");
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let mut previous: Option<Vec<Vec<f64>>> = None;

    println!("phase   points_seen   candidates   merged   drift vs previous phase");
    for phase in 0..PHASES {
        for chunk in phase_points(phase, &mut rng).chunks(BATCH) {
            ingest.ingest_batch(chunk.to_vec()).expect("ingest");
        }
        // Query from a *different* connection while the ingest connection
        // stays open — the whole point of CC/RCC is that this stays cheap.
        let (centers, seen, stats) = match query.query().expect("query") {
            Response::Centers {
                centers,
                points_seen,
                stats,
                ..
            } => (centers, points_seen, stats),
            other => panic!("query failed: {other:?}"),
        };
        // A cached follow-up re-reads the answer the strict query just
        // published — no drain, no k-means++, same epoch-stamped value.
        match query
            .query_opts(&RequestOptions::cached())
            .expect("cached query")
        {
            Response::Centers {
                epoch, points_seen, ..
            } => assert_eq!((epoch, points_seen), (phase as u64 + 1, seen)),
            other => panic!("cached query failed: {other:?}"),
        }
        let drift = previous.as_ref().map(|prev| centroid_drift(prev, &centers));
        match drift {
            Some(d) => println!(
                "{phase:>5}   {seen:>11}   {:>10}   {:>6}   {d:>10.3}",
                stats.candidate_points, stats.coresets_merged
            ),
            None => println!(
                "{phase:>5}   {seen:>11}   {:>10}   {:>6}   {:>10}",
                stats.candidate_points, stats.coresets_merged, "-"
            ),
        }
        previous = Some(centers);
    }

    let stats = query.stats().expect("stats");
    println!(
        "\nper-shard points: {:?} (total {})",
        stats.per_shard_points, stats.points_seen
    );

    // Snapshot the engine, shut the server down, cold-start from the
    // snapshot and confirm the restored service picks up where it left off.
    let snapshot = engine.snapshot_json().expect("snapshot");
    query.shutdown().expect("shutdown request");
    handle.shutdown().expect("clean shutdown");

    let restored = Arc::new(Engine::from_snapshot_json(&snapshot).expect("restore"));
    let handle = Server::bind("127.0.0.1:0", restored, None)
        .expect("bind")
        .spawn()
        .expect("spawn restored server");
    let mut client = Client::connect(handle.addr()).expect("connect to restored server");
    let resumed = client.stats().expect("stats after restore");
    assert_eq!(resumed.points_seen, stats.points_seen);
    println!(
        "restored from a {}-byte snapshot: {} points carried over ✓",
        snapshot.len(),
        resumed.points_seen
    );
    client.shutdown().expect("shutdown request");
    handle.shutdown().expect("clean shutdown");
}
