//! Plain-text and CSV tables for the experiment harness output.
//!
//! Every figure/table binary in `skm-bench` prints its result as a table of
//! rows and columns (the same rows/series the paper reports). This module
//! renders those tables as aligned plain text (for the terminal) and CSV
//! (for plotting), with no third-party dependencies.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A simple rectangular table of string cells with a header row.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// The table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row of already formatted cells.
    ///
    /// # Panics
    /// Panics if the number of cells differs from the number of headers.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} does not match header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Appends a row of floating point values formatted with `precision`
    /// decimal places, prefixed by a label cell.
    pub fn push_labelled_row(
        &mut self,
        label: impl Into<String>,
        values: &[f64],
        precision: usize,
    ) {
        let mut cells = Vec::with_capacity(values.len() + 1);
        cells.push(label.into());
        for v in values {
            cells.push(format!("{v:.precision$}"));
        }
        self.push_row(cells);
    }

    /// Renders the table as aligned plain text.
    #[must_use]
    pub fn to_plain_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "# {}", self.title);
        }
        let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>width$}", width = widths[i]);
            }
            out.push('\n');
        };
        render_row(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &widths, &mut out);
        }
        out
    }

    /// Renders the table as CSV (header + rows). Cells containing commas or
    /// quotes are quoted.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Figure 5 (Covtype)", &["q", "CT", "CC"]);
        t.push_row(vec!["50".into(), "812.1".into(), "401.3".into()]);
        t.push_labelled_row("100", &[410.0, 205.5], 1);
        t
    }

    #[test]
    fn dimensions_and_accessors() {
        let t = sample();
        assert_eq!(t.title(), "Figure 5 (Covtype)");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn plain_text_contains_all_cells_aligned() {
        let text = sample().to_plain_text();
        assert!(text.contains("# Figure 5 (Covtype)"));
        assert!(text.contains("812.1"));
        assert!(text.contains("205.5"));
        // Header separator line present.
        assert!(text.lines().any(|l| l.starts_with('-')));
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new("t", &["name", "value"]);
        t.push_row(vec!["a,b".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
        assert!(csv.starts_with("name,value\n"));
    }

    #[test]
    fn labelled_row_formats_precision() {
        let mut t = Table::new("t", &["k", "cost"]);
        t.push_labelled_row("10", &[1.23456], 2);
        assert_eq!(t.to_csv().lines().nth(1).unwrap(), "10,1.23");
    }
}
