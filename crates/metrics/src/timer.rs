//! Split timers separating update time from query time.
//!
//! The paper reports runtime in two parts (Section 5.2): the *update time*
//! (processing arriving points) and the *query time* (answering clustering
//! queries), both as totals over the stream and as per-point averages.

use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Accumulates update time and query time separately.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SplitTimer {
    update_nanos: u128,
    query_nanos: u128,
    updates: u64,
    queries: u64,
}

impl SplitTimer {
    /// Creates a zeroed timer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Times `f` and charges the elapsed time to the update budget.
    pub fn time_update<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.update_nanos += start.elapsed().as_nanos();
        self.updates += 1;
        out
    }

    /// Times `f` and charges the elapsed time to the query budget.
    pub fn time_query<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.query_nanos += start.elapsed().as_nanos();
        self.queries += 1;
        out
    }

    /// Adds externally measured durations (used when the caller batches
    /// operations itself).
    pub fn add_update(&mut self, elapsed: Duration, count: u64) {
        self.update_nanos += elapsed.as_nanos();
        self.updates += count;
    }

    /// Adds externally measured query time.
    pub fn add_query(&mut self, elapsed: Duration, count: u64) {
        self.query_nanos += elapsed.as_nanos();
        self.queries += count;
    }

    /// Number of timed updates.
    #[must_use]
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Number of timed queries.
    #[must_use]
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Total update time in seconds.
    #[must_use]
    pub fn update_seconds(&self) -> f64 {
        self.update_nanos as f64 / 1e9
    }

    /// Total query time in seconds.
    #[must_use]
    pub fn query_seconds(&self) -> f64 {
        self.query_nanos as f64 / 1e9
    }

    /// Total (update + query) time in seconds.
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.update_seconds() + self.query_seconds()
    }

    /// Average update time per timed update, in microseconds — the unit of
    /// the paper's Figures 7–10. Returns 0 for an empty timer.
    #[must_use]
    pub fn update_micros_per_op(&self) -> f64 {
        if self.updates == 0 {
            0.0
        } else {
            self.update_nanos as f64 / 1e3 / self.updates as f64
        }
    }

    /// Average query time per timed query, in microseconds.
    #[must_use]
    pub fn query_micros_per_op(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.query_nanos as f64 / 1e3 / self.queries as f64
        }
    }

    /// Average *per stream point* update / query / total time in
    /// microseconds, which is how the paper normalizes Figures 7–10
    /// (query time is spread over every point, not just the queried ones).
    #[must_use]
    pub fn per_point_micros(&self, stream_points: u64) -> (f64, f64, f64) {
        if stream_points == 0 {
            return (0.0, 0.0, 0.0);
        }
        let n = stream_points as f64;
        let update = self.update_nanos as f64 / 1e3 / n;
        let query = self.query_nanos as f64 / 1e3 / n;
        (update, query, update + query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_timer_reports_zero() {
        let t = SplitTimer::new();
        assert_eq!(t.updates(), 0);
        assert_eq!(t.queries(), 0);
        assert_eq!(t.update_micros_per_op(), 0.0);
        assert_eq!(t.query_micros_per_op(), 0.0);
        assert_eq!(t.per_point_micros(0), (0.0, 0.0, 0.0));
    }

    #[test]
    fn time_update_and_query_accumulate() {
        let mut t = SplitTimer::new();
        let x = t.time_update(|| 21 * 2);
        assert_eq!(x, 42);
        let y = t.time_query(|| "ok");
        assert_eq!(y, "ok");
        assert_eq!(t.updates(), 1);
        assert_eq!(t.queries(), 1);
        assert!(t.total_seconds() >= 0.0);
        assert!(t.total_seconds() == t.update_seconds() + t.query_seconds());
    }

    #[test]
    fn add_external_durations() {
        let mut t = SplitTimer::new();
        t.add_update(Duration::from_millis(10), 100);
        t.add_query(Duration::from_millis(30), 3);
        assert_eq!(t.updates(), 100);
        assert_eq!(t.queries(), 3);
        assert!((t.update_seconds() - 0.010).abs() < 1e-9);
        assert!((t.query_seconds() - 0.030).abs() < 1e-9);
        assert!((t.update_micros_per_op() - 100.0).abs() < 1e-6);
        assert!((t.query_micros_per_op() - 10_000.0).abs() < 1e-6);
        let (u, q, total) = t.per_point_micros(1_000);
        assert!((u - 10.0).abs() < 1e-6);
        assert!((q - 30.0).abs() < 1e-6);
        assert!((total - 40.0).abs() < 1e-6);
    }
}
