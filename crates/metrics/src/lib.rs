//! # skm-metrics
//!
//! Measurement utilities for the *Streaming k-Means Clustering with Fast
//! Queries* reproduction: split update/query timers, summary statistics
//! (the paper reports the **median of nine runs**), memory accounting in
//! points and bytes (Table 4), experiment records and plain-text /
//! CSV / JSON reporting for the figure and table harnesses.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod experiment;
pub mod memory;
pub mod stats;
pub mod table;
pub mod timer;

pub use experiment::{ExperimentRecord, RunMeasurement};
pub use memory::memory_bytes;
pub use stats::Summary;
pub use table::Table;
pub use timer::SplitTimer;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::experiment::{ExperimentRecord, RunMeasurement};
    pub use crate::memory::memory_bytes;
    pub use crate::stats::Summary;
    pub use crate::table::Table;
    pub use crate::timer::SplitTimer;
}
