//! Memory accounting.
//!
//! The paper measures memory as "the number of points stored by the internal
//! data structure, including both the coreset tree and coreset cache", and
//! converts to bytes "assuming that each dimension of a data point consumes
//! 8 bytes" (Section 5.2, Table 4). These helpers implement exactly that
//! conversion so the Table 4 harness and tests agree on the arithmetic.

/// Bytes consumed by `points` points of dimension `dim` at 8 bytes per
/// coordinate (the paper's accounting; weights and struct overhead are not
/// counted, matching Table 4).
#[must_use]
pub fn memory_bytes(points: usize, dim: usize) -> usize {
    points * dim * 8
}

/// Same quantity expressed in mebibytes (the paper's "MB" column).
#[must_use]
pub fn memory_megabytes(points: usize, dim: usize) -> f64 {
    memory_bytes(points, dim) as f64 / (1024.0 * 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_accounting_matches_paper_formula() {
        assert_eq!(memory_bytes(0, 10), 0);
        assert_eq!(memory_bytes(100, 54), 100 * 54 * 8);
    }

    #[test]
    fn megabyte_conversion() {
        // Table 4 reports Covtype / streamkm++: 5950 points x 54 dims ≈ 2.45 MiB
        // (the paper rounds to 2.57 MB using 10^6; we use MiB consistently).
        let mb = memory_megabytes(5_950, 54);
        assert!((mb - 2.45).abs() < 0.05, "got {mb}");
    }

    #[test]
    fn zero_dimension_is_zero_bytes() {
        assert_eq!(memory_bytes(1_000, 0), 0);
    }
}
