//! Experiment records: one measurement per (algorithm, dataset, parameter
//! point), aggregated over repeated runs.
//!
//! The figure harness in `skm-bench` produces one [`RunMeasurement`] per run
//! of an algorithm over a stream, collects them into an
//! [`ExperimentRecord`] per parameter point, and renders tables from the
//! per-record medians (matching the paper's reporting methodology).

use crate::stats::Summary;
use serde::{Deserialize, Serialize};

/// Raw measurements from a single run of one algorithm over one stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMeasurement {
    /// Total update time in seconds.
    pub update_seconds: f64,
    /// Total query time in seconds.
    pub query_seconds: f64,
    /// Number of stream points processed.
    pub points: u64,
    /// Number of queries answered.
    pub queries: u64,
    /// Final k-means (SSQ) cost measured on the evaluation set.
    pub final_cost: f64,
    /// Points held in memory at the end of the stream.
    pub memory_points: usize,
}

impl RunMeasurement {
    /// Total runtime (update + query) in seconds.
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.update_seconds + self.query_seconds
    }

    /// Per-point update time in microseconds.
    #[must_use]
    pub fn update_micros_per_point(&self) -> f64 {
        if self.points == 0 {
            0.0
        } else {
            self.update_seconds * 1e6 / self.points as f64
        }
    }

    /// Per-point query time in microseconds (query time amortized over every
    /// stream point, as in Figures 8–10).
    #[must_use]
    pub fn query_micros_per_point(&self) -> f64 {
        if self.points == 0 {
            0.0
        } else {
            self.query_seconds * 1e6 / self.points as f64
        }
    }

    /// Per-point total time in microseconds.
    #[must_use]
    pub fn total_micros_per_point(&self) -> f64 {
        self.update_micros_per_point() + self.query_micros_per_point()
    }
}

/// Aggregated measurements of one algorithm at one experimental setting.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Algorithm name ("CT", "CC", …).
    pub algorithm: String,
    /// Dataset name ("Covtype", "Power", …).
    pub dataset: String,
    /// Name of the swept parameter ("k", "q", "bucket_size", "alpha", …).
    pub parameter: String,
    /// Value of the swept parameter for this record.
    pub parameter_value: f64,
    /// One entry per independent run.
    pub runs: Vec<RunMeasurement>,
}

impl ExperimentRecord {
    /// Creates an empty record for the given experimental setting.
    #[must_use]
    pub fn new(
        algorithm: impl Into<String>,
        dataset: impl Into<String>,
        parameter: impl Into<String>,
        parameter_value: f64,
    ) -> Self {
        Self {
            algorithm: algorithm.into(),
            dataset: dataset.into(),
            parameter: parameter.into(),
            parameter_value,
            runs: Vec::new(),
        }
    }

    /// Appends one run's measurements.
    pub fn push_run(&mut self, run: RunMeasurement) {
        self.runs.push(run);
    }

    /// Median of an arbitrary per-run metric, or `None` when no runs exist.
    #[must_use]
    pub fn median_of(&self, metric: impl Fn(&RunMeasurement) -> f64) -> Option<f64> {
        let values: Vec<f64> = self.runs.iter().map(metric).collect();
        Summary::of(&values).map(|s| s.median)
    }

    /// Median final cost across runs.
    #[must_use]
    pub fn median_cost(&self) -> Option<f64> {
        self.median_of(|r| r.final_cost)
    }

    /// Median total runtime (seconds) across runs.
    #[must_use]
    pub fn median_total_seconds(&self) -> Option<f64> {
        self.median_of(RunMeasurement::total_seconds)
    }

    /// Median memory (points) across runs.
    #[must_use]
    pub fn median_memory_points(&self) -> Option<f64> {
        self.median_of(|r| r.memory_points as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(update: f64, query: f64, cost: f64) -> RunMeasurement {
        RunMeasurement {
            update_seconds: update,
            query_seconds: query,
            points: 1_000,
            queries: 10,
            final_cost: cost,
            memory_points: 500,
        }
    }

    #[test]
    fn per_point_conversions() {
        let r = run(0.5, 1.5, 10.0);
        assert!((r.total_seconds() - 2.0).abs() < 1e-12);
        assert!((r.update_micros_per_point() - 500.0).abs() < 1e-9);
        assert!((r.query_micros_per_point() - 1_500.0).abs() < 1e-9);
        assert!((r.total_micros_per_point() - 2_000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_points_is_safe() {
        let mut r = run(0.5, 1.5, 10.0);
        r.points = 0;
        assert_eq!(r.update_micros_per_point(), 0.0);
        assert_eq!(r.query_micros_per_point(), 0.0);
    }

    #[test]
    fn record_medians() {
        let mut rec = ExperimentRecord::new("CC", "Covtype", "k", 30.0);
        assert!(rec.median_cost().is_none());
        rec.push_run(run(1.0, 1.0, 10.0));
        rec.push_run(run(2.0, 2.0, 30.0));
        rec.push_run(run(3.0, 9.0, 20.0));
        assert_eq!(rec.runs.len(), 3);
        assert!((rec.median_cost().unwrap() - 20.0).abs() < 1e-12);
        assert!((rec.median_total_seconds().unwrap() - 4.0).abs() < 1e-12);
        assert!((rec.median_memory_points().unwrap() - 500.0).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip() {
        let mut rec = ExperimentRecord::new("RCC", "Power", "q", 100.0);
        rec.push_run(run(1.0, 2.0, 3.0));
        let json = serde_json::to_string(&rec).unwrap();
        let back: ExperimentRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back.algorithm, "RCC");
        assert_eq!(back.runs.len(), 1);
        assert_eq!(back.runs[0], rec.runs[0]);
    }
}
