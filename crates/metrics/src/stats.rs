//! Summary statistics over repeated measurement runs.
//!
//! The paper reports, for every statistic, "the median from nine independent
//! runs of each algorithm to improve robustness" (Section 5.2). [`Summary`]
//! computes the median together with the usual companions (mean, min, max,
//! standard deviation, percentiles) so the harness can report both.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample of `f64` measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (the paper's headline statistic).
    pub median: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Sample standard deviation (0 for fewer than 2 samples).
    pub std_dev: f64,
}

impl Summary {
    /// Computes summary statistics of `values`. Returns `None` for an empty
    /// slice or if any value is NaN.
    #[must_use]
    pub fn of(values: &[f64]) -> Option<Self> {
        if values.is_empty() || values.iter().any(|v| v.is_nan()) {
            return None;
        }
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let median = percentile_sorted(&sorted, 50.0);
        let min = sorted[0];
        let max = sorted[count - 1];
        let std_dev = if count < 2 {
            0.0
        } else {
            let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (count - 1) as f64;
            var.sqrt()
        };
        Some(Self {
            count,
            mean,
            median,
            min,
            max,
            std_dev,
        })
    }
}

/// Returns the `p`-th percentile (0–100) of an already sorted slice using
/// linear interpolation. Returns NaN for an empty slice.
#[must_use]
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Convenience: median of a (not necessarily sorted) slice. Returns NaN for
/// an empty slice.
#[must_use]
pub fn median(values: &[f64]) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    percentile_sorted(&sorted, 50.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_nan_inputs_are_rejected() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of(&[1.0, f64::NAN]).is_none());
    }

    #[test]
    fn single_value_summary() {
        let s = Summary::of(&[3.5]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.median, 3.5);
        assert_eq!(s.min, 3.5);
        assert_eq!(s.max, 3.5);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn known_statistics() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.median - 4.5).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        // Sample std dev of this classic example is ~2.138.
        assert!((s.std_dev - 2.138).abs() < 0.01);
    }

    #[test]
    fn median_of_odd_and_even_counts() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!(median(&[]).is_nan());
    }

    #[test]
    fn percentiles_interpolate() {
        let sorted = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 10.0);
        assert_eq!(percentile_sorted(&sorted, 100.0), 40.0);
        assert!((percentile_sorted(&sorted, 50.0) - 25.0).abs() < 1e-12);
        assert!((percentile_sorted(&sorted, 75.0) - 32.5).abs() < 1e-12);
    }

    #[test]
    fn median_is_robust_to_outliers() {
        let with_outlier = [1.0, 1.1, 0.9, 1.05, 1_000.0];
        let s = Summary::of(&with_outlier).unwrap();
        assert!(
            s.median < 1.2,
            "median {} should ignore the outlier",
            s.median
        );
        assert!(
            s.mean > 100.0,
            "mean {} should be dragged by the outlier",
            s.mean
        );
    }
}
