//! A hand-rolled Rust lexer, in the spirit of the vendored `serde_derive`
//! tokenizer: just enough of the language to reason about *tokens* — never
//! about text inside comments, strings or doc examples, which is where
//! naive `grep`-style linting drowns in false positives.
//!
//! The lexer understands line/block comments (nested), string / raw-string
//! / byte-string / char literals, lifetimes, identifiers and numeric
//! literals. Everything else is a single-character punct. Every token
//! carries the 1-based line it starts on, so findings are clickable.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unsafe`, `unwrap`, `read_map`, …).
    Ident,
    /// A numeric literal (`0x81`, `13`, `1.5`); `text` is the raw spelling.
    Number,
    /// A string literal; `text` is the *content* (escapes unprocessed).
    Str,
    /// A char literal or lifetime.
    Char,
    /// A single punctuation character.
    Punct(char),
}

/// One lexed token with its source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// 1-based line the token starts on.
    pub line: u32,
    /// Token text (see [`TokenKind`] for what it holds per kind).
    pub text: String,
    /// Lexeme class.
    pub kind: TokenKind,
}

impl Token {
    /// The identifier text, when this token is an identifier.
    #[must_use]
    pub fn ident(&self) -> Option<&str> {
        (self.kind == TokenKind::Ident).then_some(self.text.as_str())
    }

    /// True when this token is exactly the punct `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    /// Consumes a `"`-delimited string body (opening quote already
    /// consumed), returning its raw content.
    fn string_body(&mut self) -> String {
        let mut content = String::new();
        while let Some(c) = self.bump() {
            match c {
                '"' => break,
                '\\' => {
                    content.push(c);
                    if let Some(escaped) = self.bump() {
                        content.push(escaped);
                    }
                }
                _ => content.push(c),
            }
        }
        content
    }

    /// Consumes a raw-string body after `r#*"`, where `hashes` is the
    /// number of `#` in the opener.
    fn raw_string_body(&mut self, hashes: usize) -> String {
        let mut content = String::new();
        while let Some(c) = self.bump() {
            if c == '"' && (0..hashes).all(|i| self.peek(i) == Some('#')) {
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            content.push(c);
        }
        content
    }

    /// Consumes a char-literal body (opening `'` already consumed).
    fn char_body(&mut self) -> String {
        let mut content = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\'' => break,
                '\\' => {
                    content.push(c);
                    if let Some(escaped) = self.bump() {
                        content.push(escaped);
                    }
                }
                _ => content.push(c),
            }
        }
        content
    }

    fn ident(&mut self, first: char) -> String {
        let mut text = String::from(first);
        while let Some(c) = self.peek(0).filter(|&c| is_ident_continue(c)) {
            self.bump();
            text.push(c);
        }
        text
    }

    fn number(&mut self, first: char) -> String {
        let mut text = String::from(first);
        while let Some(c) = self.peek(0).filter(|&c| is_ident_continue(c)) {
            self.bump();
            text.push(c);
        }
        // A fractional part: consume `.` only when a digit follows, so
        // ranges (`0..4`) and method calls on literals stay separate
        // tokens.
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
            text.push('.');
            while let Some(c) = self.peek(0).filter(|&c| is_ident_continue(c)) {
                self.bump();
                text.push(c);
            }
        }
        text
    }
}

/// Lexes Rust source into a token stream, discarding comments.
#[must_use]
pub fn lex(source: &str) -> Vec<Token> {
    let mut lx = Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
    };
    let mut tokens = Vec::new();
    while let Some(c) = lx.peek(0) {
        let line = lx.line;
        match c {
            _ if c.is_whitespace() => {
                lx.bump();
            }
            '/' if lx.peek(1) == Some('/') => {
                while lx.peek(0).is_some_and(|c| c != '\n') {
                    lx.bump();
                }
            }
            '/' if lx.peek(1) == Some('*') => {
                lx.bump();
                lx.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (lx.bump(), lx.peek(0)) {
                        (None, _) => break,
                        (Some('/'), Some('*')) => {
                            lx.bump();
                            depth += 1;
                        }
                        (Some('*'), Some('/')) => {
                            lx.bump();
                            depth -= 1;
                        }
                        _ => {}
                    }
                }
            }
            '"' => {
                lx.bump();
                let text = lx.string_body();
                tokens.push(Token {
                    line,
                    text,
                    kind: TokenKind::Str,
                });
            }
            'r' | 'b' if raw_string_hashes(&lx).is_some() => {
                let hashes = raw_string_hashes(&lx).unwrap_or_default();
                // Consume the prefix letters, the hashes and the quote.
                while lx.peek(0) != Some('"') {
                    lx.bump();
                }
                lx.bump();
                let text = lx.raw_string_body(hashes);
                tokens.push(Token {
                    line,
                    text,
                    kind: TokenKind::Str,
                });
            }
            'b' if lx.peek(1) == Some('"') => {
                lx.bump();
                lx.bump();
                let text = lx.string_body();
                tokens.push(Token {
                    line,
                    text,
                    kind: TokenKind::Str,
                });
            }
            'b' if lx.peek(1) == Some('\'') => {
                lx.bump();
                lx.bump();
                let text = lx.char_body();
                tokens.push(Token {
                    line,
                    text,
                    kind: TokenKind::Char,
                });
            }
            '\'' => {
                lx.bump();
                // `'ident` not closed by `'` is a lifetime; otherwise a
                // char literal (including `'a'`).
                let lifetime = lx.peek(0).is_some_and(is_ident_start) && {
                    let mut i = 1;
                    while lx.peek(i).is_some_and(is_ident_continue) {
                        i += 1;
                    }
                    lx.peek(i) != Some('\'')
                };
                if lifetime {
                    let mut text = String::new();
                    while let Some(c) = lx.peek(0).filter(|&c| is_ident_continue(c)) {
                        lx.bump();
                        text.push(c);
                    }
                    tokens.push(Token {
                        line,
                        text,
                        kind: TokenKind::Char,
                    });
                } else {
                    let text = lx.char_body();
                    tokens.push(Token {
                        line,
                        text,
                        kind: TokenKind::Char,
                    });
                }
            }
            _ if is_ident_start(c) => {
                lx.bump();
                let text = lx.ident(c);
                tokens.push(Token {
                    line,
                    text,
                    kind: TokenKind::Ident,
                });
            }
            _ if c.is_ascii_digit() => {
                lx.bump();
                let text = lx.number(c);
                tokens.push(Token {
                    line,
                    text,
                    kind: TokenKind::Number,
                });
            }
            _ => {
                lx.bump();
                tokens.push(Token {
                    line,
                    text: c.to_string(),
                    kind: TokenKind::Punct(c),
                });
            }
        }
    }
    tokens
}

/// When the cursor sits on a raw-string opener (`r"`, `r#"`, `br##"`, …),
/// returns the number of `#` in it.
fn raw_string_hashes(lx: &Lexer) -> Option<usize> {
    let mut i = 0;
    if lx.peek(i) == Some('b') {
        i += 1;
    }
    if lx.peek(i) != Some('r') {
        return None;
    }
    i += 1;
    let mut hashes = 0;
    while lx.peek(i) == Some('#') {
        i += 1;
        hashes += 1;
    }
    (lx.peek(i) == Some('"')).then_some(hashes)
}

/// Parses a Rust integer literal (`0x81`, `0b1010`, `13`, `4_096`, with or
/// without a type suffix).
#[must_use]
pub fn parse_int(text: &str) -> Option<u64> {
    let text: String = text.chars().filter(|&c| c != '_').collect();
    let (radix, digits) = match text.as_bytes() {
        [b'0', b'x' | b'X', rest @ ..] => (16, rest),
        [b'0', b'o' | b'O', rest @ ..] => (8, rest),
        [b'0', b'b' | b'B', rest @ ..] => (2, rest),
        rest => (10, rest),
    };
    let digits: String = digits
        .iter()
        .map(|&b| b as char)
        .take_while(|c| c.is_digit(radix))
        .collect();
    if digits.is_empty() {
        return None;
    }
    u64::from_str_radix(&digits, radix).ok()
}

/// Drops every token inside an item marked `#[test]` or `#[cfg(test)]`
/// (the whole `mod tests { … }` body, a test fn, a test-only `use`, …),
/// so rules that target *non-test* code never see it.
#[must_use]
pub fn strip_test_regions(tokens: &[Token]) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let (attr_end, is_test) = scan_attribute(tokens, i);
            if is_test {
                i = skip_item(tokens, attr_end);
                continue;
            }
            out.extend_from_slice(&tokens[i..attr_end]);
            i = attr_end;
            continue;
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

/// Scans one `#[…]` attribute starting at `start` (pointing at `#`).
/// Returns the index one past its closing `]` and whether it marks test
/// code (`test`, `cfg(test)`).
fn scan_attribute(tokens: &[Token], start: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut is_test = false;
    let mut i = start + 1;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return (i + 1, is_test);
            }
        } else if t.ident() == Some("test") {
            is_test = true;
        }
        i += 1;
    }
    (tokens.len(), is_test)
}

/// Skips the item following a test attribute: further attributes, then
/// everything up to a top-level `;` or through a balanced `{ … }` body.
fn skip_item(tokens: &[Token], mut i: usize) -> usize {
    // Consume any further attributes on the same item.
    while i < tokens.len()
        && tokens[i].is_punct('#')
        && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
    {
        (i, _) = scan_attribute(tokens, i);
    }
    let mut depth = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i + 1;
            }
        } else if t.is_punct(';') && depth == 0 {
            return i + 1;
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_strings_and_lifetimes_do_not_produce_idents() {
        let src = r##"
            // unsafe in a comment
            /* unsafe /* nested */ still comment */
            fn f<'a>(x: &'a str) -> String {
                let s = "unsafe \" quoted";
                let r = r#"raw unsafe"#;
                let c = 'u';
                format!("{s}{r}{c}")
            }
        "##;
        let tokens = lex(src);
        assert!(tokens.iter().all(|t| t.ident() != Some("unsafe")));
        assert!(tokens.iter().any(|t| t.ident() == Some("format")));
    }

    #[test]
    fn lines_are_tracked_across_multiline_constructs() {
        let src = "/* a\nb */\nfn g() {}\n";
        let tokens = lex(src);
        assert_eq!(tokens[0].ident(), Some("fn"));
        assert_eq!(tokens[0].line, 3);
    }

    #[test]
    fn integer_literals_parse_in_every_radix() {
        assert_eq!(parse_int("0x81"), Some(0x81));
        assert_eq!(parse_int("13"), Some(13));
        assert_eq!(parse_int("4_096"), Some(4096));
        assert_eq!(parse_int("0b101"), Some(5));
        assert_eq!(parse_int("0x1Fu8"), Some(0x1F));
        assert_eq!(parse_int("xyz"), None);
    }

    #[test]
    fn cfg_test_modules_and_test_fns_are_stripped() {
        let src = r"
            fn live() { value.unwrap(); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { other.expect(); }
            }
        ";
        let stripped = strip_test_regions(&lex(src));
        assert!(stripped.iter().any(|t| t.ident() == Some("unwrap")));
        assert!(stripped.iter().all(|t| t.ident() != Some("expect")));
        assert!(stripped.iter().all(|t| t.ident() != Some("tests")));
    }

    #[test]
    fn non_test_attributes_are_kept() {
        let src = "#[derive(Debug)] struct S { x: u8 }";
        let stripped = strip_test_regions(&lex(src));
        assert!(stripped.iter().any(|t| t.ident() == Some("derive")));
        assert!(stripped.iter().any(|t| t.ident() == Some("struct")));
    }
}
