//! CLI for the workspace invariant linter.
//!
//! ```text
//! skm-lint [--root DIR] [--config FILE] [--deny]
//! ```
//!
//! Prints findings as `file:line rule-id message`, one per line, sorted.
//! Exit codes: 0 = clean (or findings without `--deny`), 1 = findings
//! under `--deny`, 2 = internal error (bad config, unreadable tree).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut config: Option<PathBuf> = None;
    let mut deny = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--config" => match args.next() {
                Some(file) => config = Some(PathBuf::from(file)),
                None => return usage("--config needs a file"),
            },
            "--help" | "-h" => {
                println!("usage: skm-lint [--root DIR] [--config FILE] [--deny]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let config = config.unwrap_or_else(|| root.join("lint.toml"));
    match skm_lint::run(&root, &config) {
        Err(error) => {
            eprintln!("skm-lint: error: {error}");
            ExitCode::from(2)
        }
        Ok(findings) => {
            for finding in &findings {
                println!("{finding}");
            }
            if findings.is_empty() {
                eprintln!("skm-lint: clean");
                ExitCode::SUCCESS
            } else {
                eprintln!("skm-lint: {} finding(s)", findings.len());
                if deny {
                    ExitCode::from(1)
                } else {
                    ExitCode::SUCCESS
                }
            }
        }
    }
}

fn usage(error: &str) -> ExitCode {
    eprintln!("skm-lint: error: {error}");
    eprintln!("usage: skm-lint [--root DIR] [--config FILE] [--deny]");
    ExitCode::from(2)
}
