//! `skm-lint` — the workspace invariant linter.
//!
//! The repo's load-bearing invariants ("`unsafe` only in vendor/minipoll",
//! "request paths don't panic", "map lock before tenant lock", "the wire
//! spec and the code agree", "deprecations die on schedule") used to live
//! in prose. This crate turns them into checks: a hand-rolled Rust lexer
//! (no dependencies, builds offline before everything else) feeds five
//! rule families, and CI runs the binary with `--deny`.
//!
//! * Findings print as `file:line rule-id message` — stable and
//!   machine-splittable.
//! * An allow directive — `lint:allow(panic-freedom) reason text` in a
//!   `//` comment — on a finding's line (or the line above it) suppresses
//!   that finding; a missing reason or unknown rule id is itself a
//!   finding, so every exception is justified in-place.
//! * Configuration lives in `lint.toml` at the workspace root; see
//!   `docs/LINTS.md` for the rule catalog.

pub mod config;
pub mod lexer;
pub mod rules;

use std::fmt;
use std::path::{Path, PathBuf};

use config::Config;
use lexer::Token;

/// Every rule-id the linter can emit. `lint-allow` covers malformed or
/// unknown allow directives (the escape hatch polices itself).
pub const RULES: &[&str] = &[
    rules::unsafe_confinement::RULE,
    rules::panic_freedom::RULE,
    rules::lock_order::RULE,
    rules::spec_conformance::RULE,
    rules::deprecation::RULE,
    "lint-allow",
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Root-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id from [`RULES`].
    pub rule: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl Finding {
    pub fn new(file: &str, line: u32, rule: &'static str, message: impl Into<String>) -> Self {
        Self {
            file: file.to_string(),
            line,
            rule,
            message: message.into(),
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} {} {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A lexed `.rs` file, shared by every rule.
#[derive(Debug)]
pub struct SourceFile {
    /// Root-relative path, forward slashes.
    pub rel: String,
    /// Raw text (the allow-directive scan works on lines).
    pub text: String,
    /// Full token stream (comments and string contents excluded).
    pub tokens: Vec<Token>,
    /// Token stream with `#[test]` / `#[cfg(test)]` items removed.
    pub non_test: Vec<Token>,
}

/// Runs every rule over the tree under `root` using the config at
/// `config_path`, returning suppressed-and-sorted findings.
///
/// # Errors
///
/// An unreadable or malformed config, or an unwalkable root, is an
/// internal error (exit 2 territory), not a finding.
pub fn run(root: &Path, config_path: &Path) -> Result<Vec<Finding>, String> {
    let config_text = std::fs::read_to_string(config_path)
        .map_err(|e| format!("{}: {e}", config_path.display()))?;
    let config =
        Config::parse(&config_text).map_err(|e| format!("{}: {e}", config_path.display()))?;

    let files = load_sources(root, &config)?;
    let mut findings = Vec::new();
    rules::unsafe_confinement::check(&config, &files, &mut findings);
    rules::panic_freedom::check(&config, &files, &mut findings);
    rules::lock_order::check(&config, &files, &mut findings);
    rules::spec_conformance::check(&config, &files, root, &mut findings);
    rules::deprecation::check(&config, &files, &mut findings);

    let allows = collect_allows(&files, &mut findings);
    findings.retain(|f| {
        f.rule == "lint-allow"
            || !allows.iter().any(|(file, rule, line)| {
                file == &f.file && rule == &f.rule && (f.line == *line || f.line == line + 1)
            })
    });
    findings.sort();
    findings.dedup();
    Ok(findings)
}

/// Walks the tree and lexes every `.rs` file outside the skip list.
fn load_sources(root: &Path, config: &Config) -> Result<Vec<SourceFile>, String> {
    let mut skip: Vec<String> = config.list("lint", "skip").to_vec();
    for always in ["target", ".git"] {
        if !skip.iter().any(|s| s == always) {
            skip.push(always.to_string());
        }
    }
    let mut paths = Vec::new();
    walk(root, root, &skip, &mut paths)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for (rel, path) in paths {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let tokens = lexer::lex(&text);
        let non_test = lexer::strip_test_regions(&tokens);
        files.push(SourceFile {
            rel,
            text,
            tokens,
            non_test,
        });
    }
    Ok(files)
}

fn walk(
    root: &Path,
    dir: &Path,
    skip: &[String],
    out: &mut Vec<(String, PathBuf)>,
) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = entry.path();
        let rel = path
            .strip_prefix(root)
            .map_err(|e| format!("{}: {e}", path.display()))?
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        if skip
            .iter()
            .any(|s| rel == *s || rel.starts_with(&format!("{s}/")))
        {
            continue;
        }
        let kind = entry
            .file_type()
            .map_err(|e| format!("{}: {e}", path.display()))?;
        if kind.is_dir() {
            walk(root, &path, skip, out)?;
        } else if rel.ends_with(".rs") {
            out.push((rel, path));
        }
    }
    Ok(())
}

/// Scans raw lines for allow directives (`lint:allow`, a parenthesised
/// rule id, a reason — inside a `//` comment).
///
/// Returns (file, rule, directive line); malformed directives (not in a
/// line comment, unknown rule, missing reason) become `lint-allow`
/// findings so the escape hatch cannot rot silently.
fn collect_allows(
    files: &[SourceFile],
    findings: &mut Vec<Finding>,
) -> Vec<(String, &'static str, u32)> {
    let mut allows = Vec::new();
    for file in files {
        for (idx, raw) in file.text.lines().enumerate() {
            let Some(at) = raw.find("lint:allow") else {
                continue;
            };
            let line = u32::try_from(idx + 1).unwrap_or(u32::MAX);
            let mut bad = |message: &str| {
                findings.push(Finding::new(&file.rel, line, "lint-allow", message));
            };
            // Only directive-shaped text inside a `//` comment counts; a
            // bare mention in code or a string is not an attempted
            // directive.
            let commented = raw[..at].contains("//");
            let tail = &raw[at + "lint:allow".len()..];
            let Some(inner) = tail.strip_prefix('(') else {
                continue;
            };
            if !commented {
                continue;
            }
            let Some((rule_name, reason)) = inner.split_once(')') else {
                bad("expected a rule id in parentheses followed by a reason");
                continue;
            };
            let Some(rule) = RULES.iter().find(|r| **r == rule_name.trim()).copied() else {
                bad(&format!(
                    "unknown rule `{}` in lint:allow",
                    rule_name.trim()
                ));
                continue;
            };
            if reason.trim().is_empty() {
                bad("lint:allow needs a reason after the closing paren");
                continue;
            }
            allows.push((file.rel.clone(), rule, line));
        }
    }
    allows
}
