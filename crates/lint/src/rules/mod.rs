//! The five rule families. Each rule is a free function over the shared
//! [`SourceFile`](crate::SourceFile) cache that pushes
//! [`Finding`](crate::Finding)s; orchestration (file walking, allow
//! directives, ordering) lives in the crate root.

pub mod deprecation;
pub mod lock_order;
pub mod panic_freedom;
pub mod spec_conformance;
pub mod unsafe_confinement;

use crate::lexer::Token;

/// True when the token at `i` is the identifier `name`.
pub(crate) fn ident_at(tokens: &[Token], i: usize, name: &str) -> bool {
    tokens.get(i).is_some_and(|t| t.ident() == Some(name))
}

/// True when the token at `i` is the punct `c`.
pub(crate) fn punct_at(tokens: &[Token], i: usize, c: char) -> bool {
    tokens.get(i).is_some_and(|t| t.is_punct(c))
}
