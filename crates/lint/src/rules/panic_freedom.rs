//! `panic-freedom`: request/publish paths must not be able to bring down
//! the server. In scoped files (`[panic-freedom].paths` in `lint.toml`)
//! the rule flags, in non-test code:
//!
//! * `.unwrap()` / `.expect(…)`
//! * `panic!` / `unreachable!` / `todo!` / `unimplemented!`
//! * slice/array indexing `x[i]` (except the non-panicking full range
//!   `x[..]`)
//!
//! Sites that are provably fine (bounds established on the lines above,
//! infallible serialization, …) carry an inline
//! `// lint:allow(panic-freedom) reason`.

use crate::config::Config;
use crate::rules::punct_at;
use crate::{Finding, SourceFile};

pub const RULE: &str = "panic-freedom";

/// Panicking macro names.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that can legally precede `[` without forming an index
/// expression (slice patterns, array literals in expression position…).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "fn", "for", "if", "impl", "in", "let", "loop", "match", "move", "mut", "pub", "ref", "return",
    "static", "struct", "trait", "type", "unsafe", "use", "where", "while", "yield",
];

pub fn check(cfg: &Config, files: &[SourceFile], findings: &mut Vec<Finding>) {
    let paths = cfg.list(RULE, "paths");
    for file in files {
        if !paths.iter().any(|p| file.rel.contains(p.as_str())) {
            continue;
        }
        let tokens = &file.non_test;
        for i in 0..tokens.len() {
            // `.unwrap()` / `.expect(`
            if punct_at(tokens, i, '.') && punct_at(tokens, i + 2, '(') {
                if let Some(name @ ("unwrap" | "expect")) =
                    tokens.get(i + 1).and_then(|t| t.ident())
                {
                    findings.push(Finding::new(
                        &file.rel,
                        tokens[i + 1].line,
                        RULE,
                        format!("`.{name}()` on a request path; return a typed error instead"),
                    ));
                }
            }
            // `panic!` and friends.
            if punct_at(tokens, i + 1, '!') {
                if let Some(name) = tokens[i].ident().filter(|n| PANIC_MACROS.contains(n)) {
                    findings.push(Finding::new(
                        &file.rel,
                        tokens[i].line,
                        RULE,
                        format!("`{name}!` on a request path; return a typed error instead"),
                    ));
                }
            }
            // Index expressions: `[` in expression position, i.e. directly
            // after an identifier (non-keyword), `)` or `]`.
            if punct_at(tokens, i, '[') && i > 0 {
                let prev = &tokens[i - 1];
                let expr_position = match prev.ident() {
                    Some(name) => !NON_INDEX_KEYWORDS.contains(&name),
                    None => prev.is_punct(')') || prev.is_punct(']') || prev.is_punct('?'),
                };
                // `x[..]` never panics: full-range slicing of the whole
                // container.
                let full_range = punct_at(tokens, i + 1, '.')
                    && punct_at(tokens, i + 2, '.')
                    && punct_at(tokens, i + 3, ']');
                if expr_position && !full_range {
                    findings.push(Finding::new(
                        &file.rel,
                        tokens[i].line,
                        RULE,
                        "slice/array index can panic; use `.get(..)` or justify bounds with \
                         a lint:allow",
                    ));
                }
            }
        }
    }
}
