//! `unsafe-confinement`: the workspace forbids `unsafe` everywhere except
//! an explicit allowed list (in this repo: `vendor/minipoll`, the one
//! crate that must talk to the OS poller). The workspace-level
//! `unsafe_code = "forbid"` lint already covers first-party crates; this
//! rule additionally covers build scripts, fixtures, and any crate that
//! opts out of the workspace lint table — nothing slips through by
//! editing a manifest.

use crate::config::Config;
use crate::{Finding, SourceFile};

pub const RULE: &str = "unsafe-confinement";

pub fn check(cfg: &Config, files: &[SourceFile], findings: &mut Vec<Finding>) {
    let allowed = cfg.list(RULE, "allowed");
    for file in files {
        if allowed
            .iter()
            .any(|prefix| file.rel.starts_with(prefix.as_str()))
        {
            continue;
        }
        // Full token stream: `unsafe` in test code is just as confined.
        for token in &file.tokens {
            if token.ident() == Some("unsafe") {
                findings.push(Finding::new(
                    &file.rel,
                    token.line,
                    RULE,
                    "`unsafe` outside the allowed list; only paths under \
                     [unsafe-confinement].allowed in lint.toml may use it",
                ));
            }
        }
    }
}
