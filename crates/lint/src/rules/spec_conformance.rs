//! `spec-conformance`: docs/PROTOCOL.md is normative, so the binary tag
//! tables and the error-code catalog it declares are cross-checked
//! against the code (`codec.rs` tag constants and `error_code_tag`,
//! `protocol.rs`'s `ErrorCode` enum) and against a committed append-only
//! baseline (`lint/tags.lock`). A tag that changes value, disappears, or
//! appears without being recorded in the baseline is a finding — wire
//! compatibility breaks are loud, not silent.

use std::collections::BTreeMap;
use std::path::Path;

use crate::config::Config;
use crate::lexer::{self, Token};
use crate::rules::{ident_at, punct_at};
use crate::{Finding, SourceFile};

pub const RULE: &str = "spec-conformance";

/// Tag namespaces, named as they appear in `lint/tags.lock`.
const KINDS: [&str; 3] = ["req", "resp", "err"];

/// One declared (name, value) pair with the line it came from.
#[derive(Debug, Clone)]
struct Entry {
    value: u64,
    line: u32,
}

type Table = BTreeMap<String, Entry>;

pub fn check(cfg: &Config, files: &[SourceFile], root: &Path, findings: &mut Vec<Finding>) {
    if !cfg.has_section(RULE) {
        return;
    }
    let Some(spec_rel) = cfg.scalar(RULE, "spec") else {
        findings.push(Finding::new(
            "lint.toml",
            1,
            RULE,
            "[spec-conformance] needs `spec = …`",
        ));
        return;
    };
    let Some(spec_text) = read_rel(root, spec_rel, findings) else {
        return;
    };
    let spec = parse_spec(&spec_text);

    // Spec ↔ codec.rs tag constants and error_code_tag arms.
    if let Some(codec) = find_file(cfg, files, "codec", findings) {
        let code = parse_codec(&codec.tokens);
        for kind in KINDS {
            let (label, const_hint) = match kind {
                "req" => ("request tag", "`TAG_REQ_*` constant"),
                "resp" => ("response tag", "`TAG_RESP_*` constant"),
                _ => ("error-code tag", "`error_code_tag` arm"),
            };
            cross_check(
                (spec_rel, &spec[kind]),
                (&codec.rel, &code[kind]),
                label,
                const_hint,
                findings,
            );
        }
    }

    // Spec error-code *table* ↔ error tag list ↔ ErrorCode enum: the three
    // catalogs must name the same set of codes.
    let table = parse_error_table(&spec_text);
    for (name, entry) in &table {
        if !spec["err"].contains_key(name) {
            findings.push(Finding::new(
                spec_rel,
                entry.line,
                RULE,
                format!(
                    "error code `{name}` is in the table but has no wire tag in §Binary framing"
                ),
            ));
        }
    }
    for (name, entry) in &spec["err"] {
        if !table.contains_key(name) {
            findings.push(Finding::new(
                spec_rel,
                entry.line,
                RULE,
                format!("error tag `{name}` has no row in the §Error codes table"),
            ));
        }
    }
    if let Some(protocol) = find_file(cfg, files, "protocol", findings) {
        let variants = parse_error_enum(&protocol.tokens);
        match variants {
            None => findings.push(Finding::new(
                &protocol.rel,
                1,
                RULE,
                "no `enum ErrorCode` found to check against the spec",
            )),
            Some((line, variants)) => {
                for (name, entry) in &spec["err"] {
                    if !variants.contains_key(name) {
                        findings.push(Finding::new(
                            spec_rel,
                            entry.line,
                            RULE,
                            format!("spec error code `{name}` has no ErrorCode variant"),
                        ));
                    }
                }
                for (name, &vline) in &variants {
                    if !spec["err"].contains_key(name) {
                        findings.push(Finding::new(
                            &protocol.rel,
                            if vline == 0 { line } else { vline },
                            RULE,
                            format!("ErrorCode::{name} is not documented in the spec"),
                        ));
                    }
                }
            }
        }
    }

    // Append-only baseline.
    if let Some(lock_rel) = cfg.scalar(RULE, "tags-lock") {
        if let Some(lock_text) = read_rel(root, lock_rel, findings) {
            check_baseline(&lock_text, lock_rel, spec_rel, &spec, findings);
        }
    }
}

/// Compares a spec-side table against a code-side table, reporting
/// missing entries on either side and value mismatches.
fn cross_check(
    (spec_rel, spec): (&str, &Table),
    (code_rel, code): (&str, &Table),
    label: &str,
    const_hint: &str,
    findings: &mut Vec<Finding>,
) {
    for (name, entry) in spec {
        match code.get(name) {
            None => findings.push(Finding::new(
                spec_rel,
                entry.line,
                RULE,
                format!(
                    "spec declares {label} `{name}` = {} but the code has no matching {const_hint}",
                    entry.value
                ),
            )),
            Some(have) if have.value != entry.value => findings.push(Finding::new(
                code_rel,
                have.line,
                RULE,
                format!(
                    "{label} `{name}` is {} in code but {} in the spec",
                    have.value, entry.value
                ),
            )),
            Some(_) => {}
        }
    }
    for (name, entry) in code {
        if !spec.contains_key(name) {
            findings.push(Finding::new(
                code_rel,
                entry.line,
                RULE,
                format!(
                    "{label} `{name}` = {} is not documented in the spec",
                    entry.value
                ),
            ));
        }
    }
}

/// Every lock entry must still exist with the same value (append-only);
/// every current tag must be recorded.
fn check_baseline(
    lock_text: &str,
    lock_rel: &str,
    spec_rel: &str,
    spec: &BTreeMap<&'static str, Table>,
    findings: &mut Vec<Finding>,
) {
    let mut recorded: BTreeMap<String, Entry> = BTreeMap::new();
    for (idx, raw) in lock_text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let lineno = u32::try_from(idx + 1).unwrap_or(u32::MAX);
        let parsed = line.split_once('=').and_then(|(key, value)| {
            let key = key.trim();
            let (kind, _) = key.split_once('/')?;
            KINDS.contains(&kind).then_some(())?;
            Some((key.to_string(), lexer::parse_int(value.trim())?))
        });
        let Some((key, value)) = parsed else {
            findings.push(Finding::new(
                lock_rel,
                lineno,
                RULE,
                format!("unparseable baseline line `{line}` (expected `kind/Name = value`)"),
            ));
            continue;
        };
        recorded.insert(
            key,
            Entry {
                value,
                line: lineno,
            },
        );
    }
    for (key, entry) in &recorded {
        let current = key
            .split_once('/')
            .and_then(|(kind, name)| spec.get(kind)?.get(name));
        match current {
            None => findings.push(Finding::new(
                lock_rel,
                entry.line,
                RULE,
                format!("baseline tag `{key}` was removed from the spec; tags are append-only"),
            )),
            Some(have) if have.value != entry.value => findings.push(Finding::new(
                lock_rel,
                entry.line,
                RULE,
                format!(
                    "baseline tag `{key}` changed value ({} -> {}); tags are append-only",
                    entry.value, have.value
                ),
            )),
            Some(_) => {}
        }
    }
    for kind in KINDS {
        for (name, entry) in &spec[kind] {
            if !recorded.contains_key(&format!("{kind}/{name}")) {
                findings.push(Finding::new(
                    spec_rel,
                    entry.line,
                    RULE,
                    format!("tag `{kind}/{name}` is not recorded in {lock_rel}; append it"),
                ));
            }
        }
    }
}

fn read_rel(root: &Path, rel: &str, findings: &mut Vec<Finding>) -> Option<String> {
    match std::fs::read_to_string(root.join(rel)) {
        Ok(text) => Some(text),
        Err(e) => {
            findings.push(Finding::new(rel, 1, RULE, format!("cannot read: {e}")));
            None
        }
    }
}

/// Looks up the source file named by `[spec-conformance].<key>`.
fn find_file<'a>(
    cfg: &Config,
    files: &'a [SourceFile],
    key: &str,
    findings: &mut Vec<Finding>,
) -> Option<&'a SourceFile> {
    let rel = cfg.scalar(RULE, key)?;
    let found = files.iter().find(|f| f.rel == rel);
    if found.is_none() {
        findings.push(Finding::new(
            rel,
            1,
            RULE,
            format!("[spec-conformance] {key} = \"{rel}\" does not name a lintable file"),
        ));
    }
    found
}

/// Parses the three tag lists out of the spec's "Binary framing" section.
fn parse_spec(text: &str) -> BTreeMap<&'static str, Table> {
    let section = section_of(text, "Binary framing");
    let req = marker_region(text, section.clone(), "Request tags:");
    let resp = marker_region(text, section.clone(), "Response tags:");
    let err = marker_region(text, section, "one-byte tag:");
    let mut spec = BTreeMap::new();
    spec.insert("req", parse_pairs(text, req));
    spec.insert("resp", parse_pairs(text, resp));
    spec.insert("err", parse_pairs(text, err));
    spec
}

/// Byte range of a `## <title>` section (start of its body to the next
/// `## ` heading or end of file).
fn section_of(text: &str, title: &str) -> std::ops::Range<usize> {
    let heading = format!("## {title}");
    let Some(start) = text.find(&heading) else {
        return 0..0;
    };
    let body = start + heading.len();
    let end = text[body..]
        .find("\n## ")
        .map_or(text.len(), |off| body + off);
    body..end
}

/// Narrows `section` to start at `marker` and end at the next marker (or
/// the section end).
fn marker_region(
    text: &str,
    section: std::ops::Range<usize>,
    marker: &str,
) -> std::ops::Range<usize> {
    let slice = &text[section.clone()];
    let Some(at) = slice.find(marker) else {
        return 0..0;
    };
    let from = section.start + at + marker.len();
    let next = ["Request tags:", "Response tags:", "one-byte tag:"]
        .iter()
        .filter_map(|m| text[from..section.end].find(m))
        .min()
        .map_or(section.end, |off| from + off);
    from..next
}

/// Collects `` `Name` <number> `` pairs inside `range`.
fn parse_pairs(text: &str, range: std::ops::Range<usize>) -> Table {
    let mut table = Table::new();
    let slice = &text[range.clone()];
    let mut rest = slice;
    let mut offset = range.start;
    while let Some(open) = rest.find('`') {
        let after = &rest[open + 1..];
        let Some(close) = after.find('`') else { break };
        let name = &after[..close];
        let tail = &after[close + 1..];
        let consumed = open + 1 + close + 1;
        if name.chars().all(|c| c.is_alphanumeric() || c == '_') && !name.is_empty() {
            let value_text: String = tail
                .trim_start()
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if value_text
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_digit())
            {
                if let Some(value) = lexer::parse_int(&value_text) {
                    let line = line_of(text, offset + open);
                    table.insert(name.to_string(), Entry { value, line });
                }
            }
        }
        offset += consumed;
        rest = &rest[consumed..];
    }
    table
}

/// Parses the `## Error codes` markdown table: first-cell backticked
/// names.
fn parse_error_table(text: &str) -> Table {
    let section = section_of(text, "Error codes");
    let mut table = Table::new();
    let base_line = line_of(text, section.start);
    for (idx, raw) in text[section].lines().enumerate() {
        let row = raw.trim();
        let Some(cell) = row.strip_prefix("| `") else {
            continue;
        };
        let Some((name, _)) = cell.split_once('`') else {
            continue;
        };
        table.insert(
            name.to_string(),
            Entry {
                value: 0,
                line: base_line + u32::try_from(idx).unwrap_or(0),
            },
        );
    }
    table
}

/// 1-based line of a byte offset.
fn line_of(text: &str, offset: usize) -> u32 {
    u32::try_from(text[..offset].matches('\n').count() + 1).unwrap_or(u32::MAX)
}

/// Parses the code-side tables out of `codec.rs` tokens:
/// `const TAG_REQ_* / TAG_RESP_*: u8 = <n>;` constants and
/// `ErrorCode::<Name> => <n>` match arms.
fn parse_codec(tokens: &[Token]) -> BTreeMap<&'static str, Table> {
    let mut req = Table::new();
    let mut resp = Table::new();
    let mut err = Table::new();
    for i in 0..tokens.len() {
        // const TAG_…: u8 = <n>
        if ident_at(tokens, i, "const")
            && punct_at(tokens, i + 2, ':')
            && punct_at(tokens, i + 4, '=')
        {
            let (name, value) = match (tokens.get(i + 1), tokens.get(i + 5)) {
                (Some(n), Some(v)) => (n, v),
                _ => continue,
            };
            let Some(value_num) = lexer::parse_int(&value.text) else {
                continue;
            };
            let entry = Entry {
                value: value_num,
                line: name.line,
            };
            if let Some(ident) = name.ident() {
                if let Some(tail) = ident.strip_prefix("TAG_REQ_") {
                    req.insert(camel(tail), entry);
                } else if let Some(tail) = ident.strip_prefix("TAG_RESP_") {
                    resp.insert(camel(tail), entry);
                }
            }
        }
        // ErrorCode::<Name> => <n>
        if ident_at(tokens, i, "ErrorCode")
            && punct_at(tokens, i + 1, ':')
            && punct_at(tokens, i + 2, ':')
            && punct_at(tokens, i + 4, '=')
            && punct_at(tokens, i + 5, '>')
        {
            if let (Some(name), Some(value)) = (tokens.get(i + 3), tokens.get(i + 6)) {
                if let (Some(ident), Some(value_num)) =
                    (name.ident(), lexer::parse_int(&value.text))
                {
                    err.insert(
                        ident.to_string(),
                        Entry {
                            value: value_num,
                            line: name.line,
                        },
                    );
                }
            }
        }
    }
    let mut code = BTreeMap::new();
    code.insert("req", req);
    code.insert("resp", resp);
    code.insert("err", err);
    code
}

/// `INGEST_BATCH` → `IngestBatch`.
fn camel(screaming: &str) -> String {
    screaming
        .split('_')
        .map(|part| {
            let mut chars = part.chars();
            chars.next().map_or_else(String::new, |first| {
                first.to_uppercase().collect::<String>() + &chars.as_str().to_lowercase()
            })
        })
        .collect()
}

/// Finds `enum ErrorCode { … }` and returns (enum line, variant → line).
fn parse_error_enum(tokens: &[Token]) -> Option<(u32, BTreeMap<String, u32>)> {
    let at = (0..tokens.len()).find(|&i| {
        ident_at(tokens, i, "enum")
            && ident_at(tokens, i + 1, "ErrorCode")
            && punct_at(tokens, i + 2, '{')
    })?;
    let mut variants = BTreeMap::new();
    let mut i = at + 3;
    let mut depth = 1usize;
    while i < tokens.len() && depth > 0 {
        let t = &tokens[i];
        if t.is_punct('{') || t.is_punct('(') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') {
            depth -= 1;
        } else if depth == 1 && t.is_punct('#') && punct_at(tokens, i + 1, '[') {
            // Skip variant attributes.
            let mut j = i + 2;
            let mut brackets = 1usize;
            while j < tokens.len() && brackets > 0 {
                if tokens[j].is_punct('[') {
                    brackets += 1;
                } else if tokens[j].is_punct(']') {
                    brackets -= 1;
                }
                j += 1;
            }
            i = j;
            continue;
        } else if depth == 1 {
            if let Some(name) = t.ident() {
                let terminated = punct_at(tokens, i + 1, ',') || punct_at(tokens, i + 1, '}');
                if terminated {
                    variants.insert(name.to_string(), t.line);
                }
            }
        }
        i += 1;
    }
    Some((tokens[at].line, variants))
}
