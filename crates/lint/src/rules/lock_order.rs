//! `lock-order`: the Engine's deadlock-freedom argument is a total order
//! on lock acquisition — the tenant-map lock strictly before any
//! per-tenant lock (docs/ARCHITECTURE.md). This rule is the token
//! heuristic that keeps the argument honest: within one function body,
//! acquiring a lock of an earlier class *after* one of a later class is
//! a finding.
//!
//! `lint.toml` declares the order and the acquisition patterns:
//!
//! ```toml
//! [lock-order]
//! paths = ["crates/serve/src/engine.rs"]
//! order = ["map", "tenant"]
//! map = ["tenants.read", "tenants.write", "read_map", "write_map"]
//! tenant = [".lock"]
//! ```
//!
//! A pattern is a `.`-joined call chain suffix; a leading `.` means "any
//! receiver" (`.lock` matches `victim.lock(…)`). The heuristic is
//! intentionally per-function and flow-insensitive: it cannot see guard
//! drops, so a body that genuinely needs to re-acquire in reverse order
//! must restructure (preferred) or carry a `lint:allow(lock-order)`.

use crate::config::Config;
use crate::lexer::Token;
use crate::rules::{ident_at, punct_at};
use crate::{Finding, SourceFile};

pub const RULE: &str = "lock-order";

pub fn check(cfg: &Config, files: &[SourceFile], findings: &mut Vec<Finding>) {
    let paths = cfg.list(RULE, "paths");
    let order = cfg.list(RULE, "order");
    if order.is_empty() {
        return;
    }
    // class index → list of patterns, each pattern a list of segments.
    let classes: Vec<Vec<Vec<String>>> = order
        .iter()
        .map(|class| {
            cfg.list(RULE, class)
                .iter()
                .map(|p| p.split('.').map(str::to_string).collect())
                .collect()
        })
        .collect();
    for file in files {
        if !paths.iter().any(|p| file.rel.contains(p.as_str())) {
            continue;
        }
        for body in function_bodies(&file.non_test) {
            check_body(body, order, &classes, &file.rel, findings);
        }
    }
}

fn check_body(
    body: &[Token],
    order: &[String],
    classes: &[Vec<Vec<String>>],
    rel: &str,
    findings: &mut Vec<Finding>,
) {
    // Highest-ordered class acquired so far in this body.
    let mut max_seen: Option<usize> = None;
    let mut i = 0;
    while i < body.len() {
        let Some((class, len)) = match_class(body, i, classes) else {
            i += 1;
            continue;
        };
        if let Some(seen) = max_seen {
            if class < seen {
                findings.push(Finding::new(
                    rel,
                    body[i].line,
                    RULE,
                    format!(
                        "`{}` lock acquired after `{}` lock; declared order is {}",
                        order[class],
                        order[seen],
                        order.join(" -> "),
                    ),
                ));
            }
        }
        max_seen = Some(max_seen.map_or(class, |seen| seen.max(class)));
        i += len;
    }
}

/// When an acquisition pattern matches at `i`, returns its class index and
/// the matched token count.
fn match_class(body: &[Token], i: usize, classes: &[Vec<Vec<String>>]) -> Option<(usize, usize)> {
    for (class, patterns) in classes.iter().enumerate() {
        for segments in patterns {
            if let Some(len) = match_pattern(body, i, segments) {
                return Some((class, len));
            }
        }
    }
    None
}

/// Matches one pattern (segments of a dot chain, empty first segment =
/// any receiver) followed by `(` — acquisitions are calls.
fn match_pattern(body: &[Token], i: usize, segments: &[String]) -> Option<usize> {
    let mut pos = i;
    for (idx, segment) in segments.iter().enumerate() {
        if idx > 0 {
            if !punct_at(body, pos, '.') {
                return None;
            }
            pos += 1;
        }
        if !segment.is_empty() {
            if !ident_at(body, pos, segment) {
                return None;
            }
            pos += 1;
        }
    }
    punct_at(body, pos, '(').then_some(pos + 1 - i)
}

/// Splits the token stream into `fn` body spans (non-overlapping: a
/// nested fn or closure is folded into its enclosing body).
fn function_bodies(tokens: &[Token]) -> Vec<&[Token]> {
    let mut bodies = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].ident() != Some("fn") {
            i += 1;
            continue;
        }
        // Find the body `{` — or `;` for a bodyless trait/extern decl.
        let mut j = i + 1;
        while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
            j += 1;
        }
        if j >= tokens.len() || tokens[j].is_punct(';') {
            i = j + 1;
            continue;
        }
        let start = j + 1;
        let mut depth = 1usize;
        let mut k = start;
        while k < tokens.len() && depth > 0 {
            if tokens[k].is_punct('{') {
                depth += 1;
            } else if tokens[k].is_punct('}') {
                depth -= 1;
            }
            k += 1;
        }
        bodies.push(&tokens[start..k.saturating_sub(1).max(start)]);
        i = k;
    }
    bodies
}
