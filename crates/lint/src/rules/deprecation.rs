//! `deprecation-expiry`: a deprecation in this repo is a contract with a
//! deadline, not a vibe. Every `#[deprecated(…)]` note must name its
//! removal release as `remove-by: X.Y.Z`; once the workspace version
//! (`[deprecation-expiry].current` in `lint.toml`, kept equal to
//! `workspace.package.version`) reaches it, the build fails until the
//! item is deleted. No more shims that outlive their grace window by
//! accident.

use crate::config::Config;
use crate::lexer::{Token, TokenKind};
use crate::rules::punct_at;
use crate::{Finding, SourceFile};

pub const RULE: &str = "deprecation-expiry";

pub fn check(cfg: &Config, files: &[SourceFile], findings: &mut Vec<Finding>) {
    let Some(current) = cfg.scalar(RULE, "current").map(parse_version) else {
        // No `current` declared: nothing to compare expiry against.
        return;
    };
    let skip = cfg.list(RULE, "skip");
    for file in files {
        if skip
            .iter()
            .any(|prefix| file.rel.starts_with(prefix.as_str()))
        {
            continue;
        }
        let tokens = &file.tokens;
        let mut i = 0;
        while i < tokens.len() {
            if !(punct_at(tokens, i, '#') && punct_at(tokens, i + 1, '['))
                || tokens.get(i + 2).and_then(Token::ident) != Some("deprecated")
            {
                i += 1;
                continue;
            }
            let line = tokens[i].line;
            // Collect the attribute body up to its matching `]`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut body = Vec::new();
            while j < tokens.len() && depth > 0 {
                if tokens[j].is_punct('[') {
                    depth += 1;
                } else if tokens[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                body.push(&tokens[j]);
                j += 1;
            }
            check_attribute(&body, &file.rel, line, current, findings);
            i = j + 1;
        }
    }
}

fn check_attribute(
    body: &[&Token],
    rel: &str,
    line: u32,
    current: (u64, u64, u64),
    findings: &mut Vec<Finding>,
) {
    let note = body.windows(3).find_map(|w| {
        (w[0].ident() == Some("note") && w[1].is_punct('=') && w[2].kind == TokenKind::Str)
            .then(|| w[2].text.as_str())
    });
    let remove_by = note.and_then(|n| n.split("remove-by:").nth(1)).map(|tail| {
        let version: String = tail
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.')
            .collect();
        version
    });
    match remove_by {
        None => findings.push(Finding::new(
            rel,
            line,
            RULE,
            "deprecation note must declare its removal release as `remove-by: X.Y.Z`",
        )),
        Some(version) => {
            let due = parse_version(&version);
            if due <= current {
                findings.push(Finding::new(
                    rel,
                    line,
                    RULE,
                    format!(
                        "deprecated item was due for removal by {version} and the workspace \
                         is now at {}.{}.{}; delete it",
                        current.0, current.1, current.2
                    ),
                ));
            }
        }
    }
}

/// `"1.2.3"` → `(1, 2, 3)`; missing or malformed components read as 0, so
/// an unparseable `remove-by:` is immediately expired rather than
/// silently deferred.
fn parse_version(text: &str) -> (u64, u64, u64) {
    let mut parts = text.trim().split('.').map(|p| p.parse().unwrap_or(0));
    (
        parts.next().unwrap_or(0),
        parts.next().unwrap_or(0),
        parts.next().unwrap_or(0),
    )
}
