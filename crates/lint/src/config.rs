//! A minimal TOML-subset parser for `lint.toml`.
//!
//! The linter is deliberately dependency-free, so instead of a full TOML
//! implementation it reads the small dialect its own config actually uses:
//! `[section]` headers, `key = "string"` and `key = ["a", "b", …]` (arrays
//! may span lines). Anything outside that dialect is a hard error — a
//! config typo should fail the lint run loudly, not silently disable a
//! rule.

use std::collections::BTreeMap;

/// Parsed `lint.toml`: section name → key → list of string values.
///
/// Scalars are represented as single-element lists so every lookup has one
/// shape.
#[derive(Debug, Default, Clone)]
pub struct Config {
    sections: BTreeMap<String, BTreeMap<String, Vec<String>>>,
}

impl Config {
    /// Parses config text, returning `Err` with a line-numbered message on
    /// the first construct outside the supported dialect.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut sections: BTreeMap<String, BTreeMap<String, Vec<String>>> = BTreeMap::new();
        let mut current = String::new();
        let mut lines = text.lines().enumerate();
        while let Some((idx, raw)) = lines.next() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                current = name.trim().to_string();
                sections.entry(current.clone()).or_default();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "line {}: expected `key = value` or `[section]`",
                    idx + 1
                ));
            };
            let key = key.trim().to_string();
            let mut value = value.trim().to_string();
            // Arrays may span lines: keep consuming until the bracket closes.
            if value.starts_with('[') {
                while !value.ends_with(']') {
                    let Some((_, next)) = lines.next() else {
                        return Err(format!("line {}: unterminated array for `{key}`", idx + 1));
                    };
                    value.push(' ');
                    value.push_str(strip_comment(next).trim());
                }
            }
            let values =
                parse_value(&value).map_err(|e| format!("line {}: {e} for `{key}`", idx + 1))?;
            if current.is_empty() {
                return Err(format!(
                    "line {}: `{key}` appears before any [section]",
                    idx + 1
                ));
            }
            sections
                .entry(current.clone())
                .or_default()
                .insert(key, values);
        }
        Ok(Self { sections })
    }

    /// The values of `key` in `section`, empty when absent.
    #[must_use]
    pub fn list(&self, section: &str, key: &str) -> &[String] {
        self.sections
            .get(section)
            .and_then(|s| s.get(key))
            .map_or(&[], Vec::as_slice)
    }

    /// The single value of `key` in `section`, when present.
    #[must_use]
    pub fn scalar(&self, section: &str, key: &str) -> Option<&str> {
        match self.list(section, key) {
            [one] => Some(one.as_str()),
            _ => None,
        }
    }

    /// True when the config has a `[section]` header for `section`.
    #[must_use]
    pub fn has_section(&self, section: &str) -> bool {
        self.sections.contains_key(section)
    }
}

/// Drops a trailing `# comment`, respecting `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

/// Parses `"string"` or `["a", "b"]` into a value list.
fn parse_value(value: &str) -> Result<Vec<String>, String> {
    if let Some(inner) = value.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| "unterminated array".to_string())?;
        let mut values = Vec::new();
        for part in split_array(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            values.push(parse_string(part)?);
        }
        return Ok(values);
    }
    Ok(vec![parse_string(value)?])
}

/// Splits array contents on commas outside quotes.
fn split_array(inner: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut current = String::new();
    let mut in_string = false;
    let mut escaped = false;
    for c in inner.chars() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                current.push(c);
                continue;
            }
            '"' if !escaped => {
                in_string = !in_string;
                current.push(c);
            }
            ',' if !in_string => {
                parts.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
        escaped = false;
    }
    if !current.trim().is_empty() {
        parts.push(current);
    }
    parts
}

/// Parses one `"…"` string literal with `\"` / `\\` escapes.
fn parse_string(part: &str) -> Result<String, String> {
    let inner = part
        .strip_prefix('"')
        .and_then(|p| p.strip_suffix('"'))
        .ok_or_else(|| format!("expected a quoted string, got `{part}`"))?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some(next @ ('"' | '\\')) => out.push(next),
                Some(next) => {
                    out.push(c);
                    out.push(next);
                }
                None => out.push(c),
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_scalars_and_arrays_parse() {
        let cfg = Config::parse(
            r#"
            # top comment
            [lint]
            skip = ["target", ".git"] # trailing comment

            [deprecation-expiry]
            current = "0.1.0"
            "#,
        )
        .expect("valid config");
        assert_eq!(
            cfg.list("lint", "skip"),
            ["target".to_string(), ".git".to_string()]
        );
        assert_eq!(cfg.scalar("deprecation-expiry", "current"), Some("0.1.0"));
        assert!(cfg.has_section("lint"));
        assert!(!cfg.has_section("missing"));
        assert!(cfg.list("lint", "absent").is_empty());
    }

    #[test]
    fn multiline_arrays_parse() {
        let cfg = Config::parse("[panic-freedom]\npaths = [\n  \"a.rs\",\n  \"b.rs\",\n]\n")
            .expect("valid config");
        assert_eq!(
            cfg.list("panic-freedom", "paths"),
            ["a.rs".to_string(), "b.rs".to_string()]
        );
    }

    #[test]
    fn malformed_configs_are_hard_errors() {
        assert!(Config::parse("key = \"before section\"").is_err());
        assert!(Config::parse("[s]\nnot a kv line").is_err());
        assert!(Config::parse("[s]\nkey = unquoted").is_err());
        assert!(Config::parse("[s]\nkey = [\"open").is_err());
    }
}
