//! Fixture-driven rule tests: each rule family has a seeded violation in
//! `tests/fixtures/violations/` that must surface under its rule id, the
//! `allowed/` tree shows that well-formed `lint:allow` directives suppress
//! the same shapes, and the `clean/` tree produces nothing.

use skm_lint::{run, Finding};
use std::path::{Path, PathBuf};

fn fixture_root(tree: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(tree)
}

fn findings(tree: &str) -> Vec<Finding> {
    let root = fixture_root(tree);
    run(&root, &root.join("lint.toml")).expect("fixture tree lints")
}

/// Asserts exactly one finding matches (rule, file, message-substring).
fn assert_one(findings: &[Finding], rule: &str, file: &str, message_part: &str) {
    let hits: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == rule && f.file == file && f.message.contains(message_part))
        .collect();
    assert_eq!(
        hits.len(),
        1,
        "expected exactly one `{rule}` finding in {file} matching {message_part:?}, got {hits:#?}\n\
         all findings: {findings:#?}"
    );
}

#[test]
fn unsafe_outside_the_allowed_list_is_flagged() {
    let all = findings("violations");
    assert_one(
        &all,
        "unsafe-confinement",
        "src/unsafe_mod.rs",
        "`unsafe` outside the allowed list",
    );
}

#[test]
fn panic_freedom_flags_unwrap_panic_and_indexing() {
    let all = findings("violations");
    assert_one(&all, "panic-freedom", "src/request.rs", "`.unwrap()`");
    assert_one(&all, "panic-freedom", "src/request.rs", "`panic!`");
    assert_one(&all, "panic-freedom", "src/request.rs", "index can panic");
}

#[test]
fn lock_order_flags_map_after_tenant() {
    let all = findings("violations");
    assert_one(
        &all,
        "lock-order",
        "src/engine.rs",
        "`map` lock acquired after `tenant` lock",
    );
}

#[test]
fn spec_conformance_flags_every_drift_direction() {
    let all = findings("violations");
    // Spec ↔ codec constants.
    assert_one(
        &all,
        "spec-conformance",
        "src/codec.rs",
        "request tag `Ingest` is 5 in code but 1 in the spec",
    );
    assert_one(
        &all,
        "spec-conformance",
        "PROTOCOL.md",
        "spec declares request tag `Query` = 2 but the code has no",
    );
    assert_one(
        &all,
        "spec-conformance",
        "src/codec.rs",
        "response tag `Bye` = 134 is not documented",
    );
    // Spec ↔ ErrorCode enum.
    assert_one(
        &all,
        "spec-conformance",
        "src/protocol.rs",
        "ErrorCode::Extra is not documented",
    );
    // Append-only baseline.
    assert_one(
        &all,
        "spec-conformance",
        "tags.lock",
        "baseline tag `req/Ingest` changed value (2 -> 1)",
    );
    assert_one(
        &all,
        "spec-conformance",
        "tags.lock",
        "baseline tag `req/Removed` was removed from the spec",
    );
    assert_one(
        &all,
        "spec-conformance",
        "PROTOCOL.md",
        "tag `req/Query` is not recorded",
    );
}

#[test]
fn deprecation_expiry_flags_due_and_unmarked_items() {
    let all = findings("violations");
    assert_one(
        &all,
        "deprecation-expiry",
        "src/deprecated.rs",
        "due for removal by 0.1.0",
    );
    assert_one(
        &all,
        "deprecation-expiry",
        "src/deprecated.rs",
        "must declare its removal release",
    );
}

#[test]
fn malformed_allow_directives_are_findings() {
    let all = findings("violations");
    assert_one(
        &all,
        "lint-allow",
        "src/allow_bad.rs",
        "unknown rule `no-such-rule`",
    );
    assert_one(&all, "lint-allow", "src/allow_bad.rs", "needs a reason");
}

#[test]
fn well_formed_allows_suppress_their_findings() {
    let all = findings("allowed");
    assert_eq!(
        all,
        Vec::<Finding>::new(),
        "every seeded violation in the allowed tree carries a directive"
    );
}

#[test]
fn a_clean_tree_is_silent() {
    let all = findings("clean");
    assert_eq!(all, Vec::<Finding>::new());
}

#[test]
fn findings_render_as_file_line_rule_message() {
    let all = findings("violations");
    let rendered = all
        .iter()
        .find(|f| f.rule == "unsafe-confinement")
        .expect("unsafe finding exists")
        .to_string();
    assert!(
        rendered.starts_with("src/unsafe_mod.rs:4 unsafe-confinement "),
        "stable machine-splittable prefix, got {rendered:?}"
    );
}
