//! Fixture: the three panic-freedom violation shapes on a scoped path.

pub fn handle(values: &[u64]) -> u64 {
    let first = values.first().unwrap();
    if *first == 0 {
        panic!("zero is not a value");
    }
    values[1]
}
