//! Fixture codec: `Ingest` disagrees with the spec value, `Query` is
//! missing entirely, and `Bye` is not documented.

pub const TAG_REQ_INGEST: u8 = 0x05;
pub const TAG_RESP_CENTERS: u8 = 0x81;
pub const TAG_RESP_BYE: u8 = 0x86;

use crate::protocol::ErrorCode;

pub fn error_code_tag(code: ErrorCode) -> u8 {
    match code {
        ErrorCode::Internal => 0,
        ErrorCode::BadInput => 1,
    }
}
