//! Fixture: a tenant-class lock acquired before a map-class lock, against
//! the declared `map -> tenant` order.

pub struct Engine;

impl Engine {
    fn read_map(&self) -> u32 {
        0
    }
}

pub struct Tenant;

impl Tenant {
    fn lock(&self) -> u32 {
        0
    }
}

pub fn inverted(engine: &Engine, tenant: &Tenant) -> u32 {
    let guard = tenant.lock();
    let map = engine.read_map();
    guard + map
}
