//! Fixture: one expired deprecation, one with no removal deadline at all.

#[deprecated(since = "0.0.1", note = "superseded; remove-by: 0.1.0")]
pub fn expired_shim() {}

#[deprecated(since = "0.0.1", note = "no deadline declared here")]
pub fn open_ended_shim() {}
