//! Fixture: `unsafe` outside the allowed list.

pub fn peek(bytes: &[u8]) -> u8 {
    unsafe { *bytes.as_ptr() }
}
