//! Fixture: malformed allow directives are themselves findings.

// lint:allow(no-such-rule) this rule id does not exist
pub fn unknown_rule() {}

// lint:allow(panic-freedom)
pub fn missing_reason() {}
