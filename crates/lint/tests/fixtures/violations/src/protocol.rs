//! Fixture protocol model: `Extra` has no row in the spec.

pub enum ErrorCode {
    Internal,
    BadInput,
    Extra,
}
