//! Fixture: a scoped file with no violations.

pub fn handle(values: &[u64]) -> Option<u64> {
    let first = values.first()?;
    let second = values.get(1)?;
    Some(first + second)
}
