//! Fixture: seeded violations suppressed by well-formed allow directives
//! (line-above and same-line placements).

pub fn handle(values: &[u64]) -> u64 {
    // lint:allow(panic-freedom) fixture: caller guarantees non-empty input
    let first = values.first().unwrap();
    let second = values[0]; // lint:allow(panic-freedom) fixture: same-line directive
    first + second
}
