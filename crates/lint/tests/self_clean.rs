//! The linter's strongest test: the real workspace, under the real
//! `lint.toml`, is clean. This is the same invocation CI's `--deny` gate
//! runs, so a violation introduced anywhere in the tree fails `cargo test`
//! before it ever reaches CI.

use std::path::Path;

#[test]
fn the_workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root two levels up from crates/lint");
    let findings = skm_lint::run(root, &root.join("lint.toml")).expect("workspace lints");
    assert!(
        findings.is_empty(),
        "the workspace must stay lint-clean; findings:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
