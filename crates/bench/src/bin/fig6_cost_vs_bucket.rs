//! Regenerates Figure 6: k-means cost vs the bucket size `m ∈ {20k, …, 100k}`.
//!
//! ```text
//! cargo run -p skm-bench --release --bin fig6_cost_vs_bucket -- [--points N] [--runs R] [--dataset NAME] [--csv]
//! ```

use skm_bench::figures::{fig6_fig7_bucket_size, print_tables};
use skm_bench::BenchArgs;

fn main() {
    let args = BenchArgs::from_env();
    match fig6_fig7_bucket_size(&args) {
        Ok((cost_tables, _time_tables)) => print_tables(&cost_tables, args.csv),
        Err(e) => {
            eprintln!("fig6_cost_vs_bucket failed: {e}");
            std::process::exit(1);
        }
    }
}
