//! Regenerates Figure 4: k-means cost vs number of clusters `k`, for every
//! dataset and algorithm (including the Sequential and batch baselines).
//!
//! ```text
//! cargo run -p skm-bench --release --bin fig4_cost_vs_k -- [--points N] [--runs R] [--dataset NAME] [--csv]
//! ```

use skm_bench::figures::{fig4_cost_vs_k, print_tables};
use skm_bench::BenchArgs;

fn main() {
    let args = BenchArgs::from_env();
    match fig4_cost_vs_k(&args) {
        Ok(tables) => print_tables(&tables, args.csv),
        Err(e) => {
            eprintln!("fig4_cost_vs_k failed: {e}");
            std::process::exit(1);
        }
    }
}
