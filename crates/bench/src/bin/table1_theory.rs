//! Empirically validates Table 1: coresets merged per query, coreset level,
//! query/update time and memory for CT, CC, RCC and OnlineCC.
//!
//! ```text
//! cargo run -p skm-bench --release --bin table1_theory -- [--points N] [--dataset NAME] [--csv]
//! ```

use skm_bench::figures::print_tables;
use skm_bench::tables::table1_theory;
use skm_bench::BenchArgs;

fn main() {
    let args = BenchArgs::from_env();
    match table1_theory(&args) {
        Ok(table) => print_tables(&[table], args.csv),
        Err(e) => {
            eprintln!("table1_theory failed: {e}");
            std::process::exit(1);
        }
    }
}
