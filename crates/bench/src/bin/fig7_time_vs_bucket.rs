//! Regenerates Figure 7: average per-point runtime (µs) vs the bucket size
//! `m ∈ {20k, …, 100k}`.
//!
//! ```text
//! cargo run -p skm-bench --release --bin fig7_time_vs_bucket -- [--points N] [--runs R] [--dataset NAME] [--csv]
//! ```

use skm_bench::figures::{fig6_fig7_bucket_size, print_tables};
use skm_bench::BenchArgs;

fn main() {
    let args = BenchArgs::from_env();
    match fig6_fig7_bucket_size(&args) {
        Ok((_cost_tables, time_tables)) => print_tables(&time_tables, args.csv),
        Err(e) => {
            eprintln!("fig7_time_vs_bucket failed: {e}");
            std::process::exit(1);
        }
    }
}
