//! Regenerates Figure 11: OnlineCC runtime vs the switching threshold α.
//!
//! ```text
//! cargo run -p skm-bench --release --bin fig11_threshold_sweep -- [--points N] [--runs R] [--dataset NAME] [--csv]
//! ```

use skm_bench::figures::{fig11_threshold_sweep, print_tables};
use skm_bench::BenchArgs;

fn main() {
    let args = BenchArgs::from_env();
    match fig11_threshold_sweep(&args) {
        Ok(tables) => print_tables(&tables, args.csv),
        Err(e) => {
            eprintln!("fig11_threshold_sweep failed: {e}");
            std::process::exit(1);
        }
    }
}
