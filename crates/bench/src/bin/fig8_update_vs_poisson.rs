//! Regenerates Figure 8: update time per point (µs) vs the Poisson query
//! arrival rate λ.
//!
//! ```text
//! cargo run -p skm-bench --release --bin fig8_update_vs_poisson -- [--points N] [--runs R] [--dataset NAME] [--csv]
//! ```

use skm_bench::figures::{fig8_to_10_poisson, print_tables};
use skm_bench::BenchArgs;

fn main() {
    let args = BenchArgs::from_env();
    match fig8_to_10_poisson(&args) {
        Ok((update_tables, _query, _total)) => print_tables(&update_tables, args.csv),
        Err(e) => {
            eprintln!("fig8_update_vs_poisson failed: {e}");
            std::process::exit(1);
        }
    }
}
