//! Reproduces Table 2: RCC trade-offs as a function of the nesting depth ι.
//!
//! ```text
//! cargo run -p skm-bench --release --bin table2_rcc_tradeoffs -- [--points N] [--dataset NAME] [--csv]
//! ```

use skm_bench::figures::print_tables;
use skm_bench::tables::table2_rcc_tradeoffs;
use skm_bench::BenchArgs;

fn main() {
    let args = BenchArgs::from_env();
    match table2_rcc_tradeoffs(&args) {
        Ok(table) => print_tables(&[table], args.csv),
        Err(e) => {
            eprintln!("table2_rcc_tradeoffs failed: {e}");
            std::process::exit(1);
        }
    }
}
