//! Regenerates Figure 9: query time per point (µs) vs the Poisson query
//! arrival rate λ.
//!
//! ```text
//! cargo run -p skm-bench --release --bin fig9_query_vs_poisson -- [--points N] [--runs R] [--dataset NAME] [--csv]
//! ```

use skm_bench::figures::{fig8_to_10_poisson, print_tables};
use skm_bench::BenchArgs;

fn main() {
    let args = BenchArgs::from_env();
    match fig8_to_10_poisson(&args) {
        Ok((_update, query_tables, _total)) => print_tables(&query_tables, args.csv),
        Err(e) => {
            eprintln!("fig9_query_vs_poisson failed: {e}");
            std::process::exit(1);
        }
    }
}
