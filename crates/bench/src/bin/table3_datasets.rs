//! Reproduces Table 3: the dataset overview.
//!
//! ```text
//! cargo run -p skm-bench --release --bin table3_datasets -- [--points N] [--csv]
//! ```

use skm_bench::figures::print_tables;
use skm_bench::tables::table3_datasets;
use skm_bench::BenchArgs;

fn main() {
    let args = BenchArgs::from_env();
    match table3_datasets(&args) {
        Ok(table) => print_tables(&[table], args.csv),
        Err(e) => {
            eprintln!("table3_datasets failed: {e}");
            std::process::exit(1);
        }
    }
}
