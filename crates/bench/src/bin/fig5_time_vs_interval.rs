//! Regenerates Figure 5: total runtime over the stream vs the query interval
//! `q ∈ {50, …, 3200}`, for StreamKM++, CC, RCC and OnlineCC.
//!
//! ```text
//! cargo run -p skm-bench --release --bin fig5_time_vs_interval -- [--points N] [--runs R] [--dataset NAME] [--csv]
//! ```

use skm_bench::figures::{fig5_time_vs_interval, print_tables};
use skm_bench::BenchArgs;

fn main() {
    let args = BenchArgs::from_env();
    match fig5_time_vs_interval(&args) {
        Ok(tables) => print_tables(&tables, args.csv),
        Err(e) => {
            eprintln!("fig5_time_vs_interval failed: {e}");
            std::process::exit(1);
        }
    }
}
