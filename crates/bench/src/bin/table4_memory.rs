//! Reproduces Table 4: memory cost in points and MB for every algorithm and
//! dataset (k = 30, query every 100 points).
//!
//! ```text
//! cargo run -p skm-bench --release --bin table4_memory -- [--points N] [--dataset NAME] [--csv]
//! ```

use skm_bench::figures::print_tables;
use skm_bench::tables::table4_memory;
use skm_bench::BenchArgs;

fn main() {
    let args = BenchArgs::from_env();
    match table4_memory(&args) {
        Ok(tables) => print_tables(&tables, args.csv),
        Err(e) => {
            eprintln!("table4_memory failed: {e}");
            std::process::exit(1);
        }
    }
}
