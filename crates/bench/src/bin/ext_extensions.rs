//! Extension experiments (beyond the paper's evaluation):
//!
//! 1. CluStream micro-cluster baseline vs the paper's algorithms
//!    (accuracy, runtime, memory) on one dataset.
//! 2. Time-decayed sequential k-means vs plain sequential k-means on the
//!    drifting stream (the paper's future-work item on concept drift).
//! 3. Streaming k-median (KMedianCC) vs streaming k-means (CC) on a stream
//!    with heavy outliers.
//!
//! ```text
//! cargo run -p skm-bench --release --bin ext_extensions -- [--points N] [--k K] [--csv]
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use skm_bench::figures::{harness_config, print_tables, DEFAULT_ALPHA};
use skm_bench::runner::{make_algorithm, run_stream, AlgorithmKind};
use skm_bench::workloads::{build_dataset, DatasetSpec};
use skm_bench::BenchArgs;
use skm_clustering::cost::kmeans_cost;
use skm_clustering::kmedian::kmedian_cost;
use skm_clustering::PointSet;
use skm_data::QuerySchedule;
use skm_metrics::Table;
use skm_stream::prelude::*;
use skm_stream::KMedianCC;

fn clustream_comparison(args: &BenchArgs) -> Table {
    let spec = args.dataset.unwrap_or(DatasetSpec::Covtype);
    let dataset = build_dataset(spec, args.points, args.seed);
    let config = harness_config(args.k, 20 * args.k);
    let mut table = Table::new(
        format!(
            "Extension 1 ({}): CluStream vs coreset algorithms",
            spec.name()
        ),
        &[
            "algorithm",
            "total time (s)",
            "final cost",
            "memory (points)",
        ],
    );
    for kind in [
        AlgorithmKind::Cc,
        AlgorithmKind::OnlineCc,
        AlgorithmKind::Sequential,
    ] {
        let mut algo = make_algorithm(kind, config, DEFAULT_ALPHA, dataset.len(), args.seed)
            .expect("valid config");
        let result = run_stream(
            algo.as_mut(),
            &dataset,
            QuerySchedule::every(100),
            args.seed,
        )
        .expect("run");
        table.push_row(vec![
            kind.name().to_string(),
            format!("{:.3}", result.measurement.total_seconds()),
            format!("{:.4e}", result.measurement.final_cost),
            result.measurement.memory_points.to_string(),
        ]);
    }
    let mut clustream = CluStream::new(config, args.seed).expect("valid config");
    let result = run_stream(
        &mut clustream,
        &dataset,
        QuerySchedule::every(100),
        args.seed,
    )
    .expect("run");
    table.push_row(vec![
        "CluStream".to_string(),
        format!("{:.3}", result.measurement.total_seconds()),
        format!("{:.4e}", result.measurement.final_cost),
        result.measurement.memory_points.to_string(),
    ]);
    table
}

fn decay_comparison(args: &BenchArgs) -> Table {
    // Drifting stream; evaluate the cost of the *current* centers on the
    // most recent 10% of the stream.
    let dataset = build_dataset(DatasetSpec::Drift, args.points, args.seed);
    let k = args.k;
    let tail_start = dataset.len() - dataset.len() / 10;
    let mut tail = PointSet::new(dataset.dim());
    for (i, p) in dataset.stream().enumerate() {
        if i >= tail_start {
            tail.push(p, 1.0);
        }
    }

    let mut table = Table::new(
        "Extension 2 (Drift): time-decayed vs plain sequential k-means (cost on final 10% of the stream)",
        &["algorithm", "cost on recent window", "memory (points)"],
    );
    let mut plain = SequentialKMeans::new(k).expect("valid k");
    let mut decayed = DecayedSequentialKMeans::new(k, 0.995).expect("valid decay");
    let mut cc = CachedCoresetTree::new(harness_config(k, 20 * k), args.seed).expect("config");
    for p in dataset.stream() {
        plain.update(p).expect("update");
        decayed.update(p).expect("update");
        cc.update(p).expect("update");
    }
    for (name, centers, memory) in [
        (
            "Sequential",
            plain.query().expect("query"),
            plain.memory_points(),
        ),
        (
            "DecayedSequential (λ=0.995)",
            decayed.query().expect("query"),
            decayed.memory_points(),
        ),
        ("CC", cc.query().expect("query"), cc.memory_points()),
    ] {
        let cost = kmeans_cost(&tail, &centers).expect("cost");
        table.push_row(vec![
            name.to_string(),
            format!("{cost:.4e}"),
            memory.to_string(),
        ]);
    }
    table
}

fn kmedian_comparison(args: &BenchArgs) -> Table {
    // Heavy-tailed stream (Intrusion-like) where the k-median objective is
    // more robust to the extreme points.
    let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
    let dataset = skm_data::uci_like::intrusion_like(args.points, &mut rng).shuffled(&mut rng);
    let config = harness_config(args.k, 20 * args.k);

    let mut kmeans_cc = CachedCoresetTree::new(config, args.seed).expect("config");
    let mut kmedian_cc = KMedianCC::new(config, args.seed).expect("config");
    for p in dataset.stream() {
        kmeans_cc.update(p).expect("update");
        kmedian_cc.update(p).expect("update");
    }
    let kmeans_centers = kmeans_cc.query().expect("query");
    let kmedian_centers = kmedian_cc.query().expect("query");

    let mut table = Table::new(
        "Extension 3 (Intrusion): streaming k-means (CC) vs streaming k-median (KMedianCC)",
        &[
            "algorithm",
            "k-means cost",
            "k-median cost",
            "memory (points)",
        ],
    );
    for (name, centers, memory) in [
        ("CC (k-means)", &kmeans_centers, kmeans_cc.memory_points()),
        (
            "KMedianCC (k-median)",
            &kmedian_centers,
            kmedian_cc.memory_points(),
        ),
    ] {
        table.push_row(vec![
            name.to_string(),
            format!(
                "{:.4e}",
                kmeans_cost(dataset.points(), centers).expect("cost")
            ),
            format!(
                "{:.4e}",
                kmedian_cost(dataset.points(), centers).expect("cost")
            ),
            memory.to_string(),
        ]);
    }
    table
}

fn main() {
    let args = BenchArgs::from_env();
    let tables = vec![
        clustream_comparison(&args),
        decay_comparison(&args),
        kmedian_comparison(&args),
    ];
    print_tables(&tables, args.csv);
}
