//! `skm-bench` — the machine-readable benchmark pipeline.
//!
//! Measures, per selected workload, the per-update and per-query latency of
//! every streaming algorithm (all of which route through the fused distance
//! kernels), the coreset construction time and peak memory, then:
//!
//! * prints a human-readable summary,
//! * with `--json DIR`, writes one `BENCH_<workload>.json` per workload,
//! * with `--baseline-out PATH`, writes all reports as a baseline file,
//! * with `--check BASELINE`, compares fresh medians against the committed
//!   baseline and exits with status 1 on a >25% median slowdown,
//! * with `--guard-only` (plus `--json` and `--check`), skips measuring and
//!   only replays the guard against reports already on disk — this is how
//!   CI separates the measurement step from the gating step.
//!
//! See the README section "Benchmarking & perf methodology" for the JSON
//! schema and the baseline-refresh workflow.

use skm_bench::durability::measure_durability_workload;
use skm_bench::report::{
    compare_reports, measure_workload, write_baseline, write_reports, BaselineFile, WorkloadReport,
};
use skm_bench::scenarios::measure_scenarios_workload;
use skm_bench::serving::measure_serving_workload;
use skm_bench::sharded::measure_sharded_workload;
use skm_bench::{BenchArgs, DatasetSpec};
use std::path::Path;
use std::process::ExitCode;

/// The guard fails on a median slowdown beyond this ratio (>25%).
const MAX_SLOWDOWN_RATIO: f64 = 1.25;

fn read_baseline(path: &str) -> Result<BaselineFile, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline `{path}`: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse baseline `{path}`: {e:?}"))
}

fn read_fresh_reports(
    dir: &str,
    specs: &[DatasetSpec],
    sharded: bool,
    serving: bool,
    durability: bool,
    scenarios: bool,
) -> Result<Vec<WorkloadReport>, String> {
    let mut names: Vec<String> = specs.iter().map(|s| s.name().to_string()).collect();
    if sharded {
        names.push(skm_bench::SHARDED_WORKLOAD.to_string());
    }
    if serving {
        names.push(skm_bench::SERVING_WORKLOAD.to_string());
    }
    if durability {
        names.push(skm_bench::DURABILITY_WORKLOAD.to_string());
    }
    if scenarios {
        names.push(skm_bench::SCENARIOS_WORKLOAD.to_string());
    }
    let mut reports = Vec::new();
    for name in &names {
        let path = Path::new(dir).join(format!("BENCH_{name}.json"));
        let Ok(text) = std::fs::read_to_string(&path) else {
            // Workloads that were not benched are simply not guarded.
            continue;
        };
        let report: WorkloadReport = serde_json::from_str(&text)
            .map_err(|e| format!("cannot parse `{}`: {e:?}", path.display()))?;
        reports.push(report);
    }
    if reports.is_empty() {
        return Err(format!("no BENCH_*.json reports found in `{dir}`"));
    }
    Ok(reports)
}

fn print_summary(report: &WorkloadReport) {
    println!(
        "== {} (n = {}, d = {}, k = {}, seed = {}) ==",
        report.workload, report.points, report.dim, report.k, report.seed
    );
    println!(
        "  coreset build: median {:.0} ns, p95 {:.0} ns",
        report.coreset_build_ns.median_ns, report.coreset_build_ns.p95_ns
    );
    for a in &report.algorithms {
        println!(
            "  {:<12} update median {:>8.0} ns (p95 {:>8.0})  query median {:>10.0} ns (p95 {:>10.0})  peak {:>8} B",
            a.algorithm,
            a.update_ns.median_ns,
            a.update_ns.p95_ns,
            a.query_ns.median_ns,
            a.query_ns.p95_ns,
            a.peak_memory_bytes
        );
    }
}

fn run_guard(baseline_path: &str, fresh: &[WorkloadReport]) -> ExitCode {
    let baseline = match read_baseline(baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let regressions = compare_reports(&baseline.reports, fresh, MAX_SLOWDOWN_RATIO);
    if regressions.is_empty() {
        println!(
            "regression guard: all medians within {:.0}% of `{baseline_path}`",
            (MAX_SLOWDOWN_RATIO - 1.0) * 100.0
        );
        return ExitCode::SUCCESS;
    }
    eprintln!(
        "regression guard: {} metric(s) regressed more than {:.0}% vs `{baseline_path}`:",
        regressions.len(),
        (MAX_SLOWDOWN_RATIO - 1.0) * 100.0
    );
    for r in &regressions {
        eprintln!("  {}", r.describe());
    }
    eprintln!(
        "If the slowdown is expected, refresh bench/baseline.json (see README \
         \"Benchmarking & perf methodology\") or apply the `bench-override` PR label."
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args = BenchArgs::from_env();
    if !args.errors.is_empty() {
        for e in &args.errors {
            eprintln!("{e}");
        }
        return ExitCode::FAILURE;
    }
    let specs = args.datasets();

    let fresh: Vec<WorkloadReport> = if args.guard_only {
        let Some(dir) = args.json.as_deref() else {
            eprintln!("--guard-only requires --json DIR (where to load reports from)");
            return ExitCode::FAILURE;
        };
        match read_fresh_reports(
            dir,
            &specs,
            args.sharded,
            args.serving,
            args.durability,
            args.scenarios,
        ) {
            Ok(reports) => reports,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let mut reports = Vec::new();
        for spec in &specs {
            match measure_workload(*spec, args.points, args.k, args.seed) {
                Ok(report) => {
                    print_summary(&report);
                    reports.push(report);
                }
                Err(e) => {
                    eprintln!("benchmark of {} failed: {e}", spec.name());
                    return ExitCode::FAILURE;
                }
            }
        }
        if args.sharded {
            match measure_sharded_workload(args.points, args.k, args.seed) {
                Ok(report) => {
                    print_summary(&report);
                    reports.push(report);
                }
                Err(e) => {
                    eprintln!("sharded benchmark failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if args.serving {
            match measure_serving_workload(args.points, args.k, args.seed) {
                Ok(report) => {
                    print_summary(&report);
                    reports.push(report);
                }
                Err(e) => {
                    eprintln!("serving benchmark failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if args.durability {
            match measure_durability_workload(args.points, args.k, args.seed) {
                Ok(report) => {
                    print_summary(&report);
                    reports.push(report);
                }
                Err(e) => {
                    eprintln!("durability benchmark failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if args.scenarios {
            match measure_scenarios_workload(args.points, args.k, args.seed) {
                Ok(report) => {
                    print_summary(&report);
                    reports.push(report);
                }
                Err(e) => {
                    eprintln!("scenarios benchmark failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if let Some(dir) = args.json.as_deref() {
            match write_reports(dir, &reports) {
                Ok(written) => {
                    for path in written {
                        println!("wrote {path}");
                    }
                }
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if let Some(path) = args.baseline_out.as_deref() {
            // Serving cells never enter the baseline (their loopback-RTT
            // medians are too machine-varying to guard); the filter lives
            // in the library so a `--serving` baseline refresh cannot
            // re-enable that guard by accident.
            let baseline = BaselineFile {
                schema_version: skm_bench::report::SCHEMA_VERSION,
                reports: skm_bench::report::guardable_reports(&reports),
            };
            if let Err(e) = write_baseline(path, &baseline) {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
            println!("wrote baseline {path}");
        }
        reports
    };

    match args.check.as_deref() {
        Some(baseline_path) => run_guard(baseline_path, &fresh),
        None => ExitCode::SUCCESS,
    }
}
