//! Ablation (beyond the paper): effect of the CC merge degree `r` and of the
//! coreset cache itself on runtime and accuracy.
//!
//! ```text
//! cargo run -p skm-bench --release --bin ablation_merge_degree -- [--points N] [--dataset NAME] [--csv]
//! ```

use skm_bench::figures::print_tables;
use skm_bench::tables::{ablation_cache_benefit, ablation_merge_degree};
use skm_bench::BenchArgs;

fn main() {
    let args = BenchArgs::from_env();
    let result = ablation_merge_degree(&args)
        .and_then(|t1| ablation_cache_benefit(&args).map(|t2| vec![t1, t2]));
    match result {
        Ok(tables) => print_tables(&tables, args.csv),
        Err(e) => {
            eprintln!("ablation_merge_degree failed: {e}");
            std::process::exit(1);
        }
    }
}
