//! Regenerates Figure 10: total time per point (µs) vs the Poisson query
//! arrival rate λ.
//!
//! ```text
//! cargo run -p skm-bench --release --bin fig10_total_vs_poisson -- [--points N] [--runs R] [--dataset NAME] [--csv]
//! ```

use skm_bench::figures::{fig8_to_10_poisson, print_tables};
use skm_bench::BenchArgs;

fn main() {
    let args = BenchArgs::from_env();
    match fig8_to_10_poisson(&args) {
        Ok((_update, _query, total_tables)) => print_tables(&total_tables, args.csv),
        Err(e) => {
            eprintln!("fig10_total_vs_poisson failed: {e}");
            std::process::exit(1);
        }
    }
}
