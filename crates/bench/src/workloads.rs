//! The four evaluation datasets of Table 3, at configurable stream lengths.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use skm_data::drift::RbfDriftGenerator;
use skm_data::uci_like::{covtype_like, intrusion_like, power_like};
use skm_data::Dataset;

/// Which of the paper's datasets to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetSpec {
    /// Forest-cover-type-like stream (54 dimensions, 7 imbalanced clusters).
    Covtype,
    /// Household-power-like stream (7 dimensions, daily cycle).
    Power,
    /// KDD-Cup-1999-like stream (34 dimensions, heavily skewed clusters).
    Intrusion,
    /// Drifting RBF stream (68 dimensions, 20 moving centers).
    Drift,
}

impl DatasetSpec {
    /// All four datasets in the order the paper presents them.
    pub const ALL: [DatasetSpec; 4] = [
        DatasetSpec::Covtype,
        DatasetSpec::Power,
        DatasetSpec::Intrusion,
        DatasetSpec::Drift,
    ];

    /// Dataset name as used in reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            DatasetSpec::Covtype => "Covtype",
            DatasetSpec::Power => "Power",
            DatasetSpec::Intrusion => "Intrusion",
            DatasetSpec::Drift => "Drift",
        }
    }

    /// Dimensionality of this dataset (matches Table 3).
    #[must_use]
    pub fn dim(&self) -> usize {
        match self {
            DatasetSpec::Covtype => 54,
            DatasetSpec::Power => 7,
            DatasetSpec::Intrusion => 34,
            DatasetSpec::Drift => 68,
        }
    }

    /// Number of points of the original dataset in the paper (Table 3).
    #[must_use]
    pub fn paper_points(&self) -> usize {
        match self {
            DatasetSpec::Covtype => 581_012,
            DatasetSpec::Power => 2_049_280,
            DatasetSpec::Intrusion => 494_021,
            DatasetSpec::Drift => 200_000,
        }
    }

    /// Parses a dataset name (case-insensitive).
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "covtype" => Some(DatasetSpec::Covtype),
            "power" => Some(DatasetSpec::Power),
            "intrusion" => Some(DatasetSpec::Intrusion),
            "drift" => Some(DatasetSpec::Drift),
            _ => None,
        }
    }
}

/// Builds (deterministically, given `seed`) a stream of `points` points for
/// the requested dataset, shuffled as in the paper (except Drift, whose
/// temporal order *is* the phenomenon being modelled).
#[must_use]
pub fn build_dataset(spec: DatasetSpec, points: usize, seed: u64) -> Dataset {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let dataset = match spec {
        DatasetSpec::Covtype => covtype_like(points, &mut rng),
        DatasetSpec::Power => power_like(points, &mut rng),
        DatasetSpec::Intrusion => intrusion_like(points, &mut rng),
        DatasetSpec::Drift => {
            return RbfDriftGenerator::paper_default()
                .expect("constants are valid")
                .generate(points, &mut rng)
        }
    };
    dataset.shuffled(&mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_have_expected_shape() {
        for spec in DatasetSpec::ALL {
            let d = build_dataset(spec, 500, 1);
            assert_eq!(d.len(), 500, "{}", spec.name());
            assert_eq!(d.dim(), spec.dim(), "{}", spec.name());
            assert_eq!(d.name(), spec.name());
        }
    }

    #[test]
    fn parse_names() {
        assert_eq!(DatasetSpec::parse("covtype"), Some(DatasetSpec::Covtype));
        assert_eq!(DatasetSpec::parse("POWER"), Some(DatasetSpec::Power));
        assert_eq!(DatasetSpec::parse("unknown"), None);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = build_dataset(DatasetSpec::Intrusion, 200, 9);
        let b = build_dataset(DatasetSpec::Intrusion, 200, 9);
        assert_eq!(a.points(), b.points());
    }

    #[test]
    fn paper_sizes_match_table_3() {
        assert_eq!(DatasetSpec::Covtype.paper_points(), 581_012);
        assert_eq!(DatasetSpec::Power.paper_points(), 2_049_280);
        assert_eq!(DatasetSpec::Intrusion.paper_points(), 494_021);
        assert_eq!(DatasetSpec::Drift.paper_points(), 200_000);
    }
}
