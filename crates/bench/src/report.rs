//! Machine-readable benchmark reports (`BENCH_<workload>.json`) and the
//! baseline comparison used by CI's regression guard.
//!
//! The schema (version 1) is intentionally small and flat so that CI, the
//! committed `bench/baseline.json` and ad-hoc tooling all read the same
//! shape:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "workload": "Power",
//!   "points": 2000, "dim": 7, "k": 5, "seed": 42,
//!   "coreset_build_ns": {"count": 5, "median_ns": ..., "p95_ns": ..., ...},
//!   "algorithms": [
//!     {"algorithm": "CC",
//!      "update_ns": {...}, "query_ns": {...},
//!      "peak_memory_bytes": 123456, "final_cost": 1.25e4},
//!     ...
//!   ]
//! }
//! ```
//!
//! All latencies are nanoseconds. `update_ns` summarizes one sample per
//! stream point, `query_ns` one sample per issued query, and
//! `coreset_build_ns` one sample per repeated `CoresetBuilder::build` over
//! the workload prefix. `peak_memory_bytes` is the maximum of the paper's
//! memory accounting (stored points × dim × 8 bytes) observed during the
//! stream.

use crate::runner::{make_algorithm, AlgorithmKind};
use crate::workloads::{build_dataset, DatasetSpec};
use serde::{Deserialize, Serialize};
use skm_clustering::cost::kmeans_cost;
use skm_clustering::error::Result;
use skm_coreset::construct::CoresetBuilder;
use skm_coreset::Span;
use skm_metrics::memory_bytes;
use skm_metrics::stats::percentile_sorted;
use skm_stream::StreamConfig;
use std::time::Instant;

/// Schema version stamped into every report; bump when the shape changes.
pub const SCHEMA_VERSION: u32 = 1;

/// Median/percentile summary of a latency sample, in nanoseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Median (p50) latency in nanoseconds — the guard's headline metric.
    pub median_ns: f64,
    /// 95th-percentile latency in nanoseconds.
    pub p95_ns: f64,
    /// Arithmetic mean in nanoseconds.
    pub mean_ns: f64,
    /// Minimum sample in nanoseconds.
    pub min_ns: f64,
    /// Maximum sample in nanoseconds.
    pub max_ns: f64,
}

impl LatencySummary {
    /// Summarizes a sample of nanosecond latencies. Returns `None` for an
    /// empty sample.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let count = sorted.len() as u64;
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Some(Self {
            count,
            median_ns: percentile_sorted(&sorted, 50.0),
            p95_ns: percentile_sorted(&sorted, 95.0),
            mean_ns: mean,
            min_ns: sorted[0],
            max_ns: sorted[sorted.len() - 1],
        })
    }
}

/// Per-algorithm measurements within a workload report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlgorithmReport {
    /// Algorithm name as reported by [`AlgorithmKind::name`].
    pub algorithm: String,
    /// Per-stream-point update latency.
    pub update_ns: LatencySummary,
    /// Per-query latency.
    pub query_ns: LatencySummary,
    /// Peak memory (paper accounting: stored points × dim × 8 bytes).
    pub peak_memory_bytes: u64,
    /// k-means (SSQ) cost of the final query's centers on the full dataset.
    pub final_cost: f64,
}

/// One `BENCH_<workload>.json` document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadReport {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Workload name (`Covtype`, `Power`, `Intrusion`, `Drift`).
    pub workload: String,
    /// Stream length used for the measurement.
    pub points: u64,
    /// Dataset dimensionality.
    pub dim: u64,
    /// Number of clusters `k`.
    pub k: u64,
    /// Base RNG seed (datasets and algorithms are deterministic given it).
    pub seed: u64,
    /// Latency of building one coreset over the workload prefix.
    pub coreset_build_ns: LatencySummary,
    /// One entry per streaming algorithm measured.
    pub algorithms: Vec<AlgorithmReport>,
}

impl WorkloadReport {
    /// Canonical file name for this report (`BENCH_<workload>.json`).
    #[must_use]
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.workload)
    }
}

/// The committed baseline: a bundle of workload reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineFile {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The workload reports captured when the baseline was refreshed.
    pub reports: Vec<WorkloadReport>,
}

/// One metric that slowed down past the threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Workload the metric belongs to.
    pub workload: String,
    /// Algorithm name, or `"coreset"` for the workload-level build metric.
    pub algorithm: String,
    /// Metric name (`update_ns.median`, `query_ns.median`,
    /// `coreset_build_ns.median`).
    pub metric: String,
    /// Baseline median in nanoseconds.
    pub baseline_ns: f64,
    /// Freshly measured median in nanoseconds.
    pub fresh_ns: f64,
    /// `fresh_ns / baseline_ns`.
    pub ratio: f64,
}

impl Regression {
    /// Human-readable one-liner for CI logs.
    #[must_use]
    pub fn describe(&self) -> String {
        format!(
            "{} / {} / {}: {:.0} ns -> {:.0} ns ({:.2}x)",
            self.workload, self.algorithm, self.metric, self.baseline_ns, self.fresh_ns, self.ratio
        )
    }
}

/// Sub-microsecond medians (e.g. a ~40 ns buffered update) sit at
/// `Instant::now()` granularity, where cross-machine timer-overhead
/// differences would flap the guard without any real regression. The guard
/// therefore compares the fresh median against
/// `max(baseline, MIN_COMPARABLE_NS) × max_ratio`: timer-scale jitter on a
/// 40 ns baseline passes, but a genuine blowup past ~1.25 µs still fails.
pub const MIN_COMPARABLE_NS: f64 = 1_000.0;

fn check_metric(
    out: &mut Vec<Regression>,
    workload: &str,
    algorithm: &str,
    metric: &str,
    baseline_ns: f64,
    fresh_ns: f64,
    max_ratio: f64,
) {
    if baseline_ns > 0.0 && fresh_ns > baseline_ns.max(MIN_COMPARABLE_NS) * max_ratio {
        out.push(Regression {
            workload: workload.to_string(),
            algorithm: algorithm.to_string(),
            metric: metric.to_string(),
            baseline_ns,
            fresh_ns,
            ratio: fresh_ns / baseline_ns,
        });
    }
}

/// Compares fresh reports against a baseline. A metric regresses when its
/// fresh median exceeds `max_ratio` times the baseline median (the CI guard
/// uses `1.25`, i.e. a >25% slowdown). Metrics present on only one side are
/// ignored, so adding workloads or algorithms never breaks the guard, and
/// baseline medians are floored at [`MIN_COMPARABLE_NS`] so timer-overhead
/// noise on nanosecond-scale metrics cannot flap the result while real
/// blowups are still caught.
#[must_use]
pub fn compare_reports(
    baseline: &[WorkloadReport],
    fresh: &[WorkloadReport],
    max_ratio: f64,
) -> Vec<Regression> {
    let mut out = Vec::new();
    for base in baseline {
        let Some(new) = fresh.iter().find(|r| r.workload == base.workload) else {
            continue;
        };
        check_metric(
            &mut out,
            &base.workload,
            "coreset",
            "coreset_build_ns.median",
            base.coreset_build_ns.median_ns,
            new.coreset_build_ns.median_ns,
            max_ratio,
        );
        for base_algo in &base.algorithms {
            let Some(new_algo) = new
                .algorithms
                .iter()
                .find(|a| a.algorithm == base_algo.algorithm)
            else {
                continue;
            };
            check_metric(
                &mut out,
                &base.workload,
                &base_algo.algorithm,
                "update_ns.median",
                base_algo.update_ns.median_ns,
                new_algo.update_ns.median_ns,
                max_ratio,
            );
            check_metric(
                &mut out,
                &base.workload,
                &base_algo.algorithm,
                "query_ns.median",
                base_algo.query_ns.median_ns,
                new_algo.query_ns.median_ns,
                max_ratio,
            );
        }
    }
    out
}

/// Writes one `BENCH_<workload>.json` per report into `dir`, creating the
/// directory (and any missing parents) first — `skm-bench --json DIR` must
/// work without a `mkdir -p` preamble in CI or locally.
///
/// # Errors
/// Returns a human-readable message when the directory cannot be created or
/// a file cannot be written.
pub fn write_reports(
    dir: &str,
    reports: &[WorkloadReport],
) -> std::result::Result<Vec<String>, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create `{dir}`: {e}"))?;
    let mut written = Vec::with_capacity(reports.len());
    for report in reports {
        let path = std::path::Path::new(dir).join(report.file_name());
        let json = serde_json::to_string(report).map_err(|e| format!("serialize: {e:?}"))?;
        std::fs::write(&path, json).map_err(|e| format!("write `{}`: {e}", path.display()))?;
        written.push(path.display().to_string());
    }
    Ok(written)
}

/// The subset of `reports` that belongs in `bench/baseline.json`: the
/// serving, durability and scenarios workloads are excluded by design —
/// serving request latencies include loopback RTT and scheduler noise,
/// durability medians are dominated by the runner's fsync latency, and
/// the hostile-scenario cells measure robustness envelopes rather than
/// representative medians; all vary across machines (or by construction)
/// far more than the ±25% guard tolerates, so guarding them would make CI
/// flaky. Keeping the filter here (rather than as a convention of the
/// committed file) means a routine `--serving --baseline-out` baseline
/// refresh cannot silently re-enable those guards.
#[must_use]
pub fn guardable_reports(reports: &[WorkloadReport]) -> Vec<WorkloadReport> {
    reports
        .iter()
        .filter(|r| {
            r.workload != crate::serving::SERVING_WORKLOAD
                && r.workload != crate::durability::DURABILITY_WORKLOAD
                && r.workload != crate::scenarios::SCENARIOS_WORKLOAD
        })
        .cloned()
        .collect()
}

/// Writes a combined baseline file, creating missing parent directories
/// (the same no-`mkdir -p` guarantee as [`write_reports`]).
///
/// # Errors
/// Returns a human-readable message when the parent directory cannot be
/// created or the file cannot be written.
pub fn write_baseline(path: &str, baseline: &BaselineFile) -> std::result::Result<(), String> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create `{}`: {e}", parent.display()))?;
        }
    }
    let json = serde_json::to_string(baseline).map_err(|e| format!("serialize: {e:?}"))?;
    std::fs::write(path, json).map_err(|e| format!("write `{path}`: {e}"))
}

/// Number of coreset builds timed per workload (after warmup).
const CORESET_BUILD_REPS: usize = 15;

/// Untimed coreset builds before sampling starts, so cold caches and first
/// page faults don't land in the distribution.
const CORESET_BUILD_WARMUP: usize = 2;

/// Number of full stream repetitions per algorithm; update/query samples
/// are pooled across them so the reported medians are stable run-to-run.
const STREAM_REPS: usize = 3;

/// Measures one workload: coreset-construction latency plus, for every
/// streaming algorithm, per-update and per-query latency, peak memory and
/// final cost. Deterministic given `(spec, points, k, seed)` up to timing
/// noise.
///
/// # Errors
/// Propagates algorithm/configuration errors (these indicate harness bugs,
/// not measurement failures).
pub fn measure_workload(
    spec: DatasetSpec,
    points: usize,
    k: usize,
    seed: u64,
) -> Result<WorkloadReport> {
    let dataset = build_dataset(spec, points, seed);
    let config = StreamConfig::new(k)
        .with_bucket_size(20 * k)
        .with_kmeans_runs(1)
        .with_lloyd_iterations(5);

    // Coreset construction latency over the stream prefix the streaming
    // algorithms summarize per bucket (two buckets' worth of points).
    let builder = CoresetBuilder::new(k).with_size(config.bucket_size);
    let prefix_len = (2 * config.bucket_size).min(dataset.len());
    let mut prefix = skm_clustering::PointSet::with_capacity(dataset.dim(), prefix_len);
    for (p, w) in dataset.points().iter().take(prefix_len) {
        prefix.push(p, w);
    }
    let mut build_samples = Vec::with_capacity(CORESET_BUILD_REPS);
    for rep in 0..CORESET_BUILD_WARMUP + CORESET_BUILD_REPS {
        let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(
            seed ^ (0x0C0D_E5E7 + rep as u64),
        );
        let start = Instant::now();
        let coreset = builder.build(&prefix, Span::single(1), 0, &mut rng)?;
        if rep >= CORESET_BUILD_WARMUP {
            build_samples.push(start.elapsed().as_nanos() as f64);
        }
        // Keep the optimizer honest.
        assert!(coreset.len() <= prefix_len);
    }

    // Query roughly every 5% of the stream (at least every bucket).
    let query_interval = (points / 20).max(config.bucket_size);

    let mut algorithms = Vec::new();
    for kind in AlgorithmKind::STREAMING {
        // Pool samples across several full stream repetitions: the median
        // of a single run's ~20 queries is noisy enough run-to-run to flap
        // a 25% guard, the pooled median is not.
        let mut update_samples = Vec::with_capacity(points * STREAM_REPS);
        let mut query_samples = Vec::new();
        let mut peak_points = 0usize;
        let mut final_centers = None;
        for rep in 0..STREAM_REPS {
            let mut algo = make_algorithm(kind, config, 1.2, points, seed + rep as u64)?;
            for (i, point) in dataset.stream().enumerate() {
                let start = Instant::now();
                algo.update(point)?;
                update_samples.push(start.elapsed().as_nanos() as f64);
                if (i + 1) % query_interval == 0 {
                    let start = Instant::now();
                    algo.query()?;
                    query_samples.push(start.elapsed().as_nanos() as f64);
                    peak_points = peak_points.max(algo.memory_points());
                }
            }
            let start = Instant::now();
            final_centers = Some(algo.query()?);
            query_samples.push(start.elapsed().as_nanos() as f64);
            peak_points = peak_points.max(algo.memory_points());
        }

        let final_centers = final_centers.expect("STREAM_REPS >= 1");
        let final_cost = kmeans_cost(dataset.points(), &final_centers)?;
        algorithms.push(AlgorithmReport {
            algorithm: kind.name().to_string(),
            update_ns: LatencySummary::from_samples(&update_samples)
                .expect("at least one update sample"),
            query_ns: LatencySummary::from_samples(&query_samples)
                .expect("at least one query sample"),
            peak_memory_bytes: memory_bytes(peak_points, dataset.dim()) as u64,
            final_cost,
        });
    }

    Ok(WorkloadReport {
        schema_version: SCHEMA_VERSION,
        workload: spec.name().to_string(),
        points: points as u64,
        dim: dataset.dim() as u64,
        k: k as u64,
        seed,
        coreset_build_ns: LatencySummary::from_samples(&build_samples)
            .expect("at least one build sample"),
        algorithms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(median: f64) -> LatencySummary {
        LatencySummary {
            count: 9,
            median_ns: median,
            p95_ns: median * 2.0,
            mean_ns: median,
            min_ns: median / 2.0,
            max_ns: median * 3.0,
        }
    }

    fn algo_report(name: &str, update: f64, query: f64) -> AlgorithmReport {
        AlgorithmReport {
            algorithm: name.to_string(),
            update_ns: summary(update),
            query_ns: summary(query),
            peak_memory_bytes: 1024,
            final_cost: 1.0,
        }
    }

    fn workload_report(workload: &str, build: f64, algos: Vec<AlgorithmReport>) -> WorkloadReport {
        WorkloadReport {
            schema_version: SCHEMA_VERSION,
            workload: workload.to_string(),
            points: 1000,
            dim: 7,
            k: 5,
            seed: 42,
            coreset_build_ns: summary(build),
            algorithms: algos,
        }
    }

    #[test]
    fn latency_summary_percentiles() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = LatencySummary::from_samples(&samples).unwrap();
        assert_eq!(s.count, 100);
        assert!((s.median_ns - 50.5).abs() < 1e-9);
        assert!((s.p95_ns - 95.05).abs() < 1e-9);
        assert_eq!(s.min_ns, 1.0);
        assert_eq!(s.max_ns, 100.0);
        assert!(LatencySummary::from_samples(&[]).is_none());
    }

    #[test]
    fn file_name_embeds_workload() {
        let r = workload_report("Power", 100.0, vec![]);
        assert_eq!(r.file_name(), "BENCH_Power.json");
    }

    #[test]
    fn report_json_round_trips() {
        let r = workload_report("Drift", 123.0, vec![algo_report("CC", 10.0, 20.0)]);
        let json = serde_json::to_string(&r).unwrap();
        let back: WorkloadReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        let baseline = BaselineFile {
            schema_version: SCHEMA_VERSION,
            reports: vec![r],
        };
        let json = serde_json::to_string(&baseline).unwrap();
        let back: BaselineFile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, baseline);
    }

    #[test]
    fn compare_flags_only_regressed_metrics() {
        let base = vec![workload_report(
            "Power",
            100.0e3,
            vec![
                algo_report("CC", 10.0e3, 20.0e3),
                algo_report("RCC", 10.0e3, 20.0e3),
            ],
        )];
        let fresh = vec![workload_report(
            "Power",
            100.0,
            vec![
                // CC update got 50% slower; query improved.
                algo_report("CC", 15.0e3, 10.0e3),
                // RCC within the 25% budget.
                algo_report("RCC", 12.0e3, 24.0e3),
            ],
        )];
        let regressions = compare_reports(&base, &fresh, 1.25);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].algorithm, "CC");
        assert_eq!(regressions[0].metric, "update_ns.median");
        assert!((regressions[0].ratio - 1.5).abs() < 1e-9);
        assert!(regressions[0].describe().contains("CC"));
    }

    #[test]
    fn compare_ignores_missing_counterparts() {
        let base = vec![workload_report(
            "Covtype",
            100.0e3,
            vec![algo_report("CC", 10.0e3, 20.0e3)],
        )];
        let fresh = vec![workload_report("Power", 100.0e3, vec![])];
        assert!(compare_reports(&base, &fresh, 1.25).is_empty());
    }

    #[test]
    fn compare_flags_coreset_build_regression() {
        let base = vec![workload_report("Power", 100.0e3, vec![])];
        let fresh = vec![workload_report("Power", 200.0e3, vec![])];
        let regressions = compare_reports(&base, &fresh, 1.25);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].algorithm, "coreset");
    }

    #[test]
    fn compare_skips_timer_granularity_medians() {
        // A 40 ns -> 400 ns "slowdown" is timer-overhead territory, not a
        // regression; the baseline is floored at MIN_COMPARABLE_NS.
        let base = vec![workload_report(
            "Power",
            100.0e3,
            vec![algo_report("CC", 40.0, 20.0e3)],
        )];
        let fresh = vec![workload_report(
            "Power",
            100.0e3,
            vec![algo_report("CC", 400.0, 20.0e3)],
        )];
        assert!(compare_reports(&base, &fresh, 1.25).is_empty());
    }

    #[test]
    fn compare_still_catches_blowups_on_tiny_baselines() {
        // 40 ns -> 5 µs is past the floored threshold (1.25 µs): a real
        // regression (e.g. an accidental O(n) scan per update) must fail
        // the guard even though the baseline median is sub-floor.
        let base = vec![workload_report(
            "Power",
            100.0e3,
            vec![algo_report("CC", 40.0, 20.0e3)],
        )];
        let fresh = vec![workload_report(
            "Power",
            100.0e3,
            vec![algo_report("CC", 5_000.0, 20.0e3)],
        )];
        let regressions = compare_reports(&base, &fresh, 1.25);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].metric, "update_ns.median");
    }

    #[test]
    fn guardable_reports_exclude_the_serving_workload() {
        let reports = vec![
            workload_report("Power", 100.0, vec![]),
            workload_report(crate::serving::SERVING_WORKLOAD, 100.0, vec![]),
            workload_report(crate::scenarios::SCENARIOS_WORKLOAD, 100.0, vec![]),
            workload_report("sharded", 100.0, vec![]),
        ];
        let kept: Vec<String> = guardable_reports(&reports)
            .into_iter()
            .map(|r| r.workload)
            .collect();
        assert_eq!(kept, vec!["Power".to_string(), "sharded".to_string()]);
    }

    #[test]
    fn write_reports_creates_missing_nested_directories() {
        // Regression guard for the CI serve step and local runs: writing
        // into a directory that does not exist yet (even a nested one) must
        // succeed without a `mkdir -p` preamble.
        let dir = std::env::temp_dir().join(format!(
            "skm-bench-report-{}-{}",
            std::process::id(),
            line!()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let nested = dir.join("deeper/still");
        let report = workload_report("Power", 100.0, vec![algo_report("CC", 10.0, 20.0)]);
        let written =
            write_reports(nested.to_str().unwrap(), std::slice::from_ref(&report)).unwrap();
        assert_eq!(written.len(), 1);
        let text = std::fs::read_to_string(&written[0]).unwrap();
        let back: WorkloadReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back, report);

        // Same guarantee for the baseline writer.
        let baseline_path = dir.join("also/new/baseline.json");
        let baseline = BaselineFile {
            schema_version: SCHEMA_VERSION,
            reports: vec![report],
        };
        write_baseline(baseline_path.to_str().unwrap(), &baseline).unwrap();
        let back: BaselineFile =
            serde_json::from_str(&std::fs::read_to_string(&baseline_path).unwrap()).unwrap();
        assert_eq!(back, baseline);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn measure_workload_produces_consistent_report() {
        let report = measure_workload(DatasetSpec::Power, 500, 3, 7).unwrap();
        assert_eq!(report.schema_version, SCHEMA_VERSION);
        assert_eq!(report.workload, "Power");
        assert_eq!(report.points, 500);
        assert_eq!(report.dim, 7);
        assert_eq!(report.algorithms.len(), AlgorithmKind::STREAMING.len());
        for algo in &report.algorithms {
            assert_eq!(
                algo.update_ns.count,
                500 * STREAM_REPS as u64,
                "{}",
                algo.algorithm
            );
            assert!(
                algo.query_ns.count >= STREAM_REPS as u64,
                "{}",
                algo.algorithm
            );
            assert!(algo.update_ns.median_ns > 0.0, "{}", algo.algorithm);
            assert!(algo.peak_memory_bytes > 0, "{}", algo.algorithm);
            assert!(algo.final_cost.is_finite(), "{}", algo.algorithm);
        }
        assert!(report.coreset_build_ns.median_ns > 0.0);
    }
}
