//! Library implementations of the paper's tables (1–4) and the extra
//! ablation studies called out in DESIGN.md.

use crate::cli::BenchArgs;
use crate::figures::{harness_config, DEFAULT_ALPHA};
use crate::runner::{make_algorithm, run_stream, AlgorithmKind};
use crate::workloads::{build_dataset, DatasetSpec};
use skm_clustering::error::Result;
use skm_data::QuerySchedule;
use skm_metrics::{memory::memory_megabytes, Table};
use skm_stream::{
    CachedCoresetTree, CoresetTreeClusterer, RecursiveCachedTree, StreamingClusterer,
};
use std::time::Instant;

/// Table 1 (empirical validation): for each algorithm, the average number of
/// coresets merged per query, the average/maximum coreset level at query
/// time, and the memory in points — measured on a stream with a query after
/// every base bucket, which is the regime Table 1's query column describes.
///
/// # Errors
/// Propagates harness/algorithm errors.
pub fn table1_theory(args: &BenchArgs) -> Result<Table> {
    let spec = args.dataset.unwrap_or(DatasetSpec::Covtype);
    let dataset = build_dataset(spec, args.points, args.seed);
    let k = args.k.min(10); // keep bucket count high by keeping m modest
    let config = harness_config(k, 20 * k);
    let bucket = config.bucket_size as u64;

    let mut table = Table::new(
        format!(
            "Table 1 (measured on {}, {} points, query every base bucket)",
            spec.name(),
            dataset.len()
        ),
        &[
            "algorithm",
            "avg coresets merged/query",
            "max coreset level",
            "avg query time (ms)",
            "avg update time (µs/pt)",
            "memory (points)",
        ],
    );

    for kind in [
        AlgorithmKind::StreamKmPlusPlus,
        AlgorithmKind::Cc,
        AlgorithmKind::Rcc,
        AlgorithmKind::OnlineCc,
    ] {
        let mut algo = make_algorithm(kind, config, DEFAULT_ALPHA, dataset.len(), args.seed)?;
        let mut merged = Vec::new();
        let mut levels = Vec::new();
        let mut query_ms = Vec::new();
        let mut update_nanos = 0u128;
        for (i, p) in dataset.stream().enumerate() {
            let t = Instant::now();
            algo.update(p)?;
            update_nanos += t.elapsed().as_nanos();
            if ((i + 1) as u64).is_multiple_of(bucket) {
                let t = Instant::now();
                algo.query()?;
                query_ms.push(t.elapsed().as_secs_f64() * 1e3);
                if let Some(stats) = algo.last_query_stats() {
                    merged.push(stats.coresets_merged as f64);
                    if let Some(level) = stats.coreset_level {
                        levels.push(f64::from(level));
                    }
                }
            }
        }
        let avg = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        let max_level = levels.iter().copied().fold(0.0f64, f64::max);
        table.push_row(vec![
            kind.name().to_string(),
            format!("{:.2}", avg(&merged)),
            format!("{max_level:.0}"),
            format!("{:.3}", avg(&query_ms)),
            format!("{:.2}", update_nanos as f64 / 1e3 / dataset.len() as f64),
            algo.memory_points().to_string(),
        ]);
    }
    Ok(table)
}

/// Table 2: RCC trade-offs as a function of the nesting depth ι — coreset
/// level at query time, per-query cost, update cost and memory.
///
/// # Errors
/// Propagates harness/algorithm errors.
pub fn table2_rcc_tradeoffs(args: &BenchArgs) -> Result<Table> {
    let spec = args.dataset.unwrap_or(DatasetSpec::Covtype);
    let dataset = build_dataset(spec, args.points, args.seed);
    let k = args.k.min(10);
    let config = harness_config(k, 20 * k);
    let bucket = config.bucket_size as u64;

    let mut table = Table::new(
        format!(
            "Table 2 (measured on {}, {} points): RCC trade-offs vs nesting depth ι",
            spec.name(),
            dataset.len()
        ),
        &[
            "ι",
            "top merge degree",
            "max coreset level",
            "avg coresets merged/query",
            "avg query time (ms)",
            "memory (points)",
        ],
    );

    for nesting in [1u32, 2, 3] {
        let mut rcc = RecursiveCachedTree::new(config, nesting, args.seed)?;
        let mut merged = Vec::new();
        let mut levels = Vec::new();
        let mut query_ms = Vec::new();
        for (i, p) in dataset.stream().enumerate() {
            rcc.update(p)?;
            if ((i + 1) as u64).is_multiple_of(bucket) {
                let t = Instant::now();
                rcc.query()?;
                query_ms.push(t.elapsed().as_secs_f64() * 1e3);
                if let Some(stats) = rcc.last_query_stats() {
                    merged.push(stats.coresets_merged as f64);
                    levels.push(f64::from(stats.coreset_level.unwrap_or(0)));
                }
            }
        }
        let avg = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        table.push_row(vec![
            nesting.to_string(),
            rcc.top_merge_degree().to_string(),
            format!("{:.0}", levels.iter().copied().fold(0.0f64, f64::max)),
            format!("{:.2}", avg(&merged)),
            format!("{:.3}", avg(&query_ms)),
            rcc.memory_points().to_string(),
        ]);
    }
    Ok(table)
}

/// Table 3: overview of the evaluation datasets (paper size, harness size,
/// dimensionality).
///
/// # Errors
/// Never fails in practice; fallible for signature consistency.
pub fn table3_datasets(args: &BenchArgs) -> Result<Table> {
    let mut table = Table::new(
        "Table 3: datasets",
        &[
            "dataset",
            "paper points",
            "harness points",
            "dimension",
            "description",
        ],
    );
    let descriptions = [
        (
            DatasetSpec::Covtype,
            "Forest cover type (synthetic stand-in)",
        ),
        (
            DatasetSpec::Power,
            "Household power consumption (synthetic stand-in)",
        ),
        (DatasetSpec::Intrusion, "KDD Cup 1999 (synthetic stand-in)"),
        (
            DatasetSpec::Drift,
            "Drifting RBF stream (paper's own generator)",
        ),
    ];
    for (spec, description) in descriptions {
        let d = build_dataset(spec, args.points.min(1_000), args.seed);
        table.push_row(vec![
            spec.name().to_string(),
            spec.paper_points().to_string(),
            args.points.to_string(),
            d.dim().to_string(),
            description.to_string(),
        ]);
    }
    Ok(table)
}

/// Table 4: memory cost (points and MB) per algorithm per dataset, with
/// `k = 30` and a query every 100 points, exactly as in the paper.
///
/// # Errors
/// Propagates harness/algorithm errors.
pub fn table4_memory(args: &BenchArgs) -> Result<Vec<Table>> {
    let mut points_table = Table::new(
        "Table 4a: memory cost in points",
        &["dataset", "StreamKM++", "CC", "RCC", "OnlineCC"],
    );
    let mut mb_table = Table::new(
        "Table 4b: memory cost in MB",
        &["dataset", "StreamKM++", "CC", "RCC", "OnlineCC"],
    );
    let config = harness_config(args.k, 20 * args.k);
    for spec in args.datasets() {
        let dataset = build_dataset(spec, args.points, args.seed);
        let mut point_row = vec![spec.name().to_string()];
        let mut mb_row = vec![spec.name().to_string()];
        for kind in AlgorithmKind::STREAMING {
            let mut algo = make_algorithm(kind, config, DEFAULT_ALPHA, dataset.len(), args.seed)?;
            let result = run_stream(
                algo.as_mut(),
                &dataset,
                QuerySchedule::every(100),
                args.seed,
            )?;
            let points = result.measurement.memory_points;
            point_row.push(points.to_string());
            mb_row.push(format!("{:.2}", memory_megabytes(points, dataset.dim())));
        }
        points_table.push_row(point_row);
        mb_table.push_row(mb_row);
    }
    Ok(vec![points_table, mb_table])
}

/// Ablation (ours): effect of the CC merge degree `r` on query cost, coreset
/// level and accuracy.
///
/// # Errors
/// Propagates harness/algorithm errors.
pub fn ablation_merge_degree(args: &BenchArgs) -> Result<Table> {
    let spec = args.dataset.unwrap_or(DatasetSpec::Covtype);
    let dataset = build_dataset(spec, args.points, args.seed);
    let k = args.k.min(10);

    let mut table = Table::new(
        format!("Ablation ({}): CC merge degree r", spec.name()),
        &[
            "r",
            "avg coresets merged/query",
            "max coreset level",
            "total time (s)",
            "final cost",
        ],
    );
    for r in [2u64, 3, 4, 8] {
        let config = harness_config(k, 20 * k).with_merge_degree(r);
        let bucket = config.bucket_size as u64;
        let mut cc = CachedCoresetTree::new(config, args.seed)?;
        let mut merged = Vec::new();
        let mut levels = Vec::new();
        let start = Instant::now();
        for (i, p) in dataset.stream().enumerate() {
            cc.update(p)?;
            if ((i + 1) as u64).is_multiple_of(bucket) {
                cc.query()?;
                if let Some(stats) = cc.last_query_stats() {
                    merged.push(stats.coresets_merged as f64);
                    levels.push(f64::from(stats.coreset_level.unwrap_or(0)));
                }
            }
        }
        let centers = cc.query()?;
        let total = start.elapsed().as_secs_f64();
        let cost = skm_clustering::cost::kmeans_cost(dataset.points(), &centers)?;
        let avg = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        table.push_row(vec![
            r.to_string(),
            format!("{:.2}", avg(&merged)),
            format!("{:.0}", levels.iter().copied().fold(0.0f64, f64::max)),
            format!("{total:.3}"),
            format!("{cost:.4e}"),
        ]);
    }
    Ok(table)
}

/// Ablation (ours): CT vs CC vs the hypothetical "cache disabled" CC to
/// isolate the benefit of coreset caching on query time.
///
/// # Errors
/// Propagates harness/algorithm errors.
pub fn ablation_cache_benefit(args: &BenchArgs) -> Result<Table> {
    let spec = args.dataset.unwrap_or(DatasetSpec::Covtype);
    let dataset = build_dataset(spec, args.points, args.seed);
    let config = harness_config(args.k, 20 * args.k);

    let mut table = Table::new(
        format!(
            "Ablation ({}): benefit of coreset caching (query every 100 points)",
            spec.name()
        ),
        &[
            "algorithm",
            "update time (s)",
            "query time (s)",
            "total (s)",
            "memory (points)",
        ],
    );
    let mut run_one = |name: &str, algo: &mut dyn StreamingClusterer| -> Result<()> {
        let result = run_stream(algo, &dataset, QuerySchedule::every(100), args.seed)?;
        table.push_row(vec![
            name.to_string(),
            format!("{:.3}", result.measurement.update_seconds),
            format!("{:.3}", result.measurement.query_seconds),
            format!("{:.3}", result.measurement.total_seconds()),
            result.measurement.memory_points.to_string(),
        ]);
        Ok(())
    };
    let mut ct = CoresetTreeClusterer::new(config, args.seed)?;
    run_one("CT (no cache)", &mut ct)?;
    let mut cc = CachedCoresetTree::new(config, args.seed)?;
    run_one("CC (cache)", &mut cc)?;
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_args() -> BenchArgs {
        BenchArgs {
            points: 800,
            k: 5,
            runs: 1,
            dataset: Some(DatasetSpec::Power),
            seed: 3,
            ..BenchArgs::default()
        }
    }

    #[test]
    fn table1_has_four_algorithms() {
        let t = table1_theory(&tiny_args()).unwrap();
        assert_eq!(t.len(), 4);
        assert!(t.to_plain_text().contains("StreamKM++"));
    }

    #[test]
    fn table3_lists_all_datasets() {
        let t = table3_datasets(&tiny_args()).unwrap();
        assert_eq!(t.len(), 4);
        assert!(t.to_csv().contains("2049280"));
    }

    #[test]
    fn table4_reports_points_and_mb() {
        let tables = table4_memory(&tiny_args()).unwrap();
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 1); // one selected dataset
    }

    #[test]
    fn ablation_cache_benefit_compares_ct_and_cc() {
        let t = ablation_cache_benefit(&tiny_args()).unwrap();
        assert_eq!(t.len(), 2);
        assert!(t.to_plain_text().contains("CT (no cache)"));
    }
}
