//! The `sharded` workload: ingestion throughput of [`ShardedStream`] over
//! a shards × batch-size grid on the Power dataset, emitted as
//! `BENCH_sharded.json`.
//!
//! Unlike [`crate::report::measure_workload`], which times every individual
//! `update()` call, this workload measures *throughput*: the wall-clock
//! time to ingest the whole stream (including a full drain barrier, so all
//! worker threads have finished) divided by the number of points. Each
//! grid cell repeats the measurement several times (the private `REPS`
//! constant) and reports the summary of those per-update figures, so the
//! headline `update_ns.median` answers "how fast does ingestion go
//! end-to-end at this shard count / batch size". An unsharded CC cell
//! (`CC/unsharded`) measured the same way is included as the no-threading
//! baseline.
//!
//! Scaling caveat: per-update medians scale with the number of *physical
//! cores* available; on a single-core host the grid degenerates to channel
//! overhead on top of the unsharded baseline (see the README's "Sharded
//! ingestion & batch updates" section).

use crate::report::{AlgorithmReport, LatencySummary, WorkloadReport, SCHEMA_VERSION};
use crate::workloads::{build_dataset, DatasetSpec};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use skm_clustering::cost::kmeans_cost;
use skm_clustering::error::Result;
use skm_coreset::construct::CoresetBuilder;
use skm_coreset::Span;
use skm_data::Dataset;
use skm_metrics::memory_bytes;
use skm_stream::{CachedCoresetTree, ShardedStream, StreamConfig, StreamingClusterer};
use std::time::Instant;

/// Shard counts measured (1 is the sharded-but-single-worker pipeline; the
/// 1 → 4 ratio is the headline scaling figure).
pub const SHARD_GRID: [usize; 3] = [1, 2, 4];

/// Batch sizes measured (points buffered per shard before a channel send).
pub const BATCH_GRID: [usize; 2] = [64, 512];

/// Full-stream repetitions per grid cell; each contributes one per-update
/// throughput sample, and the median across them is the reported figure.
const REPS: usize = 5;

/// Workload name — file name becomes `BENCH_sharded.json`.
pub const SHARDED_WORKLOAD: &str = "sharded";

/// Stream length used for the throughput grid: scaled up from the CLI's
/// `--points` (which targets per-call latency workloads) so each run is
/// long enough to amortize thread spawn and channel warmup.
#[must_use]
pub fn sharded_points(points: usize) -> usize {
    (points * 4).clamp(2_000, 64_000)
}

/// Ingests the whole dataset and returns `(per-update ns, query ns, peak
/// memory points, final centers)` for one run of one grid cell.
fn run_cell(
    dataset: &Dataset,
    config: StreamConfig,
    shards: usize,
    batch: usize,
    seed: u64,
) -> Result<(f64, f64, usize, skm_clustering::Centers)> {
    let mut stream = ShardedStream::cc(config, shards, batch, seed)?;
    let start = Instant::now();
    for point in dataset.stream() {
        stream.update(point)?;
    }
    stream.drain()?;
    let per_update_ns = start.elapsed().as_nanos() as f64 / dataset.len() as f64;
    let start = Instant::now();
    let centers = stream.query()?;
    let query_ns = start.elapsed().as_nanos() as f64;
    let peak = stream.memory_points();
    Ok((per_update_ns, query_ns, peak, centers))
}

/// The unsharded baseline: plain single-threaded CC ingestion measured with
/// the same whole-stream wall-clock methodology as the grid cells.
fn run_unsharded(
    dataset: &Dataset,
    config: StreamConfig,
    seed: u64,
) -> Result<(f64, f64, usize, skm_clustering::Centers)> {
    let mut cc = CachedCoresetTree::new(config, seed)?;
    let start = Instant::now();
    for point in dataset.stream() {
        cc.update(point)?;
    }
    let per_update_ns = start.elapsed().as_nanos() as f64 / dataset.len() as f64;
    let start = Instant::now();
    let centers = cc.query()?;
    let query_ns = start.elapsed().as_nanos() as f64;
    let peak = cc.memory_points();
    Ok((per_update_ns, query_ns, peak, centers))
}

/// Summarizes `REPS` runs of one cell into an [`AlgorithmReport`].
fn summarize<F>(dataset: &Dataset, name: String, seed: u64, mut run: F) -> Result<AlgorithmReport>
where
    F: FnMut(u64) -> Result<(f64, f64, usize, skm_clustering::Centers)>,
{
    let mut update_samples = Vec::with_capacity(REPS);
    let mut query_samples = Vec::with_capacity(REPS);
    let mut peak_points = 0usize;
    let mut final_centers = None;
    for rep in 0..REPS {
        let (update_ns, query_ns, peak, centers) = run(seed + rep as u64)?;
        update_samples.push(update_ns);
        query_samples.push(query_ns);
        peak_points = peak_points.max(peak);
        final_centers = Some(centers);
    }
    let final_centers = final_centers.expect("REPS >= 1");
    Ok(AlgorithmReport {
        algorithm: name,
        update_ns: LatencySummary::from_samples(&update_samples).expect("REPS >= 1"),
        query_ns: LatencySummary::from_samples(&query_samples).expect("REPS >= 1"),
        peak_memory_bytes: memory_bytes(peak_points, dataset.dim()) as u64,
        final_cost: kmeans_cost(dataset.points(), &final_centers)?,
    })
}

/// Measures the sharded-ingestion grid on the Power dataset and packages it
/// as a [`WorkloadReport`] (one [`AlgorithmReport`] per grid cell, named
/// `CC/shards=<S>/batch=<B>`, plus the `CC/unsharded` baseline), so the
/// existing report writer, baseline file and CI regression guard all apply
/// unchanged.
///
/// # Errors
/// Propagates algorithm/configuration errors (harness bugs, not
/// measurement failures).
pub fn measure_sharded_workload(points: usize, k: usize, seed: u64) -> Result<WorkloadReport> {
    let n = sharded_points(points);
    let dataset = build_dataset(DatasetSpec::Power, n, seed);
    let config = StreamConfig::new(k)
        .with_bucket_size(20 * k)
        .with_kmeans_runs(1)
        .with_lloyd_iterations(5);

    // Same coreset-build metric as the per-call workloads, so the schema's
    // workload-level field carries a real measurement here too.
    let builder = CoresetBuilder::new(k).with_size(config.bucket_size);
    let prefix_len = (2 * config.bucket_size).min(dataset.len());
    let mut prefix = skm_clustering::PointSet::with_capacity(dataset.dim(), prefix_len);
    for (p, w) in dataset.points().iter().take(prefix_len) {
        prefix.push(p, w);
    }
    let mut build_samples = Vec::with_capacity(REPS);
    for rep in 0..REPS {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (0x5AA8_D000 + rep as u64));
        let start = Instant::now();
        let coreset = builder.build(&prefix, Span::single(1), 0, &mut rng)?;
        build_samples.push(start.elapsed().as_nanos() as f64);
        assert!(coreset.len() <= prefix_len);
    }

    let mut algorithms = Vec::with_capacity(SHARD_GRID.len() * BATCH_GRID.len() + 1);
    algorithms.push(summarize(
        &dataset,
        "CC/unsharded".to_string(),
        seed,
        |s| run_unsharded(&dataset, config, s),
    )?);
    for &shards in &SHARD_GRID {
        for &batch in &BATCH_GRID {
            algorithms.push(summarize(
                &dataset,
                format!("CC/shards={shards}/batch={batch}"),
                seed,
                |s| run_cell(&dataset, config, shards, batch, s),
            )?);
        }
    }

    Ok(WorkloadReport {
        schema_version: SCHEMA_VERSION,
        workload: SHARDED_WORKLOAD.to_string(),
        points: n as u64,
        dim: dataset.dim() as u64,
        k: k as u64,
        seed,
        coreset_build_ns: LatencySummary::from_samples(&build_samples).expect("REPS >= 1"),
        algorithms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_scaling_is_clamped() {
        assert_eq!(sharded_points(100), 2_000);
        assert_eq!(sharded_points(2_000), 8_000);
        assert_eq!(sharded_points(4_000), 16_000);
        assert_eq!(sharded_points(1_000_000), 64_000);
    }

    #[test]
    fn sharded_report_covers_the_grid() {
        // Keep this cheap: the clamp floors the stream at 2k points, which
        // is still fast for k = 2 in debug builds.
        let report = measure_sharded_workload(100, 2, 7).unwrap();
        assert_eq!(report.workload, SHARDED_WORKLOAD);
        assert_eq!(report.file_name(), "BENCH_sharded.json");
        assert_eq!(report.points, 2_000);
        assert_eq!(
            report.algorithms.len(),
            SHARD_GRID.len() * BATCH_GRID.len() + 1
        );
        assert_eq!(report.algorithms[0].algorithm, "CC/unsharded");
        assert!(report
            .algorithms
            .iter()
            .any(|a| a.algorithm == "CC/shards=4/batch=512"));
        for cell in &report.algorithms {
            assert!(cell.update_ns.median_ns > 0.0, "{}", cell.algorithm);
            assert!(cell.query_ns.median_ns > 0.0, "{}", cell.algorithm);
            assert!(cell.final_cost.is_finite(), "{}", cell.algorithm);
            assert!(cell.peak_memory_bytes > 0, "{}", cell.algorithm);
        }
    }
}
