//! Library implementations of the paper's figures (4–11).
//!
//! Every function returns [`Table`]s whose rows/series correspond to what
//! the paper plots; the binaries in `src/bin/` only parse flags, call these
//! functions and print the tables. Keeping the logic here lets the
//! integration tests exercise the exact code path the figures use (with tiny
//! streams).

use crate::cli::BenchArgs;
use crate::runner::{make_algorithm, run_stream, AlgorithmKind};
use crate::workloads::build_dataset;
use skm_clustering::error::Result;
use skm_data::QuerySchedule;
use skm_metrics::{ExperimentRecord, RunMeasurement, Table};
use skm_stream::StreamConfig;

/// Query intervals swept by Figure 5 (points between queries).
pub const QUERY_INTERVALS: [u64; 7] = [50, 100, 200, 400, 800, 1600, 3200];

/// Bucket-size multipliers swept by Figures 6 and 7 (`m = multiplier · k`).
pub const BUCKET_MULTIPLIERS: [usize; 5] = [20, 40, 60, 80, 100];

/// Switching thresholds swept by Figure 11.
pub const SWITCH_THRESHOLDS: [f64; 7] = [1.2, 2.4, 3.6, 4.8, 6.0, 7.2, 9.6];

/// Numbers of clusters swept by Figure 4.
pub const CLUSTER_COUNTS: [usize; 5] = [10, 20, 30, 40, 50];

/// Default OnlineCC switching threshold (Section 5.2).
pub const DEFAULT_ALPHA: f64 = 1.2;

/// The harness' default query-time clustering settings. The paper uses
/// best-of-5 k-means++ with 20 Lloyd iterations; the harness defaults to a
/// lighter 2 runs / 5 iterations so full sweeps finish on a laptop, which
/// affects every algorithm identically (see EXPERIMENTS.md).
#[must_use]
pub fn harness_config(k: usize, bucket_size: usize) -> StreamConfig {
    StreamConfig::new(k)
        .with_bucket_size(bucket_size)
        .with_kmeans_runs(2)
        .with_lloyd_iterations(5)
}

/// Runs `runs` independent repetitions of (`kind`, `dataset`, `schedule`)
/// and returns the filled experiment record.
#[allow(clippy::too_many_arguments)]
fn measure(
    kind: AlgorithmKind,
    dataset: &skm_data::Dataset,
    config: StreamConfig,
    alpha: f64,
    schedule: QuerySchedule,
    runs: usize,
    seed: u64,
    parameter: &str,
    parameter_value: f64,
) -> Result<ExperimentRecord> {
    let mut record = ExperimentRecord::new(kind.name(), dataset.name(), parameter, parameter_value);
    for run_idx in 0..runs {
        let run_seed = seed
            .wrapping_mul(1_000_003)
            .wrapping_add(run_idx as u64)
            .wrapping_add(parameter_value.to_bits());
        let mut algorithm = make_algorithm(kind, config, alpha, dataset.len(), run_seed)?;
        let result = run_stream(algorithm.as_mut(), dataset, schedule, run_seed ^ 0xABCD)?;
        record.push_run(result.measurement);
    }
    Ok(record)
}

/// Figure 4: k-means cost (at end of stream) vs the number of clusters `k`,
/// one table per dataset. Series: Sequential, StreamKM++, CC, RCC, OnlineCC
/// and the batch k-means++ reference.
///
/// # Errors
/// Propagates harness/algorithm errors.
pub fn fig4_cost_vs_k(args: &BenchArgs) -> Result<Vec<Table>> {
    let mut tables = Vec::new();
    for spec in args.datasets() {
        let dataset = build_dataset(spec, args.points, args.seed);
        let mut table = Table::new(
            format!("Figure 4 ({}): k-means cost vs k", spec.name()),
            &[
                "k",
                "Sequential",
                "StreamKM++",
                "CC",
                "RCC",
                "OnlineCC",
                "KMeans++ (batch)",
            ],
        );
        for &k in &CLUSTER_COUNTS {
            let config = harness_config(k, 20 * k);
            let mut row = vec![k.to_string()];
            for kind in AlgorithmKind::ALL {
                let record = measure(
                    kind,
                    &dataset,
                    config,
                    DEFAULT_ALPHA,
                    QuerySchedule::every(args.points as u64 / 10),
                    args.runs,
                    args.seed,
                    "k",
                    k as f64,
                )?;
                let cost = record.median_cost().unwrap_or(f64::NAN);
                row.push(format!("{cost:.4e}"));
            }
            table.push_row(row);
        }
        tables.push(table);
    }
    Ok(tables)
}

/// Figure 5: total runtime (seconds, entire stream) vs query interval `q`,
/// one table per dataset. Series: StreamKM++, CC, RCC, OnlineCC.
///
/// # Errors
/// Propagates harness/algorithm errors.
pub fn fig5_time_vs_interval(args: &BenchArgs) -> Result<Vec<Table>> {
    let mut tables = Vec::new();
    for spec in args.datasets() {
        let dataset = build_dataset(spec, args.points, args.seed);
        let mut table = Table::new(
            format!(
                "Figure 5 ({}): total time (s) vs query interval q",
                spec.name()
            ),
            &["q", "StreamKM++", "CC", "RCC", "OnlineCC"],
        );
        let config = harness_config(args.k, 20 * args.k);
        for &q in &QUERY_INTERVALS {
            let mut row = vec![q.to_string()];
            for kind in AlgorithmKind::STREAMING {
                let record = measure(
                    kind,
                    &dataset,
                    config,
                    DEFAULT_ALPHA,
                    QuerySchedule::every(q),
                    args.runs,
                    args.seed,
                    "q",
                    q as f64,
                )?;
                let total = record.median_total_seconds().unwrap_or(f64::NAN);
                row.push(format!("{total:.3}"));
            }
            table.push_row(row);
        }
        tables.push(table);
    }
    Ok(tables)
}

/// Figures 6 and 7: k-means cost and average per-point runtime (µs) vs the
/// bucket size `m ∈ {20k, …, 100k}`. Returns `(cost_tables, time_tables)`.
///
/// # Errors
/// Propagates harness/algorithm errors.
pub fn fig6_fig7_bucket_size(args: &BenchArgs) -> Result<(Vec<Table>, Vec<Table>)> {
    let mut cost_tables = Vec::new();
    let mut time_tables = Vec::new();
    for spec in args.datasets() {
        let dataset = build_dataset(spec, args.points, args.seed);
        let mut cost_table = Table::new(
            format!("Figure 6 ({}): k-means cost vs bucket size", spec.name()),
            &["m", "StreamKM++", "CC", "RCC", "OnlineCC"],
        );
        let mut time_table = Table::new(
            format!(
                "Figure 7 ({}): avg runtime per point (µs) vs bucket size",
                spec.name()
            ),
            &["m", "StreamKM++", "CC", "RCC", "OnlineCC"],
        );
        for &mult in &BUCKET_MULTIPLIERS {
            let m = mult * args.k;
            let config = harness_config(args.k, m);
            let mut cost_row = vec![format!("{mult}k")];
            let mut time_row = vec![format!("{mult}k")];
            for kind in AlgorithmKind::STREAMING {
                let record = measure(
                    kind,
                    &dataset,
                    config,
                    DEFAULT_ALPHA,
                    QuerySchedule::every(100),
                    args.runs,
                    args.seed,
                    "m",
                    m as f64,
                )?;
                let cost = record.median_cost().unwrap_or(f64::NAN);
                let per_point = record
                    .median_of(RunMeasurement::total_micros_per_point)
                    .unwrap_or(f64::NAN);
                cost_row.push(format!("{cost:.4e}"));
                time_row.push(format!("{per_point:.2}"));
            }
            cost_table.push_row(cost_row);
            time_table.push_row(time_row);
        }
        cost_tables.push(cost_table);
        time_tables.push(time_table);
    }
    Ok((cost_tables, time_tables))
}

/// Figures 8, 9 and 10: update / query / total time per point (µs) vs the
/// Poisson query arrival rate. Returns `(update, query, total)` tables, one
/// per dataset each.
///
/// # Errors
/// Propagates harness/algorithm errors.
pub fn fig8_to_10_poisson(args: &BenchArgs) -> Result<(Vec<Table>, Vec<Table>, Vec<Table>)> {
    // Mean inter-arrival gaps matching the paper's x-axis (rate = 1/gap).
    let mean_intervals: [f64; 7] = [50.0, 100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0];
    let mut update_tables = Vec::new();
    let mut query_tables = Vec::new();
    let mut total_tables = Vec::new();
    for spec in args.datasets() {
        let dataset = build_dataset(spec, args.points, args.seed);
        let headers = ["rate", "StreamKM++", "CC", "RCC", "OnlineCC"];
        let mut update_table = Table::new(
            format!(
                "Figure 8 ({}): update time per point (µs) vs poisson rate",
                spec.name()
            ),
            &headers,
        );
        let mut query_table = Table::new(
            format!(
                "Figure 9 ({}): query time per point (µs) vs poisson rate",
                spec.name()
            ),
            &headers,
        );
        let mut total_table = Table::new(
            format!(
                "Figure 10 ({}): total time per point (µs) vs poisson rate",
                spec.name()
            ),
            &headers,
        );
        let config = harness_config(args.k, 20 * args.k);
        for &gap in &mean_intervals {
            let rate = 1.0 / gap;
            let schedule = QuerySchedule::Poisson { rate };
            let mut update_row = vec![format!("{rate:.5}")];
            let mut query_row = vec![format!("{rate:.5}")];
            let mut total_row = vec![format!("{rate:.5}")];
            for kind in AlgorithmKind::STREAMING {
                let record = measure(
                    kind,
                    &dataset,
                    config,
                    DEFAULT_ALPHA,
                    schedule,
                    args.runs,
                    args.seed,
                    "poisson_rate",
                    rate,
                )?;
                let update = record
                    .median_of(RunMeasurement::update_micros_per_point)
                    .unwrap_or(f64::NAN);
                let query = record
                    .median_of(RunMeasurement::query_micros_per_point)
                    .unwrap_or(f64::NAN);
                update_row.push(format!("{update:.2}"));
                query_row.push(format!("{query:.2}"));
                total_row.push(format!("{:.2}", update + query));
            }
            update_table.push_row(update_row);
            query_table.push_row(query_row);
            total_table.push_row(total_row);
        }
        update_tables.push(update_table);
        query_tables.push(query_table);
        total_tables.push(total_table);
    }
    Ok((update_tables, query_tables, total_tables))
}

/// Figure 11: OnlineCC total runtime (seconds, split into update and query
/// time) vs the switching threshold α, one table per dataset.
///
/// # Errors
/// Propagates harness/algorithm errors.
pub fn fig11_threshold_sweep(args: &BenchArgs) -> Result<Vec<Table>> {
    let mut tables = Vec::new();
    for spec in args.datasets() {
        let dataset = build_dataset(spec, args.points, args.seed);
        let mut table = Table::new(
            format!(
                "Figure 11 ({}): OnlineCC runtime (s) vs switching threshold α",
                spec.name()
            ),
            &[
                "alpha",
                "update time (s)",
                "query time (s)",
                "total (s)",
                "fallbacks",
            ],
        );
        let config = harness_config(args.k, 20 * args.k);
        for &alpha in &SWITCH_THRESHOLDS {
            // Measure fallbacks with a dedicated OnlineCC instance so we can
            // read its counter (the trait object interface hides it).
            let mut update_s = Vec::new();
            let mut query_s = Vec::new();
            let mut fallbacks = Vec::new();
            for run_idx in 0..args.runs {
                let seed = args.seed.wrapping_add(run_idx as u64 * 7919);
                let mut online = skm_stream::OnlineCC::new(config, alpha, seed)?;
                let result = run_stream(&mut online, &dataset, QuerySchedule::every(100), seed)?;
                update_s.push(result.measurement.update_seconds);
                query_s.push(result.measurement.query_seconds);
                fallbacks.push(online.fallback_count() as f64);
            }
            let med = |v: &[f64]| skm_metrics::stats::median(v);
            table.push_row(vec![
                format!("{alpha:.1}"),
                format!("{:.3}", med(&update_s)),
                format!("{:.3}", med(&query_s)),
                format!("{:.3}", med(&update_s) + med(&query_s)),
                format!("{:.0}", med(&fallbacks)),
            ]);
        }
        tables.push(table);
    }
    Ok(tables)
}

/// Prints a list of tables to stdout, optionally followed by CSV renditions.
pub fn print_tables(tables: &[Table], csv: bool) {
    for table in tables {
        println!("{}", table.to_plain_text());
        if csv {
            println!("{}", table.to_csv());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::DatasetSpec;

    /// Tiny arguments so figure code paths run in test time.
    fn tiny_args() -> BenchArgs {
        BenchArgs {
            points: 600,
            k: 3,
            runs: 1,
            dataset: Some(DatasetSpec::Power),
            seed: 7,
            ..BenchArgs::default()
        }
    }

    #[test]
    fn fig5_produces_one_row_per_interval() {
        let tables = fig5_time_vs_interval(&tiny_args()).unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), QUERY_INTERVALS.len());
        let text = tables[0].to_plain_text();
        assert!(text.contains("StreamKM++"));
        assert!(text.contains("OnlineCC"));
    }

    #[test]
    fn fig11_produces_one_row_per_alpha() {
        let tables = fig11_threshold_sweep(&tiny_args()).unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), SWITCH_THRESHOLDS.len());
    }

    #[test]
    fn harness_config_respects_parameters() {
        let c = harness_config(7, 140);
        assert_eq!(c.k, 7);
        assert_eq!(c.bucket_size, 140);
        assert!(c.validate().is_ok());
    }
}
