//! # skm-bench
//!
//! Benchmark harness reproducing every table and figure of the paper's
//! evaluation section (Section 5). The library half of this crate provides
//! the shared pieces:
//!
//! * [`workloads`] — the four evaluation datasets (Covtype-like, Power-like,
//!   Intrusion-like, Drift) at configurable stream lengths,
//! * [`runner`] — construction of the algorithms under test and the stream
//!   loop that measures update time, query time, accuracy and memory,
//! * [`report`] — machine-readable `BENCH_<workload>.json` reports
//!   (median/p95 latencies, coreset build time, peak memory) and the
//!   baseline comparison behind CI's regression guard,
//! * [`sharded`] — the sharded-ingestion throughput grid
//!   (`BENCH_sharded.json`, shards × batch-size on the Power dataset),
//! * [`serving`] — the TCP serving workload (`BENCH_serving.json`,
//!   request latency of the `skm-serve` server under a concurrent
//!   ingest:query mix driven by the built-in load generator),
//! * [`durability`] — the write-ahead-log cost grid
//!   (`BENCH_durability.json`, fsync interval × ingest batch on the
//!   in-process engine, plus a cold-recovery cell),
//! * [`scenarios`] — the adversarial hostile-stream grid
//!   (`BENCH_scenarios.json`, one cell per `skm_data::hostile`
//!   generator),
//! * [`cli`] — the tiny flag parser shared by the figure/table binaries.
//!
//! Each figure or table of the paper has a dedicated binary in `src/bin/`
//! (`fig4_cost_vs_k`, `fig5_time_vs_interval`, …, `table4_memory`); see
//! DESIGN.md for the full experiment index and EXPERIMENTS.md for measured
//! results.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cli;
pub mod durability;
pub mod figures;
pub mod report;
pub mod runner;
pub mod scenarios;
pub mod serving;
pub mod sharded;
pub mod tables;
pub mod workloads;

pub use cli::BenchArgs;
pub use durability::{measure_durability_workload, DURABILITY_WORKLOAD};
pub use report::{
    compare_reports, measure_workload, write_baseline, write_reports, BaselineFile, LatencySummary,
    Regression, WorkloadReport,
};
pub use runner::{make_algorithm, run_stream, AlgorithmKind, StreamRunResult};
pub use scenarios::{measure_scenarios_workload, SCENARIOS_WORKLOAD};
pub use serving::{measure_serving_workload, SERVING_WORKLOAD};
pub use sharded::{measure_sharded_workload, SHARDED_WORKLOAD};
pub use workloads::{build_dataset, DatasetSpec};
