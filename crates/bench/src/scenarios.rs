//! The `scenarios` workload: the adversarial hostile-stream grid —
//! emitted as `BENCH_scenarios.json`, one cell per `skm_data::hostile`
//! generator.
//!
//! Every cell drives the in-process sharded engine (no TCP) through one
//! hostile stream shape with strict queries interleaved, finishing with a
//! windowed strict read (the revision-1.5 path) so the window machinery is
//! exercised under hostile data too:
//!
//! * `hostile/heavy_duplicates` — a handful of distinct values repeated
//!   thousands of times (the PR 3 OnlineCC fallback shape),
//! * `hostile/near_zero_variance` — σ = 1e-9 clusters, costs at the edge
//!   of `f64` underflow,
//! * `hostile/dimension_hot_outliers` — rare single-coordinate extremes
//!   dominating the cost,
//! * `hostile/adversarial_order` — outside-in arrival order, the worst
//!   case for exchangeability assumptions,
//! * `hostile/high_dim` — d = 256, stressing the norm-cache layout and
//!   per-dimension loops.
//!
//! Like serving and durability, scenario cells are **baseline-exempt**
//! (`guardable_reports` filters them): hostile streams measure robustness
//! envelopes, not representative medians — a duplicate-heavy stream's
//! query latency says nothing about a benign stream regressing. The
//! report is uploaded as a CI artifact; the correctness envelope itself is
//! enforced by `crates/serve/tests/hostile_streams_e2e.rs`.

use crate::report::{AlgorithmReport, LatencySummary, WorkloadReport, SCHEMA_VERSION};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use skm_clustering::cost::kmeans_cost;
use skm_clustering::error::Result;
use skm_clustering::Centers;
use skm_data::{hostile, Dataset};
use skm_metrics::memory_bytes;
use skm_serve::{Engine, EngineSpec, Freshness, Window, DEFAULT_NAMESPACE};
use skm_stream::StreamConfig;
use std::time::Instant;

/// Workload name — file name becomes `BENCH_scenarios.json`.
pub const SCENARIOS_WORKLOAD: &str = "scenarios";

/// The hostile cells, in report order.
pub const SCENARIO_GRID: [&str; 5] = [
    "hostile/heavy_duplicates",
    "hostile/near_zero_variance",
    "hostile/dimension_hot_outliers",
    "hostile/adversarial_order",
    "hostile/high_dim",
];

/// One strict query per this many ingest batches.
const QUERY_EVERY: usize = 16;

/// Shards and routing batch (match the serving workload's engine shape).
const SHARDS: usize = 2;
const ENGINE_BATCH: usize = 128;

/// Points per ingest request.
const INGEST_BATCH: usize = 64;

/// Stream length for the hostile cells. The high-dim cell runs at a
/// quarter of this (d = 256 makes each point 64× wider than the d = 4
/// cells).
#[must_use]
pub fn scenario_points(points: usize) -> usize {
    points.clamp(1_000, 20_000)
}

fn build_scenario(name: &str, n: usize, k: usize, seed: u64) -> Dataset {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    match name {
        "hostile/heavy_duplicates" => hostile::heavy_duplicates(n, 2 * k, 4, &mut rng),
        "hostile/near_zero_variance" => hostile::near_zero_variance(n, k, 8, &mut rng),
        "hostile/dimension_hot_outliers" => {
            hostile::dimension_hot_outliers(n, 16, 50, 1e6, &mut rng)
        }
        "hostile/adversarial_order" => hostile::adversarial_order(n, k, 4, &mut rng),
        "hostile/high_dim" => hostile::high_dim((n / 4).max(500), k, 256, &mut rng),
        other => unreachable!("unknown scenario cell `{other}`"),
    }
}

/// Feeds one hostile stream through a fresh engine, timing every ingest
/// batch and every interleaved strict query; the final read is windowed to
/// the last quarter of the stream.
fn run_cell(name: &str, dataset: &Dataset, k: usize, seed: u64) -> Result<AlgorithmReport> {
    let config = StreamConfig::new(k)
        .with_bucket_size(20 * k)
        .with_kmeans_runs(1)
        .with_lloyd_iterations(5);
    let engine = Engine::new(&EngineSpec::sharded_cc(config, SHARDS, ENGINE_BATCH, seed))?;

    let rows: Vec<Vec<f64>> = dataset.stream().map(<[f64]>::to_vec).collect();
    let mut update_ns = Vec::new();
    let mut query_ns = Vec::new();
    for (i, chunk) in rows.chunks(INGEST_BATCH).enumerate() {
        let start = Instant::now();
        engine.ingest_batch_in(DEFAULT_NAMESPACE, chunk)?;
        update_ns.push(start.elapsed().as_nanos() as f64);
        if (i + 1).is_multiple_of(QUERY_EVERY) {
            let start = Instant::now();
            engine.query_in(DEFAULT_NAMESPACE, Freshness::Strict)?;
            query_ns.push(start.elapsed().as_nanos() as f64);
        }
    }
    let window = (rows.len() as u64 / 4).max(1);
    let start = Instant::now();
    let published = engine.query_window_in(DEFAULT_NAMESPACE, Window::Points(window))?;
    query_ns.push(start.elapsed().as_nanos() as f64);

    let dim = dataset.dim();
    let centers = Centers::from_rows(dim, &published.centers.to_rows())?;
    Ok(AlgorithmReport {
        algorithm: name.to_string(),
        update_ns: LatencySummary::from_samples(&update_ns).expect("at least one ingest batch"),
        query_ns: LatencySummary::from_samples(&query_ns).expect("at least one strict query"),
        peak_memory_bytes: memory_bytes(engine.memory_points(), dim) as u64,
        final_cost: kmeans_cost(dataset.points(), &centers)?,
    })
}

/// Measures the hostile-scenario grid and packages it as a
/// [`WorkloadReport`], one [`AlgorithmReport`] per generator, so the
/// report writer and CI artifact pipeline apply unchanged. The reported
/// `dim`/`points` are the d = 4 cells' (the high-dim cell deviates by
/// design and its label carries that context).
///
/// # Errors
/// Propagates engine/configuration errors from any cell.
pub fn measure_scenarios_workload(points: usize, k: usize, seed: u64) -> Result<WorkloadReport> {
    let n = scenario_points(points);
    let mut algorithms = Vec::new();
    for name in SCENARIO_GRID {
        let dataset = build_scenario(name, n, k, seed);
        algorithms.push(run_cell(name, &dataset, k, seed)?);
    }
    // No meaningful standalone coreset-build step here either; mirror the
    // first cell's ingest latency like the other engine-level workloads.
    let coreset_build_ns = algorithms[0].update_ns.clone();
    Ok(WorkloadReport {
        schema_version: SCHEMA_VERSION,
        workload: SCENARIOS_WORKLOAD.to_string(),
        points: n as u64,
        dim: 4,
        k: k as u64,
        seed,
        coreset_build_ns,
        algorithms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_scaling_is_clamped() {
        assert_eq!(scenario_points(10), 1_000);
        assert_eq!(scenario_points(2_000), 2_000);
        assert_eq!(scenario_points(1_000_000), 20_000);
    }

    #[test]
    fn scenarios_report_covers_every_hostile_generator() {
        let report = measure_scenarios_workload(1_000, 3, 11).unwrap();
        assert_eq!(report.workload, SCENARIOS_WORKLOAD);
        assert_eq!(report.file_name(), "BENCH_scenarios.json");
        let names: Vec<&str> = report
            .algorithms
            .iter()
            .map(|c| c.algorithm.as_str())
            .collect();
        assert_eq!(names, SCENARIO_GRID);
        for cell in &report.algorithms {
            assert!(cell.update_ns.median_ns > 0.0, "{}", cell.algorithm);
            assert!(cell.query_ns.count > 0, "{}", cell.algorithm);
            assert!(cell.final_cost.is_finite(), "{}", cell.algorithm);
            assert!(cell.peak_memory_bytes > 0, "{}", cell.algorithm);
        }
    }
}
