//! Minimal command-line flag parsing shared by the figure/table binaries.
//!
//! Every binary accepts the same switches so experiment scale can be tuned
//! without editing code:
//!
//! ```text
//! --points N     stream length per dataset          (default 20_000)
//! --k K          number of clusters                 (default 30)
//! --runs R       independent runs per configuration (default 3; paper: 9)
//! --quick        shorthand for --points 4000 --runs 1
//! --full         shorthand for --points 100000 --runs 5
//! --dataset NAME restrict to one dataset (covtype|power|intrusion|drift)
//! --csv          also print each table as CSV
//! --seed S       base RNG seed                      (default 42)
//! ```
//!
//! The `skm-bench` binary additionally understands the machine-readable
//! report pipeline (see `crate::report` and the README's "Benchmarking &
//! perf methodology" section):
//!
//! ```text
//! --json DIR          write one BENCH_<workload>.json per dataset into DIR
//! --check BASELINE    compare fresh medians against BASELINE (bench/baseline.json)
//!                     and exit non-zero on a >25% median slowdown
//! --guard-only        with --json + --check: skip measuring, load the
//!                     BENCH_*.json already in DIR and only run the guard
//! --baseline-out PATH write all fresh reports as a new baseline file
//! --sharded           additionally measure (or, with --guard-only, load)
//!                     the sharded-ingestion grid (BENCH_sharded.json)
//! --serving           additionally measure (or, with --guard-only, load)
//!                     the TCP serving workload (BENCH_serving.json)
//! --durability        additionally measure (or, with --guard-only, load)
//!                     the write-ahead-log cost grid (BENCH_durability.json)
//! --scenarios         additionally measure (or, with --guard-only, load)
//!                     the adversarial hostile-stream grid (BENCH_scenarios.json)
//! ```

use crate::workloads::DatasetSpec;

/// Parsed command-line arguments for a figure/table binary.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchArgs {
    /// Stream length per dataset.
    pub points: usize,
    /// Number of clusters `k`.
    pub k: usize,
    /// Independent runs per configuration (median is reported).
    pub runs: usize,
    /// Restrict the experiment to a single dataset.
    pub dataset: Option<DatasetSpec>,
    /// Also emit CSV output.
    pub csv: bool,
    /// Base RNG seed.
    pub seed: u64,
    /// Directory to write `BENCH_<workload>.json` reports into.
    pub json: Option<String>,
    /// Baseline file to compare fresh reports against (regression guard).
    pub check: Option<String>,
    /// Skip measuring; load existing reports from `--json` and only guard.
    pub guard_only: bool,
    /// Write all fresh reports as a combined baseline file at this path.
    pub baseline_out: Option<String>,
    /// Also measure (or, with `guard_only`, load) the sharded-ingestion
    /// throughput grid (`BENCH_sharded.json`).
    pub sharded: bool,
    /// Also measure (or, with `guard_only`, load) the TCP serving workload
    /// (`BENCH_serving.json`).
    pub serving: bool,
    /// Also measure (or, with `guard_only`, load) the write-ahead-log cost
    /// grid (`BENCH_durability.json`).
    pub durability: bool,
    /// Also measure (or, with `guard_only`, load) the adversarial
    /// hostile-stream grid (`BENCH_scenarios.json`).
    pub scenarios: bool,
    /// Hard parse errors (a report-pipeline flag missing its value). The
    /// `skm-bench` binary refuses to run when this is non-empty — a guard
    /// invocation that silently dropped `--check` would green-light
    /// regressions.
    pub errors: Vec<String>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        Self {
            points: 20_000,
            k: 30,
            runs: 3,
            dataset: None,
            csv: false,
            seed: 42,
            json: None,
            check: None,
            guard_only: false,
            baseline_out: None,
            sharded: false,
            serving: false,
            durability: false,
            scenarios: false,
            errors: Vec::new(),
        }
    }
}

/// Takes the value of a path-taking flag; a missing value or a following
/// `--flag` token is recorded as a hard error instead of being swallowed.
fn take_path_value<I: Iterator<Item = String>>(
    iter: &mut std::iter::Peekable<I>,
    flag: &str,
    errors: &mut Vec<String>,
) -> Option<String> {
    match iter.peek() {
        Some(v) if !v.starts_with("--") => iter.next(),
        _ => {
            errors.push(format!("flag `{flag}` requires a value"));
            None
        }
    }
}

impl BenchArgs {
    /// Parses arguments from an iterator of tokens (exposed for testing).
    ///
    /// Unknown flags are reported on stderr and ignored so that future
    /// additions do not break older invocations.
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut parsed = Self::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--points" => {
                    if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                        parsed.points = v;
                    }
                }
                "--k" => {
                    if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                        parsed.k = v;
                    }
                }
                "--runs" => {
                    if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                        parsed.runs = v;
                    }
                }
                "--seed" => {
                    if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                        parsed.seed = v;
                    }
                }
                "--dataset" => {
                    if let Some(name) = iter.next() {
                        parsed.dataset = DatasetSpec::parse(&name);
                        if parsed.dataset.is_none() {
                            eprintln!("unknown dataset `{name}`, running all datasets");
                        }
                    }
                }
                "--quick" => {
                    parsed.points = 4_000;
                    parsed.runs = 1;
                }
                "--full" => {
                    parsed.points = 100_000;
                    parsed.runs = 5;
                }
                "--csv" => parsed.csv = true,
                "--json" => {
                    parsed.json = take_path_value(&mut iter, "--json", &mut parsed.errors);
                }
                "--check" => {
                    parsed.check = take_path_value(&mut iter, "--check", &mut parsed.errors);
                }
                "--guard-only" => parsed.guard_only = true,
                "--sharded" => parsed.sharded = true,
                "--serving" => parsed.serving = true,
                "--durability" => parsed.durability = true,
                "--scenarios" => parsed.scenarios = true,
                "--baseline-out" => {
                    parsed.baseline_out =
                        take_path_value(&mut iter, "--baseline-out", &mut parsed.errors);
                }
                other => eprintln!("ignoring unknown argument `{other}`"),
            }
        }
        parsed.points = parsed.points.max(100);
        parsed.runs = parsed.runs.max(1);
        parsed.k = parsed.k.max(1);
        parsed
    }

    /// Parses the process arguments (skipping the program name).
    #[must_use]
    pub fn from_env() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// The datasets selected by these arguments.
    #[must_use]
    pub fn datasets(&self) -> Vec<DatasetSpec> {
        match self.dataset {
            Some(d) => vec![d],
            None => DatasetSpec::ALL.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> BenchArgs {
        BenchArgs::parse_from(tokens.iter().map(|s| (*s).to_string()))
    }

    #[test]
    fn defaults() {
        let args = parse(&[]);
        assert_eq!(args, BenchArgs::default());
        assert_eq!(args.datasets().len(), 4);
    }

    #[test]
    fn explicit_flags() {
        let args = parse(&[
            "--points",
            "5000",
            "--k",
            "10",
            "--runs",
            "7",
            "--seed",
            "9",
            "--csv",
            "--dataset",
            "power",
        ]);
        assert_eq!(args.points, 5_000);
        assert_eq!(args.k, 10);
        assert_eq!(args.runs, 7);
        assert_eq!(args.seed, 9);
        assert!(args.csv);
        assert_eq!(args.datasets(), vec![DatasetSpec::Power]);
    }

    #[test]
    fn quick_and_full_shorthands() {
        assert_eq!(parse(&["--quick"]).points, 4_000);
        assert_eq!(parse(&["--quick"]).runs, 1);
        assert_eq!(parse(&["--full"]).points, 100_000);
        assert_eq!(parse(&["--full"]).runs, 5);
    }

    #[test]
    fn invalid_values_fall_back_to_sane_minimums() {
        let args = parse(&["--points", "0", "--runs", "0", "--k", "0"]);
        assert!(args.points >= 100);
        assert_eq!(args.runs, 1);
        assert_eq!(args.k, 1);
    }

    #[test]
    fn unknown_flags_are_ignored() {
        let args = parse(&["--bogus", "--points", "900"]);
        assert_eq!(args.points, 900);
    }

    #[test]
    fn report_pipeline_flags() {
        let args = parse(&[
            "--json",
            "out-dir",
            "--check",
            "bench/baseline.json",
            "--guard-only",
            "--baseline-out",
            "fresh.json",
        ]);
        assert_eq!(args.json.as_deref(), Some("out-dir"));
        assert_eq!(args.check.as_deref(), Some("bench/baseline.json"));
        assert!(args.guard_only);
        assert_eq!(args.baseline_out.as_deref(), Some("fresh.json"));
        assert!(args.errors.is_empty());
        assert!(!parse(&[]).guard_only);
    }

    #[test]
    fn sharded_flag_parses() {
        assert!(parse(&["--sharded"]).sharded);
        assert!(!parse(&[]).sharded);
    }

    #[test]
    fn serving_flag_parses() {
        assert!(parse(&["--serving"]).serving);
        assert!(!parse(&[]).serving);
    }

    #[test]
    fn durability_flag_parses() {
        assert!(parse(&["--durability"]).durability);
        assert!(!parse(&[]).durability);
    }

    #[test]
    fn scenarios_flag_parses() {
        assert!(parse(&["--scenarios"]).scenarios);
        assert!(!parse(&[]).scenarios);
    }

    #[test]
    fn missing_pipeline_flag_values_are_hard_errors() {
        // `--check` swallowing `--guard-only` (or having no value at all)
        // must not silently disable the regression guard.
        let args = parse(&["--json", "out", "--check", "--guard-only"]);
        assert_eq!(args.check, None);
        assert!(args.guard_only, "flag after the missing value still parses");
        assert_eq!(args.errors.len(), 1);
        assert!(args.errors[0].contains("--check"));

        let args = parse(&["--json"]);
        assert_eq!(args.json, None);
        assert_eq!(args.errors.len(), 1);
    }

    #[test]
    fn unknown_dataset_means_all() {
        let args = parse(&["--dataset", "nope"]);
        assert_eq!(args.datasets().len(), 4);
    }
}
