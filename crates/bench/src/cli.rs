//! Minimal command-line flag parsing shared by the figure/table binaries.
//!
//! Every binary accepts the same switches so experiment scale can be tuned
//! without editing code:
//!
//! ```text
//! --points N     stream length per dataset          (default 20_000)
//! --k K          number of clusters                 (default 30)
//! --runs R       independent runs per configuration (default 3; paper: 9)
//! --quick        shorthand for --points 4000 --runs 1
//! --full         shorthand for --points 100000 --runs 5
//! --dataset NAME restrict to one dataset (covtype|power|intrusion|drift)
//! --csv          also print each table as CSV
//! --seed S       base RNG seed                      (default 42)
//! ```

use crate::workloads::DatasetSpec;

/// Parsed command-line arguments for a figure/table binary.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchArgs {
    /// Stream length per dataset.
    pub points: usize,
    /// Number of clusters `k`.
    pub k: usize,
    /// Independent runs per configuration (median is reported).
    pub runs: usize,
    /// Restrict the experiment to a single dataset.
    pub dataset: Option<DatasetSpec>,
    /// Also emit CSV output.
    pub csv: bool,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for BenchArgs {
    fn default() -> Self {
        Self {
            points: 20_000,
            k: 30,
            runs: 3,
            dataset: None,
            csv: false,
            seed: 42,
        }
    }
}

impl BenchArgs {
    /// Parses arguments from an iterator of tokens (exposed for testing).
    ///
    /// Unknown flags are reported on stderr and ignored so that future
    /// additions do not break older invocations.
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut parsed = Self::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--points" => {
                    if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                        parsed.points = v;
                    }
                }
                "--k" => {
                    if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                        parsed.k = v;
                    }
                }
                "--runs" => {
                    if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                        parsed.runs = v;
                    }
                }
                "--seed" => {
                    if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                        parsed.seed = v;
                    }
                }
                "--dataset" => {
                    if let Some(name) = iter.next() {
                        parsed.dataset = DatasetSpec::parse(&name);
                        if parsed.dataset.is_none() {
                            eprintln!("unknown dataset `{name}`, running all datasets");
                        }
                    }
                }
                "--quick" => {
                    parsed.points = 4_000;
                    parsed.runs = 1;
                }
                "--full" => {
                    parsed.points = 100_000;
                    parsed.runs = 5;
                }
                "--csv" => parsed.csv = true,
                other => eprintln!("ignoring unknown argument `{other}`"),
            }
        }
        parsed.points = parsed.points.max(100);
        parsed.runs = parsed.runs.max(1);
        parsed.k = parsed.k.max(1);
        parsed
    }

    /// Parses the process arguments (skipping the program name).
    #[must_use]
    pub fn from_env() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// The datasets selected by these arguments.
    #[must_use]
    pub fn datasets(&self) -> Vec<DatasetSpec> {
        match self.dataset {
            Some(d) => vec![d],
            None => DatasetSpec::ALL.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> BenchArgs {
        BenchArgs::parse_from(tokens.iter().map(|s| (*s).to_string()))
    }

    #[test]
    fn defaults() {
        let args = parse(&[]);
        assert_eq!(args, BenchArgs::default());
        assert_eq!(args.datasets().len(), 4);
    }

    #[test]
    fn explicit_flags() {
        let args = parse(&[
            "--points",
            "5000",
            "--k",
            "10",
            "--runs",
            "7",
            "--seed",
            "9",
            "--csv",
            "--dataset",
            "power",
        ]);
        assert_eq!(args.points, 5_000);
        assert_eq!(args.k, 10);
        assert_eq!(args.runs, 7);
        assert_eq!(args.seed, 9);
        assert!(args.csv);
        assert_eq!(args.datasets(), vec![DatasetSpec::Power]);
    }

    #[test]
    fn quick_and_full_shorthands() {
        assert_eq!(parse(&["--quick"]).points, 4_000);
        assert_eq!(parse(&["--quick"]).runs, 1);
        assert_eq!(parse(&["--full"]).points, 100_000);
        assert_eq!(parse(&["--full"]).runs, 5);
    }

    #[test]
    fn invalid_values_fall_back_to_sane_minimums() {
        let args = parse(&["--points", "0", "--runs", "0", "--k", "0"]);
        assert!(args.points >= 100);
        assert_eq!(args.runs, 1);
        assert_eq!(args.k, 1);
    }

    #[test]
    fn unknown_flags_are_ignored() {
        let args = parse(&["--bogus", "--points", "900"]);
        assert_eq!(args.points, 900);
    }

    #[test]
    fn unknown_dataset_means_all() {
        let args = parse(&["--dataset", "nope"]);
        assert_eq!(args.datasets().len(), 4);
    }
}
