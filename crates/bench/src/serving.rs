//! The `serving` workload: request latency of the `skm-serve` TCP server
//! under a concurrent ingest:query mix, emitted as `BENCH_serving.json`.
//!
//! Since protocol revision 1.3 the headline grid is the **codec-tier
//! grid**: the two wire framings of the evented core, `json` (the
//! newline-delimited debug codec) and `binary` (the negotiated
//! length-prefixed codec) — each measured at 1, 4 and 64 concurrent
//! connections on a single tenant with strict queries. (The
//! thread-per-connection blocking core served one release as the third
//! tier and has been removed along with its `--core` flag.) A second,
//! smaller **tenancy grid** keeps the multi-tenant/freshness comparison
//! from the earlier revisions on the default tier (json, 4 connections):
//! tenants ∈ {1, 8} with strict and cached queries, multi-tenant cells
//! spreading batches over `t0` … `t7` with Zipf(`ZIPF_S`) skew.
//!
//! For each cell the harness starts a fresh in-process server (sharded-CC
//! engine, ephemeral port), drives it with the built-in load generator on
//! the cell's codec (Power-dataset points split across the connections,
//! one query per `QUERY_EVERY` ingest requests per connection) and asserts
//! a clean shutdown. The resulting
//! [`AlgorithmReport`] cells reuse the standard schema:
//!
//! * `update_ns` — per-request `IngestBatch` round-trip latency (loopback
//!   RTT included: this is what a remote caller experiences),
//! * `query_ns` — per-request `Query` round-trip latency on the cell's
//!   freshness,
//! * `peak_memory_bytes` / `final_cost` — engine memory after the run
//!   (summed over all resident tenants) and the cost of the final served
//!   centers on the full dataset. In multi-tenant cells the final query
//!   targets `t0`, the Zipf-hottest tenant; its sub-stream is a uniform
//!   pseudo-random sample of the same mixture, so the cost remains
//!   comparable across cells.
//!
//! Cell names follow `serve/codec=<codec>/tenants=<T>/conns=<C>/
//! <freshness>` (see the tier table in `bench/README.md`).
//!
//! The serving workload is **not** added to `bench/baseline.json`: request
//! latency includes kernel networking and scheduler behaviour, which varies
//! across machines far more than the in-process medians the guard is
//! calibrated for (see `bench/README.md`). The report is uploaded as a CI
//! artifact for trend inspection instead.

use crate::report::{AlgorithmReport, LatencySummary, WorkloadReport, SCHEMA_VERSION};
use crate::workloads::{build_dataset, DatasetSpec};
use skm_clustering::cost::kmeans_cost;
use skm_clustering::error::{ClusteringError, Result};
use skm_clustering::Centers;
use skm_metrics::memory_bytes;
use skm_serve::loadgen::tenant_name;
use skm_serve::{
    run_load, Client, CodecKind, Engine, EngineSpec, Freshness, LoadSpec, RequestOptions, Server,
};
use skm_stream::StreamConfig;
use std::sync::Arc;

/// Workload name — file name becomes `BENCH_serving.json`.
pub const SERVING_WORKLOAD: &str = "serving";

/// The two wire-codec tiers measured on the evented core. (The blocking
/// JSON tier was the pre-1.3 baseline; it served one release as the
/// comparison anchor and has been removed with the blocking core.)
pub const TIER_GRID: [CodecKind; 2] = [CodecKind::Json, CodecKind::Binary];

/// Connection counts measured per tier (1 isolates protocol overhead; 4 is
/// the concurrent-ingest cell; 64 is where the evented core's poll set has
/// to prove it scales past the old one-thread-per-connection design).
pub const CONNECTION_GRID: [usize; 3] = [1, 4, 64];

/// Tenant counts of the tenancy grid (1 keeps the pre-tenancy
/// namespace-free wire traffic; 8 exercises the tenant map under a
/// Zipf-skewed mix).
pub const TENANT_GRID: [usize; 2] = [1, 8];

/// Query read paths measured in the tenancy grid.
pub const FRESHNESS_GRID: [Freshness; 2] = [Freshness::Strict, Freshness::Cached];

/// Zipf skew exponent of the multi-tenant cells (`weight(rank) ∝
/// 1/rank^s`) — mildly super-linear, the classic web-traffic shape.
pub const ZIPF_S: f64 = 1.1;

/// Points per `IngestBatch` request.
const REQUEST_BATCH: usize = 128;

/// One `Query` per this many ingest requests per connection.
const QUERY_EVERY: usize = 8;

/// Shards behind each tenant's served engine.
const SHARDS: usize = 2;

/// Connections of the tenancy-grid cells.
const TENANCY_CONNS: usize = 4;

/// One measured cell of the serving grid.
#[derive(Debug, Clone, Copy)]
struct Cell {
    codec: CodecKind,
    tenants: usize,
    connections: usize,
    freshness: Freshness,
}

impl Cell {
    fn name(&self) -> String {
        format!(
            "serve/codec={}/tenants={}/conns={}/{}",
            self.codec.as_str(),
            self.tenants,
            self.connections,
            self.freshness.as_str()
        )
    }
}

/// The full cell list: the tier grid (single tenant, strict) followed by
/// the tenancy grid (default tier) minus its duplicate of the tier-grid
/// `json` strict cell.
fn cells() -> Vec<Cell> {
    let mut cells = Vec::new();
    for &codec in &TIER_GRID {
        for &connections in &CONNECTION_GRID {
            cells.push(Cell {
                codec,
                tenants: 1,
                connections,
                freshness: Freshness::Strict,
            });
        }
    }
    for &tenants in &TENANT_GRID {
        for &freshness in &FRESHNESS_GRID {
            if tenants == 1 && freshness == Freshness::Strict {
                continue; // already measured as the json tier cell
            }
            cells.push(Cell {
                codec: CodecKind::Json,
                tenants,
                connections: TENANCY_CONNS,
                freshness,
            });
        }
    }
    cells
}

/// Stream length used for the serving cells: capped so the CI smoke run
/// stays in the ~2s-per-cell range even in debug builds.
#[must_use]
pub fn serving_points(points: usize) -> usize {
    points.clamp(1_000, 50_000)
}

fn io_error(context: &str, e: &std::io::Error) -> ClusteringError {
    ClusteringError::InvalidParameter {
        name: "serving",
        message: format!("{context}: {e}"),
    }
}

/// Runs one cell: fresh engine + server, load generation on the cell's
/// codec, final query, clean shutdown. Returns the cell report.
fn run_cell(
    points: &[Vec<f64>],
    config: StreamConfig,
    cell: Cell,
    seed: u64,
) -> Result<(AlgorithmReport, Centers)> {
    let engine = Arc::new(Engine::new(&EngineSpec::sharded_cc(
        config,
        SHARDS,
        REQUEST_BATCH,
        seed,
    ))?);
    let server =
        Server::bind("127.0.0.1:0", Arc::clone(&engine), None).map_err(|e| io_error("bind", &e))?;
    let handle = server.spawn().map_err(|e| io_error("spawn", &e))?;

    let spec = LoadSpec::new(handle.addr())
        .with_connections(cell.connections)
        .with_batch(REQUEST_BATCH)
        .with_query_every(QUERY_EVERY)
        .with_freshness(cell.freshness)
        .with_tenants(cell.tenants, ZIPF_S)
        .with_codec(cell.codec);
    let report = run_load(&spec, points).map_err(|e| io_error("load generator", &e))?;
    if report.server_errors > 0 {
        return Err(ClusteringError::InvalidParameter {
            name: "serving",
            message: format!(
                "{} typed server errors during the run",
                report.server_errors
            ),
        });
    }

    // One final strict end-of-stream query through the protocol, like every
    // other workload's final measurement (strict regardless of the cell's
    // freshness, so `final_cost` always reflects the complete stream the
    // queried tenant saw). Multi-tenant cells query `t0`, the Zipf-hottest
    // tenant; single-tenant cells stay namespace-free.
    let mut client = Client::connect(handle.addr()).map_err(|e| io_error("connect", &e))?;
    let mut options = RequestOptions::new();
    if cell.tenants > 1 {
        options.namespace = Some(tenant_name(0));
    }
    let final_rows = match client
        .query_opts(&options)
        .map_err(|e| io_error("final query", &e))?
    {
        skm_serve::Response::Centers { centers, .. } => centers,
        other => {
            return Err(ClusteringError::InvalidParameter {
                name: "serving",
                message: format!("final query failed: {other:?}"),
            })
        }
    };
    let dim = points[0].len();
    let final_centers = Centers::from_rows(dim, &final_rows)?;
    let peak_memory = memory_bytes(engine.memory_points(), dim) as u64;
    client
        .shutdown()
        .map_err(|e| io_error("shutdown request", &e))?;
    // Clean shutdown is part of the measurement contract: a hang here means
    // an event loop failed to drain its connections.
    handle
        .shutdown()
        .map_err(|e| io_error("shutdown join", &e))?;

    let cell_report = AlgorithmReport {
        algorithm: cell.name(),
        update_ns: LatencySummary::from_samples(&report.ingest_ns)
            .expect("at least one ingest request"),
        query_ns: LatencySummary::from_samples(&report.query_ns)
            .expect("at least one interleaved query"),
        peak_memory_bytes: peak_memory,
        final_cost: f64::NAN, // filled by the caller (needs the dataset)
    };
    Ok((cell_report, final_centers))
}

/// Measures the serving workload and packages it as a [`WorkloadReport`]
/// (one [`AlgorithmReport`] per tier-grid and tenancy-grid cell), so the
/// report writer and CI artifact pipeline apply unchanged.
///
/// # Errors
/// Propagates engine/configuration errors and reports transport failures or
/// unclean shutdowns as [`ClusteringError::InvalidParameter`].
pub fn measure_serving_workload(points: usize, k: usize, seed: u64) -> Result<WorkloadReport> {
    let n = serving_points(points);
    let dataset = build_dataset(DatasetSpec::Power, n, seed);
    let config = StreamConfig::new(k)
        .with_bucket_size(20 * k)
        .with_kmeans_runs(1)
        .with_lloyd_iterations(5);
    let rows: Vec<Vec<f64>> = dataset.points().iter().map(|(p, _)| p.to_vec()).collect();

    let mut algorithms = Vec::new();
    for cell in cells() {
        let (mut cell_report, final_centers) = run_cell(&rows, config, cell, seed)?;
        cell_report.final_cost = kmeans_cost(dataset.points(), &final_centers)?;
        algorithms.push(cell_report);
    }

    // The schema's workload-level coreset-build metric is not meaningful
    // for a network workload; reuse the json-tier single-connection strict
    // ingest latency so the field carries a real (and comparable)
    // measurement.
    let coreset_build_ns = algorithms[0].update_ns.clone();

    Ok(WorkloadReport {
        schema_version: SCHEMA_VERSION,
        workload: SERVING_WORKLOAD.to_string(),
        points: n as u64,
        dim: dataset.dim() as u64,
        k: k as u64,
        seed,
        coreset_build_ns,
        algorithms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_scaling_is_clamped() {
        assert_eq!(serving_points(10), 1_000);
        assert_eq!(serving_points(2_000), 2_000);
        assert_eq!(serving_points(1_000_000), 50_000);
    }

    #[test]
    fn serving_report_covers_the_tier_and_tenancy_grids() {
        let report = measure_serving_workload(1_000, 3, 11).unwrap();
        assert_eq!(report.workload, SERVING_WORKLOAD);
        assert_eq!(report.file_name(), "BENCH_serving.json");
        assert_eq!(report.points, 1_000);
        let names: Vec<&str> = report
            .algorithms
            .iter()
            .map(|c| c.algorithm.as_str())
            .collect();
        assert_eq!(
            names,
            [
                "serve/codec=json/tenants=1/conns=1/strict",
                "serve/codec=json/tenants=1/conns=4/strict",
                "serve/codec=json/tenants=1/conns=64/strict",
                "serve/codec=binary/tenants=1/conns=1/strict",
                "serve/codec=binary/tenants=1/conns=4/strict",
                "serve/codec=binary/tenants=1/conns=64/strict",
                "serve/codec=json/tenants=1/conns=4/cached",
                "serve/codec=json/tenants=8/conns=4/strict",
                "serve/codec=json/tenants=8/conns=4/cached",
            ]
        );
        for cell in &report.algorithms {
            assert!(cell.update_ns.median_ns > 0.0, "{}", cell.algorithm);
            assert!(cell.update_ns.count > 0, "{}", cell.algorithm);
            assert!(cell.query_ns.count > 0, "{}", cell.algorithm);
            assert!(cell.final_cost.is_finite(), "{}", cell.algorithm);
            assert!(cell.peak_memory_bytes > 0, "{}", cell.algorithm);
        }
        // Tripwires, gated on spare cores: on a single-CPU machine every
        // round trip is dominated by scheduler waits, which swamps both
        // comparisons. Each gets generous slack so runner jitter cannot
        // flake the suite — the real acceptance targets are read off the
        // emitted BENCH_serving.json on CI hardware.
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        if cores > 1 {
            // 1. The published read path: cached queries never wait on
            //    ingestion (only meaningful at conns=4 where strict queries
            //    structurally contend with three ingesting connections).
            let strict_cell = &report.algorithms[1]; // json/tenants=1/conns=4/strict
            let cached_cell = &report.algorithms[6]; // json/tenants=1/conns=4/cached
            assert!(
                cached_cell.query_ns.median_ns <= 1.25 * strict_cell.query_ns.median_ns,
                "cached median {} ns should not exceed strict median {} ns by >25%",
                cached_cell.query_ns.median_ns,
                strict_cell.query_ns.median_ns,
            );
            // 2. The binary codec: at 64 connections the length-prefixed
            //    framing must not lose to newline-JSON (the acceptance
            //    target is an outright win; the tripwire allows 25%).
            let json = &report.algorithms[2]; // json/conns=64
            let binary = &report.algorithms[5]; // binary/conns=64
            assert!(
                binary.update_ns.median_ns <= 1.25 * json.update_ns.median_ns,
                "binary ingest median {} ns should not exceed json median {} ns by >25% at 64 connections",
                binary.update_ns.median_ns,
                json.update_ns.median_ns,
            );
        }
    }
}
