//! The `serving` workload: request latency of the `skm-serve` TCP server
//! under a concurrent ingest:query mix, emitted as `BENCH_serving.json`.
//!
//! The grid is tenant count × connection count × query freshness. For each
//! cell the harness starts a fresh in-process server (sharded-CC engine,
//! ephemeral port), drives it with the built-in load generator
//! (Power-dataset points split across the connections, one query per
//! `QUERY_EVERY` ingest requests per connection, all queries on the cell's
//! freshness) and asserts a clean shutdown. Single-tenant cells send
//! namespace-free requests — the exact pre-tenancy wire traffic — while
//! multi-tenant cells spread batches over `t0` … `t{N-1}` with
//! Zipf(`ZIPF_S`) skew, so the tenant-map and per-tenant locking overhead
//! shows up as a direct latency delta against the matching single-tenant
//! cell. The resulting [`AlgorithmReport`] cells reuse the standard schema:
//!
//! * `update_ns` — per-request `IngestBatch` round-trip latency (loopback
//!   RTT included: this is what a remote caller experiences),
//! * `query_ns` — per-request `Query` round-trip latency on the cell's
//!   freshness (`strict` queries drain and recompute under the tenant's
//!   ingest lock; `cached` queries read that tenant's published snapshot
//!   and never wait on ingestion),
//! * `peak_memory_bytes` / `final_cost` — engine memory after the run
//!   (summed over all resident tenants) and the cost of the final served
//!   centers on the full dataset. In multi-tenant cells the final query
//!   targets `t0`, the Zipf-hottest tenant; its sub-stream is a uniform
//!   pseudo-random sample of the same mixture, so the cost remains
//!   comparable across cells.
//!
//! The serving workload is **not** added to `bench/baseline.json`: request
//! latency includes kernel networking and scheduler behaviour, which varies
//! across machines far more than the in-process medians the guard is
//! calibrated for (see `bench/README.md`). The report is uploaded as a CI
//! artifact for trend inspection instead.

use crate::report::{AlgorithmReport, LatencySummary, WorkloadReport, SCHEMA_VERSION};
use crate::workloads::{build_dataset, DatasetSpec};
use skm_clustering::cost::kmeans_cost;
use skm_clustering::error::{ClusteringError, Result};
use skm_clustering::Centers;
use skm_metrics::memory_bytes;
use skm_serve::loadgen::tenant_name;
use skm_serve::{run_load, Client, Engine, EngineSpec, Freshness, LoadSpec, Server};
use skm_stream::StreamConfig;
use std::sync::Arc;

/// Workload name — file name becomes `BENCH_serving.json`.
pub const SERVING_WORKLOAD: &str = "serving";

/// Tenant counts measured (1 keeps the pre-tenancy namespace-free wire
/// traffic; 8 exercises the tenant map under a Zipf-skewed mix).
pub const TENANT_GRID: [usize; 2] = [1, 8];

/// Connection counts measured (1 isolates protocol overhead; 4 is the
/// concurrent-ingest headline cell).
pub const CONNECTION_GRID: [usize; 2] = [1, 4];

/// Query read paths measured for every tenant × connection count.
pub const FRESHNESS_GRID: [Freshness; 2] = [Freshness::Strict, Freshness::Cached];

/// Zipf skew exponent of the multi-tenant cells (`weight(rank) ∝
/// 1/rank^s`) — mildly super-linear, the classic web-traffic shape.
pub const ZIPF_S: f64 = 1.1;

/// Points per `IngestBatch` request.
const REQUEST_BATCH: usize = 128;

/// One `Query` per this many ingest requests per connection.
const QUERY_EVERY: usize = 8;

/// Shards behind each tenant's served engine.
const SHARDS: usize = 2;

/// Stream length used for the serving cells: capped so the CI smoke run
/// stays in the ~2s-per-cell range even in debug builds.
#[must_use]
pub fn serving_points(points: usize) -> usize {
    points.clamp(1_000, 50_000)
}

fn io_error(context: &str, e: &std::io::Error) -> ClusteringError {
    ClusteringError::InvalidParameter {
        name: "serving",
        message: format!("{context}: {e}"),
    }
}

/// Runs one (tenants, connections, freshness) cell: fresh engine + server,
/// load generation, final query, clean shutdown. Returns the cell report.
fn run_cell(
    points: &[Vec<f64>],
    config: StreamConfig,
    tenants: usize,
    connections: usize,
    freshness: Freshness,
    seed: u64,
) -> Result<(AlgorithmReport, Centers)> {
    let engine = Arc::new(Engine::new(&EngineSpec::sharded_cc(
        config,
        SHARDS,
        REQUEST_BATCH,
        seed,
    ))?);
    let server =
        Server::bind("127.0.0.1:0", Arc::clone(&engine), None).map_err(|e| io_error("bind", &e))?;
    let handle = server.spawn().map_err(|e| io_error("spawn", &e))?;

    let spec = LoadSpec {
        addr: handle.addr(),
        connections,
        batch: REQUEST_BATCH,
        query_every: QUERY_EVERY,
        freshness,
        tenants,
        zipf_s: ZIPF_S,
    };
    let report = run_load(&spec, points).map_err(|e| io_error("load generator", &e))?;
    if report.server_errors > 0 {
        return Err(ClusteringError::InvalidParameter {
            name: "serving",
            message: format!(
                "{} typed server errors during the run",
                report.server_errors
            ),
        });
    }

    // One final strict end-of-stream query through the protocol, like every
    // other workload's final measurement (strict regardless of the cell's
    // freshness, so `final_cost` always reflects the complete stream the
    // queried tenant saw). Multi-tenant cells query `t0`, the Zipf-hottest
    // tenant; single-tenant cells stay namespace-free.
    let mut client = Client::connect(handle.addr()).map_err(|e| io_error("connect", &e))?;
    if tenants > 1 {
        client.set_namespace(Some(tenant_name(0)));
    }
    let final_rows = client
        .query_centers()
        .map_err(|e| io_error("final query", &e))?;
    let dim = points[0].len();
    let final_centers = Centers::from_rows(dim, &final_rows)?;
    let peak_memory = memory_bytes(engine.memory_points(), dim) as u64;
    client
        .shutdown()
        .map_err(|e| io_error("shutdown request", &e))?;
    // Clean shutdown is part of the measurement contract: a hang here means
    // the server leaked a connection handler.
    handle
        .shutdown()
        .map_err(|e| io_error("shutdown join", &e))?;

    let cell = AlgorithmReport {
        algorithm: format!(
            "serve/tenants={tenants}/conns={connections}/{}",
            freshness.as_str()
        ),
        update_ns: LatencySummary::from_samples(&report.ingest_ns)
            .expect("at least one ingest request"),
        query_ns: LatencySummary::from_samples(&report.query_ns)
            .expect("at least one interleaved query"),
        peak_memory_bytes: peak_memory,
        final_cost: f64::NAN, // filled by the caller (needs the dataset)
    };
    Ok((cell, final_centers))
}

/// Measures the serving workload and packages it as a [`WorkloadReport`]
/// (one [`AlgorithmReport`] per tenant count × connection count ×
/// freshness cell), so the report writer and CI artifact pipeline apply
/// unchanged.
///
/// # Errors
/// Propagates engine/configuration errors and reports transport failures or
/// unclean shutdowns as [`ClusteringError::InvalidParameter`].
pub fn measure_serving_workload(points: usize, k: usize, seed: u64) -> Result<WorkloadReport> {
    let n = serving_points(points);
    let dataset = build_dataset(DatasetSpec::Power, n, seed);
    let config = StreamConfig::new(k)
        .with_bucket_size(20 * k)
        .with_kmeans_runs(1)
        .with_lloyd_iterations(5);
    let rows: Vec<Vec<f64>> = dataset.points().iter().map(|(p, _)| p.to_vec()).collect();

    let mut algorithms =
        Vec::with_capacity(TENANT_GRID.len() * CONNECTION_GRID.len() * FRESHNESS_GRID.len());
    for &tenants in &TENANT_GRID {
        for &connections in &CONNECTION_GRID {
            for &freshness in &FRESHNESS_GRID {
                let (mut cell, final_centers) =
                    run_cell(&rows, config, tenants, connections, freshness, seed)?;
                cell.final_cost = kmeans_cost(dataset.points(), &final_centers)?;
                algorithms.push(cell);
            }
        }
    }

    // The schema's workload-level coreset-build metric is not meaningful
    // for a network workload; reuse the single-tenant single-connection
    // strict ingest latency so the field carries a real (and comparable)
    // measurement.
    let coreset_build_ns = algorithms[0].update_ns.clone();

    Ok(WorkloadReport {
        schema_version: SCHEMA_VERSION,
        workload: SERVING_WORKLOAD.to_string(),
        points: n as u64,
        dim: dataset.dim() as u64,
        k: k as u64,
        seed,
        coreset_build_ns,
        algorithms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_scaling_is_clamped() {
        assert_eq!(serving_points(10), 1_000);
        assert_eq!(serving_points(2_000), 2_000);
        assert_eq!(serving_points(1_000_000), 50_000);
    }

    #[test]
    fn serving_report_covers_the_tenants_by_conns_by_freshness_grid() {
        let report = measure_serving_workload(1_000, 3, 11).unwrap();
        assert_eq!(report.workload, SERVING_WORKLOAD);
        assert_eq!(report.file_name(), "BENCH_serving.json");
        assert_eq!(report.points, 1_000);
        assert_eq!(
            report.algorithms.len(),
            TENANT_GRID.len() * CONNECTION_GRID.len() * FRESHNESS_GRID.len()
        );
        let names: Vec<&str> = report
            .algorithms
            .iter()
            .map(|c| c.algorithm.as_str())
            .collect();
        assert_eq!(
            names,
            [
                "serve/tenants=1/conns=1/strict",
                "serve/tenants=1/conns=1/cached",
                "serve/tenants=1/conns=4/strict",
                "serve/tenants=1/conns=4/cached",
                "serve/tenants=8/conns=1/strict",
                "serve/tenants=8/conns=1/cached",
                "serve/tenants=8/conns=4/strict",
                "serve/tenants=8/conns=4/cached",
            ]
        );
        for cell in &report.algorithms {
            assert!(cell.update_ns.median_ns > 0.0, "{}", cell.algorithm);
            assert!(cell.update_ns.count > 0, "{}", cell.algorithm);
            assert!(cell.query_ns.count > 0, "{}", cell.algorithm);
            assert!(cell.final_cost.is_finite(), "{}", cell.algorithm);
            assert!(cell.peak_memory_bytes > 0, "{}", cell.algorithm);
        }
        // The point of the published read path: cached queries never wait
        // on ingestion or recompute. The comparison is only meaningful at
        // tenants=1 conns=4 (where strict queries structurally contend
        // with three ingesting connections for the same tenant's mutex —
        // at conns=1 both modes are RTT-dominated, and at tenants=8 the
        // Zipf mix spreads contention over eight independent locks) and
        // with spare cores (on a single-CPU machine every round trip is
        // dominated by waiting for the ingest threads to be descheduled,
        // which swamps the difference), and it gets a 1.25× slack so
        // runner jitter cannot flake the suite. (The acceptance target —
        // cached p95 ≤ 0.5× strict p95 at conns=4 — is read off the
        // emitted BENCH_serving.json on CI hardware; this in-test bound is
        // only a tripwire.)
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        if cores > 1 {
            let strict_cell = &report.algorithms[2]; // serve/tenants=1/conns=4/strict
            let cached_cell = &report.algorithms[3]; // serve/tenants=1/conns=4/cached
            assert!(
                cached_cell.query_ns.median_ns <= 1.25 * strict_cell.query_ns.median_ns,
                "cached median {} ns should not exceed strict median {} ns by >25% ({})",
                cached_cell.query_ns.median_ns,
                strict_cell.query_ns.median_ns,
                strict_cell.algorithm
            );
        }
    }
}
