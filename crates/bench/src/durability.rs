//! The `durability` workload: what the write-ahead log costs on the
//! per-update path, across a fsync-interval × ingest-batch grid, plus one
//! recovery cell — emitted as `BENCH_durability.json`.
//!
//! Every cell drives the in-process engine directly (no TCP): the point is
//! to isolate the WAL's append/group-commit overhead from networking, so
//! the `wal=off` cells are a clean control for the `wal=fsync*` cells on
//! the same machine. The grid crosses:
//!
//! * **WAL tier** — `off` (no log attached), `fsync0` (fsync on every
//!   append: the strongest guarantee, every acknowledged write is
//!   durable), `fsync5` (5 ms group commit, the serving default), and
//! * **ingest batch** — 1 point per request (worst case: one log record
//!   and, under `fsync0`, one fsync per point) and 128 points per request
//!   (one `IngestBatch` record amortizes the append and the fsync).
//!
//! Strict queries are interleaved like the other workloads — under a WAL
//! these also log a replay marker, so `query_ns` carries the marker cost.
//! A final `durable/recover` cell reopens the `fsync0/batch=1` cell's log
//! directory cold and reports the full recovery wall time (checkpoint
//! load + tail replay) as its single `update_ns` sample, plus the first
//! post-recovery strict query as `query_ns`.
//!
//! Like the serving workload, durability cells are **baseline-exempt**
//! (see `guardable_reports`): fsync latency is a property of the runner's
//! storage stack, far noisier across machines than the in-process medians
//! the regression guard is calibrated for. The report is uploaded as a CI
//! artifact for trend inspection; the WAL-overhead acceptance target
//! (`fsync5` within 25% of `wal=off` on the batched path) is read off
//! that artifact.

use crate::report::{AlgorithmReport, LatencySummary, WorkloadReport, SCHEMA_VERSION};
use crate::workloads::{build_dataset, DatasetSpec};
use skm_clustering::cost::kmeans_cost;
use skm_clustering::error::{ClusteringError, Result};
use skm_clustering::Centers;
use skm_metrics::memory_bytes;
use skm_serve::{Engine, EngineSpec, Freshness, WalConfig, DEFAULT_NAMESPACE};
use skm_stream::StreamConfig;
use std::path::PathBuf;
use std::time::Instant;

/// Workload name — file name becomes `BENCH_durability.json`.
pub const DURABILITY_WORKLOAD: &str = "durability";

/// The WAL tiers of the grid: no log, fsync-per-append, 5 ms group commit.
pub const FSYNC_GRID: [Option<u64>; 3] = [None, Some(0), Some(5)];

/// Points per ingest request (1 = one record and fsync per point; 128 =
/// one `IngestBatch` record amortizes both).
pub const BATCH_GRID: [usize; 2] = [1, 128];

/// One strict query per this many ingest requests.
const QUERY_EVERY: usize = 64;

/// Shards behind the engine (matches the serving workload).
const SHARDS: usize = 2;

/// Internal per-shard routing batch of the sharded engine.
const ENGINE_BATCH: usize = 128;

fn tier_name(fsync_ms: Option<u64>) -> String {
    match fsync_ms {
        None => "off".to_string(),
        Some(ms) => format!("fsync{ms}"),
    }
}

fn temp_dir(tag: &str) -> Result<PathBuf> {
    let dir = std::env::temp_dir().join(format!("skm-bench-wal-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| ClusteringError::InvalidParameter {
        name: "durability",
        message: format!("cannot create WAL directory {}: {e}", dir.display()),
    })?;
    Ok(dir)
}

fn build_engine(config: StreamConfig, seed: u64, wal: Option<(&PathBuf, u64)>) -> Result<Engine> {
    let engine = Engine::new(&EngineSpec::sharded_cc(config, SHARDS, ENGINE_BATCH, seed))?;
    match wal {
        Some((dir, fsync_ms)) => {
            engine.with_wal(WalConfig::new(dir.clone()).with_fsync_ms(fsync_ms))
        }
        None => Ok(engine),
    }
}

/// Feeds the dataset through one cell's engine, timing every ingest
/// request and every interleaved strict query.
fn run_cell(
    rows: &[Vec<f64>],
    config: StreamConfig,
    seed: u64,
    fsync_ms: Option<u64>,
    batch: usize,
    dir: Option<&PathBuf>,
) -> Result<(AlgorithmReport, Centers)> {
    let engine = build_engine(config, seed, dir.map(|d| (d, fsync_ms.unwrap_or(0))))?;
    let mut update_ns = Vec::new();
    let mut query_ns = Vec::new();
    let mut requests = 0usize;
    for chunk in rows.chunks(batch) {
        let start = Instant::now();
        if batch == 1 {
            engine.ingest(&chunk[0])?;
        } else {
            engine.ingest_batch_in(DEFAULT_NAMESPACE, chunk)?;
        }
        update_ns.push(start.elapsed().as_nanos() as f64);
        requests += 1;
        if requests.is_multiple_of(QUERY_EVERY) {
            let start = Instant::now();
            engine.query_in(DEFAULT_NAMESPACE, Freshness::Strict)?;
            query_ns.push(start.elapsed().as_nanos() as f64);
        }
    }
    let start = Instant::now();
    let published = engine.query_in(DEFAULT_NAMESPACE, Freshness::Strict)?;
    query_ns.push(start.elapsed().as_nanos() as f64);

    let dim = rows[0].len();
    let final_centers = Centers::from_rows(dim, &published.centers.to_rows())?;
    let report = AlgorithmReport {
        algorithm: format!("durable/wal={}/batch={batch}", tier_name(fsync_ms)),
        update_ns: LatencySummary::from_samples(&update_ns).expect("at least one ingest request"),
        query_ns: LatencySummary::from_samples(&query_ns).expect("at least one strict query"),
        peak_memory_bytes: memory_bytes(engine.memory_points(), dim) as u64,
        final_cost: f64::NAN, // filled by the caller (needs the dataset)
    };
    Ok((report, final_centers))
}

/// Reopens `dir` cold and reports recovery (checkpoint load + tail
/// replay) as one `update_ns` sample plus the first post-recovery strict
/// query as `query_ns`.
fn run_recovery_cell(
    rows: &[Vec<f64>],
    config: StreamConfig,
    seed: u64,
    dir: &PathBuf,
) -> Result<(AlgorithmReport, Centers)> {
    let start = Instant::now();
    let engine = build_engine(config, seed, Some((dir, 0)))?;
    let recovery_ns = start.elapsed().as_nanos() as f64;
    let start = Instant::now();
    let published = engine.query_in(DEFAULT_NAMESPACE, Freshness::Strict)?;
    let first_query_ns = start.elapsed().as_nanos() as f64;

    let dim = rows[0].len();
    let final_centers = Centers::from_rows(dim, &published.centers.to_rows())?;
    let report = AlgorithmReport {
        algorithm: "durable/recover/fsync0/batch=1".to_string(),
        update_ns: LatencySummary::from_samples(&[recovery_ns]).expect("one recovery sample"),
        query_ns: LatencySummary::from_samples(&[first_query_ns]).expect("one query sample"),
        peak_memory_bytes: memory_bytes(engine.memory_points(), dim) as u64,
        final_cost: f64::NAN,
    };
    Ok((report, final_centers))
}

/// Stream length used for the durability cells: fsync-per-point cells are
/// slow by design, so the cap sits below the serving workload's.
#[must_use]
pub fn durability_points(points: usize) -> usize {
    points.clamp(1_000, 20_000)
}

/// Measures the durability workload and packages it as a
/// [`WorkloadReport`] (one [`AlgorithmReport`] per fsync × batch cell,
/// plus the recovery cell), so the report writer and CI artifact pipeline
/// apply unchanged.
///
/// # Errors
/// Propagates engine/configuration errors; filesystem failures around the
/// temporary log directories surface as
/// [`ClusteringError::InvalidParameter`].
pub fn measure_durability_workload(points: usize, k: usize, seed: u64) -> Result<WorkloadReport> {
    let n = durability_points(points);
    let dataset = build_dataset(DatasetSpec::Power, n, seed);
    let config = StreamConfig::new(k)
        .with_bucket_size(20 * k)
        .with_kmeans_runs(1)
        .with_lloyd_iterations(5);
    let rows: Vec<Vec<f64>> = dataset.points().iter().map(|(p, _)| p.to_vec()).collect();

    let mut algorithms = Vec::new();
    let mut recovery_dir: Option<PathBuf> = None;
    for &fsync_ms in &FSYNC_GRID {
        for &batch in &BATCH_GRID {
            let dir = match fsync_ms {
                Some(ms) => Some(temp_dir(&format!("{ms}-{batch}"))?),
                None => None,
            };
            let (mut cell, centers) = run_cell(&rows, config, seed, fsync_ms, batch, dir.as_ref())?;
            cell.final_cost = kmeans_cost(dataset.points(), &centers)?;
            algorithms.push(cell);
            // The strongest-guarantee single-point cell leaves the densest
            // log behind — that is the directory the recovery cell reopens.
            if fsync_ms == Some(0) && batch == 1 {
                recovery_dir = dir;
            } else if let Some(dir) = dir {
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }

    let dir = recovery_dir.expect("the fsync0/batch=1 cell ran");
    let (mut recover, centers) = run_recovery_cell(&rows, config, seed, &dir)?;
    recover.final_cost = kmeans_cost(dataset.points(), &centers)?;
    algorithms.push(recover);
    let _ = std::fs::remove_dir_all(&dir);

    // The schema's workload-level coreset-build metric is not meaningful
    // here; reuse the control cell's (wal=off, batch=1) update latency so
    // the field carries a real measurement.
    let coreset_build_ns = algorithms[0].update_ns.clone();

    Ok(WorkloadReport {
        schema_version: SCHEMA_VERSION,
        workload: DURABILITY_WORKLOAD.to_string(),
        points: n as u64,
        dim: dataset.dim() as u64,
        k: k as u64,
        seed,
        coreset_build_ns,
        algorithms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_scaling_is_clamped() {
        assert_eq!(durability_points(10), 1_000);
        assert_eq!(durability_points(2_000), 2_000);
        assert_eq!(durability_points(1_000_000), 20_000);
    }

    #[test]
    fn durability_report_covers_the_fsync_batch_grid_and_recovery() {
        let report = measure_durability_workload(1_000, 3, 11).unwrap();
        assert_eq!(report.workload, DURABILITY_WORKLOAD);
        assert_eq!(report.file_name(), "BENCH_durability.json");
        let names: Vec<&str> = report
            .algorithms
            .iter()
            .map(|c| c.algorithm.as_str())
            .collect();
        assert_eq!(
            names,
            [
                "durable/wal=off/batch=1",
                "durable/wal=off/batch=128",
                "durable/wal=fsync0/batch=1",
                "durable/wal=fsync0/batch=128",
                "durable/wal=fsync5/batch=1",
                "durable/wal=fsync5/batch=128",
                "durable/recover/fsync0/batch=1",
            ]
        );
        for cell in &report.algorithms {
            assert!(cell.update_ns.median_ns > 0.0, "{}", cell.algorithm);
            assert!(cell.query_ns.count > 0, "{}", cell.algorithm);
            assert!(cell.final_cost.is_finite(), "{}", cell.algorithm);
            assert!(cell.peak_memory_bytes > 0, "{}", cell.algorithm);
        }
        // Durability invariant, not a latency tripwire: the WAL must never
        // change what the engine computes, so every batch=1 grid cell's
        // final cost must agree bit-for-bit with the wal=off control. (The
        // recovery cell is excluded: it issues one extra strict query on
        // top of the replayed history.)
        let control = report.algorithms[0].final_cost;
        for cell in &report.algorithms[1..] {
            let same_path =
                cell.algorithm.starts_with("durable/wal=") && cell.algorithm.ends_with("batch=1");
            if same_path {
                assert!(
                    cell.final_cost == control,
                    "{} diverged from the wal=off control: {} vs {control}",
                    cell.algorithm,
                    cell.final_cost
                );
            }
        }
    }
}
