//! Algorithm construction and the measured stream loop.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use skm_clustering::cost::kmeans_cost;
use skm_clustering::error::Result;
use skm_clustering::Centers;
use skm_data::{Dataset, QuerySchedule};
use skm_metrics::{RunMeasurement, SplitTimer};
use skm_stream::prelude::*;
use std::time::Instant;

/// The algorithms compared throughout the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgorithmKind {
    /// streamkm++ / CT with merge degree `r = 2`.
    StreamKmPlusPlus,
    /// Cached coreset tree.
    Cc,
    /// Recursive coreset cache (nesting depth 3, as in the paper).
    Rcc,
    /// Online coreset cache with the default switching threshold α = 1.2.
    OnlineCc,
    /// Sequential (MacQueen) k-means.
    Sequential,
    /// Batch k-means++ over the full prefix (accuracy reference).
    Batch,
}

impl AlgorithmKind {
    /// The streaming algorithms compared in the runtime figures
    /// (Figures 5, 7–10): streamkm++, CC, RCC and OnlineCC.
    pub const STREAMING: [AlgorithmKind; 4] = [
        AlgorithmKind::StreamKmPlusPlus,
        AlgorithmKind::Cc,
        AlgorithmKind::Rcc,
        AlgorithmKind::OnlineCc,
    ];

    /// Every algorithm including the accuracy baselines (Figure 4).
    pub const ALL: [AlgorithmKind; 6] = [
        AlgorithmKind::Sequential,
        AlgorithmKind::StreamKmPlusPlus,
        AlgorithmKind::Cc,
        AlgorithmKind::Rcc,
        AlgorithmKind::OnlineCc,
        AlgorithmKind::Batch,
    ];

    /// Report name (matches the paper's figure legends).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            AlgorithmKind::StreamKmPlusPlus => "StreamKM++",
            AlgorithmKind::Cc => "CC",
            AlgorithmKind::Rcc => "RCC",
            AlgorithmKind::OnlineCc => "OnlineCC",
            AlgorithmKind::Sequential => "Sequential",
            AlgorithmKind::Batch => "KMeans++ (batch)",
        }
    }
}

/// Instantiates an algorithm under test.
///
/// `alpha` is only used by OnlineCC (the paper's default is 1.2).
/// `expected_points` is used by RCC to choose its merge degrees
/// (`N^{1/2}, N^{1/4}, N^{1/8}`), exactly as the paper's evaluation does when
/// it configures RCC for a known dataset size.
///
/// # Errors
/// Propagates configuration validation errors.
pub fn make_algorithm(
    kind: AlgorithmKind,
    config: StreamConfig,
    alpha: f64,
    expected_points: usize,
    seed: u64,
) -> Result<Box<dyn StreamingClusterer>> {
    Ok(match kind {
        AlgorithmKind::StreamKmPlusPlus => Box::new(CoresetTreeClusterer::new(
            config.with_merge_degree(2),
            seed,
        )?),
        AlgorithmKind::Cc => Box::new(CachedCoresetTree::new(config, seed)?),
        AlgorithmKind::Rcc => Box::new(RecursiveCachedTree::for_stream_length(
            config,
            3,
            expected_points,
            seed,
        )?),
        AlgorithmKind::OnlineCc => Box::new(OnlineCC::new(config, alpha, seed)?),
        AlgorithmKind::Sequential => Box::new(SequentialKMeans::new(config.k)?),
        AlgorithmKind::Batch => Box::new(BatchKMeansPP::new(config, seed)?),
    })
}

/// Result of running one algorithm over one stream with one query schedule.
#[derive(Debug, Clone)]
pub struct StreamRunResult {
    /// Timing / memory / accuracy measurements for the run.
    pub measurement: RunMeasurement,
    /// The centers returned by the final (end-of-stream) query.
    pub final_centers: Centers,
}

/// Streams `dataset` through `algorithm`, issuing queries according to
/// `schedule` plus one final query at the end of the stream, and measures
/// update time, query time, memory and the final clustering cost (evaluated
/// on the full dataset, as in the paper).
///
/// # Errors
/// Propagates algorithm errors (which indicate a bug in the harness setup,
/// e.g. inconsistent dimensions).
pub fn run_stream(
    algorithm: &mut dyn StreamingClusterer,
    dataset: &Dataset,
    schedule: QuerySchedule,
    schedule_seed: u64,
) -> Result<StreamRunResult> {
    let n = dataset.len() as u64;
    let mut schedule_rng = ChaCha8Rng::seed_from_u64(schedule_seed);
    let positions = schedule.positions(n, &mut schedule_rng);
    let mut next_query = 0usize;

    let mut timer = SplitTimer::new();

    for (i, point) in dataset.stream().enumerate() {
        let start = Instant::now();
        algorithm.update(point)?;
        timer.add_update(start.elapsed(), 1);

        let position = (i + 1) as u64;
        if next_query < positions.len() && positions[next_query] == position {
            next_query += 1;
            let start = Instant::now();
            algorithm.query()?;
            timer.add_query(start.elapsed(), 1);
        }
    }

    // Final end-of-stream query (every experiment in the paper evaluates the
    // cost "at the end of observing all the points").
    let start = Instant::now();
    let final_centers: Centers = algorithm.query()?;
    timer.add_query(start.elapsed(), 1);

    let final_cost = kmeans_cost(dataset.points(), &final_centers)?;

    let measurement = RunMeasurement {
        update_seconds: timer.update_seconds(),
        query_seconds: timer.query_seconds(),
        points: n,
        queries: timer.queries(),
        final_cost,
        memory_points: algorithm.memory_points(),
    };
    Ok(StreamRunResult {
        measurement,
        final_centers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{build_dataset, DatasetSpec};

    fn small_config(k: usize) -> StreamConfig {
        StreamConfig::new(k)
            .with_bucket_size(20 * k)
            .with_kmeans_runs(1)
            .with_lloyd_iterations(2)
    }

    #[test]
    fn every_algorithm_runs_end_to_end() {
        let dataset = build_dataset(DatasetSpec::Power, 600, 3);
        for kind in AlgorithmKind::ALL {
            let mut algo = make_algorithm(kind, small_config(5), 1.2, dataset.len(), 11).unwrap();
            let result = run_stream(algo.as_mut(), &dataset, QuerySchedule::every(200), 1).unwrap();
            assert_eq!(result.measurement.points, 600, "{}", kind.name());
            assert!(result.measurement.queries >= 3, "{}", kind.name());
            assert!(result.measurement.final_cost.is_finite(), "{}", kind.name());
            assert!(result.final_centers.len() <= 5, "{}", kind.name());
            assert!(result.measurement.memory_points > 0, "{}", kind.name());
        }
    }

    #[test]
    fn coreset_algorithms_beat_sequential_on_skewed_data() {
        let dataset = build_dataset(DatasetSpec::Intrusion, 3_000, 5);
        let mut seq = make_algorithm(
            AlgorithmKind::Sequential,
            small_config(10),
            1.2,
            dataset.len(),
            1,
        )
        .unwrap();
        let mut cc =
            make_algorithm(AlgorithmKind::Cc, small_config(10), 1.2, dataset.len(), 1).unwrap();
        let seq_cost = run_stream(seq.as_mut(), &dataset, QuerySchedule::None, 1)
            .unwrap()
            .measurement
            .final_cost;
        let cc_cost = run_stream(cc.as_mut(), &dataset, QuerySchedule::None, 1)
            .unwrap()
            .measurement
            .final_cost;
        // Figure 4(c): Sequential k-means is far worse on Intrusion.
        assert!(
            seq_cost > 2.0 * cc_cost,
            "expected Sequential ({seq_cost:.3e}) to be much worse than CC ({cc_cost:.3e})"
        );
    }

    #[test]
    fn memory_ordering_matches_table_4() {
        let dataset = build_dataset(DatasetSpec::Covtype, 4_000, 7);
        let config = small_config(10);
        let mut mem = std::collections::HashMap::new();
        for kind in [
            AlgorithmKind::StreamKmPlusPlus,
            AlgorithmKind::Cc,
            AlgorithmKind::Rcc,
            AlgorithmKind::OnlineCc,
        ] {
            let mut algo = make_algorithm(kind, config, 1.2, dataset.len(), 13).unwrap();
            let result = run_stream(algo.as_mut(), &dataset, QuerySchedule::every(100), 2).unwrap();
            mem.insert(kind.name(), result.measurement.memory_points);
        }
        // streamkm++ uses the least memory; CC and OnlineCC are similar; RCC the most.
        assert!(mem["StreamKM++"] <= mem["CC"]);
        assert!(mem["CC"] <= mem["RCC"] * 2);
        let cc = mem["CC"] as f64;
        let online = mem["OnlineCC"] as f64;
        // "Similar" is qualitative: OnlineCC keeps an extra facility list on
        // top of the coreset tree (observed ~26% with the vendored RNG), so
        // allow it that constant-factor slack while still separating it from
        // RCC's strictly larger footprint.
        assert!(
            (online - cc).abs() / cc < 0.3,
            "CC {cc} vs OnlineCC {online}"
        );
    }
}
