//! Criterion micro-benchmark: k-means++ seeding cost as a function of the
//! input size and k (Theorem 1 says O(kdn); this bench verifies the linear
//! scaling that the query-cost analysis of Table 1 relies on).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use skm_bench::workloads::{build_dataset, DatasetSpec};
use skm_clustering::kmeanspp::kmeanspp;

fn bench_kmeanspp(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeanspp_seed");
    group.sample_size(10);
    for &n in &[500usize, 1_000, 2_000] {
        let dataset = build_dataset(DatasetSpec::Covtype, n, 1);
        for &k in &[10usize, 30] {
            group.bench_with_input(BenchmarkId::new(format!("n{n}"), k), &k, |b, &k| {
                let mut rng = ChaCha8Rng::seed_from_u64(7);
                b.iter(|| kmeanspp(dataset.points(), k, &mut rng).unwrap());
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kmeanspp);
criterion_main!(benches);
