//! Criterion benchmark: per-point update cost of each streaming algorithm
//! (the "Update Cost" column of Table 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use skm_bench::runner::{make_algorithm, AlgorithmKind};
use skm_bench::workloads::{build_dataset, DatasetSpec};
use skm_stream::StreamConfig;

fn bench_stream_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_update");
    group.sample_size(10);
    let n = 4_000usize;
    let dataset = build_dataset(DatasetSpec::Power, n, 5);
    group.throughput(Throughput::Elements(n as u64));
    let config = StreamConfig::new(10)
        .with_bucket_size(200)
        .with_kmeans_runs(1)
        .with_lloyd_iterations(2);
    for kind in [
        AlgorithmKind::Sequential,
        AlgorithmKind::StreamKmPlusPlus,
        AlgorithmKind::Cc,
        AlgorithmKind::Rcc,
        AlgorithmKind::OnlineCc,
    ] {
        group.bench_with_input(
            BenchmarkId::new("update_stream", kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut algo = make_algorithm(kind, config, 1.2, n, 17).unwrap();
                    for p in dataset.stream() {
                        algo.update(p).unwrap();
                    }
                    algo.memory_points()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_stream_update);
criterion_main!(benches);
