//! Criterion micro-benchmark + ablation: coreset construction cost for the
//! k-means++ based constructor vs the sensitivity-sampling constructor
//! (experiment A1 in DESIGN.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use skm_bench::workloads::{build_dataset, DatasetSpec};
use skm_coreset::construct::{CoresetBuilder, CoresetMethod};
use skm_coreset::Span;

fn bench_coreset_construct(c: &mut Criterion) {
    let mut group = c.benchmark_group("coreset_construct");
    group.sample_size(10);
    let k = 10;
    let size = 200;
    for &n in &[1_000usize, 4_000] {
        let dataset = build_dataset(DatasetSpec::Intrusion, n, 3);
        for (label, method) in [
            ("kmeanspp", CoresetMethod::KMeansPP),
            ("sensitivity", CoresetMethod::SensitivitySampling),
        ] {
            let builder = CoresetBuilder::new(k).with_size(size).with_method(method);
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                let mut rng = ChaCha8Rng::seed_from_u64(11);
                b.iter(|| {
                    builder
                        .build(dataset.points(), Span::single(1), 1, &mut rng)
                        .unwrap()
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_coreset_construct);
criterion_main!(benches);
