//! Criterion benchmark: clustering-query latency of each algorithm after a
//! warmed-up stream (the "Query Cost" column of Table 1 and the headline
//! claim of the paper — CC/RCC/OnlineCC answer queries much faster than
//! streamkm++).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skm_bench::runner::{make_algorithm, AlgorithmKind};
use skm_bench::workloads::{build_dataset, DatasetSpec};
use skm_stream::{StreamConfig, StreamingClusterer};

fn warmed_algorithm(
    kind: AlgorithmKind,
    config: StreamConfig,
    n: usize,
) -> Box<dyn StreamingClusterer> {
    let dataset = build_dataset(DatasetSpec::Covtype, n, 9);
    let mut algo = make_algorithm(kind, config, 1.2, n, 23).unwrap();
    let bucket = config.bucket_size;
    for (i, p) in dataset.stream().enumerate() {
        algo.update(p).unwrap();
        // Keep the coreset caches warm the way the paper's query-heavy
        // regime does: query after every base bucket.
        if (i + 1) % bucket == 0 {
            algo.query().unwrap();
        }
    }
    algo
}

fn bench_query_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_latency");
    group.sample_size(10);
    let n = 6_000usize;
    let config = StreamConfig::new(10)
        .with_bucket_size(200)
        .with_kmeans_runs(1)
        .with_lloyd_iterations(2);
    for kind in [
        AlgorithmKind::StreamKmPlusPlus,
        AlgorithmKind::Cc,
        AlgorithmKind::Rcc,
        AlgorithmKind::OnlineCc,
        AlgorithmKind::Sequential,
    ] {
        let mut algo = warmed_algorithm(kind, config, n);
        group.bench_with_input(BenchmarkId::new("query", kind.name()), &kind, |b, _| {
            b.iter(|| algo.query().unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query_latency);
criterion_main!(benches);
