//! CRC-32 (IEEE 802.3 polynomial, the zlib/`cksum -o 3` variant): the
//! per-record integrity check. Table-driven, table built at compile time.

/// Reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        // lint:allow(panic-freedom) const-time table fill; i < 256 by the loop bound
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `data` (IEEE, reflected, init/final XOR `0xFFFF_FFFF`).
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        let index = ((crc ^ u32::from(byte)) & 0xFF) as usize;
        // Table is 256 entries and the index is masked to 8 bits.
        let entry = TABLE.get(index).copied().unwrap_or(0);
        crc = (crc >> 8) ^ entry;
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"hello world");
        let mut flipped = *b"hello world";
        flipped[3] ^= 0x01;
        assert_ne!(base, crc32(&flipped));
    }
}
