//! Batched, checksummed write-ahead logging for `skm-serve` tenants.
//!
//! One [`Wal`] instance owns one directory and logs one tenant's totally
//! ordered record stream. The crate deliberately knows nothing about what
//! a record *means*: payloads are opaque byte strings (the serving layer
//! encodes typed replication records with its protocol codec), so the
//! format below is stable against protocol evolution and the crate stays
//! dependency-free.
//!
//! ## On-disk layout
//!
//! ```text
//! <dir>/
//!   seg-00000000000000000042.wal   append-only record segments
//!   seg-00000000000000000117.wal   (file name = seq of the first record)
//!   ckpt-00000000000000000116.snap latest checkpoint (covers seq <= 116)
//! ```
//!
//! A **segment** is a 16-byte header (`SKMW` magic, format version,
//! first-record sequence number) followed by length-prefixed records:
//!
//! ```text
//! [len: u32 LE][crc32(payload): u32 LE][payload: len bytes]
//! ```
//!
//! Sequence numbers are implicit — the `i`-th record of a segment has
//! `seq = first_seq + i` — so the stream is contiguous by construction
//! and recovery can verify cross-segment continuity.
//!
//! A **checkpoint** is an opaque caller-provided blob (the engine's
//! versioned tenant snapshot) stored with its own magic/version/CRC
//! header and written via temp-file + rename, covering every record with
//! `seq <= N`. [`Wal::checkpoint`] folds the whole sealed prefix into the
//! checkpoint and deletes the covered segments: compaction truncates the
//! tail to empty and the log starts a fresh segment.
//!
//! ## Durability model
//!
//! Appends are buffered (group commit) and become durable at the next
//! [`Wal::sync`] — triggered inline when the buffered bytes exceed
//! [`WalOptions::flush_bytes`] or the oldest buffered record is older
//! than [`WalOptions::fsync_interval`], and by callers ticking
//! [`Wal::maybe_sync`] from a timer. `fsync_interval = 0` degenerates to
//! sync-on-every-append.
//!
//! ## Crash recovery
//!
//! [`Wal::open`] restores the latest checkpoint and replays the segment
//! tail, distinguishing two failure shapes:
//!
//! * **Torn write** — the final segment ends mid-record (incomplete
//!   header or short payload). This is the expected shape of a crash
//!   during a group-commit `write`; the partial record is truncated away
//!   and recovery succeeds with every complete record.
//! * **Corruption** — a complete record whose CRC does not match, a
//!   mangled header, a sequence gap, or a short record *before* the end
//!   of the log. These are never silently dropped:
//!   [`WalError::Corrupt`] names the file and offset.

mod crc;
mod log;

pub use crate::log::{Recovered, Wal, WalOptions, MAX_RECORD_BYTES};
pub use crc::crc32;

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Failures surfaced by the log.
#[derive(Debug)]
pub enum WalError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// The on-disk state is invalid in a way a torn trailing write cannot
    /// explain: checksum mismatch, bad magic, or a sequence gap.
    Corrupt {
        /// File the corruption was detected in.
        path: PathBuf,
        /// Byte offset of the offending record or header.
        offset: u64,
        /// Human-readable description of the mismatch.
        reason: String,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "wal i/o error: {e}"),
            Self::Corrupt {
                path,
                offset,
                reason,
            } => write!(
                f,
                "wal corruption in {} at byte {offset}: {reason}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Corrupt { .. } => None,
        }
    }
}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, WalError>;
