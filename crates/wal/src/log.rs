//! The log itself: segment writer with group commit, checkpoint
//! compaction, and the recovery scanner. See the crate docs for the
//! on-disk layout and the torn-write/corruption distinction.

use crate::crc::crc32;
use crate::{Result, WalError};
use std::collections::VecDeque;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Segment file magic (`SKMW` = streaming-k-means WAL).
const SEG_MAGIC: [u8; 4] = *b"SKMW";
/// Checkpoint file magic.
const CKPT_MAGIC: [u8; 4] = *b"SKMC";
/// On-disk format version of both file kinds.
const FORMAT_VERSION: u32 = 1;
/// Segment header: magic + version + first_seq.
const SEG_HEADER_BYTES: usize = 4 + 4 + 8;
/// Checkpoint header: magic + version + seq + blob len + blob crc.
const CKPT_HEADER_BYTES: usize = 4 + 4 + 8 + 4 + 4;
/// Per-record framing overhead: length prefix + CRC.
const RECORD_HEADER_BYTES: usize = 4 + 4;

/// Hard cap on a single record payload. Far above anything the serving
/// layer produces (wire frames cap at 8 MiB); its real job is bounding
/// the damage of a corrupt length prefix during recovery.
pub const MAX_RECORD_BYTES: usize = 16 * 1024 * 1024;

/// Tuning knobs of a [`Wal`]. The defaults favour the serving hot path:
/// appends buffer in memory and a group commit (write + `fsync`) happens
/// every 5 ms or 256 KiB, whichever comes first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalOptions {
    /// Group-commit latency bound: buffered records are synced once the
    /// oldest of them has waited this long. `ZERO` syncs every append.
    pub fsync_interval: Duration,
    /// Group-commit byte bound: buffered records are synced once their
    /// encoded size reaches this many bytes.
    pub flush_bytes: usize,
    /// A segment is sealed and a fresh one started once it grows past
    /// this many bytes.
    pub segment_bytes: usize,
    /// [`Wal::checkpoint_due`] turns true once the un-checkpointed tail
    /// exceeds this many bytes — the owner should fold the log into a
    /// fresh checkpoint (compaction is the owner's call because only it
    /// can produce the state blob).
    pub checkpoint_bytes: usize,
}

impl Default for WalOptions {
    fn default() -> Self {
        Self {
            fsync_interval: Duration::from_millis(5),
            flush_bytes: 256 * 1024,
            segment_bytes: 8 * 1024 * 1024,
            checkpoint_bytes: 4 * 1024 * 1024,
        }
    }
}

impl WalOptions {
    /// Sets the group-commit latency bound from milliseconds (`0` syncs
    /// every append).
    #[must_use]
    pub fn with_fsync_ms(mut self, ms: u64) -> Self {
        self.fsync_interval = Duration::from_millis(ms);
        self
    }

    /// Sets the compaction threshold ([`WalOptions::checkpoint_bytes`]).
    #[must_use]
    pub fn with_checkpoint_bytes(mut self, bytes: usize) -> Self {
        self.checkpoint_bytes = bytes;
        self
    }
}

/// What [`Wal::open`] found on disk: the latest checkpoint blob (if any)
/// and every complete record after it, in sequence order. Replaying
/// `checkpoint` then `tail` against the owning engine reproduces the
/// pre-crash state bit-identically.
#[derive(Debug)]
pub struct Recovered {
    /// The recovered log, positioned to append at `last recovered seq + 1`.
    pub wal: Wal,
    /// Sequence number covered by the checkpoint and its opaque blob
    /// (`None` for a log that never checkpointed).
    pub checkpoint: Option<(u64, Vec<u8>)>,
    /// Complete records after the checkpoint: `(seq, payload)` pairs.
    pub tail: Vec<(u64, Vec<u8>)>,
}

/// One tenant's write-ahead log. See the crate docs for the format and
/// durability model. Not internally synchronized — the owner serializes
/// access (the serve engine keeps one behind its per-tenant lock).
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    opts: WalOptions,
    /// Sequence number the next append receives.
    next_seq: u64,
    /// Highest sequence number known to be on stable storage.
    durable_seq: u64,
    /// Sequence number covered by the latest checkpoint (0 = none).
    checkpoint_seq: u64,
    /// Open segment: handle, first seq, bytes written (header included).
    file: File,
    segment_first: u64,
    segment_bytes: u64,
    /// Group-commit buffer of encoded-but-unwritten records.
    buffer: Vec<u8>,
    /// Arrival time of the oldest buffered record.
    dirty_since: Option<Instant>,
    /// In-memory copy of every record after the checkpoint, for follower
    /// replication ([`Wal::records_since`]). Compaction truncates it.
    tail: VecDeque<(u64, Vec<u8>)>,
    tail_bytes: usize,
    /// Group commits performed (observability: batching effectiveness).
    syncs: u64,
}

/// `seg-{first_seq:020}.wal`.
fn segment_name(first_seq: u64) -> String {
    format!("seg-{first_seq:020}.wal")
}

/// `ckpt-{seq:020}.snap`.
fn checkpoint_name(seq: u64) -> String {
    format!("ckpt-{seq:020}.snap")
}

/// Parses `prefix-{20 digits}.{ext}` names back to their number.
fn parse_numbered(name: &str, prefix: &str, ext: &str) -> Option<u64> {
    let digits = name.strip_prefix(prefix)?.strip_suffix(ext)?;
    (digits.len() == 20 && digits.bytes().all(|b| b.is_ascii_digit()))
        .then(|| digits.parse().ok())
        .flatten()
}

fn corrupt(path: &Path, offset: u64, reason: impl Into<String>) -> WalError {
    WalError::Corrupt {
        path: path.to_path_buf(),
        offset,
        reason: reason.into(),
    }
}

/// Reads a little-endian `u32` at `at` (caller guarantees bounds).
fn read_u32(bytes: &[u8], at: usize) -> u32 {
    match bytes.get(at..at + 4).map(TryInto::try_into) {
        Some(Ok(array)) => u32::from_le_bytes(array),
        _ => 0,
    }
}

/// Reads a little-endian `u64` at `at` (caller guarantees bounds).
fn read_u64(bytes: &[u8], at: usize) -> u64 {
    match bytes.get(at..at + 8).map(TryInto::try_into) {
        Some(Ok(array)) => u64::from_le_bytes(array),
        _ => 0,
    }
}

/// Best-effort directory fsync so renames/creates survive power loss on
/// filesystems that need it. Failure is ignored: not every platform
/// supports syncing a directory handle.
fn sync_dir(dir: &Path) {
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
}

/// The parsed result of scanning one segment file.
struct ScannedSegment {
    first_seq: u64,
    records: Vec<Vec<u8>>,
}

/// Scans a segment, validating the header and every record CRC.
///
/// `last` marks the final segment of the log: only there may the file end
/// mid-record (torn group commit), in which case the partial trailing
/// record is truncated off the file. Anywhere else a short read is
/// corruption.
fn scan_segment(path: &Path, last: bool) -> Result<ScannedSegment> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < SEG_HEADER_BYTES {
        if last {
            // A crash while the header itself was being written; the
            // segment holds no records, drop the partial header.
            fs::remove_file(path)?;
            return Ok(ScannedSegment {
                first_seq: 0,
                records: Vec::new(),
            });
        }
        return Err(corrupt(path, 0, "segment shorter than its header"));
    }
    if bytes.get(..4) != Some(&SEG_MAGIC[..]) {
        return Err(corrupt(path, 0, "bad segment magic"));
    }
    let version = read_u32(&bytes, 4);
    if version != FORMAT_VERSION {
        return Err(corrupt(
            path,
            4,
            format!("unsupported segment format version {version}"),
        ));
    }
    let first_seq = read_u64(&bytes, 8);
    let mut records = Vec::new();
    let mut at = SEG_HEADER_BYTES;
    while at < bytes.len() {
        let remaining = bytes.len() - at;
        if remaining < RECORD_HEADER_BYTES {
            return truncate_torn(path, last, &mut bytes, at, first_seq, records);
        }
        let len = read_u32(&bytes, at) as usize;
        if len > MAX_RECORD_BYTES {
            return Err(corrupt(
                path,
                at as u64,
                format!("record length {len} exceeds the {MAX_RECORD_BYTES}-byte cap"),
            ));
        }
        let expected_crc = read_u32(&bytes, at + 4);
        let start = at + RECORD_HEADER_BYTES;
        let Some(payload) = bytes.get(start..start + len) else {
            return truncate_torn(path, last, &mut bytes, at, first_seq, records);
        };
        let actual_crc = crc32(payload);
        if actual_crc != expected_crc {
            return Err(corrupt(
                path,
                at as u64,
                format!(
                    "record checksum mismatch (stored {expected_crc:#010x}, \
                     computed {actual_crc:#010x})"
                ),
            ));
        }
        records.push(payload.to_vec());
        at = start + len;
    }
    Ok(ScannedSegment { first_seq, records })
}

/// Handles a record cut short at byte `at`: in the last segment this is a
/// torn group commit — truncate the file back to the last complete record
/// and succeed; anywhere else it is corruption.
fn truncate_torn(
    path: &Path,
    last: bool,
    bytes: &mut Vec<u8>,
    at: usize,
    first_seq: u64,
    records: Vec<Vec<u8>>,
) -> Result<ScannedSegment> {
    if !last {
        return Err(corrupt(
            path,
            at as u64,
            "record cut short before the final segment",
        ));
    }
    bytes.truncate(at);
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(at as u64)?;
    file.sync_data()?;
    Ok(ScannedSegment { first_seq, records })
}

/// Reads and validates a checkpoint file, returning `(seq, blob)`.
fn read_checkpoint(path: &Path) -> Result<(u64, Vec<u8>)> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < CKPT_HEADER_BYTES {
        return Err(corrupt(path, 0, "checkpoint shorter than its header"));
    }
    if bytes.get(..4) != Some(&CKPT_MAGIC[..]) {
        return Err(corrupt(path, 0, "bad checkpoint magic"));
    }
    let version = read_u32(&bytes, 4);
    if version != FORMAT_VERSION {
        return Err(corrupt(
            path,
            4,
            format!("unsupported checkpoint format version {version}"),
        ));
    }
    let seq = read_u64(&bytes, 8);
    let len = read_u32(&bytes, 16) as usize;
    let expected_crc = read_u32(&bytes, 20);
    let Some(blob) = bytes.get(CKPT_HEADER_BYTES..CKPT_HEADER_BYTES + len) else {
        return Err(corrupt(path, 16, "checkpoint blob cut short"));
    };
    let actual_crc = crc32(blob);
    if actual_crc != expected_crc {
        return Err(corrupt(
            path,
            20,
            format!(
                "checkpoint checksum mismatch (stored {expected_crc:#010x}, \
                 computed {actual_crc:#010x})"
            ),
        ));
    }
    Ok((seq, blob.to_vec()))
}

impl Wal {
    /// Opens (or creates) the log rooted at `dir`, running crash recovery:
    /// the latest checkpoint is loaded, segments are scanned in order with
    /// every CRC verified, a torn trailing record is truncated away, and
    /// the returned [`Recovered`] carries everything the owner must replay.
    ///
    /// # Errors
    /// [`WalError::Io`] on filesystem failure; [`WalError::Corrupt`] when
    /// the on-disk state cannot be explained by a torn trailing write
    /// (checksum mismatch, bad header, sequence gap).
    pub fn open(dir: impl Into<PathBuf>, opts: WalOptions) -> Result<Recovered> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;

        // Inventory the directory.
        let mut segment_seqs: Vec<u64> = Vec::new();
        let mut checkpoint_seqs: Vec<u64> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(seq) = parse_numbered(name, "seg-", ".wal") {
                segment_seqs.push(seq);
            } else if let Some(seq) = parse_numbered(name, "ckpt-", ".snap") {
                checkpoint_seqs.push(seq);
            }
        }
        segment_seqs.sort_unstable();
        checkpoint_seqs.sort_unstable();

        // Latest checkpoint wins; older ones are leftovers from a crash
        // between rename and cleanup.
        let checkpoint = match checkpoint_seqs.last() {
            Some(&seq) => Some(read_checkpoint(&dir.join(checkpoint_name(seq)))?),
            None => None,
        };
        let checkpoint_seq = checkpoint.as_ref().map_or(0, |(seq, _)| *seq);
        for &old in checkpoint_seqs.iter().rev().skip(1) {
            let _ = fs::remove_file(dir.join(checkpoint_name(old)));
        }

        // Scan segments in order, verifying continuity and collecting the
        // records the checkpoint does not cover.
        let mut tail: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut next_seq = checkpoint_seq + 1;
        let mut expected_first: Option<u64> = None;
        let last_index = segment_seqs.len().saturating_sub(1);
        for (index, &first_seq) in segment_seqs.iter().enumerate() {
            let path = dir.join(segment_name(first_seq));
            let scanned = scan_segment(&path, index == last_index)?;
            if !scanned.records.is_empty() && scanned.first_seq != first_seq {
                return Err(corrupt(
                    &path,
                    8,
                    format!(
                        "segment header says first seq {} but the file is named {first_seq}",
                        scanned.first_seq
                    ),
                ));
            }
            if scanned.records.is_empty() && index == last_index {
                // An empty trailing segment (fresh roll, nothing written).
                let _ = fs::remove_file(&path);
                continue;
            }
            if let Some(expected) = expected_first {
                if first_seq != expected {
                    return Err(corrupt(
                        &path,
                        0,
                        format!("sequence gap: segment starts at {first_seq}, expected {expected}"),
                    ));
                }
            }
            let record_count = scanned.records.len() as u64;
            expected_first = Some(first_seq + record_count);
            for (offset, payload) in scanned.records.into_iter().enumerate() {
                let seq = first_seq + offset as u64;
                if seq > checkpoint_seq {
                    if seq != next_seq {
                        return Err(corrupt(
                            &path,
                            0,
                            format!("sequence gap: record {seq} follows {}", next_seq - 1),
                        ));
                    }
                    tail.push((seq, payload));
                    next_seq = seq + 1;
                }
            }
            // A fully checkpoint-covered segment survived an interrupted
            // compaction; finish the cleanup.
            if first_seq + record_count <= checkpoint_seq + 1 {
                let _ = fs::remove_file(&path);
            }
        }

        // Always roll a fresh segment: appending resumes in a new file so
        // the recovered ones stay immutable.
        let first = next_seq;
        let file = create_segment(&dir, first)?;
        sync_dir(&dir);

        let tail_bytes = tail
            .iter()
            .map(|(_, p)| p.len() + RECORD_HEADER_BYTES)
            .sum();
        let wal = Self {
            dir,
            opts,
            next_seq,
            durable_seq: next_seq - 1,
            checkpoint_seq,
            file,
            segment_first: first,
            segment_bytes: SEG_HEADER_BYTES as u64,
            buffer: Vec::new(),
            dirty_since: None,
            tail: tail.iter().cloned().collect(),
            tail_bytes,
            syncs: 0,
        };
        Ok(Recovered {
            wal,
            checkpoint,
            tail,
        })
    }

    /// The directory this log lives in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Sequence number the next [`Wal::append`] will return.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Highest appended sequence number (0 when the log is empty).
    #[must_use]
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Highest sequence number guaranteed on stable storage.
    #[must_use]
    pub fn durable_seq(&self) -> u64 {
        self.durable_seq
    }

    /// Sequence number covered by the latest checkpoint (0 = none yet).
    #[must_use]
    pub fn checkpoint_seq(&self) -> u64 {
        self.checkpoint_seq
    }

    /// Group commits performed so far (each one write + fsync).
    #[must_use]
    pub fn sync_count(&self) -> u64 {
        self.syncs
    }

    /// Bytes of record data appended since the last checkpoint.
    #[must_use]
    pub fn tail_bytes(&self) -> usize {
        self.tail_bytes
    }

    /// True once the un-checkpointed tail has outgrown
    /// [`WalOptions::checkpoint_bytes`]: the owner should snapshot its
    /// state and call [`Wal::checkpoint`].
    #[must_use]
    pub fn checkpoint_due(&self) -> bool {
        self.tail_bytes >= self.opts.checkpoint_bytes
    }

    /// Appends one record, returning its sequence number. The record is
    /// buffered; durability follows the group-commit policy (see
    /// [`WalOptions`]). Call [`Wal::sync`] to force it.
    ///
    /// # Errors
    /// [`WalError::Io`] when the payload exceeds [`MAX_RECORD_BYTES`] or a
    /// triggered group commit fails.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64> {
        if payload.len() > MAX_RECORD_BYTES {
            return Err(WalError::Io(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("record of {} bytes exceeds MAX_RECORD_BYTES", payload.len()),
            )));
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let len = payload.len() as u32;
        self.buffer.extend_from_slice(&len.to_le_bytes());
        self.buffer.extend_from_slice(&crc32(payload).to_le_bytes());
        self.buffer.extend_from_slice(payload);
        self.tail.push_back((seq, payload.to_vec()));
        self.tail_bytes += payload.len() + RECORD_HEADER_BYTES;
        if self.dirty_since.is_none() {
            self.dirty_since = Some(Instant::now());
        }
        let due_by_bytes = self.buffer.len() >= self.opts.flush_bytes;
        let due_by_age = self
            .dirty_since
            .is_some_and(|since| since.elapsed() >= self.opts.fsync_interval);
        if due_by_bytes || due_by_age {
            self.sync()?;
        }
        Ok(seq)
    }

    /// Group-commits the buffer if the oldest buffered record has waited
    /// at least [`WalOptions::fsync_interval`]. Returns whether a commit
    /// happened. Intended for a periodic flusher tick.
    ///
    /// # Errors
    /// Propagates the underlying [`Wal::sync`] failure.
    pub fn maybe_sync(&mut self) -> Result<bool> {
        let due = self
            .dirty_since
            .is_some_and(|since| since.elapsed() >= self.opts.fsync_interval);
        if due {
            self.sync()?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Forces a group commit: writes the buffer to the open segment and
    /// `fsync`s it. Returns the new durable sequence number. Seals the
    /// segment and rolls a fresh one when it has outgrown
    /// [`WalOptions::segment_bytes`].
    ///
    /// # Errors
    /// [`WalError::Io`] on write/sync failure.
    pub fn sync(&mut self) -> Result<u64> {
        if !self.buffer.is_empty() {
            self.file.write_all(&self.buffer)?;
            self.file.sync_data()?;
            self.segment_bytes += self.buffer.len() as u64;
            self.buffer.clear();
            self.syncs += 1;
        }
        self.dirty_since = None;
        self.durable_seq = self.next_seq - 1;
        if self.segment_bytes >= self.opts.segment_bytes as u64 {
            self.roll_segment()?;
        }
        Ok(self.durable_seq)
    }

    /// Seals the open segment and starts a fresh one at `next_seq`.
    fn roll_segment(&mut self) -> Result<()> {
        self.file.sync_data()?;
        self.file = create_segment(&self.dir, self.next_seq)?;
        self.segment_first = self.next_seq;
        self.segment_bytes = SEG_HEADER_BYTES as u64;
        sync_dir(&self.dir);
        Ok(())
    }

    /// Compaction: folds everything appended so far into a checkpoint.
    ///
    /// `blob` is the owner's serialized state covering every record up to
    /// [`Wal::last_seq`] (the owner produces it while holding the same
    /// lock that serializes appends, so no record can race past it). The
    /// sequence is: group-commit outstanding records, write the
    /// checkpoint via temp file + rename, delete the covered segments and
    /// truncate the in-memory tail, then roll a fresh segment.
    ///
    /// # Errors
    /// [`WalError::Io`] on any filesystem failure; the log stays usable
    /// (the old checkpoint remains authoritative until the rename lands).
    pub fn checkpoint(&mut self, blob: &[u8]) -> Result<u64> {
        self.sync()?;
        let seq = self.last_seq();
        let mut bytes = Vec::with_capacity(CKPT_HEADER_BYTES + blob.len());
        bytes.extend_from_slice(&CKPT_MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&seq.to_le_bytes());
        bytes.extend_from_slice(&(blob.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(blob).to_le_bytes());
        bytes.extend_from_slice(blob);
        let tmp = self.dir.join("ckpt.tmp");
        {
            let mut file = File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_data()?;
        }
        let final_path = self.dir.join(checkpoint_name(seq));
        fs::rename(&tmp, &final_path)?;
        sync_dir(&self.dir);

        // The rename is the commit point; everything after is cleanup.
        let old_checkpoint = self.checkpoint_seq;
        self.checkpoint_seq = seq;
        self.tail.clear();
        self.tail_bytes = 0;
        if old_checkpoint != seq {
            let _ = fs::remove_file(self.dir.join(checkpoint_name(old_checkpoint)));
        }
        // Delete covered segments: every record so far is <= seq, so all
        // sealed segments go; the open one is replaced by a fresh roll.
        let covered: Vec<u64> = self.list_segments()?;
        self.file = create_segment_overwriting(&self.dir, self.next_seq)?;
        for first in covered {
            if first != self.next_seq {
                let _ = fs::remove_file(self.dir.join(segment_name(first)));
            }
        }
        self.segment_first = self.next_seq;
        self.segment_bytes = SEG_HEADER_BYTES as u64;
        sync_dir(&self.dir);
        Ok(seq)
    }

    /// The first-record sequence numbers of every segment on disk.
    fn list_segments(&self) -> Result<Vec<u64>> {
        let mut seqs = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            if let Some(seq) = name
                .to_str()
                .and_then(|n| parse_numbered(n, "seg-", ".wal"))
            {
                seqs.push(seq);
            }
        }
        Ok(seqs)
    }

    /// Durable records with `seq >= from_seq`, for follower replication.
    ///
    /// Returns `None` when `from_seq` has already been compacted away
    /// (`from_seq <= checkpoint_seq`) — the caller must resynchronize the
    /// follower from a state snapshot instead. Only records that have
    /// been group-committed are returned, so a follower can never get
    /// ahead of what this log would recover to after a crash.
    #[must_use]
    pub fn records_since(&self, from_seq: u64) -> Option<Vec<(u64, Vec<u8>)>> {
        if from_seq <= self.checkpoint_seq {
            return None;
        }
        Some(
            self.tail
                .iter()
                .filter(|(seq, _)| *seq >= from_seq && *seq <= self.durable_seq)
                .cloned()
                .collect(),
        )
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        // Best-effort final group commit: a clean shutdown should not
        // lose the buffered suffix. (Crash durability is governed by the
        // sync policy, not by Drop.)
        let _ = self.sync();
    }
}

/// Creates a fresh segment file (failing if it already exists) and writes
/// its header.
fn create_segment(dir: &Path, first_seq: u64) -> Result<File> {
    open_segment(dir, first_seq, false)
}

/// Creates a fresh segment file, overwriting an existing one (only used
/// by [`Wal::checkpoint`], where every prior record is covered).
fn create_segment_overwriting(dir: &Path, first_seq: u64) -> Result<File> {
    open_segment(dir, first_seq, true)
}

fn open_segment(dir: &Path, first_seq: u64, overwrite: bool) -> Result<File> {
    let path = dir.join(segment_name(first_seq));
    let mut options = OpenOptions::new();
    options.write(true);
    if overwrite {
        options.create(true).truncate(true);
    } else {
        options.create_new(true);
    }
    let mut file = match options.open(&path) {
        Ok(file) => file,
        Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
            // Only an empty just-rolled segment can collide (a segment
            // with records would have advanced next_seq past its name);
            // replace it.
            OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&path)?
        }
        Err(e) => return Err(WalError::Io(e)),
    };
    let mut header = Vec::with_capacity(SEG_HEADER_BYTES);
    header.extend_from_slice(&SEG_MAGIC);
    header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    header.extend_from_slice(&first_seq.to_le_bytes());
    file.write_all(&header)?;
    file.sync_data()?;
    Ok(file)
}
