//! Behavioural suite of the write-ahead log: append/recover round trips,
//! group-commit batching, segment rolling, checkpoint compaction, and the
//! crash-injection matrix (torn trailing writes truncate, bit flips are
//! loud typed corruption errors).

use skm_wal::{Wal, WalError, WalOptions, MAX_RECORD_BYTES};
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// A scratch directory unique to the calling test.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "skm-wal-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Options that never sync or checkpoint on their own — the test drives
/// every durability event explicitly.
fn manual() -> WalOptions {
    WalOptions {
        fsync_interval: Duration::from_secs(3600),
        flush_bytes: usize::MAX,
        segment_bytes: u64::MAX as usize,
        checkpoint_bytes: usize::MAX,
    }
}

fn payload(i: u64) -> Vec<u8> {
    format!("record-{i}-{}", "x".repeat((i % 7) as usize)).into_bytes()
}

/// The single `.wal` segment file in `dir` (panics unless exactly one).
fn only_segment(dir: &Path) -> PathBuf {
    let mut segments: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "wal"))
        .collect();
    segments.sort();
    assert_eq!(segments.len(), 1, "expected one segment in {dir:?}");
    segments.remove(0)
}

#[test]
fn append_sync_recover_round_trip() {
    let dir = temp_dir("round-trip");
    let mut recovered = Wal::open(&dir, manual()).unwrap();
    assert!(recovered.checkpoint.is_none());
    assert!(recovered.tail.is_empty());
    for i in 1..=10 {
        let seq = recovered.wal.append(&payload(i)).unwrap();
        assert_eq!(seq, i);
    }
    assert_eq!(recovered.wal.durable_seq(), 0, "nothing synced yet");
    assert_eq!(recovered.wal.sync().unwrap(), 10);
    drop(recovered);

    let reopened = Wal::open(&dir, manual()).unwrap();
    assert!(reopened.checkpoint.is_none());
    let seqs: Vec<u64> = reopened.tail.iter().map(|(s, _)| *s).collect();
    assert_eq!(seqs, (1..=10).collect::<Vec<_>>());
    for (i, (_, bytes)) in reopened.tail.iter().enumerate() {
        assert_eq!(bytes, &payload(i as u64 + 1));
    }
    assert_eq!(reopened.wal.next_seq(), 11);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn group_commit_batches_fsyncs() {
    let dir = temp_dir("group-commit");
    let mut opts = manual();
    opts.flush_bytes = 4 * 1024;
    let mut wal = Wal::open(&dir, opts).unwrap().wal;
    for i in 0..1000u64 {
        wal.append(&payload(i)).unwrap();
    }
    wal.sync().unwrap();
    // ~16 KiB of records against a 4 KiB threshold: a handful of commits,
    // not one per append.
    assert!(wal.sync_count() >= 2, "threshold should have triggered");
    assert!(
        wal.sync_count() < 50,
        "group commit collapsed {} appends into {} syncs",
        1000,
        wal.sync_count()
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn zero_interval_syncs_every_append() {
    let dir = temp_dir("sync-every");
    let opts = WalOptions::default().with_fsync_ms(0);
    let mut wal = Wal::open(&dir, opts).unwrap().wal;
    for i in 0..5u64 {
        wal.append(&payload(i)).unwrap();
        assert_eq!(wal.durable_seq(), i + 1);
    }
    assert_eq!(wal.sync_count(), 5);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn maybe_sync_respects_the_interval() {
    let dir = temp_dir("maybe-sync");
    let mut opts = manual();
    opts.fsync_interval = Duration::from_millis(20);
    let mut wal = Wal::open(&dir, opts).unwrap().wal;
    wal.append(b"hello").unwrap();
    assert!(!wal.maybe_sync().unwrap(), "interval has not elapsed");
    std::thread::sleep(Duration::from_millis(25));
    assert!(wal.maybe_sync().unwrap(), "interval elapsed");
    assert_eq!(wal.durable_seq(), 1);
    assert!(!wal.maybe_sync().unwrap(), "nothing buffered");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn drop_flushes_buffered_records() {
    let dir = temp_dir("drop-flush");
    {
        let mut wal = Wal::open(&dir, manual()).unwrap().wal;
        wal.append(b"buffered-only").unwrap();
    } // Drop group-commits.
    let reopened = Wal::open(&dir, manual()).unwrap();
    assert_eq!(reopened.tail.len(), 1);
    assert_eq!(reopened.tail[0].1, b"buffered-only");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn segments_roll_and_recovery_spans_them() {
    let dir = temp_dir("roll");
    let mut opts = manual();
    opts.segment_bytes = 512; // tiny: force many rolls
    opts.flush_bytes = 128;
    let mut wal = Wal::open(&dir, opts).unwrap().wal;
    for i in 1..=200u64 {
        wal.append(&payload(i)).unwrap();
    }
    wal.sync().unwrap();
    let segments = fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .path()
                .extension()
                .is_some_and(|x| x == "wal")
        })
        .count();
    assert!(segments > 2, "expected multiple segments, got {segments}");
    drop(wal);

    let reopened = Wal::open(&dir, opts).unwrap();
    let seqs: Vec<u64> = reopened.tail.iter().map(|(s, _)| *s).collect();
    assert_eq!(seqs, (1..=200).collect::<Vec<_>>());
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_compacts_and_recovery_prefers_it() {
    let dir = temp_dir("checkpoint");
    let mut wal = Wal::open(&dir, manual()).unwrap().wal;
    for i in 1..=20u64 {
        wal.append(&payload(i)).unwrap();
    }
    let covered = wal.checkpoint(b"state-at-20").unwrap();
    assert_eq!(covered, 20);
    assert_eq!(wal.checkpoint_seq(), 20);
    assert_eq!(wal.tail_bytes(), 0, "compaction truncates the tail");
    for i in 21..=25u64 {
        wal.append(&payload(i)).unwrap();
    }
    wal.sync().unwrap();
    drop(wal);

    let recovered = Wal::open(&dir, manual()).unwrap();
    let (seq, blob) = recovered.checkpoint.expect("checkpoint recovered");
    assert_eq!(seq, 20);
    assert_eq!(blob, b"state-at-20");
    let seqs: Vec<u64> = recovered.tail.iter().map(|(s, _)| *s).collect();
    assert_eq!(seqs, vec![21, 22, 23, 24, 25]);
    assert_eq!(recovered.wal.next_seq(), 26);

    // Compaction removed the pre-checkpoint segments.
    let wal_files = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".wal"))
        .count();
    assert!(wal_files <= 2, "old segments must be gone, saw {wal_files}");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn repeated_checkpoints_keep_only_the_latest() {
    let dir = temp_dir("re-checkpoint");
    let mut wal = Wal::open(&dir, manual()).unwrap().wal;
    for round in 1..=3u64 {
        for i in 0..5u64 {
            wal.append(&payload(round * 10 + i)).unwrap();
        }
        wal.checkpoint(format!("round-{round}").as_bytes()).unwrap();
    }
    drop(wal);
    let snaps: Vec<String> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".snap"))
        .collect();
    assert_eq!(snaps.len(), 1, "exactly one checkpoint file: {snaps:?}");
    let recovered = Wal::open(&dir, manual()).unwrap();
    let (seq, blob) = recovered.checkpoint.unwrap();
    assert_eq!(seq, 15);
    assert_eq!(blob, b"round-3");
    assert!(recovered.tail.is_empty());
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_trailing_record_is_truncated_not_fatal() {
    // Simulate a kill-9 mid-group-commit: the segment ends with a prefix
    // of a record. Recovery must keep every complete record and drop the
    // partial one silently.
    for cut in [1usize, 4, 7, 9, 12] {
        let dir = temp_dir(&format!("torn-{cut}"));
        let mut wal = Wal::open(&dir, manual()).unwrap().wal;
        for i in 1..=5u64 {
            wal.append(&payload(i)).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);

        let seg = only_segment(&dir);
        let bytes = fs::read(&seg).unwrap();
        // Append a partial record: `cut` bytes of what would be a longer
        // record (length prefix claims 100 bytes).
        let mut torn = bytes.clone();
        let mut fake = Vec::new();
        fake.extend_from_slice(&100u32.to_le_bytes());
        fake.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        fake.extend_from_slice(&[0xAB; 100]);
        torn.extend_from_slice(&fake[..cut]);
        fs::write(&seg, &torn).unwrap();

        let recovered = Wal::open(&dir, manual()).unwrap();
        let seqs: Vec<u64> = recovered.tail.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5], "cut={cut}");
        assert_eq!(recovered.wal.next_seq(), 6, "cut={cut}");
        // The torn suffix is physically gone after recovery.
        assert_eq!(fs::read(&seg).unwrap().len(), bytes.len(), "cut={cut}");
        fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn bit_flip_is_a_typed_corruption_error() {
    let dir = temp_dir("bit-flip");
    let mut wal = Wal::open(&dir, manual()).unwrap().wal;
    for i in 1..=5u64 {
        wal.append(&payload(i)).unwrap();
    }
    wal.sync().unwrap();
    drop(wal);

    let seg = only_segment(&dir);
    let mut bytes = fs::read(&seg).unwrap();
    // Flip one bit in the final record's payload: the record stays
    // complete (so this cannot be mistaken for a torn write) but its CRC
    // no longer matches.
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    fs::write(&seg, &bytes).unwrap();

    match Wal::open(&dir, manual()) {
        Err(WalError::Corrupt { path, reason, .. }) => {
            assert_eq!(path, seg);
            assert!(reason.contains("checksum"), "reason: {reason}");
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn short_record_before_the_end_is_corruption() {
    let dir = temp_dir("mid-short");
    let mut opts = manual();
    opts.segment_bytes = 256; // several segments
    opts.flush_bytes = 64;
    let mut wal = Wal::open(&dir, opts).unwrap().wal;
    for i in 1..=60u64 {
        wal.append(&payload(i)).unwrap();
    }
    wal.sync().unwrap();
    drop(wal);

    // Truncate the FIRST segment (not the last): loud corruption.
    let mut segments: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "wal"))
        .collect();
    segments.sort();
    assert!(segments.len() > 2);
    let first = &segments[0];
    let bytes = fs::read(first).unwrap();
    fs::write(first, &bytes[..bytes.len() - 3]).unwrap();

    assert!(
        matches!(Wal::open(&dir, opts), Err(WalError::Corrupt { .. })),
        "mid-log truncation must not be silently repaired"
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_checkpoint_is_loud() {
    let dir = temp_dir("bad-ckpt");
    let mut wal = Wal::open(&dir, manual()).unwrap().wal;
    for i in 1..=5u64 {
        wal.append(&payload(i)).unwrap();
    }
    wal.checkpoint(b"good-state").unwrap();
    drop(wal);

    let snap = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "snap"))
        .unwrap();
    let mut bytes = fs::read(&snap).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    fs::write(&snap, &bytes).unwrap();

    assert!(matches!(
        Wal::open(&dir, manual()),
        Err(WalError::Corrupt { .. })
    ));
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn records_since_serves_the_durable_tail() {
    let dir = temp_dir("records-since");
    let mut wal = Wal::open(&dir, manual()).unwrap().wal;
    for i in 1..=10u64 {
        wal.append(&payload(i)).unwrap();
    }
    // Nothing synced: followers see nothing yet.
    assert_eq!(wal.records_since(1).unwrap().len(), 0);
    wal.sync().unwrap();
    let all = wal.records_since(1).unwrap();
    assert_eq!(all.len(), 10);
    assert_eq!(all[0], (1, payload(1)));
    let suffix = wal.records_since(8).unwrap();
    let seqs: Vec<u64> = suffix.iter().map(|(s, _)| *s).collect();
    assert_eq!(seqs, vec![8, 9, 10]);
    // Beyond the end: empty, not None.
    assert_eq!(wal.records_since(11).unwrap().len(), 0);

    // After compaction the early seqs are gone: resync required.
    wal.checkpoint(b"ckpt").unwrap();
    assert!(wal.records_since(5).is_none());
    assert_eq!(wal.records_since(11).unwrap().len(), 0);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn oversized_records_are_rejected() {
    let dir = temp_dir("oversize");
    let mut wal = Wal::open(&dir, manual()).unwrap().wal;
    let huge = vec![0u8; MAX_RECORD_BYTES + 1];
    assert!(matches!(wal.append(&huge), Err(WalError::Io(_))));
    // The failed append must not have consumed a sequence number.
    assert_eq!(wal.append(b"ok").unwrap(), 1);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn empty_trailing_segment_from_a_crashed_roll_is_harmless() {
    let dir = temp_dir("empty-roll");
    let mut wal = Wal::open(&dir, manual()).unwrap().wal;
    for i in 1..=3u64 {
        wal.append(&payload(i)).unwrap();
    }
    wal.sync().unwrap();
    drop(wal);
    // Reopen twice in a row without writing: each open rolls a fresh
    // (empty) segment; recovery must tolerate and reuse/remove them.
    for _ in 0..2 {
        let recovered = Wal::open(&dir, manual()).unwrap();
        assert_eq!(recovered.tail.len(), 3);
        assert_eq!(recovered.wal.next_seq(), 4);
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovery_resumes_appending_after_a_torn_write() {
    // Full cycle: torn tail → recover → append more → recover again.
    let dir = temp_dir("torn-resume");
    let mut wal = Wal::open(&dir, manual()).unwrap().wal;
    for i in 1..=4u64 {
        wal.append(&payload(i)).unwrap();
    }
    wal.sync().unwrap();
    drop(wal);
    let seg = only_segment(&dir);
    let mut bytes = fs::read(&seg).unwrap();
    bytes.extend_from_slice(&[0x03, 0x00]); // 2 bytes of a length prefix
    fs::write(&seg, &bytes).unwrap();

    let mut recovered = Wal::open(&dir, manual()).unwrap();
    assert_eq!(recovered.wal.next_seq(), 5);
    for i in 5..=8u64 {
        assert_eq!(recovered.wal.append(&payload(i)).unwrap(), i);
    }
    recovered.wal.sync().unwrap();
    drop(recovered);

    let again = Wal::open(&dir, manual()).unwrap();
    let seqs: Vec<u64> = again.tail.iter().map(|(s, _)| *s).collect();
    assert_eq!(seqs, (1..=8).collect::<Vec<_>>());
    fs::remove_dir_all(&dir).unwrap();
}
