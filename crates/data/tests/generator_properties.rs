//! Integration tests of the dataset generators: the structural properties
//! the evaluation relies on must actually hold in the generated streams.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use skm_clustering::cost::kmeans_cost;
use skm_clustering::kmeans::KMeans;
use skm_data::prelude::*;
use skm_data::transform::ZScoreNormalizer;

#[test]
fn covtype_like_clusters_better_with_more_centers() {
    // The stand-in must contain multi-cluster structure: k = 7 should give a
    // markedly lower cost than k = 1 (otherwise Figure 4's x-axis would be
    // meaningless on this dataset).
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let d = covtype_like(4_000, &mut rng);
    let k1 = KMeans::new(1).fit(d.points(), &mut rng).unwrap().cost;
    let k7 = KMeans::new(7)
        .with_runs(2)
        .fit(d.points(), &mut rng)
        .unwrap()
        .cost;
    assert!(
        k7 * 2.0 < k1,
        "k=7 cost {k7:.3e} should be well below k=1 cost {k1:.3e}"
    );
}

#[test]
fn intrusion_like_has_heavy_scale_disparity() {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let d = intrusion_like(10_000, &mut rng);
    // Attribute 0 spans several orders of magnitude across points.
    let values: Vec<f64> = d.stream().map(|p| p[0]).collect();
    let max = values.iter().copied().fold(f64::MIN, f64::max);
    let min = values.iter().copied().fold(f64::MAX, f64::min);
    assert!(max / min.abs().max(1.0) > 100.0, "max {max}, min {min}");
}

#[test]
fn power_like_has_daily_periodicity() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let d = power_like(2_880, &mut rng); // two simulated days
                                         // The active-power attribute at the same minute on consecutive days is
                                         // positively correlated (crude periodicity check): compare day-1 and
                                         // day-2 averages on the same half-day windows.
    let day: Vec<f64> = d.stream().map(|p| p[0]).collect();
    let first_evening: f64 = day[600..1_200].iter().sum::<f64>() / 600.0;
    let second_evening: f64 = day[2_040..2_640].iter().sum::<f64>() / 600.0;
    let first_night: f64 = day[0..300].iter().sum::<f64>() / 300.0;
    assert!(
        (first_evening - second_evening).abs() < 0.5,
        "same window on consecutive days should look similar: {first_evening} vs {second_evening}"
    );
    assert!(
        first_evening > first_night,
        "evening consumption {first_evening} should exceed night consumption {first_night}"
    );
}

#[test]
fn drift_moves_but_shuffled_gaussians_do_not() {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let drift = RbfDriftGenerator::new(5, 4)
        .unwrap()
        .with_speed(2.0)
        .with_points_per_step(20)
        .generate(8_000, &mut rng);
    let static_mix = GaussianMixture::new(5, 4)
        .unwrap()
        .generate(8_000, &mut rng);

    let window_mean = |d: &Dataset, from: usize, to: usize| -> f64 {
        d.stream()
            .skip(from)
            .take(to - from)
            .map(|p| p.iter().sum::<f64>())
            .sum::<f64>()
            / (to - from) as f64
    };
    let drift_shift = (window_mean(&drift, 7_000, 8_000) - window_mean(&drift, 0, 1_000)).abs();
    let static_shift =
        (window_mean(&static_mix, 7_000, 8_000) - window_mean(&static_mix, 0, 1_000)).abs();
    assert!(
        drift_shift > 5.0 * static_shift.max(0.5),
        "drift shift {drift_shift} should dwarf static shift {static_shift}"
    );
}

#[test]
fn normalization_equalizes_attribute_scales_on_covtype_like() {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let d = covtype_like(3_000, &mut rng);
    let normalizer = ZScoreNormalizer::fit(d.points()).unwrap();
    let normalized = normalizer.transform_dataset(&d).unwrap();
    // After normalization, the per-attribute standard deviations are ~1 for
    // both a terrain attribute (index 0) and an indicator attribute (index 53).
    let std_of = |dataset: &Dataset, dim: usize| -> f64 {
        let n = dataset.len() as f64;
        let mean: f64 = dataset.stream().map(|p| p[dim]).sum::<f64>() / n;
        (dataset
            .stream()
            .map(|p| (p[dim] - mean).powi(2))
            .sum::<f64>()
            / n)
            .sqrt()
    };
    let raw_ratio = std_of(&d, 0) / std_of(&d, 53);
    let norm_ratio = std_of(&normalized, 0) / std_of(&normalized, 53);
    assert!(
        raw_ratio > 50.0,
        "raw scales should differ wildly: {raw_ratio}"
    );
    assert!(
        (0.5..2.0).contains(&norm_ratio),
        "normalized scales should match: {norm_ratio}"
    );
}

#[test]
fn query_schedules_cover_both_regimes_used_in_the_paper() {
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    // Fixed interval q = 100 on 6000 points -> exactly 60 queries.
    assert_eq!(
        QuerySchedule::every(100).positions(6_000, &mut rng).len(),
        60
    );
    // Poisson with mean gap 100 -> about 60 queries.
    let poisson = QuerySchedule::poisson_with_mean_interval(100.0);
    let count = poisson.positions(6_000, &mut rng).len();
    assert!(
        (30..=90).contains(&count),
        "poisson produced {count} queries"
    );
    // Clustering cost of a fresh mixture is finite (sanity end-to-end hook
    // for the data crate's prelude).
    let data = GaussianMixture::new(3, 2).unwrap().generate(500, &mut rng);
    let centers = KMeans::new(3).fit(data.points(), &mut rng).unwrap().centers;
    assert!(kmeans_cost(data.points(), &centers).unwrap().is_finite());
}
