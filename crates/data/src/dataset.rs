//! The [`Dataset`] container: a named point set used as a stream.

use rand::seq::SliceRandom;
use rand::Rng;
use skm_clustering::PointSet;

/// A named, in-memory dataset that is consumed as a stream of points.
///
/// The paper randomly shuffles each dataset before streaming it "to erase
/// any potential special ordering within data" (Section 5.1); use
/// [`Dataset::shuffled`] to reproduce that.
#[derive(Debug, Clone)]
pub struct Dataset {
    name: String,
    points: PointSet,
}

impl Dataset {
    /// Wraps a point set under a dataset name.
    #[must_use]
    pub fn new(name: impl Into<String>, points: PointSet) -> Self {
        Self {
            name: name.into(),
            points,
        }
    }

    /// The dataset name (used in experiment reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying points.
    #[must_use]
    pub fn points(&self) -> &PointSet {
        &self.points
    }

    /// Number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the dataset is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Dimensionality of the points.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.points.dim()
    }

    /// Returns a copy with the point order randomly permuted.
    #[must_use]
    pub fn shuffled<R: Rng + ?Sized>(&self, rng: &mut R) -> Self {
        let mut order: Vec<usize> = (0..self.points.len()).collect();
        order.shuffle(rng);
        let mut shuffled = PointSet::with_capacity(self.points.dim(), self.points.len());
        for idx in order {
            shuffled.push(self.points.point(idx), self.points.weight(idx));
        }
        Self {
            name: self.name.clone(),
            points: shuffled,
        }
    }

    /// Returns a copy truncated to the first `n` points (useful for quick
    /// benchmark runs). If `n >= len`, the copy is identical.
    #[must_use]
    pub fn truncated(&self, n: usize) -> Self {
        let keep = n.min(self.points.len());
        let mut points = PointSet::with_capacity(self.points.dim(), keep);
        for i in 0..keep {
            points.push(self.points.point(i), self.points.weight(i));
        }
        Self {
            name: self.name.clone(),
            points,
        }
    }

    /// Iterates over the point coordinate slices in stream order.
    pub fn stream(&self) -> impl Iterator<Item = &[f64]> + '_ {
        self.points.iter().map(|(p, _)| p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn dataset() -> Dataset {
        let mut s = PointSet::new(2);
        for i in 0..10 {
            s.push(&[f64::from(i), 0.0], 1.0);
        }
        Dataset::new("toy", s)
    }

    #[test]
    fn accessors() {
        let d = dataset();
        assert_eq!(d.name(), "toy");
        assert_eq!(d.len(), 10);
        assert_eq!(d.dim(), 2);
        assert!(!d.is_empty());
        assert_eq!(d.stream().count(), 10);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let d = dataset();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let s = d.shuffled(&mut rng);
        assert_eq!(s.len(), d.len());
        let mut original: Vec<f64> = d.stream().map(|p| p[0]).collect();
        let mut shuffled: Vec<f64> = s.stream().map(|p| p[0]).collect();
        assert_ne!(original, shuffled, "shuffle should change the order");
        original.sort_by(f64::total_cmp);
        shuffled.sort_by(f64::total_cmp);
        assert_eq!(original, shuffled, "shuffle must preserve the multiset");
    }

    #[test]
    fn truncation() {
        let d = dataset();
        assert_eq!(d.truncated(3).len(), 3);
        assert_eq!(d.truncated(100).len(), 10);
        assert_eq!(d.truncated(3).points().point(2), &[2.0, 0.0]);
    }
}
