//! Synthetic stand-ins for the paper's UCI / KDD-Cup datasets.
//!
//! The paper evaluates on Covtype (581,012 × 54), Power (2,049,280 × 7) and
//! Intrusion (494,021 × 34). Those files cannot be redistributed here, so
//! these generators produce streams with the same dimensionality and the
//! structural properties that drive the paper's results:
//!
//! * **Covtype** — several moderately overlapping clusters (7 cover types)
//!   over attributes with very different scales (elevation in thousands,
//!   binary soil indicators).
//! * **Power** — a low-dimensional, temporally correlated signal (daily
//!   consumption cycle) plus noise and occasional spikes.
//! * **Intrusion** — an extremely *skewed* mixture: a couple of dense attack
//!   clusters dominate, with rare clusters far away and heavy-tailed
//!   attribute scales. This is the structure that makes Sequential k-means
//!   collapse by ~10⁴× in Figure 4(c).
//!
//! The real datasets can still be used through [`crate::csv::load_points`]
//! if the files are available locally.

use crate::dataset::Dataset;
use crate::gaussian::{normal_sample, Component, GaussianMixture};
use rand::Rng;
use skm_clustering::PointSet;

/// Default scaled-down number of points for the synthetic stand-ins.
pub const DEFAULT_POINTS: usize = 100_000;

/// Covtype-like stream: 54 attributes, 7 imbalanced clusters, mixed scales.
#[must_use]
pub fn covtype_like<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Dataset {
    let dim = 54;
    // Cover-type class proportions roughly follow the real dataset
    // (two dominant classes, five smaller ones).
    let weights = [36.5, 48.8, 6.2, 0.5, 1.6, 3.0, 3.5];
    let mut components = Vec::with_capacity(weights.len());
    for (ci, w) in weights.iter().enumerate() {
        let mut mean = vec![0.0; dim];
        let mut std_dev = vec![1.0; dim];
        // First 10 attributes: terrain variables with large scales.
        for d in 0..10 {
            mean[d] = 2000.0 + 150.0 * ci as f64 + 37.0 * d as f64;
            std_dev[d] = 120.0;
        }
        // Remaining attributes: near-binary indicators biased per class.
        for d in 10..dim {
            mean[d] = if d % 7 == ci % 7 { 0.8 } else { 0.1 };
            std_dev[d] = 0.15;
        }
        components.push(Component {
            mean,
            std_dev,
            weight: *w,
        });
    }
    let mixture =
        GaussianMixture::from_components("covtype-like", components).expect("valid components");
    let d = mixture.generate(n, rng);
    Dataset::new("Covtype", d.points().clone())
}

/// Power-like stream: 7 attributes following a noisy daily cycle.
#[must_use]
pub fn power_like<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Dataset {
    let dim = 7;
    let mut points = PointSet::with_capacity(dim, n);
    let mut buf = vec![0.0; dim];
    for t in 0..n {
        // One sample per minute; 1440 minutes per day.
        let minute_of_day = (t % 1440) as f64;
        let phase = 2.0 * std::f64::consts::PI * minute_of_day / 1440.0;
        // Global active power: daily cycle with evening peak, plus spikes.
        let base = 1.2 + 0.9 * (phase - 1.0).sin().max(0.0);
        let spike = if rng.gen::<f64>() < 0.02 {
            rng.gen::<f64>() * 4.0
        } else {
            0.0
        };
        let active = (base + spike + normal_sample(0.0, 0.15, rng)).max(0.0);
        let reactive = (0.1 * active + normal_sample(0.0, 0.05, rng)).max(0.0);
        let voltage = 240.0 + 3.0 * (phase * 2.0).cos() + normal_sample(0.0, 1.5, rng);
        let intensity = active * 4.3 + normal_sample(0.0, 0.4, rng);
        let sub1 = (active * 0.15 + normal_sample(0.0, 0.3, rng)).max(0.0);
        let sub2 = (active * 0.25 + normal_sample(0.0, 0.4, rng)).max(0.0);
        let sub3 = (active * 0.35 + normal_sample(0.0, 0.5, rng)).max(0.0);
        buf.copy_from_slice(&[active, reactive, voltage, intensity, sub1, sub2, sub3]);
        points.push(&buf, 1.0);
    }
    Dataset::new("Power", points)
}

/// Intrusion-like stream: 34 attributes, heavily skewed cluster sizes and
/// scales (the structure on which Sequential k-means performs catastrophically).
#[must_use]
pub fn intrusion_like<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Dataset {
    let dim = 34;
    // (weight, scale of the "bytes"-like attributes, offset)
    let profiles: [(f64, f64, f64); 6] = [
        (56.0, 1_000.0, 0.0),        // smurf-like flood traffic
        (21.0, 50.0, 200.0),         // neptune-like SYN flood
        (19.0, 300.0, 1_000.0),      // normal traffic
        (2.5, 5_000.0, 50_000.0),    // rare bulk transfers
        (1.0, 20.0, 100_000.0),      // rare scans, far away
        (0.5, 100_000.0, 500_000.0), // very rare, extreme magnitude
    ];
    let mut components = Vec::with_capacity(profiles.len());
    for (ci, (w, scale, offset)) in profiles.iter().enumerate() {
        let mut mean = vec![0.0; dim];
        let mut std_dev = vec![1.0; dim];
        for d in 0..dim {
            if d < 6 {
                // Duration / byte counts: heavy scales.
                mean[d] = offset + scale * (d as f64 + 1.0);
                std_dev[d] = scale * 0.3;
            } else {
                // Rate-style features in [0, 1], biased per class.
                mean[d] = f64::from(u32::try_from((ci + d) % 5).unwrap_or(0)) * 0.2;
                std_dev[d] = 0.05;
            }
        }
        components.push(Component {
            mean,
            std_dev,
            weight: *w,
        });
    }
    let mixture =
        GaussianMixture::from_components("intrusion-like", components).expect("valid components");
    let d = mixture.generate(n, rng);
    Dataset::new("Intrusion", d.points().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn covtype_like_shape() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let d = covtype_like(2_000, &mut rng);
        assert_eq!(d.name(), "Covtype");
        assert_eq!(d.len(), 2_000);
        assert_eq!(d.dim(), 54);
        // Terrain attributes live on a much larger scale than indicators.
        let p = d.points().point(0);
        assert!(p[0] > 100.0);
        assert!(p[53].abs() < 5.0);
    }

    #[test]
    fn power_like_shape_and_cycle() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let d = power_like(3_000, &mut rng);
        assert_eq!(d.name(), "Power");
        assert_eq!(d.dim(), 7);
        assert_eq!(d.len(), 3_000);
        // Voltage attribute stays near 240.
        for p in d.stream().take(200) {
            assert!((p[2] - 240.0).abs() < 20.0, "voltage {p:?}");
            assert!(p[0] >= 0.0, "power must be non-negative");
        }
    }

    #[test]
    fn intrusion_like_is_heavily_skewed() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let d = intrusion_like(20_000, &mut rng);
        assert_eq!(d.dim(), 34);
        // The two dominant profiles (offset <= 200) should hold ~77% of points.
        let dominant = d.stream().filter(|p| p[0] < 10_000.0).count();
        let frac = dominant as f64 / d.len() as f64;
        assert!(frac > 0.6, "dominant fraction {frac}");
        // And some points must be extremely far away (offset 500k profile).
        let extreme = d.stream().filter(|p| p[0] > 300_000.0).count();
        assert!(extreme > 0, "expected at least a few extreme points");
        assert!(extreme < d.len() / 50, "extreme points must stay rare");
    }

    #[test]
    fn generators_are_deterministic_given_seed() {
        let a = covtype_like(100, &mut ChaCha8Rng::seed_from_u64(7));
        let b = covtype_like(100, &mut ChaCha8Rng::seed_from_u64(7));
        assert_eq!(a.points(), b.points());
    }
}
