//! Adversarial stream generators for robustness testing.
//!
//! Each generator produces a stream engineered to stress one hot-path
//! assumption the benign generators never violate. The PR 3 OnlineCC
//! duplicate-stream fallback bug — facility costs collapsing to zero on a
//! duplicate-heavy stream — is exactly this class of failure, and these
//! generators exist so the next one is caught by a cost-envelope test
//! instead of a user:
//!
//! * [`heavy_duplicates`] — a handful of distinct values, each repeated
//!   thousands of times (zero pairwise distances on most draws).
//! * [`near_zero_variance`] — clusters so tight that squared distances
//!   underflow toward the floating-point denormal range.
//! * [`dimension_hot_outliers`] — benign low-magnitude mass plus rare
//!   points that are extreme in exactly one coordinate (single-dimension
//!   cost domination).
//! * [`adversarial_order`] — a sorted-then-interleaved ordering engineered
//!   against samplers that assume exchangeable arrival order.
//! * [`high_dim`] — d ≥ 256 streams that stress norm-cache layouts and
//!   per-dimension loops.
//!
//! All generators are deterministic given the `Rng`, like the rest of the
//! crate: same seed, same stream, bit for bit.

use crate::dataset::Dataset;
use crate::gaussian::normal_sample;
use rand::Rng;
use skm_clustering::PointSet;

/// A duplicate-heavy stream: `distinct` point values in `dim` dimensions,
/// each emitted over and over (in round-robin order) until `n` points
/// exist. With `distinct` far below `n`, most pairwise distances on any
/// sample are exactly zero — the shape that collapsed OnlineCC's facility
/// cost in PR 3.
#[must_use]
pub fn heavy_duplicates<R: Rng + ?Sized>(
    n: usize,
    distinct: usize,
    dim: usize,
    rng: &mut R,
) -> Dataset {
    let distinct = distinct.max(1);
    let dim = dim.max(1);
    let values: Vec<Vec<f64>> = (0..distinct)
        .map(|_| (0..dim).map(|_| rng.gen::<f64>() * 100.0).collect())
        .collect();
    let mut points = PointSet::with_capacity(dim, n);
    for i in 0..n {
        points.push(&values[i % distinct], 1.0);
    }
    Dataset::new("HeavyDuplicates", points)
}

/// Clusters with standard deviation `1e-9`: squared pairwise distances
/// inside a cluster sit near the bottom of the `f64` exponent range, so any
/// cost arithmetic that squares-then-sums without care underflows to zero.
/// Cluster centers stay well separated (unit spacing), so the *right*
/// answer is still unambiguous.
#[must_use]
pub fn near_zero_variance<R: Rng + ?Sized>(
    n: usize,
    clusters: usize,
    dim: usize,
    rng: &mut R,
) -> Dataset {
    let clusters = clusters.max(1);
    let dim = dim.max(1);
    let centers: Vec<Vec<f64>> = (0..clusters)
        .map(|c| (0..dim).map(|d| (c * dim + d) as f64).collect())
        .collect();
    let mut points = PointSet::with_capacity(dim, n);
    let mut buf = vec![0.0; dim];
    for i in 0..n {
        let center = &centers[i % clusters];
        for d in 0..dim {
            buf[d] = normal_sample(center[d], 1e-9, rng);
        }
        points.push(&buf, 1.0);
    }
    Dataset::new("NearZeroVariance", points)
}

/// Mostly benign unit-scale mass around the origin, with one point in
/// every `outlier_every` that is extreme (`magnitude`, default-worthy
/// values ≥ 1e6) in exactly one rotating coordinate. The clustering cost is
/// then dominated by single dimensions, which punishes distance kernels
/// that accumulate per-dimension error or prune on partial norms.
#[must_use]
pub fn dimension_hot_outliers<R: Rng + ?Sized>(
    n: usize,
    dim: usize,
    outlier_every: usize,
    magnitude: f64,
    rng: &mut R,
) -> Dataset {
    let dim = dim.max(1);
    let outlier_every = outlier_every.max(2);
    let mut points = PointSet::with_capacity(dim, n);
    let mut buf = vec![0.0; dim];
    for i in 0..n {
        for slot in &mut buf {
            *slot = normal_sample(0.0, 1.0, rng);
        }
        if i % outlier_every == outlier_every - 1 {
            // Rotate the hot dimension so no single coordinate can be
            // special-cased away.
            buf[(i / outlier_every) % dim] = magnitude;
        }
        points.push(&buf, 1.0);
    }
    Dataset::new("DimensionHotOutliers", points)
}

/// An adversarial arrival order: the points of a mixture stream are sorted
/// by their distance from the origin and then emitted outside-in (farthest,
/// nearest, second-farthest, second-nearest, …). Every bucket then spans
/// the full spatial extent of the data while consecutive points are
/// maximally dissimilar — the worst case for samplers and caches that
/// assume exchangeable (shuffled) arrivals, which is exactly what the
/// paper's evaluation assumes away by shuffling (Section 5.1).
#[must_use]
pub fn adversarial_order<R: Rng + ?Sized>(
    n: usize,
    clusters: usize,
    dim: usize,
    rng: &mut R,
) -> Dataset {
    let clusters = clusters.max(1);
    let dim = dim.max(1);
    let centers: Vec<Vec<f64>> = (0..clusters)
        .map(|_| (0..dim).map(|_| rng.gen::<f64>() * 100.0).collect())
        .collect();
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(n);
    for i in 0..n {
        let center = &centers[i % clusters];
        rows.push(center.iter().map(|&c| normal_sample(c, 2.0, rng)).collect());
    }
    let norm2 = |row: &[f64]| row.iter().map(|x| x * x).sum::<f64>();
    rows.sort_by(|a, b| norm2(a).total_cmp(&norm2(b)));
    let mut points = PointSet::with_capacity(dim, n);
    let (mut lo, mut hi) = (0usize, n);
    // Outside-in interleave: hi-1, lo, hi-2, lo+1, ...
    while lo < hi {
        hi -= 1;
        points.push(&rows[hi], 1.0);
        if lo < hi {
            points.push(&rows[lo], 1.0);
            lo += 1;
        }
    }
    Dataset::new("AdversarialOrder", points)
}

/// A high-dimensional mixture (`dim` ≥ 256 in the robustness suite):
/// stresses norm-cache layouts, per-dimension inner loops and the memory
/// bandwidth of coreset merging. Centers are axis-aligned unit vectors
/// scaled to `spread`, so the clusters stay separable at any dimension.
#[must_use]
pub fn high_dim<R: Rng + ?Sized>(n: usize, clusters: usize, dim: usize, rng: &mut R) -> Dataset {
    let clusters = clusters.max(1);
    let dim = dim.max(1);
    let spread = 50.0;
    let mut points = PointSet::with_capacity(dim, n);
    let mut buf = vec![0.0; dim];
    for i in 0..n {
        let c = i % clusters;
        for slot in &mut buf {
            *slot = normal_sample(0.0, 1.0, rng);
        }
        // One hot axis per cluster (mod dim keeps it valid for tiny dims).
        buf[c % dim] += spread;
        points.push(&buf, 1.0);
    }
    Dataset::new("HighDim", points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn heavy_duplicates_has_few_distinct_values() {
        let d = heavy_duplicates(1_000, 4, 3, &mut rng(1));
        assert_eq!(d.len(), 1_000);
        let mut distinct: Vec<Vec<u64>> = Vec::new();
        for p in d.stream() {
            let bits: Vec<u64> = p.iter().map(|x| x.to_bits()).collect();
            if !distinct.contains(&bits) {
                distinct.push(bits);
            }
        }
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    fn near_zero_variance_is_tight_but_separated() {
        let d = near_zero_variance(600, 3, 2, &mut rng(2));
        // Points of one cluster are within ~1e-7 of each other; cluster
        // centers are ≥ 1 apart.
        let first: Vec<&[f64]> = d.stream().step_by(3).take(10).collect();
        for p in &first {
            for (a, b) in p.iter().zip(first[0]) {
                assert!((a - b).abs() < 1e-6);
            }
        }
        let other = d.stream().nth(1).unwrap();
        let gap: f64 = first[0]
            .iter()
            .zip(other)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(gap > 1.0, "clusters must stay separated, gap {gap}");
    }

    #[test]
    fn dimension_hot_outliers_rotates_the_hot_axis() {
        let d = dimension_hot_outliers(400, 8, 10, 1e6, &mut rng(3));
        let outliers: Vec<&[f64]> = d.stream().skip(9).step_by(10).collect();
        assert_eq!(outliers.len(), 40);
        let mut hot_axes = std::collections::BTreeSet::new();
        for p in &outliers {
            let hot: Vec<usize> = p
                .iter()
                .enumerate()
                .filter(|(_, x)| x.abs() > 1e5)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(hot.len(), 1, "exactly one hot coordinate per outlier");
            hot_axes.insert(hot[0]);
        }
        assert!(hot_axes.len() > 1, "the hot axis must rotate");
    }

    #[test]
    fn adversarial_order_alternates_far_and_near() {
        let d = adversarial_order(1_000, 4, 3, &mut rng(4));
        assert_eq!(d.len(), 1_000);
        let norm2 = |p: &[f64]| p.iter().map(|x| x * x).sum::<f64>();
        let rows: Vec<&[f64]> = d.stream().collect();
        // The first point is the global maximum, the second the global
        // minimum.
        let max = rows.iter().map(|p| norm2(p)).fold(f64::MIN, f64::max);
        let min = rows.iter().map(|p| norm2(p)).fold(f64::MAX, f64::min);
        assert_eq!(norm2(rows[0]), max);
        assert_eq!(norm2(rows[1]), min);
        assert!(max > min);
        // The outside-in interleave guarantees every even position holds a
        // farther point than the odd position right after it.
        for pair in rows.chunks_exact(2) {
            assert!(norm2(pair[0]) >= norm2(pair[1]));
        }
    }

    #[test]
    fn high_dim_emits_wide_separable_points() {
        let d = high_dim(256, 4, 256, &mut rng(5));
        assert_eq!(d.dim(), 256);
        assert_eq!(d.len(), 256);
        // Every point's hot axis must match its cluster.
        for (i, p) in d.stream().enumerate() {
            let hot = p
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(idx, _)| idx)
                .unwrap();
            assert_eq!(hot, i % 4);
        }
    }

    #[test]
    fn all_generators_are_deterministic_given_seed() {
        macro_rules! check {
            ($gen:expr) => {{
                let a = {
                    let mut r = rng(9);
                    $gen(&mut r)
                };
                let b = {
                    let mut r = rng(9);
                    $gen(&mut r)
                };
                assert_eq!(a.points(), b.points());
            }};
        }
        check!(|r: &mut ChaCha8Rng| heavy_duplicates(200, 3, 2, r));
        check!(|r: &mut ChaCha8Rng| near_zero_variance(200, 3, 2, r));
        check!(|r: &mut ChaCha8Rng| dimension_hot_outliers(200, 4, 7, 1e6, r));
        check!(|r: &mut ChaCha8Rng| adversarial_order(200, 3, 2, r));
        check!(|r: &mut ChaCha8Rng| high_dim(64, 3, 256, r));
    }
}
