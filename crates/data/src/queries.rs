//! Query schedules: when, during the stream, clustering queries arrive.
//!
//! The paper evaluates two arrival models (Section 5.2):
//!
//! * a **fixed interval**: one query every `q` points
//!   (`q ∈ {50, 100, …, 3200}`), and
//! * a **Poisson process** with arrival rate `λ`: inter-arrival gaps are
//!   exponentially distributed with mean `1/λ` points.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A query arrival schedule over a stream of points.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum QuerySchedule {
    /// No queries during the stream (only a final query at the end).
    None,
    /// One query after every `interval` points.
    FixedInterval {
        /// Query interval `q` in points.
        interval: u64,
    },
    /// Poisson arrivals with the given rate (queries per point).
    Poisson {
        /// Arrival rate `λ`; the mean gap between queries is `1/λ` points.
        rate: f64,
    },
}

impl QuerySchedule {
    /// Convenience constructor for the fixed-interval schedule.
    #[must_use]
    pub fn every(interval: u64) -> Self {
        QuerySchedule::FixedInterval {
            interval: interval.max(1),
        }
    }

    /// Convenience constructor for a Poisson schedule with mean inter-arrival
    /// gap of `mean_interval` points (`λ = 1 / mean_interval`).
    #[must_use]
    pub fn poisson_with_mean_interval(mean_interval: f64) -> Self {
        QuerySchedule::Poisson {
            rate: 1.0 / mean_interval.max(1e-9),
        }
    }

    /// Generates the (1-based, strictly increasing) positions in a stream of
    /// `n` points after which a query is issued.
    ///
    /// Positions are in `1..=n`. The final end-of-stream query that every
    /// experiment performs is *not* included here; the harness adds it.
    #[must_use]
    pub fn positions<R: Rng + ?Sized>(&self, n: u64, rng: &mut R) -> Vec<u64> {
        match *self {
            QuerySchedule::None => Vec::new(),
            QuerySchedule::FixedInterval { interval } => {
                let interval = interval.max(1);
                (1..=n / interval).map(|i| i * interval).collect()
            }
            QuerySchedule::Poisson { rate } => {
                let rate = rate.max(1e-12);
                let mut out = Vec::new();
                let mut t = 0.0f64;
                loop {
                    // Exponential inter-arrival: -ln(U)/λ.
                    let u: f64 = 1.0 - rng.gen::<f64>();
                    t += -u.ln() / rate;
                    let pos = t.ceil() as u64;
                    if pos > n {
                        break;
                    }
                    // Collapse multiple arrivals landing on the same point.
                    if out.last() != Some(&pos) {
                        out.push(pos);
                    }
                }
                out
            }
        }
    }

    /// Expected number of queries over a stream of `n` points.
    #[must_use]
    pub fn expected_queries(&self, n: u64) -> f64 {
        match *self {
            QuerySchedule::None => 0.0,
            QuerySchedule::FixedInterval { interval } => (n / interval.max(1)) as f64,
            QuerySchedule::Poisson { rate } => rate * n as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn none_schedule_is_empty() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(QuerySchedule::None.positions(10_000, &mut rng).is_empty());
        assert_eq!(QuerySchedule::None.expected_queries(100), 0.0);
    }

    #[test]
    fn fixed_interval_positions() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let pos = QuerySchedule::every(100).positions(450, &mut rng);
        assert_eq!(pos, vec![100, 200, 300, 400]);
        assert_eq!(QuerySchedule::every(100).expected_queries(450), 4.0);
    }

    #[test]
    fn fixed_interval_of_zero_is_clamped() {
        let s = QuerySchedule::every(0);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let pos = s.positions(5, &mut rng);
        assert_eq!(pos, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn poisson_positions_are_increasing_and_within_range() {
        let s = QuerySchedule::poisson_with_mean_interval(50.0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let pos = s.positions(10_000, &mut rng);
        assert!(!pos.is_empty());
        for w in pos.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(*pos.last().unwrap() <= 10_000);
    }

    #[test]
    fn poisson_rate_matches_expected_count() {
        let s = QuerySchedule::poisson_with_mean_interval(100.0);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let n = 100_000u64;
        let count = s.positions(n, &mut rng).len() as f64;
        let expected = s.expected_queries(n);
        assert!(
            (count - expected).abs() < expected * 0.15,
            "observed {count} queries, expected about {expected}"
        );
    }

    #[test]
    fn serde_round_trip() {
        let s = QuerySchedule::Poisson { rate: 0.02 };
        let json = serde_json::to_string(&s).unwrap();
        let back: QuerySchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
