//! Stream preprocessing transforms.
//!
//! The UCI datasets mix attributes with wildly different scales (Covtype:
//! elevation in thousands next to binary soil indicators; Intrusion: byte
//! counts next to rates in `[0, 1]`). The paper streams the raw attributes,
//! and so do our stand-ins — but a practical deployment usually normalizes
//! features first, and the examples let users opt in. Two transforms are
//! provided:
//!
//! * [`ZScoreNormalizer`] — subtract the mean and divide by the standard
//!   deviation of each attribute, fitted on a prefix/sample of the stream.
//! * [`MinMaxScaler`] — map each attribute into `[0, 1]` using bounds
//!   fitted on a prefix/sample.
//!
//! Both are *fitted offline* on a sample and then applied point-by-point,
//! which is the standard streaming practice (fitting them online would leak
//! future information into earlier points).

use crate::dataset::Dataset;
use skm_clustering::error::{ClusteringError, Result};
use skm_clustering::PointSet;

/// Per-attribute z-score normalization: `x ↦ (x − μ) / σ`.
#[derive(Debug, Clone, PartialEq)]
pub struct ZScoreNormalizer {
    means: Vec<f64>,
    std_devs: Vec<f64>,
}

impl ZScoreNormalizer {
    /// Fits means and standard deviations on the given (weighted) sample.
    ///
    /// Attributes with zero variance get σ = 1 so they pass through shifted
    /// but unscaled.
    ///
    /// # Errors
    /// Returns [`ClusteringError::EmptyInput`] when the sample is empty.
    pub fn fit(sample: &PointSet) -> Result<Self> {
        if sample.is_empty() {
            return Err(ClusteringError::EmptyInput);
        }
        let dim = sample.dim();
        let total = sample.total_weight();
        if total <= 0.0 {
            return Err(ClusteringError::EmptyInput);
        }
        let mut means = vec![0.0; dim];
        for (p, w) in sample.iter() {
            for (m, x) in means.iter_mut().zip(p) {
                *m += w * x;
            }
        }
        for m in &mut means {
            *m /= total;
        }
        let mut vars = vec![0.0; dim];
        for (p, w) in sample.iter() {
            for ((v, x), m) in vars.iter_mut().zip(p).zip(&means) {
                *v += w * (x - m) * (x - m);
            }
        }
        let std_devs = vars
            .into_iter()
            .map(|v| {
                let s = (v / total).sqrt();
                if s > 1e-12 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Ok(Self { means, std_devs })
    }

    /// Dimensionality the normalizer was fitted for.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.means.len()
    }

    /// Transforms one point in place.
    ///
    /// # Errors
    /// Returns a dimension mismatch error when the point has the wrong size.
    pub fn transform_in_place(&self, point: &mut [f64]) -> Result<()> {
        if point.len() != self.means.len() {
            return Err(ClusteringError::DimensionMismatch {
                expected: self.means.len(),
                got: point.len(),
            });
        }
        for ((x, m), s) in point.iter_mut().zip(&self.means).zip(&self.std_devs) {
            *x = (*x - m) / s;
        }
        Ok(())
    }

    /// Transforms a whole dataset, returning a new one.
    ///
    /// # Errors
    /// Returns a dimension mismatch error when the dataset has the wrong
    /// dimensionality.
    pub fn transform_dataset(&self, dataset: &Dataset) -> Result<Dataset> {
        let mut out = PointSet::with_capacity(dataset.dim(), dataset.len());
        let mut buf = vec![0.0; dataset.dim()];
        for (p, w) in dataset.points().iter() {
            buf.copy_from_slice(p);
            self.transform_in_place(&mut buf)?;
            out.push(&buf, w);
        }
        Ok(Dataset::new(format!("{}-zscore", dataset.name()), out))
    }
}

/// Per-attribute min–max scaling into `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    ranges: Vec<f64>,
}

impl MinMaxScaler {
    /// Fits per-attribute bounds on the given sample. Constant attributes
    /// get range 1 so they map to 0.
    ///
    /// # Errors
    /// Returns [`ClusteringError::EmptyInput`] when the sample is empty.
    pub fn fit(sample: &PointSet) -> Result<Self> {
        let (mins, maxs) = sample.bounding_box().ok_or(ClusteringError::EmptyInput)?;
        let ranges = mins
            .iter()
            .zip(&maxs)
            .map(|(lo, hi)| {
                let r = hi - lo;
                if r > 1e-12 {
                    r
                } else {
                    1.0
                }
            })
            .collect();
        Ok(Self { mins, ranges })
    }

    /// Dimensionality the scaler was fitted for.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.mins.len()
    }

    /// Transforms one point in place. Values outside the fitted bounds are
    /// clamped into `[0, 1]`.
    ///
    /// # Errors
    /// Returns a dimension mismatch error when the point has the wrong size.
    pub fn transform_in_place(&self, point: &mut [f64]) -> Result<()> {
        if point.len() != self.mins.len() {
            return Err(ClusteringError::DimensionMismatch {
                expected: self.mins.len(),
                got: point.len(),
            });
        }
        for ((x, lo), r) in point.iter_mut().zip(&self.mins).zip(&self.ranges) {
            *x = ((*x - lo) / r).clamp(0.0, 1.0);
        }
        Ok(())
    }

    /// Transforms a whole dataset, returning a new one.
    ///
    /// # Errors
    /// Returns a dimension mismatch error when the dataset has the wrong
    /// dimensionality.
    pub fn transform_dataset(&self, dataset: &Dataset) -> Result<Dataset> {
        let mut out = PointSet::with_capacity(dataset.dim(), dataset.len());
        let mut buf = vec![0.0; dataset.dim()];
        for (p, w) in dataset.points().iter() {
            buf.copy_from_slice(p);
            self.transform_in_place(&mut buf)?;
            out.push(&buf, w);
        }
        Ok(Dataset::new(format!("{}-minmax", dataset.name()), out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PointSet {
        let mut s = PointSet::new(2);
        s.push(&[0.0, 100.0], 1.0);
        s.push(&[2.0, 200.0], 1.0);
        s.push(&[4.0, 300.0], 1.0);
        s
    }

    #[test]
    fn zscore_produces_zero_mean_unit_variance() {
        let normalizer = ZScoreNormalizer::fit(&sample()).unwrap();
        assert_eq!(normalizer.dim(), 2);
        let d = Dataset::new("t", sample());
        let out = normalizer.transform_dataset(&d).unwrap();
        // Column means ~ 0.
        let n = out.len() as f64;
        for dim in 0..2 {
            let mean: f64 = out.stream().map(|p| p[dim]).sum::<f64>() / n;
            assert!(mean.abs() < 1e-9, "dim {dim} mean {mean}");
            let var: f64 = out.stream().map(|p| p[dim] * p[dim]).sum::<f64>() / n;
            assert!((var - 1.0).abs() < 1e-9, "dim {dim} var {var}");
        }
        assert_eq!(out.name(), "t-zscore");
    }

    #[test]
    fn zscore_handles_constant_attributes() {
        let mut s = PointSet::new(2);
        s.push(&[5.0, 1.0], 1.0);
        s.push(&[5.0, 3.0], 1.0);
        let normalizer = ZScoreNormalizer::fit(&s).unwrap();
        let mut p = vec![5.0, 2.0];
        normalizer.transform_in_place(&mut p).unwrap();
        assert_eq!(p[0], 0.0);
        assert!(p[1].abs() < 1.0);
    }

    #[test]
    fn minmax_maps_into_unit_interval_and_clamps() {
        let scaler = MinMaxScaler::fit(&sample()).unwrap();
        assert_eq!(scaler.dim(), 2);
        let mut p = vec![2.0, 200.0];
        scaler.transform_in_place(&mut p).unwrap();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[1] - 0.5).abs() < 1e-12);
        // Out-of-range values clamp.
        let mut q = vec![-100.0, 1_000.0];
        scaler.transform_in_place(&mut q).unwrap();
        assert_eq!(q[0], 0.0);
        assert_eq!(q[1], 1.0);
    }

    #[test]
    fn errors_on_empty_or_mismatched_inputs() {
        assert!(ZScoreNormalizer::fit(&PointSet::new(2)).is_err());
        assert!(MinMaxScaler::fit(&PointSet::new(2)).is_err());
        let normalizer = ZScoreNormalizer::fit(&sample()).unwrap();
        let mut wrong = vec![1.0];
        assert!(normalizer.transform_in_place(&mut wrong).is_err());
        let scaler = MinMaxScaler::fit(&sample()).unwrap();
        assert!(scaler.transform_in_place(&mut wrong).is_err());
    }

    #[test]
    fn transform_preserves_weights_and_length() {
        let mut s = PointSet::new(1);
        s.push(&[1.0], 2.5);
        s.push(&[9.0], 0.5);
        let d = Dataset::new("w", s);
        let scaler = MinMaxScaler::fit(d.points()).unwrap();
        let out = scaler.transform_dataset(&d).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.points().weight(0), 2.5);
        assert_eq!(out.points().weight(1), 0.5);
    }
}
