//! Minimal CSV IO so the real UCI datasets can be used when available.
//!
//! The format is deliberately simple: one point per line, numeric columns
//! separated by commas (or a custom separator), optional header line.
//! Non-numeric columns are not supported — preprocess the raw UCI files by
//! dropping symbolic attributes, as the paper does for Intrusion.

use crate::dataset::Dataset;
use skm_clustering::error::{ClusteringError, Result};
use skm_clustering::PointSet;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Options for [`load_points`].
#[derive(Debug, Clone, Copy)]
pub struct CsvOptions {
    /// Whether the first line is a header and should be skipped.
    pub has_header: bool,
    /// Column separator.
    pub separator: char,
    /// Optional cap on the number of points to read.
    pub limit: Option<usize>,
}

impl Default for CsvOptions {
    fn default() -> Self {
        Self {
            has_header: false,
            separator: ',',
            limit: None,
        }
    }
}

/// Parses points from CSV text (used by [`load_points`] and directly in
/// tests).
///
/// # Errors
/// Returns an error when a row is non-numeric or has an inconsistent number
/// of columns.
pub fn parse_points(text: &str, options: CsvOptions) -> Result<PointSet> {
    let mut points: Option<PointSet> = None;
    let mut rows = 0usize;
    for (line_no, line) in text.lines().enumerate() {
        if line_no == 0 && options.has_header {
            continue;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(limit) = options.limit {
            if rows >= limit {
                break;
            }
        }
        let values: std::result::Result<Vec<f64>, _> = trimmed
            .split(options.separator)
            .map(|v| v.trim().parse::<f64>())
            .collect();
        let values = values.map_err(|e| ClusteringError::InvalidParameter {
            name: "csv",
            message: format!("line {}: {e}", line_no + 1),
        })?;
        if values.is_empty() {
            continue;
        }
        let set = match &mut points {
            Some(s) => s,
            None => points.insert(PointSet::new(values.len())),
        };
        set.try_push(&values, 1.0)?;
        rows += 1;
    }
    points.ok_or(ClusteringError::EmptyInput)
}

/// Loads a CSV file of numeric rows into a [`Dataset`] named after the file
/// stem.
///
/// # Errors
/// Returns an error when the file cannot be read or parsed.
pub fn load_points(path: &Path, options: CsvOptions) -> Result<Dataset> {
    let file = File::open(path).map_err(|e| ClusteringError::InvalidParameter {
        name: "path",
        message: format!("cannot open {}: {e}", path.display()),
    })?;
    let mut reader = BufReader::new(file);
    let mut text = String::new();
    reader
        .read_to_string(&mut text)
        .map_err(|e| ClusteringError::InvalidParameter {
            name: "path",
            message: format!("cannot read {}: {e}", path.display()),
        })?;
    let points = parse_points(&text, options)?;
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("csv")
        .to_string();
    Ok(Dataset::new(name, points))
}

/// Writes a dataset as CSV (no header, unit weights are not written).
///
/// # Errors
/// Returns an error when the file cannot be written.
pub fn save_points(path: &Path, dataset: &Dataset) -> Result<()> {
    let file = File::create(path).map_err(|e| ClusteringError::InvalidParameter {
        name: "path",
        message: format!("cannot create {}: {e}", path.display()),
    })?;
    let mut writer = BufWriter::new(file);
    let mut line = String::new();
    for p in dataset.stream() {
        line.clear();
        for (i, v) in p.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!("{v}"));
        }
        line.push('\n');
        writer
            .write_all(line.as_bytes())
            .map_err(|e| ClusteringError::InvalidParameter {
                name: "path",
                message: format!("write failed: {e}"),
            })?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_csv() {
        let text = "1.0,2.0,3.0\n4.0,5.0,6.0\n";
        let points = parse_points(text, CsvOptions::default()).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points.dim(), 3);
        assert_eq!(points.point(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn header_and_blank_lines_are_skipped() {
        let text = "a,b\n\n1.0,2.0\n\n3.0,4.0\n";
        let points = parse_points(
            text,
            CsvOptions {
                has_header: true,
                ..CsvOptions::default()
            },
        )
        .unwrap();
        assert_eq!(points.len(), 2);
    }

    #[test]
    fn limit_caps_rows() {
        let text = "1\n2\n3\n4\n";
        let points = parse_points(
            text,
            CsvOptions {
                limit: Some(2),
                ..CsvOptions::default()
            },
        )
        .unwrap();
        assert_eq!(points.len(), 2);
    }

    #[test]
    fn custom_separator() {
        let text = "1.0;2.0\n3.0;4.0\n";
        let points = parse_points(
            text,
            CsvOptions {
                separator: ';',
                ..CsvOptions::default()
            },
        )
        .unwrap();
        assert_eq!(points.dim(), 2);
    }

    #[test]
    fn bad_rows_are_errors() {
        assert!(parse_points("1.0,abc\n", CsvOptions::default()).is_err());
        assert!(parse_points("1.0,2.0\n3.0\n", CsvOptions::default()).is_err());
        assert!(parse_points("", CsvOptions::default()).is_err());
    }

    #[test]
    fn save_and_load_round_trip() {
        let mut points = PointSet::new(2);
        points.push(&[1.5, -2.25], 1.0);
        points.push(&[0.0, 42.0], 1.0);
        let dataset = Dataset::new("roundtrip", points);
        let dir = std::env::temp_dir();
        let path = dir.join("skm_data_csv_roundtrip_test.csv");
        save_points(&path, &dataset).unwrap();
        let loaded = load_points(&path, CsvOptions::default()).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.points().point(0), &[1.5, -2.25]);
        assert_eq!(loaded.points().point(1), &[0.0, 42.0]);
        let _ = std::fs::remove_file(&path);
    }
}
