//! Gaussian mixture ("blobs") generator.
//!
//! A generic mixture-of-Gaussians stream generator used by the examples,
//! the tests and as the building block of the UCI-like synthetic datasets.

use crate::dataset::Dataset;
use rand::Rng;
use skm_clustering::error::{ClusteringError, Result};
use skm_clustering::PointSet;

/// Draws one sample from `N(mean, std²)` using the Box–Muller transform.
///
/// Implemented locally to keep the dependency set minimal (the workspace
/// deliberately restricts itself to `rand` without `rand_distr`).
pub fn normal_sample<R: Rng + ?Sized>(mean: f64, std: f64, rng: &mut R) -> f64 {
    if std <= 0.0 {
        return mean;
    }
    // u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + std * z
}

/// Configuration of one mixture component.
#[derive(Debug, Clone)]
pub struct Component {
    /// Component mean (length = dataset dimension).
    pub mean: Vec<f64>,
    /// Per-dimension standard deviation (length = dataset dimension).
    pub std_dev: Vec<f64>,
    /// Relative sampling weight (need not be normalized).
    pub weight: f64,
}

/// A mixture-of-Gaussians dataset generator.
#[derive(Debug, Clone)]
pub struct GaussianMixture {
    dim: usize,
    components: Vec<Component>,
    name: String,
}

impl GaussianMixture {
    /// Creates a mixture of `clusters` equally weighted, unit-variance
    /// components with well-separated means on a coarse grid in `dim`
    /// dimensions.
    ///
    /// # Errors
    /// Returns an error if `clusters == 0` or `dim == 0`.
    pub fn new(clusters: usize, dim: usize) -> Result<Self> {
        if clusters == 0 {
            return Err(ClusteringError::InvalidParameter {
                name: "clusters",
                message: "must be at least 1".to_string(),
            });
        }
        if dim == 0 {
            return Err(ClusteringError::InvalidParameter {
                name: "dim",
                message: "must be at least 1".to_string(),
            });
        }
        // Place means on a grid with spacing 20 so components are clearly
        // separated relative to the unit standard deviation.
        let per_side = (clusters as f64).sqrt().ceil() as usize;
        let components = (0..clusters)
            .map(|c| {
                let gx = (c % per_side) as f64 * 20.0;
                let gy = (c / per_side) as f64 * 20.0;
                let mut mean = vec![0.0; dim];
                mean[0] = gx;
                if dim > 1 {
                    mean[1] = gy;
                }
                Component {
                    mean,
                    std_dev: vec![1.0; dim],
                    weight: 1.0,
                }
            })
            .collect();
        Ok(Self {
            dim,
            components,
            name: format!("gaussian-{clusters}x{dim}d"),
        })
    }

    /// Creates a mixture from explicit components.
    ///
    /// # Errors
    /// Returns an error if the component list is empty, dimensions are
    /// inconsistent, or any weight / standard deviation is invalid.
    pub fn from_components(name: impl Into<String>, components: Vec<Component>) -> Result<Self> {
        let first = components.first().ok_or(ClusteringError::EmptyInput)?;
        let dim = first.mean.len();
        if dim == 0 {
            return Err(ClusteringError::InvalidParameter {
                name: "components",
                message: "component means must have at least one dimension".to_string(),
            });
        }
        for (i, c) in components.iter().enumerate() {
            if c.mean.len() != dim || c.std_dev.len() != dim {
                return Err(ClusteringError::DimensionMismatch {
                    expected: dim,
                    got: c.mean.len().min(c.std_dev.len()),
                });
            }
            if !(c.weight.is_finite() && c.weight > 0.0) {
                return Err(ClusteringError::InvalidWeight { index: i });
            }
            if c.std_dev.iter().any(|s| !s.is_finite() || *s < 0.0) {
                return Err(ClusteringError::InvalidParameter {
                    name: "std_dev",
                    message: format!("component {i} has a negative or non-finite std dev"),
                });
            }
        }
        Ok(Self {
            dim,
            components,
            name: name.into(),
        })
    }

    /// Dimensionality of generated points.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of mixture components.
    #[must_use]
    pub fn components(&self) -> usize {
        self.components.len()
    }

    /// Ground-truth component means (useful for accuracy checks in tests).
    #[must_use]
    pub fn means(&self) -> Vec<Vec<f64>> {
        self.components.iter().map(|c| c.mean.clone()).collect()
    }

    /// Generates `n` points by sampling a component (proportionally to its
    /// weight) and then a Gaussian point around its mean.
    #[must_use]
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Dataset {
        let total_weight: f64 = self.components.iter().map(|c| c.weight).sum();
        let mut points = PointSet::with_capacity(self.dim, n);
        let mut buf = vec![0.0; self.dim];
        for _ in 0..n {
            // Pick a component.
            let mut target = rng.gen::<f64>() * total_weight;
            let mut chosen = self.components.len() - 1;
            for (i, c) in self.components.iter().enumerate() {
                if target < c.weight {
                    chosen = i;
                    break;
                }
                target -= c.weight;
            }
            let c = &self.components[chosen];
            for (d, slot) in buf.iter_mut().enumerate() {
                *slot = normal_sample(c.mean[d], c.std_dev[d], rng);
            }
            points.push(&buf, 1.0);
        }
        Dataset::new(self.name.clone(), points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn rejects_degenerate_configs() {
        assert!(GaussianMixture::new(0, 2).is_err());
        assert!(GaussianMixture::new(2, 0).is_err());
        assert!(GaussianMixture::from_components("x", vec![]).is_err());
    }

    #[test]
    fn generates_requested_size_and_dim() {
        let g = GaussianMixture::new(4, 5).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let d = g.generate(1_000, &mut rng);
        assert_eq!(d.len(), 1_000);
        assert_eq!(d.dim(), 5);
        assert_eq!(g.components(), 4);
    }

    #[test]
    fn points_concentrate_near_their_means() {
        let g = GaussianMixture::new(3, 2).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let d = g.generate(3_000, &mut rng);
        let means = g.means();
        // Every point should be within 6 sigma of some mean.
        for p in d.stream() {
            let nearest = means
                .iter()
                .map(|m| skm_clustering::distance::distance(p, m))
                .fold(f64::INFINITY, f64::min);
            assert!(
                nearest < 6.0,
                "point {p:?} is {nearest} away from all means"
            );
        }
    }

    #[test]
    fn weights_control_component_sizes() {
        let components = vec![
            Component {
                mean: vec![0.0],
                std_dev: vec![0.1],
                weight: 9.0,
            },
            Component {
                mean: vec![100.0],
                std_dev: vec![0.1],
                weight: 1.0,
            },
        ];
        let g = GaussianMixture::from_components("skewed", components).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let d = g.generate(10_000, &mut rng);
        let near_zero = d.stream().filter(|p| p[0] < 50.0).count();
        let frac = near_zero as f64 / 10_000.0;
        assert!((frac - 0.9).abs() < 0.02, "fraction near 0 was {frac}");
    }

    #[test]
    fn invalid_components_are_rejected() {
        let bad_weight = vec![Component {
            mean: vec![0.0],
            std_dev: vec![1.0],
            weight: 0.0,
        }];
        assert!(GaussianMixture::from_components("w", bad_weight).is_err());
        let bad_std = vec![Component {
            mean: vec![0.0],
            std_dev: vec![-1.0],
            weight: 1.0,
        }];
        assert!(GaussianMixture::from_components("s", bad_std).is_err());
        let bad_dim = vec![
            Component {
                mean: vec![0.0, 1.0],
                std_dev: vec![1.0, 1.0],
                weight: 1.0,
            },
            Component {
                mean: vec![0.0],
                std_dev: vec![1.0],
                weight: 1.0,
            },
        ];
        assert!(GaussianMixture::from_components("d", bad_dim).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let g = GaussianMixture::new(2, 3).unwrap();
        let a = g.generate(50, &mut ChaCha8Rng::seed_from_u64(9));
        let b = g.generate(50, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(a.points(), b.points());
    }
}
