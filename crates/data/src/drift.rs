//! The Drift dataset: drifting Radial-Basis-Function (RBF) stream generator.
//!
//! The paper's fourth dataset is itself semi-synthetic: 20 cluster centers
//! are fitted to USCensus1990, and MOA's RBF generator then moves those
//! centers with a fixed speed and direction, emitting 100 Gaussian points
//! around each center per time step, for a total of 200,000 points in 68
//! dimensions (Section 5.1). This module re-implements that generator; the
//! initial centers are random (deterministic given the seed) rather than
//! fitted to USCensus1990, which does not change the structural property the
//! dataset exists to exercise — cluster centers that move over the stream.

use crate::dataset::Dataset;
use crate::gaussian::normal_sample;
use rand::Rng;
use skm_clustering::error::{ClusteringError, Result};
use skm_clustering::PointSet;

/// Drifting-RBF stream generator (MOA-style).
#[derive(Debug, Clone)]
pub struct RbfDriftGenerator {
    dim: usize,
    n_centers: usize,
    /// Distance each center moves per time step.
    speed: f64,
    /// Standard deviation of points around their center.
    std_dev: f64,
    /// Points emitted around each center per time step.
    points_per_step: usize,
    /// Side length of the box the initial centers are drawn from.
    box_size: f64,
}

impl RbfDriftGenerator {
    /// Creates a generator matching the paper's Drift dataset: 20 centers in
    /// 68 dimensions, 100 points per center per step.
    ///
    /// # Errors
    /// Returns an error for zero dimensions/centers or a negative speed.
    pub fn new(n_centers: usize, dim: usize) -> Result<Self> {
        if n_centers == 0 {
            return Err(ClusteringError::InvalidParameter {
                name: "n_centers",
                message: "must be at least 1".to_string(),
            });
        }
        if dim == 0 {
            return Err(ClusteringError::InvalidParameter {
                name: "dim",
                message: "must be at least 1".to_string(),
            });
        }
        Ok(Self {
            dim,
            n_centers,
            speed: 0.2,
            std_dev: 1.0,
            points_per_step: 100,
            box_size: 50.0,
        })
    }

    /// The paper's configuration: 20 drifting centers in 68 dimensions.
    ///
    /// # Errors
    /// Never fails for these constants; kept fallible for API symmetry.
    pub fn paper_default() -> Result<Self> {
        Self::new(20, 68)
    }

    /// Sets the per-step drift speed.
    #[must_use]
    pub fn with_speed(mut self, speed: f64) -> Self {
        self.speed = speed.max(0.0);
        self
    }

    /// Sets the per-cluster standard deviation.
    #[must_use]
    pub fn with_std_dev(mut self, std_dev: f64) -> Self {
        self.std_dev = std_dev.max(0.0);
        self
    }

    /// Sets how many points are emitted around each center per time step.
    #[must_use]
    pub fn with_points_per_step(mut self, points_per_step: usize) -> Self {
        self.points_per_step = points_per_step.max(1);
        self
    }

    /// Dimensionality of generated points.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Generates a stream of `n` points. Time steps are emitted in order;
    /// within a step the emitting center cycles round-robin so drift is
    /// interleaved rather than blocked.
    #[must_use]
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Dataset {
        // Initial centers uniform in the box, each with a random unit drift
        // direction.
        let mut centers: Vec<Vec<f64>> = (0..self.n_centers)
            .map(|_| {
                (0..self.dim)
                    .map(|_| rng.gen::<f64>() * self.box_size)
                    .collect()
            })
            .collect();
        let directions: Vec<Vec<f64>> = (0..self.n_centers)
            .map(|_| {
                let mut v: Vec<f64> = (0..self.dim).map(|_| rng.gen::<f64>() - 0.5).collect();
                let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
                for x in &mut v {
                    *x /= norm;
                }
                v
            })
            .collect();

        let mut points = PointSet::with_capacity(self.dim, n);
        let mut buf = vec![0.0; self.dim];
        let per_step = self.points_per_step * self.n_centers;
        for i in 0..n {
            // Advance every center at the start of each new time step.
            if i > 0 && i % per_step == 0 {
                for (c, dir) in centers.iter_mut().zip(&directions) {
                    for (cj, dj) in c.iter_mut().zip(dir) {
                        *cj += self.speed * dj;
                    }
                }
            }
            let center = &centers[(i / self.points_per_step) % self.n_centers];
            for d in 0..self.dim {
                buf[d] = normal_sample(center[d], self.std_dev, rng);
            }
            points.push(&buf, 1.0);
        }
        Dataset::new("Drift", points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn rejects_bad_configs() {
        assert!(RbfDriftGenerator::new(0, 5).is_err());
        assert!(RbfDriftGenerator::new(5, 0).is_err());
    }

    #[test]
    fn paper_default_shape() {
        let g = RbfDriftGenerator::paper_default().unwrap();
        assert_eq!(g.dim(), 68);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let d = g.generate(5_000, &mut rng);
        assert_eq!(d.name(), "Drift");
        assert_eq!(d.len(), 5_000);
        assert_eq!(d.dim(), 68);
    }

    #[test]
    fn centers_actually_drift() {
        // With a large speed, the average position of early points and late
        // points must differ noticeably.
        let g = RbfDriftGenerator::new(2, 3)
            .unwrap()
            .with_speed(5.0)
            .with_points_per_step(10);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let d = g.generate(10_000, &mut rng);
        let early: Vec<&[f64]> = d.stream().take(500).collect();
        let late: Vec<&[f64]> = d.stream().skip(9_500).collect();
        let mean = |ps: &[&[f64]]| -> f64 {
            ps.iter().map(|p| p.iter().sum::<f64>()).sum::<f64>() / ps.len() as f64
        };
        let shift = (mean(&late) - mean(&early)).abs();
        assert!(shift > 10.0, "expected visible drift, got {shift}");
    }

    #[test]
    fn zero_speed_keeps_clusters_stationary() {
        let g = RbfDriftGenerator::new(3, 2)
            .unwrap()
            .with_speed(0.0)
            .with_std_dev(0.5)
            .with_points_per_step(5);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let d = g.generate(6_000, &mut rng);
        let early: Vec<&[f64]> = d.stream().take(300).collect();
        let late: Vec<&[f64]> = d.stream().skip(5_700).collect();
        let mean = |ps: &[&[f64]]| -> f64 {
            ps.iter().map(|p| p.iter().sum::<f64>()).sum::<f64>() / ps.len() as f64
        };
        assert!((mean(&late) - mean(&early)).abs() < 3.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = RbfDriftGenerator::new(4, 6).unwrap();
        let a = g.generate(300, &mut ChaCha8Rng::seed_from_u64(3));
        let b = g.generate(300, &mut ChaCha8Rng::seed_from_u64(3));
        assert_eq!(a.points(), b.points());
    }
}
