//! # skm-data
//!
//! Workload generation for the *Streaming k-Means Clustering with Fast
//! Queries* reproduction.
//!
//! The paper evaluates on four datasets (Table 3): Covtype, Power, Intrusion
//! (all UCI / KDD-Cup data) and a semi-synthetic Drift stream generated with
//! MOA's RBF generator from USCensus1990 cluster statistics. The raw UCI
//! files are not redistributable with this repository, so this crate
//! provides:
//!
//! * [`GaussianMixture`] — a general mixture-of-blobs generator,
//! * [`uci_like`] — synthetic stand-ins (`covtype_like`, `power_like`,
//!   `intrusion_like`) that match the dimensionality and cluster structure
//!   of the originals (see DESIGN.md for the substitution argument),
//! * [`drift`] — a re-implementation of the RBF drifting-centers generator
//!   the paper itself uses for its Drift dataset,
//! * [`csv`] — loaders so the real datasets can be used when available,
//! * [`queries`] — the query schedules of the evaluation (fixed interval
//!   `q` and Poisson arrivals with rate `λ`),
//! * [`hostile`] — adversarial streams (heavy duplicates, near-zero
//!   variance, dimension-hot outliers, adversarial orderings, high-dim)
//!   for the robustness suite.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod csv;
pub mod dataset;
pub mod drift;
pub mod gaussian;
pub mod hostile;
pub mod queries;
pub mod transform;
pub mod uci_like;

pub use dataset::Dataset;
pub use drift::RbfDriftGenerator;
pub use gaussian::GaussianMixture;
pub use hostile::{
    adversarial_order, dimension_hot_outliers, heavy_duplicates, high_dim, near_zero_variance,
};
pub use queries::QuerySchedule;
pub use transform::{MinMaxScaler, ZScoreNormalizer};

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::dataset::Dataset;
    pub use crate::drift::RbfDriftGenerator;
    pub use crate::gaussian::GaussianMixture;
    pub use crate::hostile::{
        adversarial_order, dimension_hot_outliers, heavy_duplicates, high_dim, near_zero_variance,
    };
    pub use crate::queries::QuerySchedule;
    pub use crate::transform::{MinMaxScaler, ZScoreNormalizer};
    pub use crate::uci_like::{covtype_like, intrusion_like, power_like};
}
