//! `skm-serve` — run the TCP/JSON clustering server, or drive one with the
//! built-in load generator.
//!
//! ```text
//! skm-serve serve   [--addr 127.0.0.1:7878] [--backend sharded-cc|cc|ct|rcc]
//!                   [--k 8] [--shards 4] [--batch 128] [--seed 42]
//!                   [--snapshot-dir DIR] [--restore FILE] [--max-resident 64]
//!                   [--wal-dir DIR] [--fsync-ms 5] [--idle-evict-secs 0]
//! skm-serve follow  --primary HOST:PORT [--addr 127.0.0.1:7879]
//!                   [--namespace NS] [--max-lag 1024] [--codec json|binary]
//! skm-serve recover --wal-dir DIR
//! skm-serve bench   [--addr 127.0.0.1:7878] [--connections 4] [--points 20000]
//!                   [--dim 8] [--batch 128] [--query-every 8] [--seed 42]
//!                   [--freshness strict|cached] [--tenants 1] [--zipf 1.1]
//!                   [--codec json|binary] [--idle-conns 0] [--shutdown]
//!                   [--follower-of HOST:PORT]
//! ```
//!
//! `serve` blocks until a client sends `{"Shutdown":{}}`. At most
//! `--max-resident` tenant streams stay in memory; with `--snapshot-dir`
//! the least-recently-used tenant is paged out to disk (and restored
//! transparently on next touch), without it the cap is a hard limit.
//! `--wal-dir` attaches a per-tenant write-ahead log: every accepted
//! mutation is logged before it is applied, group-committed every
//! `--fsync-ms` milliseconds (0 = fsync every append), folded into
//! incremental checkpoints, and replayed bit-identically on restart. The
//! log directory then supersedes eviction files as the paging store, and
//! the server accepts `Replicate` subscriptions from followers.
//! `--idle-evict-secs N` pages out tenants untouched for N seconds.
//!
//! `follow` runs a read-only replica: it tails the primary's replication
//! stream for one tenant, applies it locally, and serves cached reads
//! while its lag stays within `--max-lag` records (writes and strict
//! reads are refused with `ReplicationLag`).
//!
//! `recover` opens a write-ahead log directory offline, replays every
//! tenant (checkpoint + tail), folds the tails into fresh checkpoints and
//! reports per-tenant positions — a crash-recovery dry run and log
//! compactor in one.
//!
//! `bench` connects to an already-running server, drives it with a mixed
//! ingest:query workload of Gaussian-blob points — spread over `--tenants`
//! namespaces with Zipf(`--zipf`) skew when above 1 — and prints
//! per-request latency percentiles. `--codec binary` negotiates the
//! length-prefixed binary framing on each driving connection, and
//! `--idle-conns N` holds N extra idle connections open across the run
//! (liveness-checked at the end); `--conns` is an alias for
//! `--connections`, and `--shutdown` stops the server afterwards.
//! `--follower-of ADDR` pairs every interleaved primary query with a
//! cached query against a follower at ADDR, reporting follower latency
//! and lag refusals. See `docs/PROTOCOL.md` for the wire protocol.

use skm_serve::client::Client;
use skm_serve::codec::CodecKind;
use skm_serve::engine::{BackendKind, Engine, EngineSpec, WalConfig, DEFAULT_MAX_RESIDENT};
use skm_serve::follower::{start_follower, FollowerSpec};
use skm_serve::loadgen::{run_load, LoadSpec};
use skm_serve::protocol::{Freshness, MAX_BATCH_POINTS};
use skm_serve::server::Server;
use skm_stream::StreamConfig;
use std::net::ToSocketAddrs;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// Parsed flags shared by both subcommands (unused ones are ignored).
#[derive(Debug)]
struct Args {
    addr: String,
    backend: BackendKind,
    k: usize,
    shards: usize,
    batch: usize,
    seed: u64,
    snapshot_dir: Option<PathBuf>,
    restore: Option<PathBuf>,
    connections: usize,
    points: usize,
    dim: usize,
    query_every: usize,
    freshness: Freshness,
    max_resident: usize,
    tenants: usize,
    zipf_s: f64,
    codec: CodecKind,
    idle_conns: usize,
    shutdown: bool,
    wal_dir: Option<PathBuf>,
    fsync_ms: u64,
    idle_evict_secs: u64,
    primary: Option<String>,
    namespace: Option<String>,
    max_lag: u64,
    follower_of: Option<String>,
    errors: Vec<String>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_string(),
            backend: BackendKind::ShardedCc,
            k: 8,
            shards: 4,
            batch: 128,
            seed: 42,
            snapshot_dir: None,
            restore: None,
            connections: 4,
            points: 20_000,
            dim: 8,
            query_every: 8,
            freshness: Freshness::Strict,
            max_resident: DEFAULT_MAX_RESIDENT,
            tenants: 1,
            zipf_s: 1.1,
            codec: CodecKind::Json,
            idle_conns: 0,
            shutdown: false,
            wal_dir: None,
            fsync_ms: 5,
            idle_evict_secs: 0,
            primary: None,
            namespace: None,
            max_lag: 1024,
            follower_of: None,
            errors: Vec::new(),
        }
    }
}

fn parse_args(tokens: impl Iterator<Item = String>) -> Args {
    let mut args = Args::default();
    let mut iter = tokens.peekable();
    while let Some(flag) = iter.next() {
        let mut take = |name: &str, errors: &mut Vec<String>| match iter.next() {
            Some(v) => Some(v),
            None => {
                errors.push(format!("flag `{name}` requires a value"));
                None
            }
        };
        match flag.as_str() {
            "--addr" => {
                if let Some(v) = take("--addr", &mut args.errors) {
                    args.addr = v;
                }
            }
            "--backend" => {
                if let Some(v) = take("--backend", &mut args.errors) {
                    match BackendKind::parse(&v) {
                        Some(kind) => args.backend = kind,
                        None => args.errors.push(format!("unknown backend `{v}`")),
                    }
                }
            }
            "--snapshot-dir" => {
                args.snapshot_dir = take("--snapshot-dir", &mut args.errors).map(PathBuf::from);
            }
            "--restore" => {
                args.restore = take("--restore", &mut args.errors).map(PathBuf::from);
            }
            "--wal-dir" => {
                args.wal_dir = take("--wal-dir", &mut args.errors).map(PathBuf::from);
            }
            "--primary" => {
                args.primary = take("--primary", &mut args.errors);
            }
            "--namespace" => {
                args.namespace = take("--namespace", &mut args.errors);
            }
            "--follower-of" => {
                args.follower_of = take("--follower-of", &mut args.errors);
            }
            "--freshness" => {
                if let Some(v) = take("--freshness", &mut args.errors) {
                    match Freshness::parse(&v) {
                        Some(freshness) => args.freshness = freshness,
                        None => args.errors.push(format!(
                            "unknown freshness `{v}` (expected `strict` or `cached`)"
                        )),
                    }
                }
            }
            "--zipf" => {
                if let Some(v) = take("--zipf", &mut args.errors) {
                    match v.parse::<f64>() {
                        Ok(s) if s >= 0.0 && s.is_finite() => args.zipf_s = s,
                        _ => args.errors.push(format!(
                            "flag `--zipf` wants a non-negative number, got `{v}`"
                        )),
                    }
                }
            }
            "--codec" => {
                if let Some(v) = take("--codec", &mut args.errors) {
                    match CodecKind::parse(&v) {
                        Some(codec) => args.codec = codec,
                        None => args
                            .errors
                            .push(format!("unknown codec `{v}` (expected `json` or `binary`)")),
                    }
                }
            }
            "--shutdown" => args.shutdown = true,
            "--k" | "--shards" | "--batch" | "--seed" | "--connections" | "--conns"
            | "--points" | "--dim" | "--query-every" | "--max-resident" | "--tenants"
            | "--idle-conns" | "--fsync-ms" | "--idle-evict-secs" | "--max-lag" => {
                let Some(v) = take(&flag, &mut args.errors) else {
                    continue;
                };
                let Ok(n) = v.parse::<u64>() else {
                    args.errors
                        .push(format!("flag `{flag}` wants a number, got `{v}`"));
                    continue;
                };
                match flag.as_str() {
                    "--k" => args.k = (n as usize).max(1),
                    "--shards" => args.shards = (n as usize).max(1),
                    "--batch" => args.batch = (n as usize).max(1),
                    "--seed" => args.seed = n,
                    "--connections" | "--conns" => args.connections = (n as usize).max(1),
                    "--points" => args.points = (n as usize).max(100),
                    "--dim" => args.dim = (n as usize).max(1),
                    "--query-every" => args.query_every = n as usize,
                    "--max-resident" => args.max_resident = (n as usize).max(1),
                    "--tenants" => args.tenants = (n as usize).max(1),
                    "--idle-conns" => args.idle_conns = n as usize,
                    "--fsync-ms" => args.fsync_ms = n,
                    "--idle-evict-secs" => args.idle_evict_secs = n,
                    "--max-lag" => args.max_lag = n,
                    _ => unreachable!(),
                }
            }
            other => eprintln!("ignoring unknown argument `{other}`"),
        }
    }
    args
}

fn default_spec(args: &Args) -> EngineSpec {
    EngineSpec {
        kind: args.backend,
        stream: StreamConfig::new(args.k),
        shards: args.shards,
        batch: args.batch,
        nesting_depth: 2,
        seed: args.seed,
    }
}

fn build_engine(args: &Args) -> Result<Engine, String> {
    // The snapshot directory doubles as the eviction directory: both hold
    // the same versioned envelope, and tenants must not be able to write
    // anywhere else.
    if let Some(path) = &args.restore {
        if args.wal_dir.is_some() {
            return Err(
                "--restore conflicts with --wal-dir: with a write-ahead log the log \
                 directory is the single source of truth (recovery replays it on start)"
                    .to_string(),
            );
        }
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read snapshot `{}`: {e}", path.display()))?;
        return Engine::from_snapshot_json(&text)
            .map(|e| e.with_eviction(args.max_resident, args.snapshot_dir.clone()))
            .map_err(|e| format!("cannot restore snapshot `{}`: {e}", path.display()));
    }
    let engine = Engine::with_options(
        &default_spec(args),
        args.max_resident,
        args.snapshot_dir.clone(),
    )
    .map_err(|e| format!("cannot build engine: {e}"))?;
    match &args.wal_dir {
        Some(dir) => engine
            .with_wal(WalConfig::new(dir.clone()).with_fsync_ms(args.fsync_ms))
            .map_err(|e| format!("cannot open write-ahead log `{}`: {e}", dir.display())),
        None => Ok(engine),
    }
}

fn serve(args: &Args) -> Result<(), String> {
    let engine = Arc::new(build_engine(args)?);
    if engine.wal_enabled() {
        println!(
            "write-ahead log at `{}` (group commit every {} ms)",
            args.wal_dir
                .as_deref()
                .unwrap_or_else(|| std::path::Path::new("?"))
                .display(),
            args.fsync_ms
        );
    }
    let mut server = Server::bind(args.addr.as_str(), engine, args.snapshot_dir.clone())
        .map_err(|e| format!("cannot bind `{}`: {e}", args.addr))?;
    if args.idle_evict_secs > 0 {
        server = server.with_idle_evict(Duration::from_secs(args.idle_evict_secs));
    }
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    println!("skm-serve listening on {addr} (send {{\"Shutdown\":{{}}}} to stop)");
    server.run().map_err(|e| format!("server failed: {e}"))
}

/// Offline crash-recovery pass: open the log root, replay every tenant,
/// fold the tails into fresh checkpoints and report the positions.
fn recover(args: &Args) -> Result<(), String> {
    let Some(dir) = &args.wal_dir else {
        return Err("recover requires --wal-dir".to_string());
    };
    let engine = Engine::with_options(&default_spec(args), args.max_resident, None)
        .and_then(|e| e.with_wal(WalConfig::new(dir.clone()).with_fsync_ms(args.fsync_ms)))
        .map_err(|e| format!("recovery of `{}` failed: {e}", dir.display()))?;
    for namespace in engine.namespaces() {
        let durable = engine
            .wal_durable_seq_in(&namespace)
            .map_err(|e| format!("tenant `{namespace}`: {e}"))?;
        let covered = engine
            .checkpoint_now_in(&namespace)
            .map_err(|e| format!("cannot checkpoint tenant `{namespace}`: {e}"))?;
        println!(
            "recovered tenant `{namespace}`: durable through seq {durable}, \
             checkpoint now covers seq {covered}"
        );
    }
    Ok(())
}

/// Runs a read-only follower replica tailing `--primary`.
fn follow(args: &Args) -> Result<(), String> {
    let Some(primary) = &args.primary else {
        return Err("follow requires --primary HOST:PORT".to_string());
    };
    let engine = Arc::new(
        Engine::with_options(&default_spec(args), args.max_resident, None)
            .map_err(|e| format!("cannot build engine: {e}"))?
            .with_follower(args.max_lag),
    );
    let mut spec = FollowerSpec::new(primary.clone()).with_codec(args.codec);
    if let Some(namespace) = &args.namespace {
        spec = spec.with_namespace(namespace.clone());
    }
    let tail = start_follower(Arc::clone(&engine), spec)
        .map_err(|e| format!("cannot start follower: {e}"))?;
    let server = Server::bind(args.addr.as_str(), engine, None)
        .map_err(|e| format!("cannot bind `{}`: {e}", args.addr))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    println!(
        "skm-serve following {primary} on {addr} (cached reads only, lag bound {} records)",
        args.max_lag
    );
    let result = server.run().map_err(|e| format!("server failed: {e}"));
    tail.stop();
    result
}

/// Deterministic Gaussian-ish blobs for the bench subcommand (splitmix-style
/// hashing; no RNG crate needed in the binary).
fn blob_points(points: usize, dim: usize, k: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..points)
        .map(|i| {
            let anchor = (i % k) as f64 * 50.0;
            (0..dim)
                .map(|d| anchor + next() + d as f64 * 0.01)
                .collect()
        })
        .collect()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn bench(args: &Args) -> Result<(), String> {
    let addr = args
        .addr
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve `{}`: {e}", args.addr))?
        .next()
        .ok_or_else(|| format!("`{}` resolves to no address", args.addr))?;
    let points = blob_points(args.points, args.dim, args.k, args.seed);
    // The server rejects batches above the protocol limit outright; clamp
    // here so an oversized --batch degrades to the maximum instead of a
    // run where every request fails with BatchTooLarge.
    let batch = args.batch.min(MAX_BATCH_POINTS);
    if batch != args.batch {
        eprintln!(
            "--batch {} exceeds the protocol limit; clamped to {MAX_BATCH_POINTS}",
            args.batch
        );
    }
    let mut spec = LoadSpec::new(addr)
        .with_connections(args.connections)
        .with_batch(batch)
        .with_query_every(args.query_every)
        .with_freshness(args.freshness)
        .with_tenants(args.tenants, args.zipf_s)
        .with_codec(args.codec)
        .with_idle_conns(args.idle_conns);
    if let Some(follower) = &args.follower_of {
        let follower_addr = follower
            .to_socket_addrs()
            .map_err(|e| format!("cannot resolve follower `{follower}`: {e}"))?
            .next()
            .ok_or_else(|| format!("`{follower}` resolves to no address"))?;
        spec = spec.with_follower_of(follower_addr);
    }
    let report = run_load(&spec, &points).map_err(|e| format!("load generator failed: {e}"))?;
    let mut ingest = report.ingest_ns.clone();
    ingest.sort_by(f64::total_cmp);
    let mut query = report.query_ns.clone();
    query.sort_by(f64::total_cmp);
    println!(
        "sent {} points over {} connections, {} codec ({} ingest requests, {} queries, {} server errors)",
        report.points_sent,
        args.connections,
        args.codec.as_str(),
        ingest.len(),
        report.queries,
        report.server_errors
    );
    if args.idle_conns > 0 {
        println!(
            "held {} idle connections across the run (requested {})",
            report.idle_held, args.idle_conns
        );
    }
    println!(
        "ingest request latency: p50 {:>9.0} ns   p95 {:>9.0} ns   p99 {:>9.0} ns",
        percentile(&ingest, 50.0),
        percentile(&ingest, 95.0),
        percentile(&ingest, 99.0)
    );
    println!(
        "query latency:          p50 {:>9.0} ns   p95 {:>9.0} ns   p99 {:>9.0} ns",
        percentile(&query, 50.0),
        percentile(&query, 95.0),
        percentile(&query, 99.0)
    );
    if args.follower_of.is_some() {
        let mut follower_ns = report.follower_query_ns.clone();
        follower_ns.sort_by(f64::total_cmp);
        println!(
            "follower (cached) answered {} queries, refused {} for lag; \
             p50 {:>9.0} ns   p99 {:>9.0} ns",
            report.follower_queries,
            report.follower_lag_refusals,
            percentile(&follower_ns, 50.0),
            percentile(&follower_ns, 99.0)
        );
    }
    if report.server_errors > 0 {
        return Err(format!("{} server errors", report.server_errors));
    }
    if args.shutdown {
        let mut client =
            Client::connect(addr).map_err(|e| format!("cannot connect for shutdown: {e}"))?;
        client
            .shutdown()
            .map_err(|e| format!("shutdown request failed: {e}"))?;
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let subcommand = argv.next().unwrap_or_default();
    let args = parse_args(argv);
    if !args.errors.is_empty() {
        for e in &args.errors {
            eprintln!("{e}");
        }
        return ExitCode::FAILURE;
    }
    let result = match subcommand.as_str() {
        "serve" => serve(&args),
        "follow" => follow(&args),
        "recover" => recover(&args),
        "bench" => bench(&args),
        other => Err(format!(
            "unknown subcommand `{other}` (expected `serve`, `follow`, `recover` or `bench`)"
        )),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("skm-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
