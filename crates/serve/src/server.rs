//! The TCP server around the evented I/O core.
//!
//! Since protocol revision 1.3 the server runs a small fixed set of
//! non-blocking event loops multiplexing every connection — see
//! [`crate::event`] for the state machines, backpressure and codec
//! negotiation. (The original thread-per-connection blocking core served
//! one release as the measurable `--core blocking` baseline and has been
//! removed; its newline-JSON dialect is the evented core's default codec,
//! so nothing on the wire changed.)
//!
//! Requests execute through the shared `crate::dispatch` layer: each
//! request resolves its optional `namespace` to a tenant stream
//! (`"default"` when omitted); ingest requests (and strict queries)
//! serialize on that tenant's backend mutex only, and `cached` queries are
//! served from the tenant's published snapshot and never wait on
//! ingestion.
//!
//! The server runs until a `Shutdown` request arrives (or
//! [`ServerHandle::shutdown`] is called from the hosting process); it then
//! drains in-flight requests, flushes responses and returns. Malformed
//! request frames are answered with typed error responses — a broken
//! client cannot take the server down, and every failure leaves the engine
//! usable.

use crate::engine::Engine;
use crate::event::run_evented;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// A bound, not-yet-running server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    engine: Arc<Engine>,
    snapshot_dir: Option<PathBuf>,
    shutdown: Arc<AtomicBool>,
    idle_evict: Option<Duration>,
}

/// Control handle for a server running on a background thread
/// (see [`Server::spawn`]).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    engine: Arc<Engine>,
    shutdown: Arc<AtomicBool>,
    thread: thread::JoinHandle<io::Result<()>>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) around a shared
    /// engine. `snapshot_dir` enables the `Snapshot` request: when `None`,
    /// snapshot requests are answered with
    /// [`crate::protocol::ErrorCode::SnapshotUnavailable`].
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        engine: Arc<Engine>,
        snapshot_dir: Option<PathBuf>,
    ) -> io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            engine,
            snapshot_dir,
            shutdown: Arc::new(AtomicBool::new(false)),
            idle_evict: None,
        })
    }

    /// Pages out tenants that have gone untouched for `max_idle`
    /// (builder-style). The sweep runs about once a second on the
    /// listener loop; paged-out tenants are restored transparently on
    /// their next request. Only effective when the engine can page to
    /// disk (WAL or eviction directory).
    #[must_use]
    pub fn with_idle_evict(mut self, max_idle: Duration) -> Self {
        self.idle_evict = Some(max_idle);
        self
    }

    /// The address the server is listening on (resolves port 0).
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the server on the calling thread until shutdown, then drains
    /// and joins every event loop.
    ///
    /// # Errors
    /// Propagates accept-loop socket errors.
    pub fn run(self) -> io::Result<()> {
        run_evented(
            self.listener,
            self.engine,
            self.snapshot_dir,
            self.shutdown,
            self.idle_evict,
        )
    }

    /// Moves the server onto a background thread and returns a control
    /// handle.
    ///
    /// # Errors
    /// Propagates socket errors from resolving the local address.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let engine = Arc::clone(&self.engine);
        let shutdown = Arc::clone(&self.shutdown);
        let thread = thread::Builder::new()
            .name("skm-serve-accept".to_string())
            .spawn(move || self.run())?;
        Ok(ServerHandle {
            addr,
            engine,
            shutdown,
            thread,
        })
    }
}

impl ServerHandle {
    /// The address the server is listening on.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared engine (e.g. to read memory accounting from the hosting
    /// process).
    #[must_use]
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Requests shutdown and blocks until every loop has drained and
    /// exited.
    ///
    /// # Errors
    /// Propagates accept-loop socket errors; a panicked accept thread is
    /// reported as [`io::ErrorKind::Other`].
    pub fn shutdown(self) -> io::Result<()> {
        self.shutdown.store(true, Ordering::SeqCst);
        wake_accept_loop(self.addr);
        match self.thread.join() {
            Ok(result) => result,
            Err(_) => Err(io::Error::other("server accept thread panicked")),
        }
    }
}

/// Unblocks a waiting accept path by connecting (and immediately dropping)
/// a throwaway socket: the listener loop polls ready and observes the
/// shutdown flag. A wildcard bind address is not connectable on every
/// platform, so the wake targets the matching loopback address instead.
fn wake_accept_loop(mut addr: SocketAddr) {
    if addr.ip().is_unspecified() {
        addr.set_ip(match addr {
            SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
            SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
        });
    }
    let _ = TcpStream::connect(addr);
}
