//! The multi-threaded TCP server: one handler thread per connection, all
//! feeding the shared [`Engine`]. Each request resolves its optional
//! `namespace` to a tenant stream (`"default"` when omitted); ingest
//! requests (and strict queries) serialize on that tenant's backend mutex
//! only, and `cached` queries are served from the tenant's published
//! snapshot and never wait on ingestion.
//!
//! The accept loop runs until a `Shutdown` request arrives (or
//! [`ServerHandle::shutdown`] is called from the hosting process); it then
//! stops accepting, joins every handler thread and returns. Malformed
//! request lines are answered with typed error responses — a broken client
//! cannot take the server down, and every failure leaves the engine usable.

use crate::engine::{BackendKind, Engine, EngineSpec};
use crate::protocol::{
    error_response, is_bare_name, validate_namespace, ErrorCode, Request, Response, TenantConfig,
    DEFAULT_NAMESPACE, MAX_BATCH_POINTS, MAX_LINE_BYTES,
};
use skm_stream::StreamConfig;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

/// A bound, not-yet-running server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    engine: Arc<Engine>,
    snapshot_dir: Option<PathBuf>,
    shutdown: Arc<AtomicBool>,
}

/// Control handle for a server running on a background thread
/// (see [`Server::spawn`]).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    engine: Arc<Engine>,
    shutdown: Arc<AtomicBool>,
    thread: thread::JoinHandle<io::Result<()>>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) around a shared
    /// engine. `snapshot_dir` enables the `Snapshot` request: when `None`,
    /// snapshot requests are answered with
    /// [`ErrorCode::SnapshotUnavailable`].
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        engine: Arc<Engine>,
        snapshot_dir: Option<PathBuf>,
    ) -> io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            engine,
            snapshot_dir,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The address the server is listening on (resolves port 0).
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the accept loop on the calling thread until shutdown, then
    /// joins every connection handler.
    ///
    /// # Errors
    /// Propagates accept-loop socket errors.
    pub fn run(self) -> io::Result<()> {
        let addr = self.local_addr()?;
        // Join handles paired with a clone of the connection socket: on
        // shutdown the sockets are closed first, so handlers parked in
        // `read_line` on an idle connection wake up and exit instead of
        // deadlocking the join.
        let mut handlers: Vec<(thread::JoinHandle<()>, TcpStream)> = Vec::new();
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                // A single failed accept (e.g. the peer vanished between
                // SYN and accept) must not stop the server; back off so a
                // persistent failure (fd exhaustion) cannot busy-spin this
                // thread and starve the handlers that would free fds.
                Err(_) => {
                    thread::sleep(std::time::Duration::from_millis(10));
                    continue;
                }
            };
            // One response per request line: answer immediately instead of
            // letting Nagle + delayed ACKs add a ~40 ms floor per request.
            let _ = stream.set_nodelay(true);
            let Ok(stream_for_shutdown) = stream.try_clone() else {
                continue;
            };
            let engine = Arc::clone(&self.engine);
            let snapshot_dir = self.snapshot_dir.clone();
            let shutdown = Arc::clone(&self.shutdown);
            let handle = thread::spawn(move || {
                let _ =
                    handle_connection(stream, &engine, snapshot_dir.as_deref(), &shutdown, addr);
            });
            // Reap finished handlers so a long-lived server does not
            // accumulate one join handle per connection ever served.
            handlers.retain(|(h, _)| !h.is_finished());
            handlers.push((handle, stream_for_shutdown));
        }
        for (handle, stream) in handlers {
            let _ = stream.shutdown(std::net::Shutdown::Both);
            let _ = handle.join();
        }
        Ok(())
    }

    /// Moves the accept loop onto a background thread and returns a control
    /// handle.
    ///
    /// # Errors
    /// Propagates socket errors from resolving the local address.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let engine = Arc::clone(&self.engine);
        let shutdown = Arc::clone(&self.shutdown);
        let thread = thread::Builder::new()
            .name("skm-serve-accept".to_string())
            .spawn(move || self.run())?;
        Ok(ServerHandle {
            addr,
            engine,
            shutdown,
            thread,
        })
    }
}

impl ServerHandle {
    /// The address the server is listening on.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared engine (e.g. to read memory accounting from the hosting
    /// process).
    #[must_use]
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Requests shutdown and blocks until the accept loop and every
    /// connection handler have exited.
    ///
    /// # Errors
    /// Propagates accept-loop socket errors; a panicked accept thread is
    /// reported as [`io::ErrorKind::Other`].
    pub fn shutdown(self) -> io::Result<()> {
        self.shutdown.store(true, Ordering::SeqCst);
        wake_accept_loop(self.addr);
        match self.thread.join() {
            Ok(result) => result,
            Err(_) => Err(io::Error::other("server accept thread panicked")),
        }
    }
}

/// Unblocks a `TcpListener::accept` that is waiting for a connection by
/// connecting (and immediately dropping) a throwaway socket. A wildcard
/// bind address is not connectable on every platform, so the wake targets
/// the matching loopback address instead.
fn wake_accept_loop(mut addr: SocketAddr) {
    if addr.ip().is_unspecified() {
        addr.set_ip(match addr {
            SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
            SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
        });
    }
    let _ = TcpStream::connect(addr);
}

/// Serves one connection: reads newline-delimited JSON requests, answers
/// each with exactly one response line, and keeps going until EOF, an I/O
/// failure, an unrecoverable oversized line, or a `Shutdown` request.
fn handle_connection(
    stream: TcpStream,
    engine: &Engine,
    snapshot_dir: Option<&Path>,
    shutdown: &AtomicBool,
    server_addr: SocketAddr,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut line = Vec::new();
    loop {
        line.clear();
        // Read raw bytes (not `read_line`) so invalid UTF-8 is answered
        // with a typed error below instead of killing the connection with
        // an unexplained EOF.
        let n = (&mut reader)
            .take(MAX_LINE_BYTES)
            .read_until(b'\n', &mut line)?;
        if n == 0 {
            return Ok(()); // client hung up
        }
        if line.last() != Some(&b'\n') && n as u64 >= MAX_LINE_BYTES {
            // The line hit the cap without a newline: there is no way to
            // find the next request boundary, so answer and hang up.
            write_response(
                &mut writer,
                &Response::Error {
                    code: ErrorCode::LineTooLong,
                    message: format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                },
            )?;
            return Ok(());
        }
        let response = match std::str::from_utf8(&line) {
            // The newline boundary is known even for a bad line, so the
            // connection stays usable after the typed error.
            Err(_) => Response::Error {
                code: ErrorCode::MalformedRequest,
                message: "request line is not valid UTF-8".to_string(),
            },
            Ok(text) => {
                let trimmed = text.trim();
                if trimmed.is_empty() {
                    continue; // tolerate blank keep-alive lines
                }
                match Request::from_line(trimmed) {
                    Err(parse_error) => Response::Error {
                        code: ErrorCode::MalformedRequest,
                        message: parse_error,
                    },
                    Ok(request) => dispatch(request, engine, snapshot_dir),
                }
            }
        };
        let is_bye = matches!(response, Response::Bye {});
        write_response(&mut writer, &response)?;
        if is_bye {
            shutdown.store(true, Ordering::SeqCst);
            wake_accept_loop(server_addr);
            return Ok(());
        }
    }
}

fn write_response(writer: &mut BufWriter<TcpStream>, response: &Response) -> io::Result<()> {
    writer.write_all(response.to_line().as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Resolves the optional wire-level namespace to the tenant it names,
/// rejecting path-escaping names before they can reach the engine (or name
/// an eviction file).
fn resolve_namespace(namespace: Option<&str>) -> Result<&str, Response> {
    let namespace = namespace.unwrap_or(DEFAULT_NAMESPACE);
    match validate_namespace(namespace) {
        Ok(()) => Ok(namespace),
        Err(message) => Err(Response::Error {
            code: ErrorCode::BadNamespace,
            message,
        }),
    }
}

/// Executes one parsed request against the engine.
fn dispatch(request: Request, engine: &Engine, snapshot_dir: Option<&Path>) -> Response {
    match request {
        Request::Ingest { point, namespace } => {
            let ns = match resolve_namespace(namespace.as_deref()) {
                Ok(ns) => ns,
                Err(response) => return response,
            };
            match engine.ingest_in(ns, &point) {
                Ok(points_seen) => Response::Ingested {
                    accepted: 1,
                    points_seen,
                },
                Err(e) => error_response(&e),
            }
        }
        Request::IngestBatch { points, namespace } => {
            let ns = match resolve_namespace(namespace.as_deref()) {
                Ok(ns) => ns,
                Err(response) => return response,
            };
            if points.len() > MAX_BATCH_POINTS {
                return Response::Error {
                    code: ErrorCode::BatchTooLarge,
                    message: format!(
                        "batch of {} points exceeds the limit of {MAX_BATCH_POINTS}",
                        points.len()
                    ),
                };
            }
            let accepted = points.len() as u64;
            match engine.ingest_batch_in(ns, &points) {
                Ok(points_seen) => Response::Ingested {
                    accepted,
                    points_seen,
                },
                Err(e) => error_response(&e),
            }
        }
        Request::Query {
            freshness,
            namespace,
        } => {
            let ns = match resolve_namespace(namespace.as_deref()) {
                Ok(ns) => ns,
                Err(response) => return response,
            };
            match engine.query_in(ns, freshness) {
                Ok(published) => Response::Centers {
                    centers: published.centers.to_rows(),
                    points_seen: published.points_seen,
                    epoch: published.epoch,
                    cost: published.cost,
                    stats: published.stats,
                },
                Err(e) => error_response(&e),
            }
        }
        Request::Stats {
            freshness,
            namespace,
        } => {
            let ns = match resolve_namespace(namespace.as_deref()) {
                Ok(ns) => ns,
                Err(response) => return response,
            };
            match engine.stats_in(ns, freshness) {
                Ok(stats) => Response::Stats { stats },
                Err(e) => error_response(&e),
            }
        }
        Request::Configure { namespace, config } => {
            let ns = match resolve_namespace(namespace.as_deref()) {
                Ok(ns) => ns,
                Err(response) => return response,
            };
            configure_tenant(engine, ns, &config)
        }
        Request::Snapshot { file, namespace } => {
            let ns = match resolve_namespace(namespace.as_deref()) {
                Ok(ns) => ns,
                Err(response) => return response,
            };
            snapshot_to(engine, ns, snapshot_dir, &file)
        }
        Request::Shutdown {} => Response::Bye {},
    }
}

/// Builds a per-tenant spec from the engine's default spec plus the
/// request's overrides, and creates the tenant.
fn configure_tenant(engine: &Engine, namespace: &str, config: &TenantConfig) -> Response {
    let mut spec: EngineSpec = *engine.default_spec();
    if let Some(tag) = &config.backend {
        match BackendKind::parse(tag) {
            Some(kind) => spec.kind = kind,
            None => {
                return Response::Error {
                    code: ErrorCode::MalformedRequest,
                    message: format!(
                        "unknown backend `{tag}` (expected sharded-cc, cc, ct or rcc)"
                    ),
                }
            }
        }
    }
    if let Some(k) = config.k {
        // `StreamConfig::new` panics on k == 0; answer with a typed error
        // instead.
        if k == 0 {
            return Response::Error {
                code: ErrorCode::MalformedRequest,
                message: "k must be positive".to_string(),
            };
        }
        // Re-derive the k-dependent defaults (bucket size) for the new k
        // instead of keeping the default spec's.
        let fresh = StreamConfig::new(k);
        spec.stream.k = fresh.k;
        spec.stream.bucket_size = fresh.bucket_size;
    }
    if let Some(shards) = config.shards {
        spec.shards = shards;
    }
    if let Some(batch) = config.batch {
        spec.batch = batch;
    }
    if let Some(seed) = config.seed {
        spec.seed = seed;
    }
    match engine.configure(namespace, &spec) {
        Ok((kind, shards)) => Response::Configured {
            namespace: namespace.to_string(),
            backend: kind.tag().to_string(),
            k: spec.stream.k as u64,
            shards: shards as u64,
        },
        Err(e) => error_response(&e),
    }
}

/// Writes one tenant's snapshot to `file` inside `snapshot_dir`. The file
/// name must be bare (no separators, no `..`): the request names a file,
/// the server owns the directory.
fn snapshot_to(
    engine: &Engine,
    namespace: &str,
    snapshot_dir: Option<&Path>,
    file: &str,
) -> Response {
    let Some(dir) = snapshot_dir else {
        return Response::Error {
            code: ErrorCode::SnapshotUnavailable,
            message: "server was started without a snapshot directory".to_string(),
        };
    };
    if !is_bare_name(file) {
        return Response::Error {
            code: ErrorCode::SnapshotUnavailable,
            message: format!("snapshot file name `{file}` must be a bare file name"),
        };
    }
    let json = match engine.snapshot_json_in(namespace) {
        Ok(json) => json,
        Err(e) => return error_response(&e),
    };
    let path = dir.join(file);
    if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, &json)) {
        return Response::Error {
            code: ErrorCode::Internal,
            message: format!("cannot write snapshot `{}`: {e}", path.display()),
        };
    }
    Response::Snapshotted {
        file: path.display().to_string(),
        bytes: json.len() as u64,
    }
}
