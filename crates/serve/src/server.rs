//! The TCP server and its two I/O cores.
//!
//! [`CoreMode::Evented`] (the default since protocol revision 1.3) runs a
//! small fixed set of non-blocking event loops multiplexing every
//! connection — see [`crate::event`] for the state machines, backpressure
//! and codec negotiation. [`CoreMode::Blocking`] is the original
//! thread-per-connection core, retained as the measurable baseline tier
//! (`core=blocking` in `BENCH_serving.json`) and as the simplest possible
//! reference implementation of the protocol; it speaks newline-JSON only
//! (a `Hello{json}` handshake is accepted, `Hello{binary}` is answered
//! with [`ErrorCode::BadCodec`]).
//!
//! Both cores execute requests through the shared `crate::dispatch`
//! layer, so they cannot drift apart semantically: each request resolves
//! its optional `namespace` to a tenant stream (`"default"` when omitted);
//! ingest requests (and strict queries) serialize on that tenant's backend
//! mutex only, and `cached` queries are served from the tenant's published
//! snapshot and never wait on ingestion.
//!
//! The server runs until a `Shutdown` request arrives (or
//! [`ServerHandle::shutdown`] is called from the hosting process); it then
//! drains in-flight requests, flushes responses and returns. Malformed
//! request frames are answered with typed error responses — a broken
//! client cannot take the server down, and every failure leaves the engine
//! usable.

use crate::codec::CodecKind;
use crate::dispatch::dispatch;
use crate::engine::Engine;
use crate::event::run_evented;
use crate::protocol::{ErrorCode, Request, Response, MAX_LINE_BYTES, PROTOCOL_REVISION};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

/// Which I/O core a [`Server`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoreMode {
    /// Evented non-blocking loops with codec negotiation (the default).
    #[default]
    Evented,
    /// Thread-per-connection blocking I/O, newline-JSON only (baseline
    /// tier).
    Blocking,
}

impl CoreMode {
    /// The CLI spelling (`--core {evented,blocking}`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            CoreMode::Evented => "evented",
            CoreMode::Blocking => "blocking",
        }
    }

    /// Parses the CLI spelling (case-insensitive).
    #[must_use]
    pub fn parse(tag: &str) -> Option<Self> {
        match tag.to_ascii_lowercase().as_str() {
            "evented" => Some(CoreMode::Evented),
            "blocking" => Some(CoreMode::Blocking),
            _ => None,
        }
    }
}

/// A bound, not-yet-running server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    engine: Arc<Engine>,
    snapshot_dir: Option<PathBuf>,
    shutdown: Arc<AtomicBool>,
    core: CoreMode,
}

/// Control handle for a server running on a background thread
/// (see [`Server::spawn`]).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    engine: Arc<Engine>,
    shutdown: Arc<AtomicBool>,
    thread: thread::JoinHandle<io::Result<()>>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) around a shared
    /// engine, on the default [`CoreMode::Evented`] core. `snapshot_dir`
    /// enables the `Snapshot` request: when `None`, snapshot requests are
    /// answered with [`ErrorCode::SnapshotUnavailable`].
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        engine: Arc<Engine>,
        snapshot_dir: Option<PathBuf>,
    ) -> io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            engine,
            snapshot_dir,
            shutdown: Arc::new(AtomicBool::new(false)),
            core: CoreMode::default(),
        })
    }

    /// Selects the I/O core (the default is [`CoreMode::Evented`]).
    #[must_use]
    pub fn with_core(mut self, core: CoreMode) -> Self {
        self.core = core;
        self
    }

    /// The I/O core this server will run.
    #[must_use]
    pub fn core(&self) -> CoreMode {
        self.core
    }

    /// The address the server is listening on (resolves port 0).
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the server on the calling thread until shutdown, then drains
    /// and joins every connection.
    ///
    /// # Errors
    /// Propagates accept-loop socket errors.
    pub fn run(self) -> io::Result<()> {
        match self.core {
            CoreMode::Evented => {
                run_evented(self.listener, self.engine, self.snapshot_dir, self.shutdown)
            }
            CoreMode::Blocking => self.run_blocking(),
        }
    }

    /// The original thread-per-connection core.
    fn run_blocking(self) -> io::Result<()> {
        let addr = self.local_addr()?;
        // Join handles paired with a clone of the connection socket: on
        // shutdown the sockets are closed first, so handlers parked in
        // `read_line` on an idle connection wake up and exit instead of
        // deadlocking the join.
        let mut handlers: Vec<(thread::JoinHandle<()>, TcpStream)> = Vec::new();
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                // A single failed accept (e.g. the peer vanished between
                // SYN and accept) must not stop the server; back off so a
                // persistent failure (fd exhaustion) cannot busy-spin this
                // thread and starve the handlers that would free fds.
                Err(_) => {
                    thread::sleep(std::time::Duration::from_millis(10));
                    continue;
                }
            };
            // One response per request line: answer immediately instead of
            // letting Nagle + delayed ACKs add a ~40 ms floor per request.
            let _ = stream.set_nodelay(true);
            let Ok(stream_for_shutdown) = stream.try_clone() else {
                continue;
            };
            let engine = Arc::clone(&self.engine);
            let snapshot_dir = self.snapshot_dir.clone();
            let shutdown = Arc::clone(&self.shutdown);
            let handle = thread::spawn(move || {
                let _ =
                    handle_connection(stream, &engine, snapshot_dir.as_deref(), &shutdown, addr);
            });
            // Reap finished handlers so a long-lived server does not
            // accumulate one join handle per connection ever served.
            handlers.retain(|(h, _)| !h.is_finished());
            handlers.push((handle, stream_for_shutdown));
        }
        for (handle, stream) in handlers {
            let _ = stream.shutdown(std::net::Shutdown::Both);
            let _ = handle.join();
        }
        Ok(())
    }

    /// Moves the server onto a background thread and returns a control
    /// handle.
    ///
    /// # Errors
    /// Propagates socket errors from resolving the local address.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let engine = Arc::clone(&self.engine);
        let shutdown = Arc::clone(&self.shutdown);
        let thread = thread::Builder::new()
            .name("skm-serve-accept".to_string())
            .spawn(move || self.run())?;
        Ok(ServerHandle {
            addr,
            engine,
            shutdown,
            thread,
        })
    }
}

impl ServerHandle {
    /// The address the server is listening on.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared engine (e.g. to read memory accounting from the hosting
    /// process).
    #[must_use]
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Requests shutdown and blocks until every loop (or connection
    /// handler) has drained and exited.
    ///
    /// # Errors
    /// Propagates accept-loop socket errors; a panicked accept thread is
    /// reported as [`io::ErrorKind::Other`].
    pub fn shutdown(self) -> io::Result<()> {
        self.shutdown.store(true, Ordering::SeqCst);
        wake_accept_loop(self.addr);
        match self.thread.join() {
            Ok(result) => result,
            Err(_) => Err(io::Error::other("server accept thread panicked")),
        }
    }
}

/// Unblocks a waiting accept path by connecting (and immediately dropping)
/// a throwaway socket: the blocking core's `accept()` returns, and the
/// evented core's listener loop polls ready — either way the shutdown flag
/// is observed. A wildcard bind address is not connectable on every
/// platform, so the wake targets the matching loopback address instead.
fn wake_accept_loop(mut addr: SocketAddr) {
    if addr.ip().is_unspecified() {
        addr.set_ip(match addr {
            SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
            SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
        });
    }
    let _ = TcpStream::connect(addr);
}

/// Serves one connection on the blocking core: reads newline-delimited
/// JSON requests, answers each with exactly one response line, and keeps
/// going until EOF, an I/O failure, an unrecoverable oversized line, or a
/// `Shutdown` request.
fn handle_connection(
    stream: TcpStream,
    engine: &Engine,
    snapshot_dir: Option<&Path>,
    shutdown: &AtomicBool,
    server_addr: SocketAddr,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut line = Vec::new();
    let mut handshaken = false;
    loop {
        line.clear();
        // Read raw bytes (not `read_line`) so invalid UTF-8 is answered
        // with a typed error below instead of killing the connection with
        // an unexplained EOF.
        let n = (&mut reader)
            .take(MAX_LINE_BYTES)
            .read_until(b'\n', &mut line)?;
        if n == 0 {
            return Ok(()); // client hung up
        }
        if line.last() != Some(&b'\n') && n as u64 >= MAX_LINE_BYTES {
            // The line hit the cap without a newline: there is no way to
            // find the next request boundary, so answer and hang up.
            write_response(
                &mut writer,
                &Response::Error {
                    code: ErrorCode::LineTooLong,
                    message: format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                },
            )?;
            return Ok(());
        }
        let first_frame = !handshaken;
        let response = match std::str::from_utf8(&line) {
            // The newline boundary is known even for a bad line, so the
            // connection stays usable after the typed error.
            Err(_) => {
                handshaken = true;
                Response::Error {
                    code: ErrorCode::MalformedRequest,
                    message: "request line is not valid UTF-8".to_string(),
                }
            }
            Ok(text) => {
                let trimmed = text.trim();
                if trimmed.is_empty() {
                    continue; // tolerate blank keep-alive lines
                }
                handshaken = true;
                match Request::from_line(trimmed) {
                    Err(parse_error) => Response::Error {
                        code: ErrorCode::MalformedRequest,
                        message: parse_error,
                    },
                    // The blocking core speaks JSON only: a first-frame
                    // `Hello{json}` is a no-op accept; `Hello{binary}` is
                    // a typed refusal (the connection stays JSON-usable).
                    Ok(Request::Hello { codec }) if first_frame => match CodecKind::parse(&codec) {
                        Some(CodecKind::Json) => Response::Hello {
                            codec: CodecKind::Json.as_str().to_string(),
                            revision: PROTOCOL_REVISION.to_string(),
                        },
                        Some(CodecKind::Binary) => Response::Error {
                            code: ErrorCode::BadCodec,
                            message: "the blocking core serves newline-JSON only".to_string(),
                        },
                        None => Response::Error {
                            code: ErrorCode::BadCodec,
                            message: format!(
                                "unknown codec `{codec}` (expected `json` or `binary`)"
                            ),
                        },
                    },
                    Ok(request) => dispatch(request, engine, snapshot_dir),
                }
            }
        };
        let is_bye = matches!(response, Response::Bye {});
        write_response(&mut writer, &response)?;
        if is_bye {
            shutdown.store(true, Ordering::SeqCst);
            wake_accept_loop(server_addr);
            return Ok(());
        }
    }
}

fn write_response(writer: &mut BufWriter<TcpStream>, response: &Response) -> io::Result<()> {
    writer.write_all(response.to_line().as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}
