//! Wire codecs: framing + encode/decode for [`Request`]/[`Response`].
//!
//! Revision 1.3 of the protocol (see `docs/PROTOCOL.md`) speaks two codecs
//! over the same message model:
//!
//! * [`JsonCodec`] — one externally-tagged JSON document per `\n`-terminated
//!   line. The default, the debug protocol, and the only codec a connection
//!   speaks until a `Hello{binary}` handshake succeeds; byte-compatible with
//!   every pre-1.3 client.
//! * [`BinaryCodec`] — length-prefixed compact binary: a `u32` little-endian
//!   payload length followed by a tag byte and fixed-width fields. No text
//!   parsing on the hot path, and `f64`s travel as IEEE-754 bit patterns
//!   (NaN costs survive a round trip, which JSON `null` cannot represent).
//!
//! Both implement the [`Codec`] trait: incremental frame extraction from a
//! receive buffer ([`Codec::next_frame`]) plus whole-message encode/decode.
//! The server, the client and the tests all share these two implementations,
//! so there is exactly one definition of the bytes on the wire.

use crate::protocol::{
    ErrorCode, Freshness, ReplicationRecord, Request, Response, TenantConfig, MAX_LINE_BYTES,
};
use skm_stream::{QueryStats, StreamStats, WindowInfo};

/// Maximum frame payload in bytes, both codecs. For JSON this is the
/// existing [`MAX_LINE_BYTES`] line cap; for binary it bounds the declared
/// length prefix ([`ErrorCode::FrameTooLarge`] beyond it).
pub const MAX_FRAME_BYTES: usize = MAX_LINE_BYTES as usize;

/// Which codec a connection (or client) speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CodecKind {
    /// Newline-delimited JSON (the default and the debug protocol).
    #[default]
    Json,
    /// Length-prefixed compact binary.
    Binary,
}

impl CodecKind {
    /// The wire spelling used by `Hello{codec}` and `--codec` flags.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            CodecKind::Json => "json",
            CodecKind::Binary => "binary",
        }
    }

    /// Parses the wire spelling (case-insensitive).
    #[must_use]
    pub fn parse(tag: &str) -> Option<Self> {
        match tag.to_ascii_lowercase().as_str() {
            "json" => Some(CodecKind::Json),
            "binary" => Some(CodecKind::Binary),
            _ => None,
        }
    }
}

/// One complete frame located inside a receive buffer: the payload is
/// `&buf[start..end]`, and `consumed` bytes (payload plus framing) must be
/// drained from the front of the buffer once the frame is processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    /// Payload start offset in the scanned buffer.
    pub start: usize,
    /// Payload end offset (exclusive).
    pub end: usize,
    /// Total bytes this frame occupies at the front of the buffer.
    pub consumed: usize,
}

/// A framing-level failure: the connection cannot be resynchronized, so the
/// server answers with `code` and closes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameError {
    /// [`ErrorCode::LineTooLong`] (JSON) or [`ErrorCode::FrameTooLarge`]
    /// (binary).
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

/// A wire codec: framing plus message encode/decode. Implementations are
/// stateless unit structs shared via [`codec`].
pub trait Codec: std::fmt::Debug + Send + Sync {
    /// Which codec this is.
    fn kind(&self) -> CodecKind;

    /// Scans the front of a receive buffer for one complete frame.
    /// `Ok(None)` means more bytes are needed.
    ///
    /// # Errors
    /// A [`FrameError`] when the frame can never complete within
    /// [`MAX_FRAME_BYTES`]; the connection must be closed after reporting
    /// it.
    fn next_frame(&self, buf: &[u8]) -> Result<Option<Frame>, FrameError>;

    /// Appends one complete frame (framing included) encoding `request`.
    fn encode_request(&self, request: &Request, out: &mut Vec<u8>);

    /// Decodes a frame payload (as located by [`Codec::next_frame`]) into a
    /// request.
    ///
    /// # Errors
    /// A parse failure message (the server answers it as
    /// [`ErrorCode::MalformedRequest`]).
    fn decode_request(&self, payload: &[u8]) -> Result<Request, String>;

    /// Appends one complete frame (framing included) encoding `response`.
    fn encode_response(&self, response: &Response, out: &mut Vec<u8>);

    /// Decodes a frame payload into a response.
    ///
    /// # Errors
    /// A parse failure message.
    fn decode_response(&self, payload: &[u8]) -> Result<Response, String>;
}

/// The shared stateless instance for `kind` (codecs carry no state, so one
/// `'static` instance each serves every connection).
#[must_use]
pub fn codec(kind: CodecKind) -> &'static dyn Codec {
    match kind {
        CodecKind::Json => &JsonCodec,
        CodecKind::Binary => &BinaryCodec,
    }
}

/// Newline-delimited JSON codec (protocol default; see module docs).
#[derive(Debug, Clone, Copy)]
pub struct JsonCodec;

impl Codec for JsonCodec {
    fn kind(&self) -> CodecKind {
        CodecKind::Json
    }

    fn next_frame(&self, buf: &[u8]) -> Result<Option<Frame>, FrameError> {
        match buf.iter().position(|b| *b == b'\n') {
            Some(nl) => Ok(Some(Frame {
                start: 0,
                end: nl,
                consumed: nl + 1,
            })),
            None if buf.len() >= MAX_FRAME_BYTES => Err(FrameError {
                code: ErrorCode::LineTooLong,
                message: format!(
                    "request line exceeded the {MAX_FRAME_BYTES}-byte limit without a newline"
                ),
            }),
            None => Ok(None),
        }
    }

    fn encode_request(&self, request: &Request, out: &mut Vec<u8>) {
        out.extend_from_slice(request.to_line().as_bytes());
        out.push(b'\n');
    }

    fn decode_request(&self, payload: &[u8]) -> Result<Request, String> {
        let line = std::str::from_utf8(payload)
            .map_err(|_| "request line is not valid UTF-8".to_string())?;
        Request::from_line(line.trim())
    }

    fn encode_response(&self, response: &Response, out: &mut Vec<u8>) {
        out.extend_from_slice(response.to_line().as_bytes());
        out.push(b'\n');
    }

    fn decode_response(&self, payload: &[u8]) -> Result<Response, String> {
        let line = std::str::from_utf8(payload).map_err(|e| e.to_string())?;
        Response::from_line(line.trim())
    }
}

// Binary message tags. Requests are 0x01.., responses 0x81.. so a stray
// response frame can never parse as a request (and vice versa).
const TAG_REQ_INGEST: u8 = 0x01;
const TAG_REQ_INGEST_BATCH: u8 = 0x02;
const TAG_REQ_QUERY: u8 = 0x03;
const TAG_REQ_STATS: u8 = 0x04;
const TAG_REQ_CONFIGURE: u8 = 0x05;
const TAG_REQ_SNAPSHOT: u8 = 0x06;
const TAG_REQ_SHUTDOWN: u8 = 0x07;
const TAG_REQ_HELLO: u8 = 0x08;
const TAG_REQ_REPLICATE: u8 = 0x09;
const TAG_RESP_INGESTED: u8 = 0x81;
const TAG_RESP_CENTERS: u8 = 0x82;
const TAG_RESP_STATS: u8 = 0x83;
const TAG_RESP_CONFIGURED: u8 = 0x84;
const TAG_RESP_SNAPSHOTTED: u8 = 0x85;
const TAG_RESP_BYE: u8 = 0x86;
const TAG_RESP_ERROR: u8 = 0x87;
const TAG_RESP_HELLO: u8 = 0x88;
const TAG_RESP_REPLICA_SNAPSHOT: u8 = 0x89;
const TAG_RESP_REPLICATE: u8 = 0x8A;
// Windowed answers (revision 1.5) travel under their own tags instead of
// optional trailing bytes: a truncated frame must read as *incomplete*,
// never as a valid un-windowed answer.
const TAG_RESP_CENTERS_WINDOWED: u8 = 0x8B;
const TAG_RESP_STATS_WINDOWED: u8 = 0x8C;

// Replication-record tags (the payload byte of WAL records and of the
// `record` field inside `Replicate` responses). Append-only, like the
// frame tags; 0x00 is deliberately unused so an all-zeroes torn read can
// never decode as a record.
const TAG_RECORD_INGEST: u8 = 0x01;
const TAG_RECORD_INGEST_BATCH: u8 = 0x02;
const TAG_RECORD_QUERY: u8 = 0x03;
const TAG_RECORD_STATS: u8 = 0x04;
const TAG_RECORD_QUERY_WINDOW: u8 = 0x05;

/// Length-prefixed compact binary codec (see module docs and
/// `docs/PROTOCOL.md` §Binary framing for the normative byte layout).
#[derive(Debug, Clone, Copy)]
pub struct BinaryCodec;

impl Codec for BinaryCodec {
    fn kind(&self) -> CodecKind {
        CodecKind::Binary
    }

    fn next_frame(&self, buf: &[u8]) -> Result<Option<Frame>, FrameError> {
        let Some(&[b0, b1, b2, b3]) = buf.get(..4) else {
            return Ok(None);
        };
        let len = u32::from_le_bytes([b0, b1, b2, b3]) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(FrameError {
                code: ErrorCode::FrameTooLarge,
                message: format!(
                    "frame declares {len} payload bytes, above the {MAX_FRAME_BYTES}-byte limit"
                ),
            });
        }
        if buf.len() < 4 + len {
            return Ok(None);
        }
        Ok(Some(Frame {
            start: 4,
            end: 4 + len,
            consumed: 4 + len,
        }))
    }

    fn encode_request(&self, request: &Request, out: &mut Vec<u8>) {
        with_length_prefix(out, |payload| encode_request_payload(request, payload));
    }

    fn decode_request(&self, payload: &[u8]) -> Result<Request, String> {
        let mut r = Reader::new(payload);
        let request = decode_request_payload(&mut r)?;
        r.finish()?;
        Ok(request)
    }

    fn encode_response(&self, response: &Response, out: &mut Vec<u8>) {
        with_length_prefix(out, |payload| encode_response_payload(response, payload));
    }

    fn decode_response(&self, payload: &[u8]) -> Result<Response, String> {
        let mut r = Reader::new(payload);
        let response = decode_response_payload(&mut r)?;
        r.finish()?;
        Ok(response)
    }
}

/// Reserves the 4-byte length slot, runs `fill` to append the payload, then
/// patches the slot with the payload length.
fn with_length_prefix(out: &mut Vec<u8>, fill: impl FnOnce(&mut Vec<u8>)) {
    let slot = out.len();
    out.extend_from_slice(&[0u8; 4]);
    fill(out);
    let len = out.len() - slot - 4;
    assert!(
        len <= MAX_FRAME_BYTES,
        "encoded frame exceeds MAX_FRAME_BYTES"
    );
    // lint:allow(panic-freedom) encode-side invariant: the assert above bounds len under u32
    let len32 = u32::try_from(len).expect("frame cap fits u32");
    if let Some(slot_bytes) = out.get_mut(slot..slot + 4) {
        slot_bytes.copy_from_slice(&len32.to_le_bytes());
    }
}

// ---- binary writers (all integers little-endian) ------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

fn put_len(out: &mut Vec<u8>, len: usize) {
    // lint:allow(panic-freedom) encode-side invariant: lengths come from in-memory buffers already under the frame cap
    put_u32(out, u32::try_from(len).expect("length fits the frame cap"));
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_len(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

/// Option presence flag: 0 = absent, 1 = present followed by the value.
fn put_opt<T>(out: &mut Vec<u8>, opt: &Option<T>, put: impl FnOnce(&mut Vec<u8>, &T)) {
    match opt {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put(out, v);
        }
    }
}

fn put_row(out: &mut Vec<u8>, row: &[f64]) {
    put_len(out, row.len());
    for v in row {
        put_f64(out, *v);
    }
}

/// Row count, then each row as its own length + coordinates (rows are not
/// assumed rectangular; the message model is `Vec<Vec<f64>>`).
fn put_points(out: &mut Vec<u8>, points: &[Vec<f64>]) {
    put_len(out, points.len());
    for row in points {
        put_row(out, row);
    }
}

fn put_freshness(out: &mut Vec<u8>, f: Freshness) {
    out.push(match f {
        Freshness::Strict => 0,
        Freshness::Cached => 1,
    });
}

fn put_namespace(out: &mut Vec<u8>, ns: &Option<String>) {
    put_opt(out, ns, |out, s| put_str(out, s));
}

/// Window *request* section (revision 1.5): appended to `Query`/`Stats`
/// frames only when a window is present, so window-free frames are
/// byte-identical to their pre-1.5 encoding. Inside the section each
/// selector carries its own presence byte, so every carrier shape — even
/// hostile both/neither specs — round-trips and is rejected by validation
/// with the typed [`ErrorCode::BadWindow`] rather than being
/// unrepresentable.
///
/// Binary `last_points` travels as a `u64` (negative values are a
/// JSON-only hostile shape; encoding one saturates to 0, which validation
/// rejects the same way).
fn put_window_spec(out: &mut Vec<u8>, w: &crate::protocol::WindowSpec) {
    put_opt(out, &w.last_points, |out, n| {
        put_u64(out, u64::try_from(*n).unwrap_or(0));
    });
    put_opt(out, &w.last_secs, |out, t| put_f64(out, *t));
}

/// Window *response* info: the resolved window and its exact coverage.
fn put_window_info(out: &mut Vec<u8>, w: &skm_stream::WindowInfo) {
    put_u64(out, w.last_points);
    put_u64(out, w.covered_points);
}

fn put_replication_record(out: &mut Vec<u8>, record: &ReplicationRecord) {
    match record {
        ReplicationRecord::Ingest { point } => {
            out.push(TAG_RECORD_INGEST);
            put_row(out, point);
        }
        ReplicationRecord::IngestBatch { points } => {
            out.push(TAG_RECORD_INGEST_BATCH);
            put_points(out, points);
        }
        ReplicationRecord::Query {} => out.push(TAG_RECORD_QUERY),
        ReplicationRecord::Stats {} => out.push(TAG_RECORD_STATS),
        ReplicationRecord::QueryWindow { last_points } => {
            out.push(TAG_RECORD_QUERY_WINDOW);
            put_u64(out, *last_points);
        }
    }
}

/// Encodes one [`ReplicationRecord`] as a standalone binary payload: the
/// byte string stored in the write-ahead log and carried inside binary
/// `Replicate` frames. One definition of the bytes, so a WAL written by a
/// primary is replayable by any reader of this module.
#[must_use]
pub fn encode_replication_record(record: &ReplicationRecord) -> Vec<u8> {
    let mut out = Vec::new();
    put_replication_record(&mut out, record);
    out
}

/// Decodes a standalone [`ReplicationRecord`] payload (the inverse of
/// [`encode_replication_record`]), rejecting truncation, hostile counts
/// and trailing bytes.
///
/// # Errors
/// A parse failure message (WAL recovery surfaces it as corruption).
pub fn decode_replication_record(payload: &[u8]) -> Result<ReplicationRecord, String> {
    let mut r = Reader::new(payload);
    let record = r.replication_record()?;
    r.finish()?;
    Ok(record)
}

fn put_query_stats(out: &mut Vec<u8>, s: &QueryStats) {
    put_usize(out, s.coresets_merged);
    put_usize(out, s.candidate_points);
    put_opt(out, &s.coreset_level, |out, v| put_u32(out, *v));
    put_bool(out, s.used_cache);
    put_bool(out, s.ran_kmeans);
}

fn put_stream_stats(out: &mut Vec<u8>, s: &StreamStats) {
    put_u64(out, s.points_seen);
    put_usize(out, s.shards);
    put_len(out, s.per_shard_points.len());
    for v in &s.per_shard_points {
        put_u64(out, *v);
    }
    put_opt(out, &s.last_query, put_query_stats);
}

/// [`ErrorCode`] as a stable one-byte tag (wire order is part of the
/// protocol; append-only — see `docs/PROTOCOL.md`).
fn error_code_tag(code: ErrorCode) -> u8 {
    match code {
        ErrorCode::MalformedRequest => 0,
        ErrorCode::LineTooLong => 1,
        ErrorCode::DimensionMismatch => 2,
        ErrorCode::NonFiniteCoordinate => 3,
        ErrorCode::InvalidPoint => 4,
        ErrorCode::BatchTooLarge => 5,
        ErrorCode::EmptyStream => 6,
        ErrorCode::SnapshotUnavailable => 7,
        ErrorCode::BadNamespace => 8,
        ErrorCode::TenantLimit => 9,
        ErrorCode::TenantExists => 10,
        ErrorCode::Internal => 11,
        ErrorCode::BadCodec => 12,
        ErrorCode::FrameTooLarge => 13,
        ErrorCode::ReplicationLag => 14,
        ErrorCode::WalCorrupt => 15,
        ErrorCode::BadWindow => 16,
    }
}

fn error_code_from_tag(tag: u8) -> Result<ErrorCode, String> {
    Ok(match tag {
        0 => ErrorCode::MalformedRequest,
        1 => ErrorCode::LineTooLong,
        2 => ErrorCode::DimensionMismatch,
        3 => ErrorCode::NonFiniteCoordinate,
        4 => ErrorCode::InvalidPoint,
        5 => ErrorCode::BatchTooLarge,
        6 => ErrorCode::EmptyStream,
        7 => ErrorCode::SnapshotUnavailable,
        8 => ErrorCode::BadNamespace,
        9 => ErrorCode::TenantLimit,
        10 => ErrorCode::TenantExists,
        11 => ErrorCode::Internal,
        12 => ErrorCode::BadCodec,
        13 => ErrorCode::FrameTooLarge,
        14 => ErrorCode::ReplicationLag,
        15 => ErrorCode::WalCorrupt,
        16 => ErrorCode::BadWindow,
        other => return Err(format!("unknown error-code tag {other:#04x}")),
    })
}

fn encode_request_payload(request: &Request, out: &mut Vec<u8>) {
    match request {
        Request::Hello { codec } => {
            out.push(TAG_REQ_HELLO);
            put_str(out, codec);
        }
        Request::Ingest { point, namespace } => {
            out.push(TAG_REQ_INGEST);
            put_row(out, point);
            put_namespace(out, namespace);
        }
        Request::IngestBatch { points, namespace } => {
            out.push(TAG_REQ_INGEST_BATCH);
            put_points(out, points);
            put_namespace(out, namespace);
        }
        Request::Query {
            freshness,
            namespace,
            window,
        } => {
            out.push(TAG_REQ_QUERY);
            put_freshness(out, *freshness);
            put_namespace(out, namespace);
            // Appended only when present: a pre-1.5 Query frame is
            // byte-identical to one built by a pre-1.5 encoder.
            if let Some(w) = window {
                put_window_spec(out, w);
            }
        }
        Request::Stats {
            freshness,
            namespace,
            window,
        } => {
            out.push(TAG_REQ_STATS);
            put_freshness(out, *freshness);
            put_namespace(out, namespace);
            if let Some(w) = window {
                put_window_spec(out, w);
            }
        }
        Request::Configure { namespace, config } => {
            out.push(TAG_REQ_CONFIGURE);
            put_namespace(out, namespace);
            put_opt(out, &config.k, |out, v| put_usize(out, *v));
            put_opt(out, &config.backend, |out, s| put_str(out, s));
            put_opt(out, &config.shards, |out, v| put_usize(out, *v));
            put_opt(out, &config.batch, |out, v| put_usize(out, *v));
            put_opt(out, &config.seed, |out, v| put_u64(out, *v));
        }
        Request::Snapshot { file, namespace } => {
            out.push(TAG_REQ_SNAPSHOT);
            put_str(out, file);
            put_namespace(out, namespace);
        }
        Request::Shutdown {} => out.push(TAG_REQ_SHUTDOWN),
        Request::Replicate {
            namespace,
            from_seq,
        } => {
            out.push(TAG_REQ_REPLICATE);
            put_namespace(out, namespace);
            put_u64(out, *from_seq);
        }
    }
}

fn encode_response_payload(response: &Response, out: &mut Vec<u8>) {
    match response {
        Response::Hello { codec, revision } => {
            out.push(TAG_RESP_HELLO);
            put_str(out, codec);
            put_str(out, revision);
        }
        Response::Ingested {
            accepted,
            points_seen,
        } => {
            out.push(TAG_RESP_INGESTED);
            put_u64(out, *accepted);
            put_u64(out, *points_seen);
        }
        Response::Centers {
            centers,
            points_seen,
            epoch,
            cost,
            stats,
            window,
        } => {
            // Windowed answers get their own tag rather than optional
            // trailing bytes, so a truncated windowed frame reads as
            // incomplete — never as a valid un-windowed answer.
            out.push(if window.is_some() {
                TAG_RESP_CENTERS_WINDOWED
            } else {
                TAG_RESP_CENTERS
            });
            put_points(out, centers);
            put_u64(out, *points_seen);
            put_u64(out, *epoch);
            put_f64(out, *cost);
            put_query_stats(out, stats);
            if let Some(w) = window {
                put_window_info(out, w);
            }
        }
        Response::Stats { stats, window } => {
            out.push(if window.is_some() {
                TAG_RESP_STATS_WINDOWED
            } else {
                TAG_RESP_STATS
            });
            put_stream_stats(out, stats);
            if let Some(w) = window {
                put_window_info(out, w);
            }
        }
        Response::Configured {
            namespace,
            backend,
            k,
            shards,
        } => {
            out.push(TAG_RESP_CONFIGURED);
            put_str(out, namespace);
            put_str(out, backend);
            put_u64(out, *k);
            put_u64(out, *shards);
        }
        Response::Snapshotted { file, bytes } => {
            out.push(TAG_RESP_SNAPSHOTTED);
            put_str(out, file);
            put_u64(out, *bytes);
        }
        Response::Bye {} => out.push(TAG_RESP_BYE),
        Response::ReplicaSnapshot {
            seq,
            epoch,
            snapshot,
        } => {
            out.push(TAG_RESP_REPLICA_SNAPSHOT);
            put_u64(out, *seq);
            put_u64(out, *epoch);
            put_str(out, snapshot);
        }
        Response::Replicate {
            seq,
            primary_seq,
            record,
        } => {
            out.push(TAG_RESP_REPLICATE);
            put_u64(out, *seq);
            put_u64(out, *primary_seq);
            put_replication_record(out, record);
        }
        Response::Error { code, message } => {
            out.push(TAG_RESP_ERROR);
            out.push(error_code_tag(*code));
            put_str(out, message);
        }
    }
}

/// Bounds-checked little-endian reader over one frame payload. Every
/// variable-length count is validated against the bytes actually remaining
/// (`count * min_element_size ≤ remaining`) before any allocation, so a
/// hostile length field cannot balloon memory.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let slice = self
            .buf
            .get(self.pos..self.pos.saturating_add(n))
            .ok_or_else(|| {
                format!(
                    "truncated frame: wanted {n} bytes, {} remain",
                    self.remaining()
                )
            })?;
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        self.take(1)?
            .first()
            .copied()
            .ok_or_else(|| "truncated frame: empty byte read".to_string())
    }

    fn u32(&mut self) -> Result<u32, String> {
        let b: [u8; 4] = self
            .take(4)?
            .try_into()
            .map_err(|_| "truncated frame: short u32".to_string())?;
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let b: [u8; 8] = self
            .take(8)?
            .try_into()
            .map_err(|_| "truncated frame: short u64".to_string())?;
        Ok(u64::from_le_bytes(b))
    }

    fn usize(&mut self) -> Result<usize, String> {
        usize::try_from(self.u64()?).map_err(|_| "count exceeds usize".to_string())
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> Result<bool, String> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(format!("invalid bool byte {other:#04x}")),
        }
    }

    /// A count of elements each at least `min_element_size` bytes; rejected
    /// if the declared count cannot fit in the remaining payload.
    fn count(&mut self, min_element_size: usize) -> Result<usize, String> {
        let n = self.u32()? as usize;
        if n > self.remaining() / min_element_size.max(1) {
            return Err(format!(
                "declared count {n} does not fit the {} remaining payload bytes",
                self.remaining()
            ));
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String, String> {
        let len = self.count(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| e.to_string())
    }

    fn opt<T>(
        &mut self,
        read: impl FnOnce(&mut Reader<'a>) -> Result<T, String>,
    ) -> Result<Option<T>, String> {
        match self.u8()? {
            0 => Ok(None),
            1 => read(self).map(Some),
            other => Err(format!("invalid option flag {other:#04x}")),
        }
    }

    fn row(&mut self) -> Result<Vec<f64>, String> {
        let n = self.count(8)?;
        let mut row = Vec::with_capacity(n);
        for _ in 0..n {
            row.push(self.f64()?);
        }
        Ok(row)
    }

    fn points(&mut self) -> Result<Vec<Vec<f64>>, String> {
        // Each row is at least its own 4-byte length.
        let n = self.count(4)?;
        let mut points = Vec::with_capacity(n);
        for _ in 0..n {
            points.push(self.row()?);
        }
        Ok(points)
    }

    fn freshness(&mut self) -> Result<Freshness, String> {
        match self.u8()? {
            0 => Ok(Freshness::Strict),
            1 => Ok(Freshness::Cached),
            other => Err(format!("invalid freshness byte {other:#04x}")),
        }
    }

    fn namespace(&mut self) -> Result<Option<String>, String> {
        self.opt(Reader::str)
    }

    fn window_spec(&mut self) -> Result<crate::protocol::WindowSpec, String> {
        Ok(crate::protocol::WindowSpec {
            last_points: self.opt(|r| r.u64().map(i128::from))?,
            last_secs: self.opt(Reader::f64)?,
        })
    }

    fn window_info(&mut self) -> Result<WindowInfo, String> {
        Ok(WindowInfo {
            last_points: self.u64()?,
            covered_points: self.u64()?,
        })
    }

    fn replication_record(&mut self) -> Result<ReplicationRecord, String> {
        match self.u8()? {
            TAG_RECORD_INGEST => Ok(ReplicationRecord::Ingest { point: self.row()? }),
            TAG_RECORD_INGEST_BATCH => Ok(ReplicationRecord::IngestBatch {
                points: self.points()?,
            }),
            TAG_RECORD_QUERY => Ok(ReplicationRecord::Query {}),
            TAG_RECORD_STATS => Ok(ReplicationRecord::Stats {}),
            TAG_RECORD_QUERY_WINDOW => Ok(ReplicationRecord::QueryWindow {
                last_points: self.u64()?,
            }),
            other => Err(format!("unknown replication-record tag {other:#04x}")),
        }
    }

    fn query_stats(&mut self) -> Result<QueryStats, String> {
        Ok(QueryStats {
            coresets_merged: self.usize()?,
            candidate_points: self.usize()?,
            coreset_level: self.opt(Reader::u32)?,
            used_cache: self.bool()?,
            ran_kmeans: self.bool()?,
        })
    }

    fn stream_stats(&mut self) -> Result<StreamStats, String> {
        let points_seen = self.u64()?;
        let shards = self.usize()?;
        let n = self.count(8)?;
        let mut per_shard_points = Vec::with_capacity(n);
        for _ in 0..n {
            per_shard_points.push(self.u64()?);
        }
        Ok(StreamStats {
            points_seen,
            shards,
            per_shard_points,
            last_query: self.opt(Reader::query_stats)?,
        })
    }

    /// Rejects trailing garbage: a valid frame is consumed exactly.
    fn finish(&self) -> Result<(), String> {
        if self.remaining() != 0 {
            return Err(format!(
                "{} trailing bytes after a complete message",
                self.remaining()
            ));
        }
        Ok(())
    }
}

fn decode_request_payload(r: &mut Reader<'_>) -> Result<Request, String> {
    match r.u8()? {
        TAG_REQ_HELLO => Ok(Request::Hello { codec: r.str()? }),
        TAG_REQ_INGEST => Ok(Request::Ingest {
            point: r.row()?,
            namespace: r.namespace()?,
        }),
        TAG_REQ_INGEST_BATCH => Ok(Request::IngestBatch {
            points: r.points()?,
            namespace: r.namespace()?,
        }),
        TAG_REQ_QUERY => Ok(Request::Query {
            freshness: r.freshness()?,
            namespace: r.namespace()?,
            // Absent in pre-1.5 frames; a frame that starts a window spec
            // must carry the whole thing (truncation is an error, not None).
            window: if r.remaining() == 0 {
                None
            } else {
                Some(r.window_spec()?)
            },
        }),
        TAG_REQ_STATS => Ok(Request::Stats {
            freshness: r.freshness()?,
            namespace: r.namespace()?,
            window: if r.remaining() == 0 {
                None
            } else {
                Some(r.window_spec()?)
            },
        }),
        TAG_REQ_CONFIGURE => Ok(Request::Configure {
            namespace: r.namespace()?,
            config: TenantConfig {
                k: r.opt(Reader::usize)?,
                backend: r.opt(Reader::str)?,
                shards: r.opt(Reader::usize)?,
                batch: r.opt(Reader::usize)?,
                seed: r.opt(Reader::u64)?,
            },
        }),
        TAG_REQ_SNAPSHOT => Ok(Request::Snapshot {
            file: r.str()?,
            namespace: r.namespace()?,
        }),
        TAG_REQ_SHUTDOWN => Ok(Request::Shutdown {}),
        TAG_REQ_REPLICATE => Ok(Request::Replicate {
            namespace: r.namespace()?,
            from_seq: r.u64()?,
        }),
        other => Err(format!("unknown request tag {other:#04x}")),
    }
}

fn decode_response_payload(r: &mut Reader<'_>) -> Result<Response, String> {
    match r.u8()? {
        TAG_RESP_HELLO => Ok(Response::Hello {
            codec: r.str()?,
            revision: r.str()?,
        }),
        TAG_RESP_INGESTED => Ok(Response::Ingested {
            accepted: r.u64()?,
            points_seen: r.u64()?,
        }),
        TAG_RESP_CENTERS => Ok(Response::Centers {
            centers: r.points()?,
            points_seen: r.u64()?,
            epoch: r.u64()?,
            cost: r.f64()?,
            stats: r.query_stats()?,
            window: None,
        }),
        TAG_RESP_CENTERS_WINDOWED => Ok(Response::Centers {
            centers: r.points()?,
            points_seen: r.u64()?,
            epoch: r.u64()?,
            cost: r.f64()?,
            stats: r.query_stats()?,
            window: Some(r.window_info()?),
        }),
        TAG_RESP_STATS => Ok(Response::Stats {
            stats: r.stream_stats()?,
            window: None,
        }),
        TAG_RESP_STATS_WINDOWED => Ok(Response::Stats {
            stats: r.stream_stats()?,
            window: Some(r.window_info()?),
        }),
        TAG_RESP_CONFIGURED => Ok(Response::Configured {
            namespace: r.str()?,
            backend: r.str()?,
            k: r.u64()?,
            shards: r.u64()?,
        }),
        TAG_RESP_SNAPSHOTTED => Ok(Response::Snapshotted {
            file: r.str()?,
            bytes: r.u64()?,
        }),
        TAG_RESP_BYE => Ok(Response::Bye {}),
        TAG_RESP_REPLICA_SNAPSHOT => Ok(Response::ReplicaSnapshot {
            seq: r.u64()?,
            epoch: r.u64()?,
            snapshot: r.str()?,
        }),
        TAG_RESP_REPLICATE => Ok(Response::Replicate {
            seq: r.u64()?,
            primary_seq: r.u64()?,
            record: r.replication_record()?,
        }),
        TAG_RESP_ERROR => Ok(Response::Error {
            code: error_code_from_tag(r.u8()?)?,
            message: r.str()?,
        }),
        other => Err(format!("unknown response tag {other:#04x}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_of(codec: &dyn Codec, buf: &[u8]) -> Frame {
        codec
            .next_frame(buf)
            .expect("no frame error")
            .expect("complete frame")
    }

    #[test]
    fn json_framing_splits_on_newlines() {
        let c = codec(CodecKind::Json);
        assert_eq!(c.next_frame(b"{\"Query\":{}").unwrap(), None);
        let f = frame_of(c, b"{\"Query\":{}}\n{\"Stats\":{}}\n");
        assert_eq!((f.start, f.end, f.consumed), (0, 12, 13));
    }

    #[test]
    fn binary_framing_reads_length_prefix() {
        let c = codec(CodecKind::Binary);
        // Too short for the prefix, then too short for the payload.
        assert_eq!(c.next_frame(&[3, 0, 0]).unwrap(), None);
        assert_eq!(c.next_frame(&[3, 0, 0, 0, 1]).unwrap(), None);
        let f = frame_of(c, &[3, 0, 0, 0, 1, 2, 3, 99]);
        assert_eq!((f.start, f.end, f.consumed), (4, 7, 7));
    }

    #[test]
    fn oversized_frames_are_rejected_with_typed_codes() {
        let c = codec(CodecKind::Binary);
        let too_big = u32::try_from(MAX_FRAME_BYTES + 1).unwrap().to_le_bytes();
        let err = c.next_frame(&too_big).unwrap_err();
        assert_eq!(err.code, ErrorCode::FrameTooLarge);

        let c = codec(CodecKind::Json);
        let long_line = vec![b'x'; MAX_FRAME_BYTES];
        let err = c.next_frame(&long_line).unwrap_err();
        assert_eq!(err.code, ErrorCode::LineTooLong);
    }

    #[test]
    fn every_error_code_round_trips_through_its_tag() {
        for code in [
            ErrorCode::MalformedRequest,
            ErrorCode::LineTooLong,
            ErrorCode::DimensionMismatch,
            ErrorCode::NonFiniteCoordinate,
            ErrorCode::InvalidPoint,
            ErrorCode::BatchTooLarge,
            ErrorCode::EmptyStream,
            ErrorCode::SnapshotUnavailable,
            ErrorCode::BadNamespace,
            ErrorCode::TenantLimit,
            ErrorCode::TenantExists,
            ErrorCode::Internal,
            ErrorCode::BadCodec,
            ErrorCode::FrameTooLarge,
            ErrorCode::ReplicationLag,
            ErrorCode::WalCorrupt,
        ] {
            assert_eq!(error_code_from_tag(error_code_tag(code)).unwrap(), code);
        }
        assert!(error_code_from_tag(200).is_err());
    }

    #[test]
    fn binary_decoder_rejects_hostile_counts_and_trailing_bytes() {
        let c = codec(CodecKind::Binary);
        // Ingest with a row count claiming 2^32-1 coordinates in 4 bytes.
        let hostile = [TAG_REQ_INGEST, 0xFF, 0xFF, 0xFF, 0xFF];
        assert!(c.decode_request(&hostile).unwrap_err().contains("count"));
        // A valid Shutdown followed by trailing garbage.
        assert!(c
            .decode_request(&[TAG_REQ_SHUTDOWN, 0x00])
            .unwrap_err()
            .contains("trailing"));
    }

    #[test]
    fn replication_records_round_trip_as_standalone_payloads() {
        // The WAL stores exactly these bytes; both directions must agree.
        let records = vec![
            ReplicationRecord::Ingest {
                point: vec![1.5, -2.0],
            },
            ReplicationRecord::IngestBatch {
                points: vec![vec![0.0], vec![f64::NAN]],
            },
            ReplicationRecord::Query {},
            ReplicationRecord::Stats {},
        ];
        for record in records {
            let payload = encode_replication_record(&record);
            let back = decode_replication_record(&payload).unwrap();
            // NaN-carrying rows defeat PartialEq; compare re-encodings.
            assert_eq!(encode_replication_record(&back), payload);
        }
        // Truncation, a zero tag and trailing bytes are all typed errors.
        assert!(decode_replication_record(&[]).is_err());
        assert!(decode_replication_record(&[0x00]).is_err());
        let mut padded = encode_replication_record(&ReplicationRecord::Query {});
        padded.push(0xFF);
        assert!(decode_replication_record(&padded)
            .unwrap_err()
            .contains("trailing"));
    }

    #[test]
    fn nan_cost_survives_the_binary_round_trip() {
        let c = codec(CodecKind::Binary);
        let resp = Response::Centers {
            centers: vec![vec![1.0]],
            points_seen: 1,
            epoch: 1,
            cost: f64::NAN,
            stats: QueryStats {
                coresets_merged: 0,
                candidate_points: 0,
                coreset_level: None,
                used_cache: false,
                ran_kmeans: false,
            },
            window: None,
        };
        let mut wire = Vec::new();
        c.encode_response(&resp, &mut wire);
        let f = frame_of(c, &wire);
        let back = c.decode_response(&wire[f.start..f.end]).unwrap();
        match back {
            Response::Centers { cost, .. } => assert!(cost.is_nan()),
            other => panic!("wrong variant: {other:?}"),
        }
    }
}
