//! The newline-delimited JSON wire protocol.
//!
//! Every request and every response is one JSON document on one line,
//! terminated by `\n`. Requests are externally tagged by their variant name
//! (the shape the vendored serde derive produces), e.g.:
//!
//! ```text
//! {"Ingest":{"point":[1.0,2.0]}}
//! {"IngestBatch":{"points":[[1.0,2.0],[3.0,4.0]]}}
//! {"Query":{}}
//! {"Stats":{}}
//! {"Snapshot":{"file":"state.json"}}
//! {"Shutdown":{}}
//! ```
//!
//! Responses mirror that shape (`Ingested`, `Centers`, `Stats`,
//! `Snapshotted`, `Bye`, `Error`). A malformed or oversized line is answered
//! with a typed [`Response::Error`] instead of dropping the connection, so a
//! client bug never takes down its session, let alone the engine. See the
//! README's "Serving" section for the full protocol reference table.

use serde::{Deserialize, Serialize};
use skm_clustering::error::ClusteringError;
use skm_stream::{QueryStats, StreamStats};

/// Maximum points accepted in one `IngestBatch` request. Larger batches are
/// rejected with [`ErrorCode::BatchTooLarge`] before touching the engine,
/// bounding per-request memory; clients should split their load instead.
pub const MAX_BATCH_POINTS: usize = 4096;

/// Maximum accepted request-line length in bytes. A line that reaches this
/// limit without a terminating `\n` is answered with
/// [`ErrorCode::LineTooLong`] and the connection is closed (there is no way
/// to resynchronize mid-line).
pub const MAX_LINE_BYTES: u64 = 8 * 1024 * 1024;

/// A client request (one JSON line).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Ingest a single point.
    Ingest {
        /// The point's coordinates; must match the stream dimension.
        point: Vec<f64>,
    },
    /// Ingest a batch of points atomically: either every point is accepted
    /// or none is (the whole batch is validated before any point is fed to
    /// the engine).
    IngestBatch {
        /// The points, all of the stream dimension, at most
        /// [`MAX_BATCH_POINTS`] of them.
        points: Vec<Vec<f64>>,
    },
    /// Ask for the current k cluster centers.
    Query {},
    /// Ask for ingestion statistics.
    Stats {},
    /// Persist the engine state to `file` inside the server's configured
    /// snapshot directory.
    Snapshot {
        /// Bare file name (no path separators) within the snapshot
        /// directory.
        file: String,
    },
    /// Stop the server: the connection is answered with [`Response::Bye`]
    /// and the accept loop shuts down cleanly.
    Shutdown {},
}

/// A server response (one JSON line).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Points were accepted.
    Ingested {
        /// Number of points accepted by this request.
        accepted: u64,
        /// Total points the engine has seen after this request.
        points_seen: u64,
    },
    /// Answer to a [`Request::Query`].
    Centers {
        /// The k cluster centers, one coordinate row per center.
        centers: Vec<Vec<f64>>,
        /// Total points summarized by this answer.
        points_seen: u64,
        /// Query diagnostics (coresets merged, cache usage, …).
        stats: QueryStats,
    },
    /// Answer to a [`Request::Stats`].
    Stats {
        /// Aggregated ingestion statistics.
        stats: StreamStats,
    },
    /// Answer to a [`Request::Snapshot`]: the state was written.
    Snapshotted {
        /// Path of the snapshot file, as seen by the server.
        file: String,
        /// Size of the written snapshot in bytes.
        bytes: u64,
    },
    /// Answer to a [`Request::Shutdown`]; the server stops accepting.
    Bye {},
    /// A request failed; the engine state is unchanged (for ingest
    /// requests: no point of the failed request was consumed).
    Error {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// Machine-readable failure classes carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The request line was not valid JSON or not a known request shape.
    MalformedRequest,
    /// The request line exceeded [`MAX_LINE_BYTES`].
    LineTooLong,
    /// A point's dimensionality disagrees with the stream's.
    DimensionMismatch,
    /// A coordinate was NaN or infinite.
    NonFiniteCoordinate,
    /// A point was empty or otherwise invalid.
    InvalidPoint,
    /// An `IngestBatch` exceeded [`MAX_BATCH_POINTS`].
    BatchTooLarge,
    /// A query arrived before any point was ingested.
    EmptyStream,
    /// Snapshotting is not available (no snapshot directory configured, or
    /// the file name tried to escape it).
    SnapshotUnavailable,
    /// An unexpected server-side failure.
    Internal,
}

/// Maps an engine error to the wire-level failure class.
#[must_use]
pub fn error_code(e: &ClusteringError) -> ErrorCode {
    match e {
        ClusteringError::DimensionMismatch { .. } => ErrorCode::DimensionMismatch,
        ClusteringError::NonFiniteCoordinate { .. } => ErrorCode::NonFiniteCoordinate,
        ClusteringError::EmptyInput => ErrorCode::EmptyStream,
        ClusteringError::InvalidParameter { name, .. } if *name == "point" => {
            ErrorCode::InvalidPoint
        }
        _ => ErrorCode::Internal,
    }
}

/// Builds the error response for an engine failure.
#[must_use]
pub fn error_response(e: &ClusteringError) -> Response {
    Response::Error {
        code: error_code(e),
        message: e.to_string(),
    }
}

impl Request {
    /// Encodes the request as one JSON line (without the trailing newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("request serialization is infallible")
    }

    /// Parses a request from one JSON line.
    ///
    /// # Errors
    /// Returns the parse failure message (the server wraps it in a
    /// [`Response::Error`] with [`ErrorCode::MalformedRequest`]).
    pub fn from_line(line: &str) -> Result<Self, String> {
        serde_json::from_str(line).map_err(|e| e.to_string())
    }
}

impl Response {
    /// Encodes the response as one JSON line (without the trailing newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("response serialization is infallible")
    }

    /// Parses a response from one JSON line.
    ///
    /// # Errors
    /// Returns the parse failure message.
    pub fn from_line(line: &str) -> Result<Self, String> {
        serde_json::from_str(line).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_lines() {
        let requests = vec![
            Request::Ingest {
                point: vec![1.0, -2.5],
            },
            Request::IngestBatch {
                points: vec![vec![0.5, 0.25], vec![3.0, 4.0]],
            },
            Request::Query {},
            Request::Stats {},
            Request::Snapshot {
                file: "state.json".to_string(),
            },
            Request::Shutdown {},
        ];
        for req in requests {
            let line = req.to_line();
            assert!(!line.contains('\n'), "one request = one line: {line}");
            assert_eq!(Request::from_line(&line).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip_through_lines() {
        let responses = vec![
            Response::Ingested {
                accepted: 3,
                points_seen: 100,
            },
            Response::Centers {
                centers: vec![vec![1.0, 2.0], vec![-3.0, 0.5]],
                points_seen: 100,
                stats: QueryStats {
                    coresets_merged: 4,
                    candidate_points: 80,
                    coreset_level: Some(2),
                    used_cache: true,
                    ran_kmeans: true,
                },
            },
            Response::Stats {
                stats: StreamStats {
                    points_seen: 100,
                    shards: 2,
                    per_shard_points: vec![50, 50],
                    last_query: None,
                },
            },
            Response::Snapshotted {
                file: "snaps/state.json".to_string(),
                bytes: 12345,
            },
            Response::Bye {},
            Response::Error {
                code: ErrorCode::DimensionMismatch,
                message: "expected 2, got 3".to_string(),
            },
        ];
        for resp in responses {
            let line = resp.to_line();
            assert!(!line.contains('\n'), "one response = one line: {line}");
            assert_eq!(Response::from_line(&line).unwrap(), resp);
        }
    }

    #[test]
    fn wire_shape_is_the_documented_external_tagging() {
        let line = Request::Ingest {
            point: vec![1.0, 2.0],
        }
        .to_line();
        assert_eq!(line, r#"{"Ingest":{"point":[1,2]}}"#);
        assert_eq!(Request::Query {}.to_line(), r#"{"Query":{}}"#);
    }

    #[test]
    fn malformed_lines_are_parse_errors_not_panics() {
        assert!(Request::from_line("").is_err());
        assert!(Request::from_line("not json").is_err());
        assert!(Request::from_line("{\"Unknown\":{}}").is_err());
        assert!(Request::from_line("{\"Ingest\":{\"point\":\"oops\"}}").is_err());
        assert!(Request::from_line("[1,2,3]").is_err());
    }

    #[test]
    fn engine_errors_map_to_typed_codes() {
        assert_eq!(
            error_code(&ClusteringError::DimensionMismatch {
                expected: 2,
                got: 3
            }),
            ErrorCode::DimensionMismatch
        );
        assert_eq!(
            error_code(&ClusteringError::NonFiniteCoordinate { index: 1 }),
            ErrorCode::NonFiniteCoordinate
        );
        assert_eq!(
            error_code(&ClusteringError::EmptyInput),
            ErrorCode::EmptyStream
        );
        assert_eq!(
            error_code(&ClusteringError::InvalidParameter {
                name: "point",
                message: "empty".to_string()
            }),
            ErrorCode::InvalidPoint
        );
        assert_eq!(
            error_code(&ClusteringError::InvalidK { k: 0 }),
            ErrorCode::Internal
        );
    }
}
