//! The newline-delimited JSON wire protocol.
//!
//! Every request and every response is one JSON document on one line,
//! terminated by `\n`. Requests are externally tagged by their variant name
//! (the shape the vendored serde derive produces), e.g.:
//!
//! ```text
//! {"Ingest":{"point":[1.0,2.0]}}
//! {"IngestBatch":{"points":[[1.0,2.0],[3.0,4.0]]}}
//! {"Query":{}}
//! {"Query":{"freshness":"cached","namespace":"alice"}}
//! {"Stats":{}}
//! {"Configure":{"namespace":"alice","k":4,"backend":"cc"}}
//! {"Snapshot":{"file":"state.json"}}
//! {"Shutdown":{}}
//! ```
//!
//! Responses mirror that shape (`Ingested`, `Centers`, `Stats`,
//! `Configured`, `Snapshotted`, `Bye`, `Error`). A malformed or oversized
//! line is answered with a typed [`Response::Error`] instead of dropping the
//! connection, so a client bug never takes down its session, let alone the
//! engine.
//!
//! `Query` and `Stats` accept an optional [`Freshness`] field selecting the
//! read path: `"strict"` (the default, and the behaviour when the field is
//! omitted — so pre-freshness clients keep working unchanged) drains
//! in-flight ingestion and recomputes, `"cached"` answers from the last
//! published epoch without taking the ingest lock.
//!
//! Every data request accepts an optional `namespace` field selecting the
//! tenant stream it applies to. An omitted (or `null`) namespace means
//! [`DEFAULT_NAMESPACE`] — byte-for-byte the pre-tenancy wire behaviour, so
//! single-tenant clients keep working unchanged. Namespaces are validated
//! with the same path-escaping rule as snapshot file names
//! ([`validate_namespace`]); a failing namespace is answered with
//! [`ErrorCode::BadNamespace`] before it can touch the engine (or name a
//! file outside the snapshot directory on eviction).
//!
//! The normative wire specification — every variant, every error code, the
//! request limits and one worked example per exchange — lives in
//! [`docs/PROTOCOL.md`](https://github.com/paper-repo-growth/streaming-kmeans/blob/main/docs/PROTOCOL.md);
//! this module is its implementation.

use serde::{Deserialize, Serialize};
use skm_clustering::error::ClusteringError;
use skm_stream::{QueryStats, StreamStats, WindowInfo};

/// Maximum points accepted in one `IngestBatch` request. Larger batches are
/// rejected with [`ErrorCode::BatchTooLarge`] before touching the engine,
/// bounding per-request memory; clients should split their load instead.
pub const MAX_BATCH_POINTS: usize = 4096;

/// Maximum accepted request-line length in bytes. A line that reaches this
/// limit without a terminating `\n` is answered with
/// [`ErrorCode::LineTooLong`] and the connection is closed (there is no way
/// to resynchronize mid-line).
pub const MAX_LINE_BYTES: u64 = 8 * 1024 * 1024;

/// The tenant a request without a `namespace` field applies to. Requests
/// that spell it out explicitly are equivalent to omitting it.
pub const DEFAULT_NAMESPACE: &str = "default";

/// The protocol revision the server speaks, reported in
/// [`Response::Hello`]. Revision 1.3 added the `Hello` codec handshake and
/// the length-prefixed binary framing; revision 1.4 added the `Replicate`
/// follower stream and the durability error codes; revision 1.5 added the
/// optional time-scoped `window` field on `Query`/`Stats` (see
/// `docs/PROTOCOL.md`).
pub const PROTOCOL_REVISION: &str = "1.5";

/// Maximum accepted `last_points` window size: `2^53`, the largest integer
/// range JSON numbers carry exactly through every double-precision parser.
/// Larger windows are answered with [`ErrorCode::BadWindow`] (a window that
/// big means the whole stream anyway — omit the field instead).
pub const MAX_WINDOW_POINTS: u64 = 1 << 53;

/// Maximum accepted `last_secs` window: about 31,000 years. Bounds the
/// milliseconds arithmetic the server resolves the window with, far above
/// any meaningful retention.
pub const MAX_WINDOW_SECS: f64 = 1e12;

/// Maximum accepted namespace length in bytes (long names make poor file
/// names, and eviction persists one file per tenant).
pub const MAX_NAMESPACE_BYTES: usize = 128;

/// Is `name` safe to use as a bare file name inside a server-owned
/// directory? Shared by snapshot file names and tenant namespaces: no
/// separators, no parent references, no NUL, non-empty.
#[must_use]
pub fn is_bare_name(name: &str) -> bool {
    !name.is_empty()
        && name != "."
        && name != ".."
        && !name.contains('/')
        && !name.contains('\\')
        && !name.contains('\0')
}

/// Validates a tenant namespace: the same path-escaping rule as snapshot
/// file names ([`is_bare_name`]) plus a length cap, so a tenant id can
/// never write outside the snapshot directory when it is evicted to disk.
///
/// # Errors
/// Returns a human-readable description of the violated constraint (the
/// server wraps it in [`ErrorCode::BadNamespace`]).
pub fn validate_namespace(namespace: &str) -> std::result::Result<(), String> {
    if !is_bare_name(namespace) {
        return Err(format!(
            "namespace `{namespace}` must be non-empty and must not contain \
             path separators, NUL, or be `.`/`..`"
        ));
    }
    if namespace.len() > MAX_NAMESPACE_BYTES {
        return Err(format!(
            "namespace of {} bytes exceeds the limit of {MAX_NAMESPACE_BYTES}",
            namespace.len()
        ));
    }
    Ok(())
}

/// Which read path a `Query` or `Stats` request takes.
///
/// On the wire this is the optional `freshness` field, spelled `"strict"`
/// or `"cached"` (case-insensitive); an omitted field means
/// [`Freshness::Strict`], so clients written before the field existed keep
/// their exact pre-freshness semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Freshness {
    /// Drain in-flight ingestion and recompute the answer under the engine
    /// lock — linearizable with respect to every previously acknowledged
    /// ingest, and bit-identical at a fixed `(seed, shards, batch)` to the
    /// pre-freshness query path.
    #[default]
    Strict,
    /// Answer immediately from the last published epoch without taking the
    /// ingest lock. Stale by up to the time since the last strict
    /// query/publish, but always internally consistent (epoch, centers,
    /// cost and `points_seen` come from one immutable published value).
    Cached,
}

impl Freshness {
    /// The wire spelling (`"strict"` / `"cached"`).
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            Freshness::Strict => "strict",
            Freshness::Cached => "cached",
        }
    }

    /// Parses the wire spelling (case-insensitive).
    #[must_use]
    pub fn parse(tag: &str) -> Option<Self> {
        match tag.to_ascii_lowercase().as_str() {
            "strict" => Some(Freshness::Strict),
            "cached" => Some(Freshness::Cached),
            _ => None,
        }
    }
}

impl serde::Serialize for Freshness {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.as_str().to_string())
    }
}

impl serde::Deserialize for Freshness {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        match value {
            serde::Value::Str(s) => Self::parse(s).ok_or_else(|| {
                serde::Error::custom(format!(
                    "unknown freshness `{s}` (expected `strict` or `cached`)"
                ))
            }),
            _ => Err(serde::Error::custom("expected string for freshness")),
        }
    }
}

/// The optional `window` field of `Query`/`Stats`, as it arrives on the
/// wire (revision 1.5): exactly one of `last_points` (a count of most
/// recent stream points) or `last_secs` (a duration looking back from now).
///
/// This is the *carrier* — it admits any numeric values so that hostile
/// ones (zero, negative, astronomically large) parse successfully and are
/// rejected by [`WindowSpec::validate`] with the typed
/// [`ErrorCode::BadWindow`] instead of a generic parse failure. Fields of
/// the wrong *type* (a string where a number belongs) are malformed
/// requests, as everywhere else in the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WindowSpec {
    /// Window over the most recent N stream points.
    pub last_points: Option<i128>,
    /// Window over the points that arrived in the last T seconds.
    pub last_secs: Option<f64>,
}

/// A validated window selector (the output of [`WindowSpec::validate`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Window {
    /// The most recent `N` stream points, `1..=`[`MAX_WINDOW_POINTS`].
    Points(u64),
    /// The points that arrived within the last `T` seconds — finite,
    /// positive, at most [`MAX_WINDOW_SECS`]. The server resolves this to a
    /// point count against the tenant's arrival log *before* logging or
    /// executing anything, so replay never consults a clock.
    Secs(f64),
}

impl WindowSpec {
    /// A points window (constructor for clients and tests).
    #[must_use]
    pub fn points(n: u64) -> Self {
        Self {
            last_points: Some(i128::from(n)),
            last_secs: None,
        }
    }

    /// A seconds window (constructor for clients and tests).
    #[must_use]
    pub fn secs(t: f64) -> Self {
        Self {
            last_points: None,
            last_secs: Some(t),
        }
    }

    /// Checks the carried values and produces the validated [`Window`].
    ///
    /// # Errors
    /// Returns a human-readable description of the violated constraint (the
    /// server wraps it in [`ErrorCode::BadWindow`]): both or neither field
    /// present, a non-positive or over-limit point count, or a
    /// non-positive, non-finite or over-limit duration.
    pub fn validate(&self) -> std::result::Result<Window, String> {
        match (self.last_points, self.last_secs) {
            (Some(_), Some(_)) => {
                Err("window must specify last_points or last_secs, not both".to_string())
            }
            (None, None) => Err("window must specify last_points or last_secs".to_string()),
            (Some(n), None) => {
                if n <= 0 {
                    return Err(format!("window last_points must be positive, got {n}"));
                }
                if n > i128::from(MAX_WINDOW_POINTS) {
                    return Err(format!(
                        "window last_points {n} exceeds the limit of {MAX_WINDOW_POINTS}"
                    ));
                }
                // lint:allow(panic-freedom) 0 < n <= 2^53 fits u64
                Ok(Window::Points(u64::try_from(n).expect("bounded above")))
            }
            (None, Some(t)) => {
                if !t.is_finite() || t <= 0.0 {
                    return Err(format!(
                        "window last_secs must be positive and finite, got {t}"
                    ));
                }
                if t > MAX_WINDOW_SECS {
                    return Err(format!(
                        "window last_secs {t} exceeds the limit of {MAX_WINDOW_SECS}"
                    ));
                }
                Ok(Window::Secs(t))
            }
        }
    }
}

impl serde::Serialize for WindowSpec {
    fn to_value(&self) -> serde::Value {
        let mut fields = Vec::new();
        if let Some(n) = self.last_points {
            let v = if n >= 0 {
                // lint:allow(panic-freedom) non-negative i128 fits u128
                serde::Value::UInt(u128::try_from(n).expect("non-negative"))
            } else {
                serde::Value::Int(i64::try_from(n).unwrap_or(i64::MIN))
            };
            fields.push(("last_points".to_string(), v));
        }
        if let Some(t) = self.last_secs {
            fields.push(("last_secs".to_string(), serde::Value::Float(t)));
        }
        serde::Value::Map(fields)
    }
}

impl serde::Deserialize for WindowSpec {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let map = match value {
            serde::Value::Map(m) => m,
            _ => return Err(serde::Error::custom("expected map for window")),
        };
        let mut spec = WindowSpec::default();
        for (key, v) in map {
            match key.as_str() {
                "last_points" => {
                    spec.last_points = Some(match v {
                        serde::Value::UInt(u) => i128::try_from(*u)
                            .map_err(|_| serde::Error::custom("window last_points out of range"))?,
                        serde::Value::Int(i) => i128::from(*i),
                        serde::Value::Null => continue,
                        _ => {
                            return Err(serde::Error::custom(
                                "expected integer for window last_points",
                            ))
                        }
                    });
                }
                "last_secs" => {
                    spec.last_secs = Some(match v {
                        serde::Value::Float(f) => *f,
                        // Integer seconds are accepted (JSON `5` vs `5.0`
                        // is an encoder choice, not a semantic one).
                        #[allow(clippy::cast_precision_loss)]
                        serde::Value::UInt(u) => *u as f64,
                        #[allow(clippy::cast_precision_loss)]
                        serde::Value::Int(i) => *i as f64,
                        serde::Value::Null => continue,
                        _ => {
                            return Err(serde::Error::custom(
                                "expected number for window last_secs",
                            ))
                        }
                    });
                }
                // Unknown keys are ignored, like everywhere else in the
                // protocol (forward compatibility).
                _ => {}
            }
        }
        Ok(spec)
    }
}

/// One logged state mutation of a tenant stream: the unit of write-ahead
/// logging and of primary→follower replication.
///
/// The WAL and the `Replicate` stream carry the *inputs* of the stream, not
/// its outputs: a follower (or crash recovery) re-executes each record
/// through the same engine code, which reproduces centers, RNG state and
/// publish epochs bit-identically without ever shipping centers. Strict
/// queries and strict stats are logged as marker records because they
/// mutate tenant state (they drain ingest buffers, consume the coordinator
/// RNG and publish a fresh epoch); cached reads mutate nothing and are not
/// logged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ReplicationRecord {
    /// One ingested point (an accepted `Ingest` request).
    Ingest {
        /// The point's coordinates.
        point: Vec<f64>,
    },
    /// One accepted atomic batch (an accepted `IngestBatch` request).
    IngestBatch {
        /// The batch's points.
        points: Vec<Vec<f64>>,
    },
    /// A strict query was executed (publishes an epoch, consumes RNG).
    Query {},
    /// Strict stats were collected (drains ingest buffers). Windowed
    /// strict stats log this same marker: their coverage probe is pure
    /// span arithmetic, so draining is their only state effect.
    Stats {},
    /// A strict *windowed* query was executed (publishes an epoch,
    /// consumes RNG — over the summary suffix covering the window). The
    /// logged count is always in points: `last_secs` windows are resolved
    /// against the tenant's arrival log *before* logging, so replaying
    /// this record never consults a clock.
    QueryWindow {
        /// The resolved window, in most-recent stream points.
        last_points: u64,
    },
}

/// Per-tenant engine settings carried by [`Request::Configure`]. Every
/// field is optional; an omitted field keeps the server's default for that
/// setting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantConfig {
    /// Number of cluster centers `k` (derived settings such as the bucket
    /// size follow the paper defaults for this `k`).
    pub k: Option<usize>,
    /// Backend tag: `sharded-cc` (default), `cc`, `ct` or `rcc`.
    pub backend: Option<String>,
    /// Shard worker count (sharded backend only).
    pub shards: Option<usize>,
    /// Points buffered per shard before a batch ships (sharded backend).
    pub batch: Option<usize>,
    /// Master RNG seed for this tenant.
    pub seed: Option<u64>,
}

/// A client request (one frame: a JSON line, or a length-prefixed binary
/// message after a binary handshake).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Negotiate the connection codec. Only valid as the **first** frame on
    /// a connection, always sent in JSON; the connection switches to the
    /// requested codec after the server's [`Response::Hello`]. A connection
    /// that never sends `Hello` stays newline-JSON — the complete pre-1.3
    /// wire behaviour. An unknown codec (or a late `Hello`) is answered
    /// with [`ErrorCode::BadCodec`] and the connection stays on its current
    /// codec.
    Hello {
        /// Requested codec: `"json"` or `"binary"`.
        codec: String,
    },
    /// Ingest a single point.
    Ingest {
        /// The point's coordinates; must match the stream dimension.
        point: Vec<f64>,
        /// Tenant stream; `None` means [`DEFAULT_NAMESPACE`].
        namespace: Option<String>,
    },
    /// Ingest a batch of points atomically: either every point is accepted
    /// or none is (the whole batch is validated before any point is fed to
    /// the engine).
    IngestBatch {
        /// The points, all of the stream dimension, at most
        /// [`MAX_BATCH_POINTS`] of them.
        points: Vec<Vec<f64>>,
        /// Tenant stream; `None` means [`DEFAULT_NAMESPACE`].
        namespace: Option<String>,
    },
    /// Ask for the current k cluster centers.
    Query {
        /// Read path: strict (default) or cached.
        freshness: Freshness,
        /// Tenant stream; `None` means [`DEFAULT_NAMESPACE`].
        namespace: Option<String>,
        /// Time-scoped window (revision 1.5); `None` means the whole
        /// stream — byte-for-byte the pre-1.5 wire shape and semantics.
        window: Option<WindowSpec>,
    },
    /// Ask for ingestion statistics.
    Stats {
        /// Read path: strict (default) or cached.
        freshness: Freshness,
        /// Tenant stream; `None` means [`DEFAULT_NAMESPACE`].
        namespace: Option<String>,
        /// Time-scoped window (revision 1.5): reports how many points the
        /// stored summaries would cover for that window. `None` means the
        /// whole stream — the pre-1.5 wire shape and semantics.
        window: Option<WindowSpec>,
    },
    /// Create a tenant with non-default settings. Only valid before the
    /// tenant exists: a lazily created tenant (first touched by an ingest
    /// or query) uses the server defaults, and reconfiguring a live stream
    /// would invalidate its state, so configuring an existing tenant is
    /// answered with [`ErrorCode::TenantExists`].
    Configure {
        /// Tenant to create; `None` means [`DEFAULT_NAMESPACE`].
        namespace: Option<String>,
        /// The settings to apply (each omitted field keeps the default).
        config: TenantConfig,
    },
    /// Persist one tenant's engine state to `file` inside the server's
    /// configured snapshot directory.
    Snapshot {
        /// Bare file name (no path separators) within the snapshot
        /// directory.
        file: String,
        /// Tenant to snapshot; `None` means [`DEFAULT_NAMESPACE`].
        namespace: Option<String>,
    },
    /// Stop the server: the connection is answered with [`Response::Bye`]
    /// and the accept loop shuts down cleanly.
    Shutdown {},
    /// Subscribe this connection to one tenant's replication stream (a
    /// follower tailing a WAL-enabled primary). The connection is answered
    /// with a [`Response::ReplicaSnapshot`] (or resumes at `from_seq` when
    /// the primary still holds that position in its durable tail) and then
    /// receives a [`Response::Replicate`] frame per logged record, pushed
    /// as records become durable; it accepts no further requests. Requires
    /// the primary to run with a WAL ([`ErrorCode::ReplicationLag`]
    /// otherwise).
    Replicate {
        /// Tenant stream to follow; `None` means [`DEFAULT_NAMESPACE`].
        namespace: Option<String>,
        /// First sequence number the follower still needs; `0` requests a
        /// fresh snapshot unconditionally.
        from_seq: u64,
    },
}

/// Hand-written serializer: optional fields (`namespace`, the `Configure`
/// settings) are omitted when `None`, so a request that does not opt into
/// tenancy is byte-for-byte the pre-tenancy wire shape.
impl serde::Serialize for Request {
    fn to_value(&self) -> serde::Value {
        use serde::Value;
        fn variant(tag: &str, fields: Vec<(String, Value)>) -> Value {
            Value::Map(vec![(tag.to_string(), Value::Map(fields))])
        }
        fn push_opt<T: Serialize>(fields: &mut Vec<(String, Value)>, key: &str, opt: &Option<T>) {
            if let Some(v) = opt {
                fields.push((key.to_string(), v.to_value()));
            }
        }
        match self {
            Request::Hello { codec } => {
                variant("Hello", vec![("codec".to_string(), codec.to_value())])
            }
            Request::Ingest { point, namespace } => {
                let mut fields = vec![("point".to_string(), point.to_value())];
                push_opt(&mut fields, "namespace", namespace);
                variant("Ingest", fields)
            }
            Request::IngestBatch { points, namespace } => {
                let mut fields = vec![("points".to_string(), points.to_value())];
                push_opt(&mut fields, "namespace", namespace);
                variant("IngestBatch", fields)
            }
            Request::Query {
                freshness,
                namespace,
                window,
            } => {
                let mut fields = vec![("freshness".to_string(), freshness.to_value())];
                push_opt(&mut fields, "namespace", namespace);
                push_opt(&mut fields, "window", window);
                variant("Query", fields)
            }
            Request::Stats {
                freshness,
                namespace,
                window,
            } => {
                let mut fields = vec![("freshness".to_string(), freshness.to_value())];
                push_opt(&mut fields, "namespace", namespace);
                push_opt(&mut fields, "window", window);
                variant("Stats", fields)
            }
            Request::Configure { namespace, config } => {
                let mut fields = Vec::new();
                push_opt(&mut fields, "namespace", namespace);
                push_opt(&mut fields, "k", &config.k);
                push_opt(&mut fields, "backend", &config.backend);
                push_opt(&mut fields, "shards", &config.shards);
                push_opt(&mut fields, "batch", &config.batch);
                push_opt(&mut fields, "seed", &config.seed);
                variant("Configure", fields)
            }
            Request::Snapshot { file, namespace } => {
                let mut fields = vec![("file".to_string(), file.to_value())];
                push_opt(&mut fields, "namespace", namespace);
                variant("Snapshot", fields)
            }
            Request::Shutdown {} => variant("Shutdown", Vec::new()),
            Request::Replicate {
                namespace,
                from_seq,
            } => {
                let mut fields = vec![("from_seq".to_string(), from_seq.to_value())];
                push_opt(&mut fields, "namespace", namespace);
                variant("Replicate", fields)
            }
        }
    }
}

/// Hand-written deserializer (the vendored derive treats every field as
/// required, but `freshness` and `namespace` must be optional so
/// `{"Query":{}}` — the complete pre-freshness, pre-tenancy wire shape —
/// keeps parsing as a strict default-namespace query).
impl serde::Deserialize for Request {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let entries = match value {
            serde::Value::Map(entries) => entries,
            _ => return Err(serde::Error::custom("expected variant for Request")),
        };
        let [(tag, inner)] = entries.as_slice() else {
            return Err(serde::Error::custom("expected variant for Request"));
        };
        let map = match inner {
            serde::Value::Map(m) => m,
            _ => {
                return Err(serde::Error::custom(format!(
                    "expected map for variant {tag}"
                )))
            }
        };
        /// An omitted field and an explicit `null` both read as `None`.
        fn opt_field<T: serde::Deserialize>(
            map: &[(String, serde::Value)],
            key: &str,
        ) -> Result<Option<T>, serde::Error> {
            match map.iter().find(|(k, _)| k == key) {
                None => Ok(None),
                Some((_, serde::Value::Null)) => Ok(None),
                Some((_, v)) => T::from_value(v).map(Some),
            }
        }
        let freshness = |map: &[(String, serde::Value)]| -> Result<Freshness, serde::Error> {
            Ok(opt_field::<Freshness>(map, "freshness")?.unwrap_or_default())
        };
        match tag.as_str() {
            "Hello" => Ok(Request::Hello {
                codec: serde::Deserialize::from_value(serde::get_field(map, "codec")?)?,
            }),
            "Ingest" => Ok(Request::Ingest {
                point: serde::Deserialize::from_value(serde::get_field(map, "point")?)?,
                namespace: opt_field(map, "namespace")?,
            }),
            "IngestBatch" => Ok(Request::IngestBatch {
                points: serde::Deserialize::from_value(serde::get_field(map, "points")?)?,
                namespace: opt_field(map, "namespace")?,
            }),
            "Query" => Ok(Request::Query {
                freshness: freshness(map)?,
                namespace: opt_field(map, "namespace")?,
                window: opt_field(map, "window")?,
            }),
            "Stats" => Ok(Request::Stats {
                freshness: freshness(map)?,
                namespace: opt_field(map, "namespace")?,
                window: opt_field(map, "window")?,
            }),
            "Configure" => Ok(Request::Configure {
                namespace: opt_field(map, "namespace")?,
                config: TenantConfig {
                    k: opt_field(map, "k")?,
                    backend: opt_field(map, "backend")?,
                    shards: opt_field(map, "shards")?,
                    batch: opt_field(map, "batch")?,
                    seed: opt_field(map, "seed")?,
                },
            }),
            "Snapshot" => Ok(Request::Snapshot {
                file: serde::Deserialize::from_value(serde::get_field(map, "file")?)?,
                namespace: opt_field(map, "namespace")?,
            }),
            "Shutdown" => Ok(Request::Shutdown {}),
            "Replicate" => Ok(Request::Replicate {
                namespace: opt_field(map, "namespace")?,
                from_seq: opt_field(map, "from_seq")?.unwrap_or(0),
            }),
            other => Err(serde::Error::custom(format!(
                "unknown variant `{other}` for Request"
            ))),
        }
    }
}

/// A server response (one frame: a JSON line, or a length-prefixed binary
/// message after a binary handshake).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to a [`Request::Hello`]: the handshake was accepted and the
    /// connection speaks `codec` from the next frame on.
    Hello {
        /// The codec now in effect (echo of the accepted request).
        codec: String,
        /// The protocol revision the server speaks
        /// ([`PROTOCOL_REVISION`]).
        revision: String,
    },
    /// Points were accepted.
    Ingested {
        /// Number of points accepted by this request.
        accepted: u64,
        /// Total points the engine has seen after this request.
        points_seen: u64,
    },
    /// Answer to a [`Request::Query`].
    Centers {
        /// The k cluster centers, one coordinate row per center.
        centers: Vec<Vec<f64>>,
        /// Total points summarized by this answer.
        points_seen: u64,
        /// Publish epoch this answer belongs to: strict queries return the
        /// epoch they just published, cached queries the epoch they read.
        epoch: u64,
        /// Coreset-estimated clustering cost of `centers` (JSON `null`
        /// when the backend cannot estimate it).
        cost: f64,
        /// Query diagnostics (coresets merged, cache usage, …).
        stats: QueryStats,
        /// Window this answer covers (revision 1.5): present exactly when
        /// the answer is windowed — strict windowed queries echo the
        /// resolved window and its coverage, cached queries report the
        /// window of the published answer they served (which may be
        /// `None`). Omitted on the wire when absent, so pre-1.5 answers
        /// are byte-identical.
        window: Option<WindowInfo>,
    },
    /// Answer to a [`Request::Stats`].
    Stats {
        /// Aggregated ingestion statistics.
        stats: StreamStats,
        /// For windowed stats requests (revision 1.5): the resolved window
        /// and how many points the stored summaries cover for it. Omitted
        /// on the wire when absent.
        window: Option<WindowInfo>,
    },
    /// Answer to a [`Request::Configure`]: the tenant was created.
    Configured {
        /// The tenant that was created.
        namespace: String,
        /// Backend tag the tenant runs (`sharded-cc`, `cc`, `ct`, `rcc`).
        backend: String,
        /// Number of cluster centers.
        k: u64,
        /// Shard worker count (1 for single-threaded backends).
        shards: u64,
    },
    /// Answer to a [`Request::Snapshot`]: the state was written.
    Snapshotted {
        /// Path of the snapshot file, as seen by the server.
        file: String,
        /// Size of the written snapshot in bytes.
        bytes: u64,
    },
    /// Answer to a [`Request::Shutdown`]; the server stops accepting.
    Bye {},
    /// First frame of a replication stream: the tenant's full state at
    /// `seq`, from which the follower bootstraps before applying
    /// [`Response::Replicate`] frames.
    ReplicaSnapshot {
        /// Every logged record with sequence number `<= seq` is folded
        /// into this snapshot; replication resumes at `seq + 1`.
        seq: u64,
        /// The tenant's published epoch at the snapshot point (0 when
        /// nothing is published yet).
        epoch: u64,
        /// The versioned engine snapshot envelope (the same JSON document
        /// `Snapshot` writes to disk).
        snapshot: String,
    },
    /// One logged record pushed to a replication-stream connection.
    Replicate {
        /// Sequence number of this record in the tenant's log.
        seq: u64,
        /// Highest durable sequence number on the primary when this frame
        /// was sent; `primary_seq - seq` bounds the follower's lag.
        primary_seq: u64,
        /// The replayable state mutation.
        record: ReplicationRecord,
    },
    /// A request failed; the engine state is unchanged (for ingest
    /// requests: no point of the failed request was consumed).
    Error {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// Hand-written serializer: the optional `window` field of `Centers` and
/// `Stats` is omitted when `None`, so every answer a pre-1.5 exchange can
/// elicit is byte-for-byte the pre-1.5 wire shape.
impl serde::Serialize for Response {
    fn to_value(&self) -> serde::Value {
        use serde::Value;
        fn variant(tag: &str, fields: Vec<(String, Value)>) -> Value {
            Value::Map(vec![(tag.to_string(), Value::Map(fields))])
        }
        fn field<T: Serialize>(key: &str, v: &T) -> (String, Value) {
            (key.to_string(), v.to_value())
        }
        match self {
            Response::Hello { codec, revision } => variant(
                "Hello",
                vec![field("codec", codec), field("revision", revision)],
            ),
            Response::Ingested {
                accepted,
                points_seen,
            } => variant(
                "Ingested",
                vec![
                    field("accepted", accepted),
                    field("points_seen", points_seen),
                ],
            ),
            Response::Centers {
                centers,
                points_seen,
                epoch,
                cost,
                stats,
                window,
            } => {
                let mut fields = vec![
                    field("centers", centers),
                    field("points_seen", points_seen),
                    field("epoch", epoch),
                    field("cost", cost),
                    field("stats", stats),
                ];
                if let Some(w) = window {
                    fields.push(field("window", w));
                }
                variant("Centers", fields)
            }
            Response::Stats { stats, window } => {
                let mut fields = vec![field("stats", stats)];
                if let Some(w) = window {
                    fields.push(field("window", w));
                }
                variant("Stats", fields)
            }
            Response::Configured {
                namespace,
                backend,
                k,
                shards,
            } => variant(
                "Configured",
                vec![
                    field("namespace", namespace),
                    field("backend", backend),
                    field("k", k),
                    field("shards", shards),
                ],
            ),
            Response::Snapshotted { file, bytes } => variant(
                "Snapshotted",
                vec![field("file", file), field("bytes", bytes)],
            ),
            Response::Bye {} => variant("Bye", Vec::new()),
            Response::ReplicaSnapshot {
                seq,
                epoch,
                snapshot,
            } => variant(
                "ReplicaSnapshot",
                vec![
                    field("seq", seq),
                    field("epoch", epoch),
                    field("snapshot", snapshot),
                ],
            ),
            Response::Replicate {
                seq,
                primary_seq,
                record,
            } => variant(
                "Replicate",
                vec![
                    field("seq", seq),
                    field("primary_seq", primary_seq),
                    field("record", record),
                ],
            ),
            Response::Error { code, message } => variant(
                "Error",
                vec![field("code", code), field("message", message)],
            ),
        }
    }
}

/// Hand-written deserializer: an omitted (or `null`) `window` field reads
/// as `None`, so pre-1.5 responses — and pre-1.5 recorded fixtures — keep
/// parsing unchanged.
impl serde::Deserialize for Response {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let entries = match value {
            serde::Value::Map(entries) => entries,
            _ => return Err(serde::Error::custom("expected variant for Response")),
        };
        let [(tag, inner)] = entries.as_slice() else {
            return Err(serde::Error::custom("expected variant for Response"));
        };
        let map = match inner {
            serde::Value::Map(m) => m,
            _ => {
                return Err(serde::Error::custom(format!(
                    "expected map for variant {tag}"
                )))
            }
        };
        fn req<T: serde::Deserialize>(
            map: &[(String, serde::Value)],
            key: &str,
        ) -> Result<T, serde::Error> {
            serde::Deserialize::from_value(serde::get_field(map, key)?)
        }
        fn opt<T: serde::Deserialize>(
            map: &[(String, serde::Value)],
            key: &str,
        ) -> Result<Option<T>, serde::Error> {
            match map.iter().find(|(k, _)| k == key) {
                None => Ok(None),
                Some((_, serde::Value::Null)) => Ok(None),
                Some((_, v)) => T::from_value(v).map(Some),
            }
        }
        match tag.as_str() {
            "Hello" => Ok(Response::Hello {
                codec: req(map, "codec")?,
                revision: req(map, "revision")?,
            }),
            "Ingested" => Ok(Response::Ingested {
                accepted: req(map, "accepted")?,
                points_seen: req(map, "points_seen")?,
            }),
            "Centers" => Ok(Response::Centers {
                centers: req(map, "centers")?,
                points_seen: req(map, "points_seen")?,
                epoch: req(map, "epoch")?,
                cost: req(map, "cost")?,
                stats: req(map, "stats")?,
                window: opt(map, "window")?,
            }),
            "Stats" => Ok(Response::Stats {
                stats: req(map, "stats")?,
                window: opt(map, "window")?,
            }),
            "Configured" => Ok(Response::Configured {
                namespace: req(map, "namespace")?,
                backend: req(map, "backend")?,
                k: req(map, "k")?,
                shards: req(map, "shards")?,
            }),
            "Snapshotted" => Ok(Response::Snapshotted {
                file: req(map, "file")?,
                bytes: req(map, "bytes")?,
            }),
            "Bye" => Ok(Response::Bye {}),
            "ReplicaSnapshot" => Ok(Response::ReplicaSnapshot {
                seq: req(map, "seq")?,
                epoch: req(map, "epoch")?,
                snapshot: req(map, "snapshot")?,
            }),
            "Replicate" => Ok(Response::Replicate {
                seq: req(map, "seq")?,
                primary_seq: req(map, "primary_seq")?,
                record: req(map, "record")?,
            }),
            "Error" => Ok(Response::Error {
                code: req(map, "code")?,
                message: req(map, "message")?,
            }),
            other => Err(serde::Error::custom(format!(
                "unknown variant `{other}` for Response"
            ))),
        }
    }
}

/// Machine-readable failure classes carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The request line was not valid JSON or not a known request shape.
    MalformedRequest,
    /// The request line exceeded [`MAX_LINE_BYTES`].
    LineTooLong,
    /// A point's dimensionality disagrees with the stream's.
    DimensionMismatch,
    /// A coordinate was NaN or infinite.
    NonFiniteCoordinate,
    /// A point was empty or otherwise invalid.
    InvalidPoint,
    /// An `IngestBatch` exceeded [`MAX_BATCH_POINTS`].
    BatchTooLarge,
    /// A query arrived before any point was ingested.
    EmptyStream,
    /// Snapshotting is not available (no snapshot directory configured, or
    /// the file name tried to escape it).
    SnapshotUnavailable,
    /// A `namespace` failed [`validate_namespace`]: empty, contains a path
    /// separator or NUL, is `.`/`..`, or exceeds [`MAX_NAMESPACE_BYTES`].
    BadNamespace,
    /// The resident-tenant cap is full and the server has no eviction
    /// directory to page a tenant out to.
    TenantLimit,
    /// A `Configure` request named a tenant that already exists (resident
    /// or evicted to disk).
    TenantExists,
    /// A `Hello` handshake named an unknown codec, or arrived after the
    /// first frame of the connection. The connection stays on its current
    /// codec.
    BadCodec,
    /// A binary frame declared a length above the frame cap (the binary
    /// counterpart of [`ErrorCode::LineTooLong`]); the connection is closed
    /// because the stream cannot be resynchronized.
    FrameTooLarge,
    /// An unexpected server-side failure.
    Internal,
    /// Replication is unavailable or too far behind: a `Replicate` request
    /// against a primary without a WAL, a write or strict read sent to a
    /// follower (writes must go to the primary), or a follower answering a
    /// cached read while its lag exceeds its configured bound.
    ReplicationLag,
    /// The write-ahead log failed a checksum or structural check: the
    /// on-disk state is damaged in a way a torn trailing write cannot
    /// explain, and the affected tenant refuses writes rather than
    /// diverging from its log.
    WalCorrupt,
    /// A `window` field failed [`WindowSpec::validate`]: both or neither
    /// selector present, a zero/negative/over-limit `last_points`, or a
    /// non-positive, non-finite or over-limit `last_secs`. The value was
    /// well-typed (otherwise: [`ErrorCode::MalformedRequest`]) but names
    /// no valid window.
    BadWindow,
}

/// Maps an engine error to the wire-level failure class.
#[must_use]
pub fn error_code(e: &ClusteringError) -> ErrorCode {
    match e {
        ClusteringError::DimensionMismatch { .. } => ErrorCode::DimensionMismatch,
        ClusteringError::NonFiniteCoordinate { .. } => ErrorCode::NonFiniteCoordinate,
        ClusteringError::EmptyInput => ErrorCode::EmptyStream,
        ClusteringError::InvalidParameter { name, .. } => match *name {
            "point" => ErrorCode::InvalidPoint,
            "namespace" => ErrorCode::BadNamespace,
            "tenant_limit" => ErrorCode::TenantLimit,
            "tenant_exists" => ErrorCode::TenantExists,
            "replication_lag" => ErrorCode::ReplicationLag,
            "wal_corrupt" => ErrorCode::WalCorrupt,
            "window" => ErrorCode::BadWindow,
            _ => ErrorCode::Internal,
        },
        _ => ErrorCode::Internal,
    }
}

/// Builds the error response for an engine failure.
#[must_use]
pub fn error_response(e: &ClusteringError) -> Response {
    Response::Error {
        code: error_code(e),
        message: e.to_string(),
    }
}

impl Request {
    /// Encodes the request as one JSON line (without the trailing newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        // lint:allow(panic-freedom) serializing our own enum of plain fields cannot fail
        serde_json::to_string(self).expect("request serialization is infallible")
    }

    /// Parses a request from one JSON line.
    ///
    /// # Errors
    /// Returns the parse failure message (the server wraps it in a
    /// [`Response::Error`] with [`ErrorCode::MalformedRequest`]).
    pub fn from_line(line: &str) -> Result<Self, String> {
        serde_json::from_str(line).map_err(|e| e.to_string())
    }
}

impl Response {
    /// Encodes the response as one JSON line (without the trailing newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        // lint:allow(panic-freedom) serializing our own enum of plain fields cannot fail
        serde_json::to_string(self).expect("response serialization is infallible")
    }

    /// Parses a response from one JSON line.
    ///
    /// # Errors
    /// Returns the parse failure message.
    pub fn from_line(line: &str) -> Result<Self, String> {
        serde_json::from_str(line).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_lines() {
        let requests = vec![
            Request::Hello {
                codec: "binary".to_string(),
            },
            Request::Ingest {
                point: vec![1.0, -2.5],
                namespace: None,
            },
            Request::Ingest {
                point: vec![1.0, -2.5],
                namespace: Some("tenant-a".to_string()),
            },
            Request::IngestBatch {
                points: vec![vec![0.5, 0.25], vec![3.0, 4.0]],
                namespace: None,
            },
            Request::IngestBatch {
                points: vec![vec![0.5, 0.25]],
                namespace: Some("tenant-a".to_string()),
            },
            Request::Query {
                freshness: Freshness::Strict,
                namespace: None,
                window: None,
            },
            Request::Query {
                freshness: Freshness::Cached,
                namespace: Some("tenant-b".to_string()),
                window: None,
            },
            Request::Stats {
                freshness: Freshness::Strict,
                namespace: None,
                window: None,
            },
            Request::Stats {
                freshness: Freshness::Cached,
                namespace: Some("tenant-b".to_string()),
                window: None,
            },
            Request::Configure {
                namespace: Some("tenant-c".to_string()),
                config: TenantConfig {
                    k: Some(8),
                    backend: Some("cc".to_string()),
                    shards: None,
                    batch: Some(64),
                    seed: Some(7),
                },
            },
            Request::Configure {
                namespace: None,
                config: TenantConfig::default(),
            },
            Request::Snapshot {
                file: "state.json".to_string(),
                namespace: None,
            },
            Request::Snapshot {
                file: "state.json".to_string(),
                namespace: Some("tenant-a".to_string()),
            },
            Request::Shutdown {},
            Request::Replicate {
                namespace: None,
                from_seq: 0,
            },
            Request::Replicate {
                namespace: Some("tenant-a".to_string()),
                from_seq: 118,
            },
        ];
        for req in requests {
            let line = req.to_line();
            assert!(!line.contains('\n'), "one request = one line: {line}");
            assert_eq!(Request::from_line(&line).unwrap(), req);
        }
    }

    #[test]
    fn omitted_freshness_parses_as_strict() {
        // The complete pre-freshness wire shapes must keep working, and an
        // explicit null is treated like an omitted field.
        for line in [
            r#"{"Query":{}}"#,
            r#"{"Query":{"freshness":null}}"#,
            r#"{"Query":{"freshness":"STRICT"}}"#,
        ] {
            assert_eq!(
                Request::from_line(line).unwrap(),
                Request::Query {
                    freshness: Freshness::Strict,
                    namespace: None,
                    window: None,
                },
                "{line}"
            );
        }
        assert_eq!(
            Request::from_line(r#"{"Stats":{}}"#).unwrap(),
            Request::Stats {
                freshness: Freshness::Strict,
                namespace: None,
                window: None,
            }
        );
        assert_eq!(
            Request::from_line(r#"{"Query":{"freshness":"cached"}}"#).unwrap(),
            Request::Query {
                freshness: Freshness::Cached,
                namespace: None,
                window: None,
            }
        );
        assert!(Request::from_line(r#"{"Query":{"freshness":"nope"}}"#).is_err());
        assert!(Request::from_line(r#"{"Query":{"freshness":3}}"#).is_err());
    }

    #[test]
    fn omitted_namespace_parses_as_none_and_is_not_emitted() {
        // Omitted and explicit-null namespaces both mean the default
        // tenant, and a `None` namespace round-trips to the exact
        // pre-tenancy wire bytes.
        for line in [
            r#"{"Ingest":{"point":[1,2]}}"#,
            r#"{"Ingest":{"point":[1,2],"namespace":null}}"#,
        ] {
            assert_eq!(
                Request::from_line(line).unwrap(),
                Request::Ingest {
                    point: vec![1.0, 2.0],
                    namespace: None,
                },
                "{line}"
            );
        }
        assert_eq!(
            Request::from_line(r#"{"Ingest":{"point":[1,2],"namespace":"t1"}}"#).unwrap(),
            Request::Ingest {
                point: vec![1.0, 2.0],
                namespace: Some("t1".to_string()),
            }
        );
        // A non-string namespace is malformed, not silently defaulted.
        assert!(Request::from_line(r#"{"Ingest":{"point":[1,2],"namespace":7}}"#).is_err());
    }

    #[test]
    fn configure_parses_with_flattened_optional_fields() {
        assert_eq!(
            Request::from_line(r#"{"Configure":{"namespace":"a","k":4,"backend":"sharded-cc","shards":2,"batch":128,"seed":42}}"#)
                .unwrap(),
            Request::Configure {
                namespace: Some("a".to_string()),
                config: TenantConfig {
                    k: Some(4),
                    backend: Some("sharded-cc".to_string()),
                    shards: Some(2),
                    batch: Some(128),
                    seed: Some(42),
                },
            }
        );
        // Every field is optional.
        assert_eq!(
            Request::from_line(r#"{"Configure":{}}"#).unwrap(),
            Request::Configure {
                namespace: None,
                config: TenantConfig::default(),
            }
        );
        assert!(Request::from_line(r#"{"Configure":{"k":"four"}}"#).is_err());
    }

    #[test]
    fn replicate_from_seq_defaults_to_zero() {
        // `from_seq` is optional on the wire: a follower that wants a
        // fresh snapshot can send the bare variant.
        for line in [
            r#"{"Replicate":{}}"#,
            r#"{"Replicate":{"from_seq":null}}"#,
            r#"{"Replicate":{"from_seq":0}}"#,
        ] {
            assert_eq!(
                Request::from_line(line).unwrap(),
                Request::Replicate {
                    namespace: None,
                    from_seq: 0,
                },
                "{line}"
            );
        }
        assert_eq!(
            Request::from_line(r#"{"Replicate":{"namespace":"t1","from_seq":9}}"#).unwrap(),
            Request::Replicate {
                namespace: Some("t1".to_string()),
                from_seq: 9,
            }
        );
        assert!(Request::from_line(r#"{"Replicate":{"from_seq":"nine"}}"#).is_err());
    }

    #[test]
    fn namespace_validation_rejects_path_escapes() {
        for ok in ["default", "tenant-a", "t0", "a.b", "UPPER_case.9"] {
            assert!(validate_namespace(ok).is_ok(), "{ok}");
        }
        for bad in ["", ".", "..", "a/b", "a\\b", "a\0b", "../x", "/etc"] {
            assert!(validate_namespace(bad).is_err(), "{bad:?}");
        }
        assert!(validate_namespace(&"n".repeat(MAX_NAMESPACE_BYTES)).is_ok());
        assert!(validate_namespace(&"n".repeat(MAX_NAMESPACE_BYTES + 1)).is_err());
    }

    #[test]
    fn responses_round_trip_through_lines() {
        let responses = vec![
            Response::Hello {
                codec: "binary".to_string(),
                revision: PROTOCOL_REVISION.to_string(),
            },
            Response::Ingested {
                accepted: 3,
                points_seen: 100,
            },
            Response::Centers {
                centers: vec![vec![1.0, 2.0], vec![-3.0, 0.5]],
                points_seen: 100,
                epoch: 7,
                cost: 12.5,
                stats: QueryStats {
                    coresets_merged: 4,
                    candidate_points: 80,
                    coreset_level: Some(2),
                    used_cache: true,
                    ran_kmeans: true,
                },
                window: None,
            },
            Response::Centers {
                centers: vec![vec![1.0, 2.0]],
                points_seen: 100,
                epoch: 8,
                cost: 0.5,
                stats: QueryStats {
                    coresets_merged: 2,
                    candidate_points: 40,
                    coreset_level: None,
                    used_cache: false,
                    ran_kmeans: true,
                },
                window: Some(WindowInfo {
                    last_points: 60,
                    covered_points: 80,
                }),
            },
            Response::Stats {
                stats: StreamStats {
                    points_seen: 100,
                    shards: 2,
                    per_shard_points: vec![50, 50],
                    last_query: None,
                },
                window: None,
            },
            Response::Stats {
                stats: StreamStats {
                    points_seen: 100,
                    shards: 2,
                    per_shard_points: vec![50, 50],
                    last_query: None,
                },
                window: Some(WindowInfo {
                    last_points: 25,
                    covered_points: 40,
                }),
            },
            Response::Configured {
                namespace: "tenant-a".to_string(),
                backend: "sharded-cc".to_string(),
                k: 4,
                shards: 2,
            },
            Response::Snapshotted {
                file: "snaps/state.json".to_string(),
                bytes: 12345,
            },
            Response::Bye {},
            Response::ReplicaSnapshot {
                seq: 42,
                epoch: 3,
                snapshot: r#"{"snapshot_version":3}"#.to_string(),
            },
            Response::Replicate {
                seq: 43,
                primary_seq: 45,
                record: ReplicationRecord::Ingest {
                    point: vec![1.0, 2.0],
                },
            },
            Response::Replicate {
                seq: 44,
                primary_seq: 45,
                record: ReplicationRecord::IngestBatch {
                    points: vec![vec![0.5], vec![1.5]],
                },
            },
            Response::Replicate {
                seq: 45,
                primary_seq: 45,
                record: ReplicationRecord::Query {},
            },
            Response::Replicate {
                seq: 46,
                primary_seq: 46,
                record: ReplicationRecord::Stats {},
            },
            Response::Error {
                code: ErrorCode::DimensionMismatch,
                message: "expected 2, got 3".to_string(),
            },
            Response::Error {
                code: ErrorCode::BadNamespace,
                message: "namespace `../x` escapes".to_string(),
            },
            Response::Error {
                code: ErrorCode::ReplicationLag,
                message: "writes must go to the primary".to_string(),
            },
            Response::Error {
                code: ErrorCode::WalCorrupt,
                message: "crc mismatch".to_string(),
            },
        ];
        for resp in responses {
            let line = resp.to_line();
            assert!(!line.contains('\n'), "one response = one line: {line}");
            assert_eq!(Response::from_line(&line).unwrap(), resp);
        }
    }

    #[test]
    fn wire_shape_is_the_documented_external_tagging() {
        let line = Request::Ingest {
            point: vec![1.0, 2.0],
            namespace: None,
        }
        .to_line();
        assert_eq!(line, r#"{"Ingest":{"point":[1,2]}}"#);
        assert_eq!(
            Request::Query {
                freshness: Freshness::Strict,
                namespace: None,
                window: None,
            }
            .to_line(),
            r#"{"Query":{"freshness":"strict"}}"#
        );
        assert_eq!(
            Request::Query {
                freshness: Freshness::Cached,
                namespace: None,
                window: None,
            }
            .to_line(),
            r#"{"Query":{"freshness":"cached"}}"#
        );
        assert_eq!(
            Request::Query {
                freshness: Freshness::Strict,
                namespace: Some("t1".to_string()),
                window: None,
            }
            .to_line(),
            r#"{"Query":{"freshness":"strict","namespace":"t1"}}"#
        );
    }

    #[test]
    fn malformed_lines_are_parse_errors_not_panics() {
        assert!(Request::from_line("").is_err());
        assert!(Request::from_line("not json").is_err());
        assert!(Request::from_line("{\"Unknown\":{}}").is_err());
        assert!(Request::from_line("{\"Ingest\":{\"point\":\"oops\"}}").is_err());
        assert!(Request::from_line("[1,2,3]").is_err());
    }

    #[test]
    fn engine_errors_map_to_typed_codes() {
        assert_eq!(
            error_code(&ClusteringError::DimensionMismatch {
                expected: 2,
                got: 3
            }),
            ErrorCode::DimensionMismatch
        );
        assert_eq!(
            error_code(&ClusteringError::NonFiniteCoordinate { index: 1 }),
            ErrorCode::NonFiniteCoordinate
        );
        assert_eq!(
            error_code(&ClusteringError::EmptyInput),
            ErrorCode::EmptyStream
        );
        assert_eq!(
            error_code(&ClusteringError::InvalidParameter {
                name: "point",
                message: "empty".to_string()
            }),
            ErrorCode::InvalidPoint
        );
        assert_eq!(
            error_code(&ClusteringError::InvalidParameter {
                name: "namespace",
                message: "escapes".to_string()
            }),
            ErrorCode::BadNamespace
        );
        assert_eq!(
            error_code(&ClusteringError::InvalidParameter {
                name: "tenant_limit",
                message: "cap".to_string()
            }),
            ErrorCode::TenantLimit
        );
        assert_eq!(
            error_code(&ClusteringError::InvalidParameter {
                name: "tenant_exists",
                message: "resident".to_string()
            }),
            ErrorCode::TenantExists
        );
        assert_eq!(
            error_code(&ClusteringError::InvalidParameter {
                name: "replication_lag",
                message: "follower".to_string()
            }),
            ErrorCode::ReplicationLag
        );
        assert_eq!(
            error_code(&ClusteringError::InvalidParameter {
                name: "wal_corrupt",
                message: "crc".to_string()
            }),
            ErrorCode::WalCorrupt
        );
        assert_eq!(
            error_code(&ClusteringError::InvalidK { k: 0 }),
            ErrorCode::Internal
        );
    }
}
