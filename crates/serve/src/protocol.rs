//! The newline-delimited JSON wire protocol.
//!
//! Every request and every response is one JSON document on one line,
//! terminated by `\n`. Requests are externally tagged by their variant name
//! (the shape the vendored serde derive produces), e.g.:
//!
//! ```text
//! {"Ingest":{"point":[1.0,2.0]}}
//! {"IngestBatch":{"points":[[1.0,2.0],[3.0,4.0]]}}
//! {"Query":{}}
//! {"Query":{"freshness":"cached"}}
//! {"Stats":{}}
//! {"Snapshot":{"file":"state.json"}}
//! {"Shutdown":{}}
//! ```
//!
//! Responses mirror that shape (`Ingested`, `Centers`, `Stats`,
//! `Snapshotted`, `Bye`, `Error`). A malformed or oversized line is answered
//! with a typed [`Response::Error`] instead of dropping the connection, so a
//! client bug never takes down its session, let alone the engine.
//!
//! `Query` and `Stats` accept an optional [`Freshness`] field selecting the
//! read path: `"strict"` (the default, and the behaviour when the field is
//! omitted — so pre-freshness clients keep working unchanged) drains
//! in-flight ingestion and recomputes, `"cached"` answers from the last
//! published epoch without taking the ingest lock.
//!
//! The normative wire specification — every variant, every error code, the
//! request limits and one worked example per exchange — lives in
//! [`docs/PROTOCOL.md`](https://github.com/paper-repo-growth/streaming-kmeans/blob/main/docs/PROTOCOL.md);
//! this module is its implementation.

use serde::{Deserialize, Serialize};
use skm_clustering::error::ClusteringError;
use skm_stream::{QueryStats, StreamStats};

/// Maximum points accepted in one `IngestBatch` request. Larger batches are
/// rejected with [`ErrorCode::BatchTooLarge`] before touching the engine,
/// bounding per-request memory; clients should split their load instead.
pub const MAX_BATCH_POINTS: usize = 4096;

/// Maximum accepted request-line length in bytes. A line that reaches this
/// limit without a terminating `\n` is answered with
/// [`ErrorCode::LineTooLong`] and the connection is closed (there is no way
/// to resynchronize mid-line).
pub const MAX_LINE_BYTES: u64 = 8 * 1024 * 1024;

/// Which read path a `Query` or `Stats` request takes.
///
/// On the wire this is the optional `freshness` field, spelled `"strict"`
/// or `"cached"` (case-insensitive); an omitted field means
/// [`Freshness::Strict`], so clients written before the field existed keep
/// their exact pre-freshness semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Freshness {
    /// Drain in-flight ingestion and recompute the answer under the engine
    /// lock — linearizable with respect to every previously acknowledged
    /// ingest, and bit-identical at a fixed `(seed, shards, batch)` to the
    /// pre-freshness query path.
    #[default]
    Strict,
    /// Answer immediately from the last published epoch without taking the
    /// ingest lock. Stale by up to the time since the last strict
    /// query/publish, but always internally consistent (epoch, centers,
    /// cost and `points_seen` come from one immutable published value).
    Cached,
}

impl Freshness {
    /// The wire spelling (`"strict"` / `"cached"`).
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            Freshness::Strict => "strict",
            Freshness::Cached => "cached",
        }
    }

    /// Parses the wire spelling (case-insensitive).
    #[must_use]
    pub fn parse(tag: &str) -> Option<Self> {
        match tag.to_ascii_lowercase().as_str() {
            "strict" => Some(Freshness::Strict),
            "cached" => Some(Freshness::Cached),
            _ => None,
        }
    }
}

impl serde::Serialize for Freshness {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.as_str().to_string())
    }
}

impl serde::Deserialize for Freshness {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        match value {
            serde::Value::Str(s) => Self::parse(s).ok_or_else(|| {
                serde::Error::custom(format!(
                    "unknown freshness `{s}` (expected `strict` or `cached`)"
                ))
            }),
            _ => Err(serde::Error::custom("expected string for freshness")),
        }
    }
}

/// A client request (one JSON line).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum Request {
    /// Ingest a single point.
    Ingest {
        /// The point's coordinates; must match the stream dimension.
        point: Vec<f64>,
    },
    /// Ingest a batch of points atomically: either every point is accepted
    /// or none is (the whole batch is validated before any point is fed to
    /// the engine).
    IngestBatch {
        /// The points, all of the stream dimension, at most
        /// [`MAX_BATCH_POINTS`] of them.
        points: Vec<Vec<f64>>,
    },
    /// Ask for the current k cluster centers.
    Query {
        /// Read path: strict (default) or cached.
        freshness: Freshness,
    },
    /// Ask for ingestion statistics.
    Stats {
        /// Read path: strict (default) or cached.
        freshness: Freshness,
    },
    /// Persist the engine state to `file` inside the server's configured
    /// snapshot directory.
    Snapshot {
        /// Bare file name (no path separators) within the snapshot
        /// directory.
        file: String,
    },
    /// Stop the server: the connection is answered with [`Response::Bye`]
    /// and the accept loop shuts down cleanly.
    Shutdown {},
}

/// Hand-written deserializer (the vendored derive treats every field as
/// required, but `freshness` must be optional so `{"Query":{}}` — the
/// complete pre-freshness wire shape — keeps parsing as a strict query).
impl serde::Deserialize for Request {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let entries = match value {
            serde::Value::Map(entries) if entries.len() == 1 => entries,
            _ => return Err(serde::Error::custom("expected variant for Request")),
        };
        let (tag, inner) = &entries[0];
        let map = match inner {
            serde::Value::Map(m) => m,
            _ => {
                return Err(serde::Error::custom(format!(
                    "expected map for variant {tag}"
                )))
            }
        };
        let freshness = |map: &[(String, serde::Value)]| -> Result<Freshness, serde::Error> {
            match map.iter().find(|(k, _)| k == "freshness") {
                None => Ok(Freshness::default()),
                Some((_, serde::Value::Null)) => Ok(Freshness::default()),
                Some((_, v)) => serde::Deserialize::from_value(v),
            }
        };
        match tag.as_str() {
            "Ingest" => Ok(Request::Ingest {
                point: serde::Deserialize::from_value(serde::get_field(map, "point")?)?,
            }),
            "IngestBatch" => Ok(Request::IngestBatch {
                points: serde::Deserialize::from_value(serde::get_field(map, "points")?)?,
            }),
            "Query" => Ok(Request::Query {
                freshness: freshness(map)?,
            }),
            "Stats" => Ok(Request::Stats {
                freshness: freshness(map)?,
            }),
            "Snapshot" => Ok(Request::Snapshot {
                file: serde::Deserialize::from_value(serde::get_field(map, "file")?)?,
            }),
            "Shutdown" => Ok(Request::Shutdown {}),
            other => Err(serde::Error::custom(format!(
                "unknown variant `{other}` for Request"
            ))),
        }
    }
}

/// A server response (one JSON line).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Points were accepted.
    Ingested {
        /// Number of points accepted by this request.
        accepted: u64,
        /// Total points the engine has seen after this request.
        points_seen: u64,
    },
    /// Answer to a [`Request::Query`].
    Centers {
        /// The k cluster centers, one coordinate row per center.
        centers: Vec<Vec<f64>>,
        /// Total points summarized by this answer.
        points_seen: u64,
        /// Publish epoch this answer belongs to: strict queries return the
        /// epoch they just published, cached queries the epoch they read.
        epoch: u64,
        /// Coreset-estimated clustering cost of `centers` (JSON `null`
        /// when the backend cannot estimate it).
        cost: f64,
        /// Query diagnostics (coresets merged, cache usage, …).
        stats: QueryStats,
    },
    /// Answer to a [`Request::Stats`].
    Stats {
        /// Aggregated ingestion statistics.
        stats: StreamStats,
    },
    /// Answer to a [`Request::Snapshot`]: the state was written.
    Snapshotted {
        /// Path of the snapshot file, as seen by the server.
        file: String,
        /// Size of the written snapshot in bytes.
        bytes: u64,
    },
    /// Answer to a [`Request::Shutdown`]; the server stops accepting.
    Bye {},
    /// A request failed; the engine state is unchanged (for ingest
    /// requests: no point of the failed request was consumed).
    Error {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// Machine-readable failure classes carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The request line was not valid JSON or not a known request shape.
    MalformedRequest,
    /// The request line exceeded [`MAX_LINE_BYTES`].
    LineTooLong,
    /// A point's dimensionality disagrees with the stream's.
    DimensionMismatch,
    /// A coordinate was NaN or infinite.
    NonFiniteCoordinate,
    /// A point was empty or otherwise invalid.
    InvalidPoint,
    /// An `IngestBatch` exceeded [`MAX_BATCH_POINTS`].
    BatchTooLarge,
    /// A query arrived before any point was ingested.
    EmptyStream,
    /// Snapshotting is not available (no snapshot directory configured, or
    /// the file name tried to escape it).
    SnapshotUnavailable,
    /// An unexpected server-side failure.
    Internal,
}

/// Maps an engine error to the wire-level failure class.
#[must_use]
pub fn error_code(e: &ClusteringError) -> ErrorCode {
    match e {
        ClusteringError::DimensionMismatch { .. } => ErrorCode::DimensionMismatch,
        ClusteringError::NonFiniteCoordinate { .. } => ErrorCode::NonFiniteCoordinate,
        ClusteringError::EmptyInput => ErrorCode::EmptyStream,
        ClusteringError::InvalidParameter { name, .. } if *name == "point" => {
            ErrorCode::InvalidPoint
        }
        _ => ErrorCode::Internal,
    }
}

/// Builds the error response for an engine failure.
#[must_use]
pub fn error_response(e: &ClusteringError) -> Response {
    Response::Error {
        code: error_code(e),
        message: e.to_string(),
    }
}

impl Request {
    /// Encodes the request as one JSON line (without the trailing newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("request serialization is infallible")
    }

    /// Parses a request from one JSON line.
    ///
    /// # Errors
    /// Returns the parse failure message (the server wraps it in a
    /// [`Response::Error`] with [`ErrorCode::MalformedRequest`]).
    pub fn from_line(line: &str) -> Result<Self, String> {
        serde_json::from_str(line).map_err(|e| e.to_string())
    }
}

impl Response {
    /// Encodes the response as one JSON line (without the trailing newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("response serialization is infallible")
    }

    /// Parses a response from one JSON line.
    ///
    /// # Errors
    /// Returns the parse failure message.
    pub fn from_line(line: &str) -> Result<Self, String> {
        serde_json::from_str(line).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_lines() {
        let requests = vec![
            Request::Ingest {
                point: vec![1.0, -2.5],
            },
            Request::IngestBatch {
                points: vec![vec![0.5, 0.25], vec![3.0, 4.0]],
            },
            Request::Query {
                freshness: Freshness::Strict,
            },
            Request::Query {
                freshness: Freshness::Cached,
            },
            Request::Stats {
                freshness: Freshness::Strict,
            },
            Request::Stats {
                freshness: Freshness::Cached,
            },
            Request::Snapshot {
                file: "state.json".to_string(),
            },
            Request::Shutdown {},
        ];
        for req in requests {
            let line = req.to_line();
            assert!(!line.contains('\n'), "one request = one line: {line}");
            assert_eq!(Request::from_line(&line).unwrap(), req);
        }
    }

    #[test]
    fn omitted_freshness_parses_as_strict() {
        // The complete pre-freshness wire shapes must keep working, and an
        // explicit null is treated like an omitted field.
        for line in [
            r#"{"Query":{}}"#,
            r#"{"Query":{"freshness":null}}"#,
            r#"{"Query":{"freshness":"STRICT"}}"#,
        ] {
            assert_eq!(
                Request::from_line(line).unwrap(),
                Request::Query {
                    freshness: Freshness::Strict,
                },
                "{line}"
            );
        }
        assert_eq!(
            Request::from_line(r#"{"Stats":{}}"#).unwrap(),
            Request::Stats {
                freshness: Freshness::Strict,
            }
        );
        assert_eq!(
            Request::from_line(r#"{"Query":{"freshness":"cached"}}"#).unwrap(),
            Request::Query {
                freshness: Freshness::Cached,
            }
        );
        assert!(Request::from_line(r#"{"Query":{"freshness":"nope"}}"#).is_err());
        assert!(Request::from_line(r#"{"Query":{"freshness":3}}"#).is_err());
    }

    #[test]
    fn responses_round_trip_through_lines() {
        let responses = vec![
            Response::Ingested {
                accepted: 3,
                points_seen: 100,
            },
            Response::Centers {
                centers: vec![vec![1.0, 2.0], vec![-3.0, 0.5]],
                points_seen: 100,
                epoch: 7,
                cost: 12.5,
                stats: QueryStats {
                    coresets_merged: 4,
                    candidate_points: 80,
                    coreset_level: Some(2),
                    used_cache: true,
                    ran_kmeans: true,
                },
            },
            Response::Stats {
                stats: StreamStats {
                    points_seen: 100,
                    shards: 2,
                    per_shard_points: vec![50, 50],
                    last_query: None,
                },
            },
            Response::Snapshotted {
                file: "snaps/state.json".to_string(),
                bytes: 12345,
            },
            Response::Bye {},
            Response::Error {
                code: ErrorCode::DimensionMismatch,
                message: "expected 2, got 3".to_string(),
            },
        ];
        for resp in responses {
            let line = resp.to_line();
            assert!(!line.contains('\n'), "one response = one line: {line}");
            assert_eq!(Response::from_line(&line).unwrap(), resp);
        }
    }

    #[test]
    fn wire_shape_is_the_documented_external_tagging() {
        let line = Request::Ingest {
            point: vec![1.0, 2.0],
        }
        .to_line();
        assert_eq!(line, r#"{"Ingest":{"point":[1,2]}}"#);
        assert_eq!(
            Request::Query {
                freshness: Freshness::Strict,
            }
            .to_line(),
            r#"{"Query":{"freshness":"strict"}}"#
        );
        assert_eq!(
            Request::Query {
                freshness: Freshness::Cached,
            }
            .to_line(),
            r#"{"Query":{"freshness":"cached"}}"#
        );
    }

    #[test]
    fn malformed_lines_are_parse_errors_not_panics() {
        assert!(Request::from_line("").is_err());
        assert!(Request::from_line("not json").is_err());
        assert!(Request::from_line("{\"Unknown\":{}}").is_err());
        assert!(Request::from_line("{\"Ingest\":{\"point\":\"oops\"}}").is_err());
        assert!(Request::from_line("[1,2,3]").is_err());
    }

    #[test]
    fn engine_errors_map_to_typed_codes() {
        assert_eq!(
            error_code(&ClusteringError::DimensionMismatch {
                expected: 2,
                got: 3
            }),
            ErrorCode::DimensionMismatch
        );
        assert_eq!(
            error_code(&ClusteringError::NonFiniteCoordinate { index: 1 }),
            ErrorCode::NonFiniteCoordinate
        );
        assert_eq!(
            error_code(&ClusteringError::EmptyInput),
            ErrorCode::EmptyStream
        );
        assert_eq!(
            error_code(&ClusteringError::InvalidParameter {
                name: "point",
                message: "empty".to_string()
            }),
            ErrorCode::InvalidPoint
        );
        assert_eq!(
            error_code(&ClusteringError::InvalidK { k: 0 }),
            ErrorCode::Internal
        );
    }
}
