//! # skm-serve
//!
//! The network serving layer over the streaming clusterers: turn the
//! in-process `ShardedStream` machinery into an actual online service that
//! remote clients can feed and query *while the stream is live* — the
//! paper's headline claim (cheap queries against a continuously updated
//! summary) exercised under real request traffic.
//!
//! ## Pieces
//!
//! * [`protocol`] — the wire protocol model: typed
//!   [`Request`]/[`Response`] enums (including the revision-1.3
//!   `Hello` codec handshake and the revision-1.4 `Replicate`
//!   subscription), the [`protocol::Freshness`] knob
//!   (strict vs cached reads), the optional per-request `namespace` field
//!   (tenant selection; omitted means `"default"`), request limits, and
//!   the mapping from engine errors to typed [`protocol::ErrorCode`]s.
//!   The normative spec lives in `docs/PROTOCOL.md`.
//! * [`codec`] — the two framings of that model: newline-delimited JSON
//!   (the default, debuggable with netcat) and a compact length-prefixed
//!   binary codec negotiated on connect via `Hello{codec}`. Both sides of
//!   a connection switch together after the handshake response.
//! * [`engine`] — the [`Engine`] facade: a concurrent map of per-tenant
//!   streams (sharded CC by default; single-threaded CC/CT/RCC also
//!   available), each behind its own mutex for writes and strict reads
//!   with an atomically swapped published snapshot for cached reads.
//!   Tenants are created lazily (or via `Configure` with custom
//!   settings), and an LRU policy pages idle tenants out to versioned
//!   JSON snapshots on disk and restores them bit-identically on next
//!   touch. The same envelope serves explicit snapshot/restore of the
//!   complete state (configuration, coreset tree levels, caches, partial
//!   buckets, RNG positions, published epoch). With a write-ahead log
//!   attached ([`engine::WalConfig`], `skm-wal`), every state-mutating
//!   request is logged before it applies, group-committed, periodically
//!   checkpointed, and recovered bit-identically after a crash.
//! * [`follower`] — follower replicas: a background thread
//!   ([`start_follower`]) tails a WAL-enabled primary's `Replicate`
//!   stream and applies it to a read-only engine
//!   ([`engine::Engine::with_follower`]) that serves cached reads within
//!   a bounded replication lag.
//! * [`server`] — the TCP [`Server`] over the *evented* I/O core
//!   ([`event`]): a small fixed pool of readiness-polling loops with
//!   per-connection state machines, explicit read/write backpressure, and
//!   request pipelining. Malformed input is answered with typed errors,
//!   and in-flight requests drain on shutdown.
//! * [`client`] — the blocking [`Client`], built via [`ClientBuilder`]
//!   (address, default namespace, codec, timeouts) and driven with typed
//!   per-request [`RequestOptions`].
//! * [`loadgen`] — the built-in load generator: N concurrent connections,
//!   configurable ingest:query mix, an optional Zipf-skewed multi-tenant
//!   traffic mix, a choice of wire codec, an idle-connection hold pool,
//!   and per-request latency collection (feeds the `BENCH_serving.json`
//!   workload in `skm-bench`), plus an optional paired follower target
//!   for cached-read replication benchmarks.
//!
//! ## Example
//!
//! ```
//! use skm_serve::prelude::*;
//! use std::sync::Arc;
//!
//! let config = StreamConfig::new(2).with_bucket_size(40).with_kmeans_runs(1);
//! let engine = Arc::new(Engine::new(&EngineSpec::sharded_cc(config, 2, 32, 7)).unwrap());
//! let server = Server::bind("127.0.0.1:0", Arc::clone(&engine), None).unwrap();
//! let handle = server.spawn().unwrap();
//!
//! let mut client = Client::connect(handle.addr()).unwrap();
//! for i in 0..200u32 {
//!     let x = if i % 2 == 0 { 0.0 } else { 100.0 };
//!     client.ingest(vec![x, f64::from(i % 10)]).unwrap();
//! }
//! let centers = client.query_centers().unwrap();
//! assert_eq!(centers.len(), 2);
//!
//! client.shutdown().unwrap();
//! handle.shutdown().unwrap();
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod client;
pub mod codec;
mod dispatch;
pub mod engine;
pub mod event;
pub mod follower;
pub mod loadgen;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientBuilder, RequestOptions};
pub use codec::{Codec, CodecKind};
pub use engine::{
    BackendKind, Engine, EngineSpec, FollowerStatus, SnapshotFile, WalConfig, SNAPSHOT_VERSION,
};
pub use follower::{start_follower, FollowerHandle, FollowerSpec};
pub use loadgen::{run_load, LoadReport, LoadSpec};
pub use protocol::{
    Freshness, ReplicationRecord, Request, Response, TenantConfig, Window, WindowSpec,
    DEFAULT_NAMESPACE,
};
pub use server::{Server, ServerHandle};

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::client::{Client, ClientBuilder, RequestOptions};
    pub use crate::codec::CodecKind;
    pub use crate::engine::{BackendKind, Engine, EngineSpec, WalConfig};
    pub use crate::loadgen::{run_load, LoadReport, LoadSpec};
    pub use crate::protocol::{
        ErrorCode, Freshness, Request, Response, TenantConfig, Window, WindowSpec,
        DEFAULT_NAMESPACE,
    };
    pub use crate::server::{Server, ServerHandle};
    pub use skm_stream::{PublishedClustering, StreamConfig, StreamStats, WindowInfo};
}
