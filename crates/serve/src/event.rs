//! The evented non-blocking server core.
//!
//! Instead of one OS thread per connection (the blocking core in
//! [`crate::server`], kept as the baseline tier), a small fixed set of
//! event loops multiplexes every connection over [`minipoll`] readiness
//! polling:
//!
//! * **Loop 0** owns the non-blocking listener. Accepted connections are
//!   distributed round-robin across all loops (itself included) over an
//!   mpsc handoff channel plus a [`minipoll::Waker`] nudge.
//! * **Every loop** owns its connections outright — a token-indexed map of
//!   `Conn` state machines, each holding a read buffer, a write buffer
//!   and its negotiated codec. No locks are shared between loops; the only
//!   cross-loop traffic is the connection handoff and the shutdown
//!   broadcast.
//!
//! Per-connection behaviour:
//!
//! * **Pipelining** — every complete frame in the read buffer is decoded,
//!   dispatched and answered in order before the loop moves on; a client
//!   may write any number of requests without reading a single response.
//! * **Backpressure** — responses queue in the write buffer; past
//!   `HIGH_WATER` (1 MiB) the connection stops reading (and stops processing
//!   frames) until a flush drains it below `LOW_WATER` (512 KiB), so a client that
//!   writes fast and reads slowly stalls itself, not the server.
//! * **Codec negotiation** — a connection speaks newline-JSON until a
//!   `Hello{binary}` first frame switches it (the `Hello` response itself
//!   travels in the old codec; see `docs/PROTOCOL.md` §Handshake). No
//!   handshake ⇒ JSON forever: pre-1.3 clients connect unmodified.
//! * **Shutdown drain** — when the shutdown flag rises (a `Shutdown`
//!   request on any loop, or [`crate::ServerHandle::shutdown`]), every loop
//!   wakes, answers the pipelined requests already buffered on each of its
//!   connections, flushes write buffers with a bounded blocking write, and
//!   exits. In-flight work is answered, never dropped — the evented
//!   restatement of the PR 4 idle-connection deadlock fix.

use crate::codec::{codec, decode_replication_record, Codec, CodecKind};
use crate::dispatch::{dispatch, resolve_namespace};
use crate::engine::Engine;
use crate::protocol::{error_response, ErrorCode, Request, Response, PROTOCOL_REVISION};
use minipoll::{Events, Interest, Poll, Token, Waker};
use std::collections::{HashMap, VecDeque};
use std::io::{self, IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

/// Write-buffer level at which a connection stops reading new requests.
pub(crate) const HIGH_WATER: usize = 1024 * 1024;
/// Write-buffer level at which a paused connection resumes reading.
pub(crate) const LOW_WATER: usize = 512 * 1024;
/// Bytes pulled from a socket per `read` call.
const READ_CHUNK: usize = 64 * 1024;
/// Read-buffer level past which a fill pauses to process frames before
/// pulling more (level-triggered polling re-reports the remainder). Only
/// applied when the buffer already holds a processable frame; a single
/// larger frame keeps reading up to [`crate::codec::MAX_FRAME_BYTES`] (see [`fill`]).
const PROCESS_THRESHOLD: usize = 256 * 1024;
/// Bound on the blocking flush of a connection during shutdown drain: a
/// peer that stops reading cannot hold the server open forever.
const DRAIN_WRITE_TIMEOUT: Duration = Duration::from_secs(5);
/// Most frames gathered into one `write_vectored` call (well under every
/// platform's IOV_MAX).
const MAX_IOVEC: usize = 64;
/// Poll timeout when the engine runs with a WAL: each expiry group-commits
/// buffered appends (bounding commit latency) and pushes newly durable
/// records to replication subscribers (bounding follower lag).
const WAL_TICK: Duration = Duration::from_millis(10);
/// Poll timeout when only idle eviction needs a clock.
const IDLE_TICK: Duration = Duration::from_millis(500);
/// Minimum spacing between idle-eviction sweeps (loop 0 only).
const IDLE_SWEEP: Duration = Duration::from_secs(1);

const WAKER_TOKEN: Token = Token(0);
const LISTENER_TOKEN: Token = Token(1);
const FIRST_CONN_TOKEN: usize = 2;

/// Number of event loops: one per core up to a small cap (loops are
/// I/O-bound; the engine's own shard threads do the compute).
fn loop_count() -> usize {
    thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(8)
}

/// A connection converted into a replication subscription by a
/// `Replicate` request: the event loop pushes durable WAL records to it on
/// every tick instead of waiting for requests.
struct Replication {
    /// The tenant being tailed.
    namespace: String,
    /// Next log sequence number to send.
    next_seq: u64,
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    codec: &'static dyn Codec,
    read_buf: Vec<u8>,
    /// Outbound frames awaiting the socket, oldest first; flushes gather
    /// them into a single vectored write.
    write_queue: VecDeque<Vec<u8>>,
    /// Total bytes across `write_queue`.
    queued_bytes: usize,
    /// Bytes of the front frame already written to the socket.
    write_pos: usize,
    /// True once the first frame has been processed; a `Hello` is only
    /// honoured before this.
    handshaken: bool,
    /// Reading paused by backpressure (write queue above [`HIGH_WATER`]).
    paused: bool,
    /// Answer what is queued, then close (fatal framing error or `Bye`).
    closing: bool,
    /// The peer half-closed or hung up; no more requests will arrive.
    peer_closed: bool,
    /// Interest currently registered with the poller.
    interest: Interest,
    /// `Some` once this connection subscribed to a replication stream.
    replication: Option<Replication>,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            codec: codec(CodecKind::Json),
            read_buf: Vec::new(),
            write_queue: VecDeque::new(),
            queued_bytes: 0,
            write_pos: 0,
            handshaken: false,
            paused: false,
            closing: false,
            peer_closed: false,
            interest: Interest::READABLE,
            replication: None,
        }
    }

    /// Bytes queued for the peer but not yet written.
    fn pending(&self) -> usize {
        self.queued_bytes - self.write_pos
    }

    /// Queues one already-encoded frame for the peer.
    fn queue_frame(&mut self, frame: Vec<u8>) {
        if !frame.is_empty() {
            self.queued_bytes += frame.len();
            self.write_queue.push_back(frame);
        }
    }

    /// Encodes `response` in this connection's codec and queues it.
    fn queue_response(&mut self, response: &Response) {
        let mut frame = Vec::new();
        self.codec.encode_response(response, &mut frame);
        self.queue_frame(frame);
    }

    /// Accounts `n` bytes accepted by the socket, popping frames written
    /// through.
    fn consume_written(&mut self, mut n: usize) {
        while n > 0 {
            let Some(front) = self.write_queue.front() else {
                return;
            };
            let remaining = front.len() - self.write_pos;
            if n >= remaining {
                n -= remaining;
                self.queued_bytes -= front.len();
                self.write_pos = 0;
                self.write_queue.pop_front();
            } else {
                self.write_pos += n;
                return;
            }
        }
    }
}

/// Pulls whatever the socket has ready into the read buffer (bounded by
/// backpressure and [`PROCESS_THRESHOLD`]). Returns `false` when the
/// connection died mid-read.
///
/// The [`PROCESS_THRESHOLD`] pause is a fairness yield, not a hard cap: it
/// only applies once the buffer holds something `process_frames` can act
/// on (a complete frame, or a framing error to report). A single frame
/// larger than the threshold must keep reading — stopping would stall the
/// connection forever, with a level-triggered poller spinning on the
/// readable socket (the high-dim hostile suite hits exactly this: one
/// JSON `IngestBatch` line at d = 256 is ~320 KiB). Growth stays bounded
/// by [`crate::codec::MAX_FRAME_BYTES`], at which point the codec reports the typed
/// framing error instead of `Ok(None)`.
fn fill(conn: &mut Conn) -> bool {
    let mut chunk = vec![0u8; READ_CHUNK];
    loop {
        if conn.pending() >= HIGH_WATER {
            return true;
        }
        if conn.read_buf.len() >= PROCESS_THRESHOLD
            && !matches!(conn.codec.next_frame(&conn.read_buf), Ok(None))
        {
            return true;
        }
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.peer_closed = true;
                return true;
            }
            Ok(n) => match chunk.get(..n) {
                Some(filled) => conn.read_buf.extend_from_slice(filled),
                None => return false,
            },
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
}

/// Decodes, dispatches and answers every complete frame in the read buffer,
/// in order (request pipelining). `drain` ignores the high-water pause so a
/// shutting-down loop can answer everything it already received.
fn process_frames(
    conn: &mut Conn,
    engine: &Engine,
    snapshot_dir: Option<&Path>,
    shutdown: &AtomicBool,
    all_wakers: &[Waker],
    drain: bool,
) {
    loop {
        if conn.closing || (!drain && conn.pending() >= HIGH_WATER) {
            return;
        }
        let frame = match conn.codec.next_frame(&conn.read_buf) {
            Ok(Some(frame)) => frame,
            Ok(None) => return,
            Err(frame_error) => {
                // The stream cannot be resynchronized: answer the typed
                // error, then close once it is flushed.
                let response = Response::Error {
                    code: frame_error.code,
                    message: frame_error.message,
                };
                conn.queue_response(&response);
                conn.closing = true;
                return;
            }
        };
        // The codec contract bounds frames by the buffer it was shown; a
        // codec that breaks it loses the connection rather than the server.
        let Some(payload) = conn
            .read_buf
            .get(frame.start..frame.end)
            .map(<[u8]>::to_vec)
        else {
            conn.closing = true;
            return;
        };
        conn.read_buf.drain(..frame.consumed);
        // Tolerate blank keep-alive lines on the JSON codec (parity with
        // the blocking core); they do not count as the first frame.
        if conn.codec.kind() == CodecKind::Json && payload.iter().all(u8::is_ascii_whitespace) {
            continue;
        }
        match conn.codec.decode_request(&payload) {
            Err(parse_error) => {
                conn.handshaken = true;
                let response = Response::Error {
                    code: ErrorCode::MalformedRequest,
                    message: parse_error,
                };
                conn.queue_response(&response);
            }
            Ok(request) => {
                handle_request(conn, request, engine, snapshot_dir, shutdown, all_wakers);
            }
        }
    }
}

/// Executes one request on a connection, queueing the response. Transport
/// concerns (`Hello`, `Shutdown`) are intercepted here; everything else
/// goes through the shared [`dispatch`].
fn handle_request(
    conn: &mut Conn,
    request: Request,
    engine: &Engine,
    snapshot_dir: Option<&Path>,
    shutdown: &AtomicBool,
    all_wakers: &[Waker],
) {
    let first_frame = !conn.handshaken;
    conn.handshaken = true;
    let response = match request {
        Request::Hello { codec: tag } if first_frame => match CodecKind::parse(&tag) {
            Some(kind) => {
                // The accept travels in the codec the client spoke it in;
                // the switch takes effect from the next frame.
                let response = Response::Hello {
                    codec: kind.as_str().to_string(),
                    revision: PROTOCOL_REVISION.to_string(),
                };
                conn.queue_response(&response);
                conn.codec = codec(kind);
                return;
            }
            None => Response::Error {
                code: ErrorCode::BadCodec,
                message: format!("unknown codec `{tag}` (expected `json` or `binary`)"),
            },
        },
        Request::Shutdown {} => {
            shutdown.store(true, Ordering::SeqCst);
            for waker in all_wakers {
                let _ = waker.wake();
            }
            conn.closing = true;
            Response::Bye {}
        }
        // A `Replicate` on a WAL-running server converts the connection
        // into a subscription (without one, `dispatch` answers the typed
        // refusal). A second `Replicate` on an already-subscribed
        // connection restarts the stream at the requested position.
        Request::Replicate {
            namespace,
            from_seq,
        } if engine.wal_enabled() => {
            subscribe(conn, engine, namespace.as_deref(), from_seq);
            return;
        }
        other => dispatch(other, engine, snapshot_dir),
    };
    conn.queue_response(&response);
}

/// Converts a connection into a replication subscription. Resumes from the
/// durable tail when `from_seq` is still available there; otherwise (or for
/// `from_seq` 0) bootstraps with a full `ReplicaSnapshot`. Either way the
/// first pushed frames are queued immediately; later records follow on
/// event-loop ticks.
fn subscribe(conn: &mut Conn, engine: &Engine, namespace: Option<&str>, from_seq: u64) {
    let ns = match resolve_namespace(namespace) {
        Ok(ns) => ns.to_string(),
        Err(response) => {
            conn.queue_response(&response);
            return;
        }
    };
    if from_seq > 0 {
        match engine.wal_tail_in(&ns, from_seq) {
            // The position is still in the durable tail: resume without a
            // snapshot (the records themselves go out via `pump`).
            Ok((Some(_), _)) => {
                conn.replication = Some(Replication {
                    namespace: ns,
                    next_seq: from_seq,
                });
                pump_subscription(conn, engine);
                return;
            }
            // Compacted away: fall through to the snapshot bootstrap.
            Ok((None, _)) => {}
            Err(e) => {
                conn.queue_response(&error_response(&e));
                conn.closing = true;
                return;
            }
        }
    }
    if queue_replica_snapshot(conn, engine, &ns) {
        pump_subscription(conn, engine);
    }
}

/// Queues a `ReplicaSnapshot` bootstrap frame and (re)points the
/// subscription at the first record after it. Returns `false` when the
/// snapshot failed (the typed error is queued and the connection marked
/// closing).
fn queue_replica_snapshot(conn: &mut Conn, engine: &Engine, namespace: &str) -> bool {
    match engine.replica_snapshot_in(namespace) {
        Ok((seq, epoch, snapshot)) => {
            conn.queue_response(&Response::ReplicaSnapshot {
                seq,
                epoch,
                snapshot,
            });
            conn.replication = Some(Replication {
                namespace: namespace.to_string(),
                next_seq: seq + 1,
            });
            true
        }
        Err(e) => {
            conn.queue_response(&error_response(&e));
            conn.closing = true;
            false
        }
    }
}

/// Pushes every durable record the subscription has not seen yet, up to
/// the backpressure high-water mark (the rest goes out on later ticks).
/// When the subscription's position was compacted into a checkpoint, a
/// fresh `ReplicaSnapshot` re-bootstraps the follower in-stream. Returns
/// `false` when the connection must be dropped.
fn pump_subscription(conn: &mut Conn, engine: &Engine) -> bool {
    loop {
        if conn.closing || conn.pending() >= HIGH_WATER {
            return true;
        }
        let Some(rep) = &conn.replication else {
            return true;
        };
        let (namespace, next_seq) = (rep.namespace.clone(), rep.next_seq);
        match engine.wal_tail_in(&namespace, next_seq) {
            Ok((Some(records), primary_seq)) => {
                for (seq, payload) in records {
                    if conn.pending() >= HIGH_WATER {
                        return true;
                    }
                    // The in-memory tail holds exactly what was appended;
                    // an undecodable record means this process is sick —
                    // drop the subscriber rather than feed it garbage.
                    let Ok(record) = decode_replication_record(&payload) else {
                        return false;
                    };
                    conn.queue_response(&Response::Replicate {
                        seq,
                        primary_seq,
                        record,
                    });
                    if let Some(rep) = &mut conn.replication {
                        rep.next_seq = seq + 1;
                    }
                }
                return true;
            }
            // Compacted past the subscription: re-bootstrap. The loop then
            // tails from the fresh snapshot's position.
            Ok((None, _)) => {
                if !queue_replica_snapshot(conn, engine, &namespace) {
                    return true; // error queued; closing
                }
            }
            Err(e) => {
                conn.queue_response(&error_response(&e));
                conn.closing = true;
                return true;
            }
        }
    }
}

/// Writes as much of the queued output as the socket accepts, gathering up
/// to [`MAX_IOVEC`] whole frames per syscall with a vectored write (a
/// pipelining client's many small responses go out in one `writev` instead
/// of one `write` each). Returns `false` when the connection died
/// mid-write.
fn flush(conn: &mut Conn) -> bool {
    while conn.pending() > 0 {
        let mut slices: Vec<IoSlice<'_>> =
            Vec::with_capacity(conn.write_queue.len().min(MAX_IOVEC));
        for (index, frame) in conn.write_queue.iter().take(MAX_IOVEC).enumerate() {
            let bytes = if index == 0 {
                frame.get(conn.write_pos..).unwrap_or(&[])
            } else {
                frame.as_slice()
            };
            if !bytes.is_empty() {
                slices.push(IoSlice::new(bytes));
            }
        }
        if slices.is_empty() {
            return false; // accounting broke; drop the connection, not the server
        }
        match conn.stream.write_vectored(&slices) {
            Ok(0) => return false,
            Ok(n) => conn.consume_written(n),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    true
}

/// One event loop: a poller, its connections, and (on loop 0) the
/// listener.
struct EventLoop {
    index: usize,
    poll: Poll,
    engine: Arc<Engine>,
    snapshot_dir: Option<PathBuf>,
    shutdown: Arc<AtomicBool>,
    /// This loop's own waker (drained when its token fires).
    waker: Waker,
    /// Every loop's waker, for handoff nudges and the shutdown broadcast.
    all_wakers: Vec<Waker>,
    /// Connections handed off by loop 0.
    incoming: mpsc::Receiver<TcpStream>,
    /// Handoff senders, indexed by loop (loop 0 only uses these).
    peers: Vec<mpsc::Sender<TcpStream>>,
    next_peer: usize,
    listener: Option<TcpListener>,
    conns: HashMap<usize, Conn>,
    next_token: usize,
    /// Page out tenants idle longer than this (loop 0 sweeps; `None`
    /// disables).
    idle_evict: Option<Duration>,
    /// When loop 0 last swept for idle tenants.
    last_idle_sweep: Instant,
}

impl EventLoop {
    /// The poll timeout. A WAL needs a fast tick (group-commit flushing
    /// and replication pushes); idle eviction alone needs only a coarse
    /// clock; otherwise the loop parks until readiness.
    fn tick_interval(&self) -> Option<Duration> {
        if self.engine.wal_enabled() {
            Some(WAL_TICK)
        } else if self.idle_evict.is_some() {
            Some(IDLE_TICK)
        } else {
            None
        }
    }

    fn run(mut self) -> io::Result<()> {
        let mut events = Events::with_capacity(256);
        let mut ready: Vec<(usize, bool, bool)> = Vec::new();
        let tick = self.tick_interval();
        loop {
            self.poll.poll(&mut events, tick)?;
            ready.clear();
            let mut accept = false;
            for event in &events {
                match event.token() {
                    WAKER_TOKEN => self.waker.drain(),
                    LISTENER_TOKEN if self.listener.is_some() => accept = true,
                    Token(t) => ready.push((t, event.is_readable(), event.is_writable())),
                }
            }
            if accept {
                self.accept_ready();
            }
            for (t, readable, writable) in ready.drain(..) {
                self.conn_ready(t, readable, writable);
            }
            // Adopt connections handed off by loop 0 (the waker nudge got
            // us here; a nudge with an empty channel is harmless).
            while let Ok(stream) = self.incoming.try_recv() {
                self.adopt(stream);
            }
            if tick.is_some() {
                self.tick();
            }
            if self.shutdown.load(Ordering::SeqCst) {
                // Re-broadcast (idempotent) so sibling loops parked in
                // poll() observe the flag no matter which loop raised it.
                for waker in &self.all_wakers {
                    let _ = waker.wake();
                }
                self.drain_all();
                return Ok(());
            }
        }
    }

    /// Periodic work between readiness events: the group-commit flusher
    /// (bounds durability latency of buffered appends even with no
    /// follow-up traffic), replication pushes, and (loop 0) idle-tenant
    /// sweeps.
    fn tick(&mut self) {
        if self.engine.wal_enabled() {
            // A sync failure surfaces as a typed error on the next append;
            // the flusher itself has no client to answer.
            let _ = self.engine.wal_sync_all();
            self.pump_replication();
        }
        if let Some(max_idle) = self.idle_evict {
            if self.listener.is_some() && self.last_idle_sweep.elapsed() >= IDLE_SWEEP {
                self.last_idle_sweep = Instant::now();
                let _ = self.engine.evict_idle(max_idle);
            }
        }
    }

    /// Advances every replication subscription this loop owns.
    fn pump_replication(&mut self) {
        let tokens: Vec<usize> = self
            .conns
            .iter()
            .filter(|(_, conn)| conn.replication.is_some())
            .map(|(token, _)| *token)
            .collect();
        for token in tokens {
            let Some(conn) = self.conns.get_mut(&token) else {
                continue;
            };
            if !pump_subscription(conn, &self.engine) || !flush(conn) {
                self.drop_conn(token);
                continue;
            }
            self.update_interest(token);
        }
    }

    /// Accepts until the listener would block, distributing round-robin.
    /// Only the listener loop is ever woken with `LISTENER_TOKEN`; on any
    /// other loop this is a no-op.
    fn accept_ready(&mut self) {
        let Some(listener) = self.listener.take() else {
            return;
        };
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if self.shutdown.load(Ordering::SeqCst) {
                        continue; // drop connections racing shutdown
                    }
                    let _ = stream.set_nodelay(true);
                    let target = self.next_peer;
                    self.next_peer = (self.next_peer + 1) % self.all_wakers.len();
                    if target == self.index {
                        self.adopt(stream);
                    } else if let (Some(peer), Some(waker)) =
                        (self.peers.get(target), self.all_wakers.get(target))
                    {
                        if peer.send(stream).is_ok() {
                            let _ = waker.wake();
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // Transient accept failures (peer vanished between SYN and
                // accept, fd pressure) must not kill the loop; back off so
                // a persistent failure cannot busy-spin it.
                Err(_) => {
                    thread::sleep(Duration::from_millis(10));
                    break;
                }
            }
        }
        self.listener = Some(listener);
    }

    /// Takes ownership of a new connection: non-blocking, registered
    /// readable, JSON until a handshake says otherwise.
    fn adopt(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let token = self.next_token;
        self.next_token += 1;
        let conn = Conn::new(stream);
        if self
            .poll
            .register(&conn.stream, Token(token), conn.interest)
            .is_err()
        {
            return;
        }
        self.conns.insert(token, conn);
    }

    /// Advances one connection's state machine on a readiness event.
    fn conn_ready(&mut self, token: usize, readable: bool, writable: bool) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return; // stale event for a connection dropped this iteration
        };
        let mut alive = true;
        if writable {
            alive = flush(conn);
        }
        if alive && readable && !conn.paused {
            alive = fill(conn);
        }
        if alive {
            process_frames(
                conn,
                &self.engine,
                self.snapshot_dir.as_deref(),
                &self.shutdown,
                &self.all_wakers,
                false,
            );
            alive = flush(conn);
        }
        if alive {
            // Backpressure hysteresis: pause past HIGH_WATER, resume at or
            // below LOW_WATER.
            if conn.pending() >= HIGH_WATER {
                conn.paused = true;
            } else if conn.paused && conn.pending() <= LOW_WATER {
                conn.paused = false;
            }
        }
        if !alive {
            self.drop_conn(token);
            return;
        }
        self.update_interest(token);
    }

    /// Re-registers the connection for exactly the readiness it can act
    /// on, or closes it when there is nothing left to do.
    fn update_interest(&mut self, token: usize) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let want_write = conn.pending() > 0;
        let want_read = !conn.closing && !conn.peer_closed && !conn.paused;
        let desired = match (want_read, want_write) {
            (true, true) => Interest::READABLE | Interest::WRITABLE,
            (true, false) => Interest::READABLE,
            (false, true) => Interest::WRITABLE,
            // Nothing to send and no more requests can arrive (closing or
            // peer gone): the connection is finished.
            (false, false) => {
                self.drop_conn(token);
                return;
            }
        };
        if desired != conn.interest
            && self
                .poll
                .reregister(&conn.stream, Token(token), desired)
                .is_ok()
        {
            conn.interest = desired;
        }
    }

    fn drop_conn(&mut self, token: usize) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poll.deregister(&conn.stream);
        }
    }

    /// Shutdown drain: answer every pipelined request already received,
    /// flush every write buffer (bounded blocking writes), close.
    fn drain_all(&mut self) {
        let tokens: Vec<usize> = self.conns.keys().copied().collect();
        for token in tokens {
            let Some(mut conn) = self.conns.remove(&token) else {
                continue;
            };
            let _ = self.poll.deregister(&conn.stream);
            // Pull whatever already arrived (non-blocking), then answer it.
            if !fill(&mut conn) {
                continue;
            }
            process_frames(
                &mut conn,
                &self.engine,
                self.snapshot_dir.as_deref(),
                &self.shutdown,
                &self.all_wakers,
                true,
            );
            if conn.pending() > 0
                && conn.stream.set_nonblocking(false).is_ok()
                && conn
                    .stream
                    .set_write_timeout(Some(DRAIN_WRITE_TIMEOUT))
                    .is_ok()
            {
                let mut first = true;
                for frame in &conn.write_queue {
                    let bytes = if first {
                        frame.get(conn.write_pos..).unwrap_or(&[])
                    } else {
                        frame.as_slice()
                    };
                    first = false;
                    if conn.stream.write_all(bytes).is_err() {
                        break;
                    }
                }
                let _ = conn.stream.flush();
            }
        }
    }
}

/// Runs the evented core on the calling thread (plus [`loop_count`]` - 1`
/// worker loops) until shutdown; all loops are joined before returning.
pub(crate) fn run_evented(
    listener: TcpListener,
    engine: Arc<Engine>,
    snapshot_dir: Option<PathBuf>,
    shutdown: Arc<AtomicBool>,
    idle_evict: Option<Duration>,
) -> io::Result<()> {
    let n = loop_count();
    let mut polls = Vec::with_capacity(n);
    for _ in 0..n {
        let poll = Poll::new()?;
        let waker = poll.waker(WAKER_TOKEN)?;
        polls.push((poll, waker));
    }
    let all_wakers: Vec<Waker> = polls.iter().map(|(_, w)| w.clone()).collect();
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = mpsc::channel();
        senders.push(tx);
        receivers.push(rx);
    }
    listener.set_nonblocking(true)?;

    // Loop 0 owns the listener; every loop carries its own waker, so the
    // construction below never indexes into a shared vector.
    let mut listener = Some(listener);
    let mut loops = Vec::with_capacity(n);
    for (index, ((poll, waker), incoming)) in polls.into_iter().zip(receivers).enumerate() {
        let listener = listener.take();
        if let Some(l) = &listener {
            poll.register(l, LISTENER_TOKEN, Interest::READABLE)?;
        }
        loops.push(EventLoop {
            index,
            poll,
            engine: Arc::clone(&engine),
            snapshot_dir: snapshot_dir.clone(),
            shutdown: Arc::clone(&shutdown),
            waker,
            all_wakers: all_wakers.clone(),
            incoming,
            peers: senders.clone(),
            next_peer: 0,
            listener,
            conns: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
            idle_evict,
            last_idle_sweep: Instant::now(),
        });
    }

    // Loops 1..n run on worker threads; loop 0 (with the listener) runs on
    // the calling thread.
    let mut loops = loops.into_iter();
    let Some(loop0) = loops.next() else {
        return Ok(());
    };
    let mut workers = Vec::with_capacity(n.saturating_sub(1));
    for event_loop in loops {
        let index = event_loop.index;
        workers.push(
            thread::Builder::new()
                .name(format!("skm-serve-loop-{index}"))
                .spawn(move || event_loop.run())?,
        );
    }
    let result = loop0.run();
    for worker in workers {
        let _ = worker.join();
    }
    result
}
