//! Request execution, independent of the I/O layer.
//!
//! The evented core ([`crate::event`]) turns bytes into [`Request`]s and
//! [`Response`]s back into bytes; everything between — namespace
//! resolution, limits, engine calls, error mapping — lives here so the
//! transport and the semantics cannot drift apart. (When the blocking and
//! evented cores coexisted, this layer is what kept them identical.)

use crate::engine::{BackendKind, Engine, EngineSpec, FollowerStatus};
use crate::protocol::{
    error_response, is_bare_name, validate_namespace, ErrorCode, Freshness, Request, Response,
    TenantConfig, Window, WindowSpec, DEFAULT_NAMESPACE, MAX_BATCH_POINTS,
};
use skm_stream::StreamConfig;
use std::path::Path;

/// Resolves the optional wire-level namespace to the tenant it names,
/// rejecting path-escaping names before they can reach the engine (or name
/// an eviction file).
pub(crate) fn resolve_namespace(namespace: Option<&str>) -> Result<&str, Response> {
    let namespace = namespace.unwrap_or(DEFAULT_NAMESPACE);
    match validate_namespace(namespace) {
        Ok(()) => Ok(namespace),
        Err(message) => Err(Response::Error {
            code: ErrorCode::BadNamespace,
            message,
        }),
    }
}

/// Executes one parsed request against the engine.
///
/// `Hello` is a transport concern, handled by the connection layers before
/// dispatch; one reaching this function is by definition not the first
/// frame of its connection, which is a protocol error.
pub(crate) fn dispatch(request: Request, engine: &Engine, snapshot_dir: Option<&Path>) -> Response {
    if let Some(follower) = engine.follower() {
        if let Some(refusal) = refuse_on_follower(&request, follower) {
            return refusal;
        }
    }
    match request {
        Request::Hello { .. } => Response::Error {
            code: ErrorCode::BadCodec,
            message: "Hello must be the first frame on a connection".to_string(),
        },
        Request::Ingest { point, namespace } => {
            let ns = match resolve_namespace(namespace.as_deref()) {
                Ok(ns) => ns,
                Err(response) => return response,
            };
            match engine.ingest_in(ns, &point) {
                Ok(points_seen) => Response::Ingested {
                    accepted: 1,
                    points_seen,
                },
                Err(e) => error_response(&e),
            }
        }
        Request::IngestBatch { points, namespace } => {
            let ns = match resolve_namespace(namespace.as_deref()) {
                Ok(ns) => ns,
                Err(response) => return response,
            };
            if points.len() > MAX_BATCH_POINTS {
                return Response::Error {
                    code: ErrorCode::BatchTooLarge,
                    message: format!(
                        "batch of {} points exceeds the limit of {MAX_BATCH_POINTS}",
                        points.len()
                    ),
                };
            }
            let accepted = points.len() as u64;
            match engine.ingest_batch_in(ns, &points) {
                Ok(points_seen) => Response::Ingested {
                    accepted,
                    points_seen,
                },
                Err(e) => error_response(&e),
            }
        }
        Request::Query {
            freshness,
            namespace,
            window,
        } => {
            let ns = match resolve_namespace(namespace.as_deref()) {
                Ok(ns) => ns,
                Err(response) => return response,
            };
            let window = match validate_window(window.as_ref()) {
                Ok(window) => window,
                Err(response) => return response,
            };
            let result = match (freshness, window) {
                // A cached windowed read serves the published answer as-is
                // — whatever window it was computed for, reported honestly
                // in the response — exactly like a cached un-windowed read.
                (Freshness::Strict, Some(window)) => engine.query_window_in(ns, window),
                _ => engine.query_in(ns, freshness),
            };
            match result {
                Ok(published) => Response::Centers {
                    centers: published.centers.to_rows(),
                    points_seen: published.points_seen,
                    epoch: published.epoch,
                    cost: published.cost,
                    stats: published.stats,
                    window: published.window,
                },
                Err(e) => error_response(&e),
            }
        }
        Request::Stats {
            freshness,
            namespace,
            window,
        } => {
            let ns = match resolve_namespace(namespace.as_deref()) {
                Ok(ns) => ns,
                Err(response) => return response,
            };
            let window = match validate_window(window.as_ref()) {
                Ok(window) => window,
                Err(response) => return response,
            };
            match (freshness, window) {
                // Windowed strict stats: ordinary strict stats plus a pure
                // coverage probe over the stored summaries.
                (Freshness::Strict, Some(window)) => match engine.stats_window_in(ns, window) {
                    Ok((stats, info)) => Response::Stats {
                        stats,
                        window: Some(info),
                    },
                    Err(e) => error_response(&e),
                },
                // A cached windowed stats read has no summary structure to
                // probe without the mutex; it reports the published
                // answer's window, like a cached windowed query.
                _ => match engine.stats_in(ns, freshness) {
                    Ok(stats) => Response::Stats {
                        stats,
                        window: if window.is_some() {
                            engine
                                .published_in(ns)
                                .ok()
                                .flatten()
                                .and_then(|p| p.window)
                        } else {
                            None
                        },
                    },
                    Err(e) => error_response(&e),
                },
            }
        }
        Request::Configure { namespace, config } => {
            let ns = match resolve_namespace(namespace.as_deref()) {
                Ok(ns) => ns,
                Err(response) => return response,
            };
            configure_tenant(engine, ns, &config)
        }
        Request::Snapshot { file, namespace } => {
            let ns = match resolve_namespace(namespace.as_deref()) {
                Ok(ns) => ns,
                Err(response) => return response,
            };
            snapshot_to(engine, ns, snapshot_dir, &file)
        }
        Request::Shutdown {} => Response::Bye {},
        // Like `Hello`, `Replicate` is a transport concern: the evented
        // core converts the connection into a subscription before dispatch
        // when the engine has a WAL. One reaching this function means the
        // server cannot replicate.
        Request::Replicate { namespace, .. } => {
            if let Err(response) = resolve_namespace(namespace.as_deref()) {
                return response;
            }
            Response::Error {
                code: ErrorCode::ReplicationLag,
                message: "replication requires a write-ahead log \
                          (start the server with --wal-dir)"
                    .to_string(),
            }
        }
    }
}

/// Validates an optional wire window spec, mapping violations to the typed
/// [`ErrorCode::BadWindow`] response. `None` (the pre-1.5 shape) stays
/// `None`: the whole stream.
fn validate_window(spec: Option<&WindowSpec>) -> Result<Option<Window>, Response> {
    match spec {
        None => Ok(None),
        Some(spec) => match spec.validate() {
            Ok(window) => Ok(Some(window)),
            Err(message) => Err(Response::Error {
                code: ErrorCode::BadWindow,
                message,
            }),
        },
    }
}

/// What a follower replica refuses: every write (state arrives only from
/// the primary's stream), every strict read (strict reads recompute —
/// they consume RNG and publish epochs, which only the primary may do),
/// and cached reads while the replication lag is out of bounds. Cached
/// reads inside the bound, `Snapshot` (a pure read of local state) and
/// `Shutdown` pass through.
fn refuse_on_follower(request: &Request, follower: &FollowerStatus) -> Option<Response> {
    let freshness = match request {
        Request::Ingest { .. } | Request::IngestBatch { .. } | Request::Configure { .. } => {
            return Some(Response::Error {
                code: ErrorCode::ReplicationLag,
                message: "follower replicas are read-only; send writes to the primary".to_string(),
            });
        }
        Request::Query { freshness, .. } | Request::Stats { freshness, .. } => *freshness,
        _ => return None,
    };
    if freshness == Freshness::Strict {
        return Some(Response::Error {
            code: ErrorCode::ReplicationLag,
            message: "strict reads recompute state and only run on the primary; \
                      use cached freshness on a follower"
                .to_string(),
        });
    }
    follower.block_reason().map(|message| Response::Error {
        code: ErrorCode::ReplicationLag,
        message,
    })
}

/// Builds a per-tenant spec from the engine's default spec plus the
/// request's overrides, and creates the tenant.
fn configure_tenant(engine: &Engine, namespace: &str, config: &TenantConfig) -> Response {
    let mut spec: EngineSpec = *engine.default_spec();
    if let Some(tag) = &config.backend {
        match BackendKind::parse(tag) {
            Some(kind) => spec.kind = kind,
            None => {
                return Response::Error {
                    code: ErrorCode::MalformedRequest,
                    message: format!(
                        "unknown backend `{tag}` (expected sharded-cc, cc, ct or rcc)"
                    ),
                }
            }
        }
    }
    if let Some(k) = config.k {
        // `StreamConfig::new` panics on k == 0; answer with a typed error
        // instead.
        if k == 0 {
            return Response::Error {
                code: ErrorCode::MalformedRequest,
                message: "k must be positive".to_string(),
            };
        }
        // Re-derive the k-dependent defaults (bucket size) for the new k
        // instead of keeping the default spec's.
        let fresh = StreamConfig::new(k);
        spec.stream.k = fresh.k;
        spec.stream.bucket_size = fresh.bucket_size;
    }
    if let Some(shards) = config.shards {
        spec.shards = shards;
    }
    if let Some(batch) = config.batch {
        spec.batch = batch;
    }
    if let Some(seed) = config.seed {
        spec.seed = seed;
    }
    match engine.configure(namespace, &spec) {
        Ok((kind, shards)) => Response::Configured {
            namespace: namespace.to_string(),
            backend: kind.tag().to_string(),
            k: spec.stream.k as u64,
            shards: shards as u64,
        },
        Err(e) => error_response(&e),
    }
}

/// Writes one tenant's snapshot to `file` inside `snapshot_dir`. The file
/// name must be bare (no separators, no `..`): the request names a file,
/// the server owns the directory.
fn snapshot_to(
    engine: &Engine,
    namespace: &str,
    snapshot_dir: Option<&Path>,
    file: &str,
) -> Response {
    let Some(dir) = snapshot_dir else {
        return Response::Error {
            code: ErrorCode::SnapshotUnavailable,
            message: "server was started without a snapshot directory".to_string(),
        };
    };
    if !is_bare_name(file) {
        return Response::Error {
            code: ErrorCode::SnapshotUnavailable,
            message: format!("snapshot file name `{file}` must be a bare file name"),
        };
    }
    let json = match engine.snapshot_json_in(namespace) {
        Ok(json) => json,
        Err(e) => return error_response(&e),
    };
    let path = dir.join(file);
    if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, &json)) {
        return Response::Error {
            code: ErrorCode::Internal,
            message: format!("cannot write snapshot `{}`: {e}", path.display()),
        };
    }
    Response::Snapshotted {
        file: path.display().to_string(),
        bytes: json.len() as u64,
    }
}
