//! Follower replicas: tail a WAL-enabled primary's replication stream and
//! serve cached reads from a local, continuously updated copy of one
//! tenant.
//!
//! A follower is an ordinary [`Engine`] flagged read-only with
//! [`Engine::with_follower`] and fed by a background tailing thread
//! ([`start_follower`]): the thread connects to the primary, sends
//! `Replicate{namespace, from_seq}`, bootstraps from the
//! `ReplicaSnapshot` frame, then applies every pushed `Replicate` record
//! through the exact code paths the primary ran — so the follower's state
//! (centers, RNG positions, published epochs) stays bit-identical to the
//! primary's applied prefix. The serving side (dispatch) refuses writes
//! and strict reads with [`crate::protocol::ErrorCode::ReplicationLag`],
//! and serves cached reads only while the lag stays inside the configured
//! bound.
//!
//! The primary pushes records as they become durable (group commit +
//! 10 ms pump tick), so a healthy follower's lag is bounded by the
//! primary's fsync interval plus one pump tick plus the network. If the
//! connection drops, the thread reconnects and resumes from its applied
//! sequence; a primary that has compacted past that point answers with a
//! fresh snapshot instead.

use crate::client::Client;
use crate::codec::CodecKind;
use crate::engine::Engine;
use crate::protocol::{Response, DEFAULT_NAMESPACE};
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// How a follower tails its primary. Build with [`FollowerSpec::new`]
/// plus the `with_*` setters.
#[derive(Debug, Clone)]
pub struct FollowerSpec {
    /// Primary address (`host:port`).
    pub primary: String,
    /// Tenant stream to follow; `None` means [`DEFAULT_NAMESPACE`].
    pub namespace: Option<String>,
    /// Wire codec of the tailing connection.
    pub codec: CodecKind,
    /// Backoff before reconnecting after a lost or refused connection.
    pub retry: Duration,
}

impl FollowerSpec {
    /// A spec with the defaults: default namespace, JSON codec, 500 ms
    /// reconnect backoff.
    #[must_use]
    pub fn new(primary: impl Into<String>) -> Self {
        FollowerSpec {
            primary: primary.into(),
            namespace: None,
            codec: CodecKind::Json,
            retry: Duration::from_millis(500),
        }
    }

    /// Follows `namespace` instead of the default tenant.
    #[must_use]
    pub fn with_namespace(mut self, namespace: impl Into<String>) -> Self {
        self.namespace = Some(namespace.into());
        self
    }

    /// Sets the wire codec of the tailing connection.
    #[must_use]
    pub fn with_codec(mut self, codec: CodecKind) -> Self {
        self.codec = codec;
        self
    }

    /// Sets the reconnect backoff.
    #[must_use]
    pub fn with_retry(mut self, retry: Duration) -> Self {
        self.retry = retry;
        self
    }
}

/// Control handle for a running tailing thread; dropping it without
/// calling [`FollowerHandle::stop`] leaves the thread running.
#[derive(Debug)]
pub struct FollowerHandle {
    stop: Arc<AtomicBool>,
    thread: thread::JoinHandle<()>,
}

impl FollowerHandle {
    /// Asks the tailing thread to exit and joins it. The thread polls the
    /// flag on a short read timeout, so this returns promptly even on a
    /// quiet stream.
    pub fn stop(self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.thread.join();
    }
}

/// Spawns the tailing thread feeding `engine` from `spec.primary` and
/// returns its control handle. The engine must be in follower mode
/// ([`Engine::with_follower`]) and must not carry a WAL of its own (the
/// primary's log is the durable copy; a follower restarts from a fresh
/// snapshot).
///
/// The thread retries forever on connection loss or refusal — the
/// follower serves (possibly lag-refusing) reads throughout — and exits
/// only through [`FollowerHandle::stop`].
///
/// # Errors
/// Fails fast when the engine is not in follower mode or has a WAL
/// attached; connection errors are retried, not returned.
pub fn start_follower(engine: Arc<Engine>, spec: FollowerSpec) -> io::Result<FollowerHandle> {
    if engine.follower().is_none() {
        return Err(io::Error::other(
            "engine is not in follower mode (build it with with_follower)",
        ));
    }
    if engine.wal_enabled() {
        return Err(io::Error::other(
            "a follower engine must not have its own write-ahead log",
        ));
    }
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let thread = thread::Builder::new()
        .name("skm-follower-tail".to_string())
        .spawn(move || tail_loop(&engine, &spec, &stop_flag))?;
    Ok(FollowerHandle { stop, thread })
}

/// Reconnect-forever wrapper around [`tail_once`].
fn tail_loop(engine: &Engine, spec: &FollowerSpec, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        match tail_once(engine, spec, stop) {
            // `tail_once` only returns Ok when the stop flag is set.
            Ok(()) => break,
            Err(e) => {
                if let Some(follower) = engine.follower() {
                    follower.set_live(false);
                }
                eprintln!("skm-serve follower: {e}; retrying");
                sleep_interruptibly(spec.retry, stop);
            }
        }
    }
}

/// Sleeps up to `total`, waking early when `stop` flips.
fn sleep_interruptibly(total: Duration, stop: &AtomicBool) {
    let step = Duration::from_millis(50);
    let mut waited = Duration::ZERO;
    while waited < total && !stop.load(Ordering::SeqCst) {
        let nap = step.min(total - waited);
        thread::sleep(nap);
        waited += nap;
    }
}

/// One connection's worth of tailing: subscribe (resuming from the last
/// applied sequence), then apply frames until the stream breaks or the
/// stop flag is set.
fn tail_once(engine: &Engine, spec: &FollowerSpec, stop: &AtomicBool) -> io::Result<()> {
    let follower = engine
        .follower()
        .ok_or_else(|| io::Error::other("follower mode was disabled"))?;
    let mut builder = Client::builder(spec.primary.as_str())
        .codec(spec.codec)
        .connect_timeout(Duration::from_secs(2))
        // The read timeout doubles as the stop-flag poll interval.
        .io_timeout(Duration::from_millis(200));
    if let Some(namespace) = &spec.namespace {
        builder = builder.namespace(namespace.clone());
    }
    let mut client = builder.connect()?;
    let namespace = spec.namespace.as_deref().unwrap_or(DEFAULT_NAMESPACE);
    // Resume right after the last applied record; the primary falls back
    // to a fresh snapshot when that position is already compacted. Before
    // the first sync, 0 requests an unconditional snapshot.
    let from_seq = if follower.synced() {
        follower.applied_seq().saturating_add(1)
    } else {
        0
    };
    client.replicate(from_seq)?;
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let frame = match client.recv() {
            Ok(frame) => frame,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        };
        match frame {
            Response::ReplicaSnapshot { seq, snapshot, .. } => {
                engine
                    .install_replica_snapshot_in(namespace, &snapshot)
                    .map_err(|e| io::Error::other(format!("cannot install snapshot: {e}")))?;
                follower.note_snapshot(seq);
            }
            Response::Replicate {
                seq,
                primary_seq,
                record,
            } => {
                engine
                    .apply_replication_record_in(namespace, &record)
                    .map_err(|e| io::Error::other(format!("cannot apply record {seq}: {e}")))?;
                follower.note_record(seq, primary_seq);
            }
            Response::Error { code, message } => {
                return Err(io::Error::other(format!(
                    "primary refused replication ({code:?}): {message}"
                )));
            }
            other => {
                return Err(io::Error::other(format!(
                    "unexpected replication frame {other:?}"
                )));
            }
        }
    }
}
