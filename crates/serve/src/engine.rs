//! The [`Engine`] facade: a concurrent map of per-tenant streams, each one
//! a clusterer behind its own mutex for writes and an atomically swapped
//! published snapshot for reads, plus snapshot/restore and LRU eviction.
//!
//! The engine is what connection handler threads talk to. Each **tenant**
//! (wire-level `namespace`) owns an independent stream: either a
//! [`ShardedStream`] over per-shard CC clusterers (the default — ingestion
//! parallelism comes from the shard worker threads, so the coordinator
//! mutex is held only for cheap buffering and channel sends) or one of the
//! single-threaded clusterers (CC, CT, RCC) for small deployments. Tenants
//! are created lazily on first touch from the engine's default spec, or
//! explicitly with a custom spec via [`Engine::configure`]; requests that
//! carry no namespace run against [`DEFAULT_NAMESPACE`], which exists from
//! construction — so an engine that never sees a namespace behaves exactly
//! like the pre-tenancy single-stream engine.
//!
//! ## The two read paths
//!
//! Every **strict** query runs under its tenant's ingest mutex, drains
//! in-flight batches, recomputes the answer and republishes it (with a
//! fresh epoch) through that tenant's [`PublishSlot`]. A **cached** query
//! never touches the mutex: it loads the currently published
//! [`PublishedClustering`] — one `Arc` clone — so a slow coreset merge or a
//! burst of ingest batches on *any* tenant cannot stall it. Cached answers
//! are stale (up to the time since the last publish) but never torn:
//! epoch, centers, cost and `points_seen` all come from one immutable
//! value.
//!
//! ## Eviction
//!
//! The engine holds at most `max_resident` tenants in memory. When a new
//! tenant would exceed the cap, the least-recently-touched resident is
//! paged out: its complete state is snapshotted to
//! `<dir>/tenant-<namespace>.json` (the same versioned envelope as an
//! explicit snapshot) and it is dropped from the map. The next request
//! that names the evicted tenant transparently restores it from that file
//! and continues the stream **bit-identically** — evict → restore →
//! continue equals never having evicted, including the republished epoch.
//! Without an eviction directory the cap is a hard limit
//! (`tenant_limit`).
//!
//! Snapshots serialize the complete backend state — configuration, coreset
//! tree levels, caches, partially filled buckets and RNG positions — into a
//! versioned JSON envelope ([`SnapshotFile`]), so a server restarted from a
//! snapshot continues the stream bit-identically to one that never stopped.
//! The envelope also carries the currently published answer, so a restored
//! engine republishes the same epoch instead of starting readers cold.

use crate::protocol::{validate_namespace, Freshness, DEFAULT_NAMESPACE};
use serde::{Deserialize, Serialize};
use skm_clustering::error::{ClusteringError, Result};
use skm_stream::{
    CachedCoresetTree, CoresetTreeClusterer, PublishSlot, PublishedClustering, RecursiveCachedTree,
    ShardedStream, ShardedStreamState, StreamConfig, StreamStats, StreamingClusterer,
};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};

/// Current snapshot envelope version; bump when [`SnapshotFile`] or any
/// serialized backend state changes shape incompatibly. Version 2 added the
/// `published` field; version 3 added the `namespace` field (per-tenant
/// snapshots and eviction files).
pub const SNAPSHOT_VERSION: u32 = 3;

/// Default cap on resident (in-memory) tenants.
pub const DEFAULT_MAX_RESIDENT: usize = 64;

/// RNG seed recorded in the derived default spec when an engine is
/// cold-started from a snapshot (the backend's own RNG state is restored
/// bit-exactly from the file; this seed only parameterizes tenants created
/// lazily *afterwards*).
pub const DERIVED_SEED: u64 = 42;

/// The eviction file name for a tenant, relative to the eviction
/// directory. Namespaces pass [`validate_namespace`], so the result is
/// always a bare file name inside the directory.
#[must_use]
pub fn evict_file_name(namespace: &str) -> String {
    format!("tenant-{namespace}.json")
}

/// Which clusterer the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Sharded multi-threaded ingestion over per-shard CC clusterers
    /// (the recommended default).
    ShardedCc,
    /// Single-threaded cached coreset tree.
    Cc,
    /// Single-threaded plain coreset tree (streamkm++).
    Ct,
    /// Single-threaded recursive coreset cache.
    Rcc,
}

impl BackendKind {
    /// The tag stored in snapshot files and accepted by
    /// [`BackendKind::parse`].
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            BackendKind::ShardedCc => "sharded-cc",
            BackendKind::Cc => "cc",
            BackendKind::Ct => "ct",
            BackendKind::Rcc => "rcc",
        }
    }

    /// Parses a backend tag (case-insensitive).
    #[must_use]
    pub fn parse(tag: &str) -> Option<Self> {
        match tag.to_ascii_lowercase().as_str() {
            "sharded-cc" | "sharded" => Some(BackendKind::ShardedCc),
            "cc" => Some(BackendKind::Cc),
            "ct" => Some(BackendKind::Ct),
            "rcc" => Some(BackendKind::Rcc),
            _ => None,
        }
    }
}

/// How to build one tenant's stream (and, as the engine's default spec,
/// every lazily created tenant).
#[derive(Debug, Clone, Copy)]
pub struct EngineSpec {
    /// Backend to run.
    pub kind: BackendKind,
    /// Shared streaming configuration (k, bucket size, query settings).
    pub stream: StreamConfig,
    /// Shard count (only used by [`BackendKind::ShardedCc`]).
    pub shards: usize,
    /// Points buffered per shard before a batch ships (sharded backend).
    pub batch: usize,
    /// RCC nesting depth (only used by [`BackendKind::Rcc`]).
    pub nesting_depth: u32,
    /// Master RNG seed.
    pub seed: u64,
}

impl EngineSpec {
    /// The default serving spec: sharded CC with `shards` workers.
    #[must_use]
    pub fn sharded_cc(stream: StreamConfig, shards: usize, batch: usize, seed: u64) -> Self {
        Self {
            kind: BackendKind::ShardedCc,
            stream,
            shards,
            batch,
            nesting_depth: 2,
            seed,
        }
    }
}

/// The concrete clusterer behind a tenant's mutex.
#[derive(Debug)]
enum Backend {
    ShardedCc(ShardedStream<CachedCoresetTree>),
    Cc(CachedCoresetTree),
    Ct(CoresetTreeClusterer),
    Rcc(RecursiveCachedTree),
}

impl Backend {
    fn build(spec: &EngineSpec) -> Result<Self> {
        Ok(match spec.kind {
            BackendKind::ShardedCc => Backend::ShardedCc(ShardedStream::cc(
                spec.stream,
                spec.shards,
                spec.batch,
                spec.seed,
            )?),
            BackendKind::Cc => Backend::Cc(CachedCoresetTree::new(spec.stream, spec.seed)?),
            BackendKind::Ct => Backend::Ct(CoresetTreeClusterer::new(spec.stream, spec.seed)?),
            BackendKind::Rcc => Backend::Rcc(RecursiveCachedTree::new(
                spec.stream,
                spec.nesting_depth,
                spec.seed,
            )?),
        })
    }

    fn kind(&self) -> BackendKind {
        match self {
            Backend::ShardedCc(_) => BackendKind::ShardedCc,
            Backend::Cc(_) => BackendKind::Cc,
            Backend::Ct(_) => BackendKind::Ct,
            Backend::Rcc(_) => BackendKind::Rcc,
        }
    }

    /// Reconstructs a spec describing this backend. Used when an engine is
    /// cold-started from a snapshot: the restored tenant keeps its exact
    /// state, and tenants created lazily afterwards inherit this shape
    /// (with [`DERIVED_SEED`], since a backend's original seed is not
    /// recoverable from its mid-stream RNG position).
    fn derived_spec(&self) -> EngineSpec {
        match self {
            Backend::ShardedCc(s) => EngineSpec {
                kind: BackendKind::ShardedCc,
                stream: *s.config(),
                shards: s.shards(),
                batch: s.batch_size(),
                nesting_depth: 2,
                seed: DERIVED_SEED,
            },
            Backend::Cc(c) => EngineSpec {
                kind: BackendKind::Cc,
                stream: *c.config(),
                shards: 1,
                batch: 128,
                nesting_depth: 2,
                seed: DERIVED_SEED,
            },
            Backend::Ct(c) => EngineSpec {
                kind: BackendKind::Ct,
                stream: *c.config(),
                shards: 1,
                batch: 128,
                nesting_depth: 2,
                seed: DERIVED_SEED,
            },
            Backend::Rcc(c) => EngineSpec {
                kind: BackendKind::Rcc,
                stream: *c.config(),
                shards: 1,
                batch: 128,
                nesting_depth: c.nesting_depth(),
                seed: DERIVED_SEED,
            },
        }
    }

    fn clusterer(&mut self) -> &mut dyn StreamingClusterer {
        match self {
            Backend::ShardedCc(s) => s,
            Backend::Cc(c) => c,
            Backend::Ct(c) => c,
            Backend::Rcc(c) => c,
        }
    }

    fn stats(&mut self) -> Result<StreamStats> {
        match self {
            Backend::ShardedCc(s) => s.stats(),
            other => {
                let c = other.clusterer();
                Ok(StreamStats {
                    points_seen: c.points_seen(),
                    shards: 1,
                    per_shard_points: vec![c.points_seen()],
                    last_query: c.last_query_stats(),
                })
            }
        }
    }

    fn state_value(&mut self) -> Result<serde::Value> {
        Ok(match self {
            Backend::ShardedCc(s) => s.snapshot()?.to_value(),
            Backend::Cc(c) => c.to_value(),
            Backend::Ct(c) => c.to_value(),
            Backend::Rcc(c) => c.to_value(),
        })
    }

    fn from_state(kind: BackendKind, state: &serde::Value) -> Result<Self> {
        let restore_err = |e: serde::Error| ClusteringError::InvalidParameter {
            name: "snapshot",
            message: e.to_string(),
        };
        let backend = match kind {
            BackendKind::ShardedCc => {
                // `ShardedStream::restore` validates config and cursor
                // itself.
                let state = ShardedStreamState::from_value(state).map_err(restore_err)?;
                Backend::ShardedCc(ShardedStream::restore(&state)?)
            }
            BackendKind::Cc => {
                Backend::Cc(CachedCoresetTree::from_value(state).map_err(restore_err)?)
            }
            BackendKind::Ct => {
                Backend::Ct(CoresetTreeClusterer::from_value(state).map_err(restore_err)?)
            }
            BackendKind::Rcc => {
                Backend::Rcc(RecursiveCachedTree::from_value(state).map_err(restore_err)?)
            }
        };
        // A tampered single-backend snapshot must not smuggle in a
        // configuration the constructors would have rejected.
        match &backend {
            Backend::ShardedCc(_) => {}
            Backend::Cc(c) => c.config().validate()?,
            Backend::Ct(c) => c.config().validate()?,
            Backend::Rcc(c) => c.config().validate()?,
        }
        Ok(backend)
    }
}

/// Versioned on-disk snapshot envelope: the backend tag picks the concrete
/// state type at restore time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnapshotFile {
    /// Envelope version ([`SNAPSHOT_VERSION`]).
    pub snapshot_version: u32,
    /// The tenant this snapshot belongs to ([`DEFAULT_NAMESPACE`] for the
    /// anonymous pre-tenancy stream).
    pub namespace: String,
    /// Backend tag ([`BackendKind::tag`]).
    pub backend: String,
    /// The answer published at snapshot time, if any; restoring republishes
    /// it so cached reads resume at the saved epoch.
    pub published: Option<PublishedClustering>,
    /// The backend's serialized state.
    pub state: serde::Value,
}

/// One resident tenant: its stream behind a mutex, its publish slot, and
/// the bookkeeping eviction needs.
#[derive(Debug)]
struct Tenant {
    namespace: String,
    backend: Mutex<Backend>,
    /// The published-answer cell cached reads are served from. For the
    /// sharded backend this is the stream's own slot (the stream publishes
    /// from inside its query); for single-threaded backends the engine
    /// publishes after each strict query.
    slot: Arc<PublishSlot>,
    /// Shard count, fixed at construction (reported by cached stats
    /// without taking the lock).
    shards: usize,
    /// Set under the backend mutex when this tenant is paged out. An
    /// operation that locked the backend through a stale `Arc` observes
    /// the flag and retries through the map, which restores the tenant —
    /// so no update can land on a zombie copy after its state went to
    /// disk.
    evicted: AtomicBool,
    /// Engine-clock timestamp of the last touch (LRU victim selection).
    last_touch: AtomicU64,
}

impl Tenant {
    /// Wraps a freshly built backend with its publish slot and shard count.
    fn assemble(namespace: &str, backend: Backend) -> Self {
        let (slot, shards) = match &backend {
            Backend::ShardedCc(s) => (s.publish_slot(), s.shards()),
            _ => (Arc::new(PublishSlot::new()), 1),
        };
        Tenant {
            namespace: namespace.to_string(),
            backend: Mutex::new(backend),
            slot,
            shards,
            evicted: AtomicBool::new(false),
            last_touch: AtomicU64::new(0),
        }
    }

    fn create(namespace: &str, spec: &EngineSpec) -> Result<Self> {
        Ok(Self::assemble(namespace, Backend::build(spec)?))
    }

    /// Locks the backend, recovering from mutex poisoning.
    ///
    /// A poisoned lock means a handler thread panicked while holding it.
    /// The clusterers maintain their invariants through `Result`s — a panic
    /// indicates a bug, not a routine failure — and before this recovery
    /// existed, one such panic made *every* later request on *every*
    /// connection fail with an "engine poisoned" error until the process
    /// was restarted. Availability wins: recover the guard and keep
    /// serving.
    fn lock(&self) -> MutexGuard<'_, Backend> {
        self.backend.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Serializes this tenant into the versioned JSON envelope. Caller
    /// holds the backend guard, so state and published answer are written
    /// from one consistent lock hold.
    fn snapshot_string(&self, backend: &mut Backend) -> Result<String> {
        let file = SnapshotFile {
            snapshot_version: SNAPSHOT_VERSION,
            namespace: self.namespace.clone(),
            backend: backend.kind().tag().to_string(),
            published: self.slot.load().map(|p| p.as_ref().clone()),
            state: backend.state_value()?,
        };
        serde_json::to_string(&file).map_err(|e| ClusteringError::InvalidParameter {
            name: "snapshot",
            message: e.to_string(),
        })
    }

    /// Rebuilds a tenant from a snapshot envelope. `expected_namespace`
    /// pins the envelope to the tenant an eviction file is named after; a
    /// mismatch means the file was renamed or tampered with.
    fn from_snapshot_text(text: &str, expected_namespace: Option<&str>) -> Result<Self> {
        let invalid = |message: String| ClusteringError::InvalidParameter {
            name: "snapshot",
            message,
        };
        let file: SnapshotFile = serde_json::from_str(text).map_err(|e| invalid(e.to_string()))?;
        if file.snapshot_version != SNAPSHOT_VERSION {
            return Err(invalid(format!(
                "unsupported snapshot version {} (this build reads version {SNAPSHOT_VERSION})",
                file.snapshot_version
            )));
        }
        validate_namespace(&file.namespace).map_err(invalid)?;
        if let Some(expected) = expected_namespace {
            if file.namespace != expected {
                return Err(invalid(format!(
                    "snapshot belongs to tenant `{}`, expected `{expected}`",
                    file.namespace
                )));
            }
        }
        let kind = BackendKind::parse(&file.backend)
            .ok_or_else(|| invalid(format!("unknown backend `{}`", file.backend)))?;
        let tenant = Tenant::assemble(&file.namespace, Backend::from_state(kind, &file.state)?);
        // The sharded backend's state carries its own copy of the published
        // answer (in-process `ShardedStream` restores need it) and has
        // already seeded the slot with it. Both copies were written from
        // the same slot under one lock hold, so a disagreement means the
        // snapshot was tampered with or corrupted — reject it instead of
        // silently letting one copy win.
        if kind == BackendKind::ShardedCc
            && tenant.slot.load().map(|p| p.as_ref().clone()) != file.published
        {
            return Err(invalid(
                "published answer in the envelope disagrees with the backend state".to_string(),
            ));
        }
        // Republish the snapshot-time answer so cached reads on the
        // restored tenant resume at the saved epoch.
        tenant.slot.restore(file.published);
        Ok(tenant)
    }
}

/// The thread-safe serving facade over the tenant map.
///
/// All methods take `&self`; connection handler threads share the engine
/// through an `Arc`. Writes (and strict reads) serialize on the target
/// tenant's mutex only — tenants never contend with each other — and
/// cached reads go through the tenant's publish slot without any lock.
/// Lock order is strictly map → tenant; no path acquires the map lock
/// while holding a tenant's backend mutex.
#[derive(Debug)]
pub struct Engine {
    tenants: RwLock<HashMap<String, Arc<Tenant>>>,
    /// Spec used for every lazily created tenant (and the eagerly created
    /// default tenant).
    default_spec: EngineSpec,
    /// Cap on resident tenants (≥ 1).
    max_resident: usize,
    /// Where evicted tenants are paged out to; `None` makes the cap a hard
    /// limit.
    evict_dir: Option<PathBuf>,
    /// Monotone logical clock stamping tenant touches for LRU.
    clock: AtomicU64,
}

impl Engine {
    /// Builds an engine from a spec with the default resident cap and no
    /// eviction directory. The [`DEFAULT_NAMESPACE`] tenant is created
    /// eagerly, so spec validation errors surface here rather than on the
    /// first request.
    ///
    /// # Errors
    /// Propagates configuration validation errors.
    pub fn new(spec: &EngineSpec) -> Result<Self> {
        Self::with_options(spec, DEFAULT_MAX_RESIDENT, None)
    }

    /// Builds an engine with an explicit resident-tenant cap and an
    /// optional eviction directory. A `max_resident` of 0 is treated as 1
    /// (the default tenant always exists).
    ///
    /// # Errors
    /// Propagates configuration validation errors.
    pub fn with_options(
        spec: &EngineSpec,
        max_resident: usize,
        evict_dir: Option<PathBuf>,
    ) -> Result<Self> {
        let default_tenant = Tenant::create(DEFAULT_NAMESPACE, spec)?;
        let mut map = HashMap::new();
        map.insert(DEFAULT_NAMESPACE.to_string(), Arc::new(default_tenant));
        Ok(Engine {
            tenants: RwLock::new(map),
            default_spec: *spec,
            max_resident: max_resident.max(1),
            evict_dir,
            clock: AtomicU64::new(1),
        })
    }

    /// Replaces the resident cap and eviction directory (builder-style, for
    /// engines cold-started via [`Engine::from_snapshot_json`]).
    #[must_use]
    pub fn with_eviction(mut self, max_resident: usize, evict_dir: Option<PathBuf>) -> Self {
        self.max_resident = max_resident.max(1);
        self.evict_dir = evict_dir;
        self
    }

    /// The spec lazily created tenants are built from.
    #[must_use]
    pub fn default_spec(&self) -> &EngineSpec {
        &self.default_spec
    }

    /// The resident-tenant cap.
    #[must_use]
    pub fn max_resident(&self) -> usize {
        self.max_resident
    }

    /// Namespaces of the currently resident tenants, in no particular
    /// order.
    #[must_use]
    pub fn resident_tenants(&self) -> Vec<String> {
        self.read_map().keys().cloned().collect()
    }

    fn read_map(&self) -> std::sync::RwLockReadGuard<'_, HashMap<String, Arc<Tenant>>> {
        self.tenants.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write_map(&self) -> std::sync::RwLockWriteGuard<'_, HashMap<String, Arc<Tenant>>> {
        self.tenants.write().unwrap_or_else(PoisonError::into_inner)
    }

    fn touch(&self, tenant: &Tenant) {
        tenant.last_touch.store(
            self.clock.fetch_add(1, Ordering::Relaxed),
            Ordering::Relaxed,
        );
    }

    fn bad_namespace(message: String) -> ClusteringError {
        ClusteringError::InvalidParameter {
            name: "namespace",
            message,
        }
    }

    fn evict_path(&self, namespace: &str) -> Option<PathBuf> {
        self.evict_dir
            .as_ref()
            .map(|d| d.join(evict_file_name(namespace)))
    }

    /// Evicts least-recently-touched tenants until a new one fits under
    /// the cap. Caller holds the map write lock.
    fn make_room(&self, map: &mut HashMap<String, Arc<Tenant>>) -> Result<()> {
        while map.len() >= self.max_resident {
            let Some(victim) = map
                .values()
                .min_by_key(|t| t.last_touch.load(Ordering::Relaxed))
                .cloned()
            else {
                // `len >= cap >= 1` makes the map non-empty here; if that
                // invariant ever breaks, stop evicting rather than spin.
                return Ok(());
            };
            let Some(path) = self.evict_path(&victim.namespace) else {
                return Err(ClusteringError::InvalidParameter {
                    name: "tenant_limit",
                    message: format!(
                        "resident tenant cap {} reached and no eviction directory is configured",
                        self.max_resident
                    ),
                });
            };
            let write_err = |e: std::io::Error| ClusteringError::InvalidParameter {
                name: "snapshot",
                message: format!("evicting tenant `{}`: {e}", victim.namespace),
            };
            // Snapshot and flag under the victim's backend lock: every
            // operation that raced us either completed before the
            // snapshot (and is in it) or will observe `evicted` and
            // retry through the map (and the restore).
            let mut guard = victim.lock();
            let json = victim.snapshot_string(&mut guard)?;
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent).map_err(write_err)?;
            }
            std::fs::write(&path, json).map_err(write_err)?;
            victim.evicted.store(true, Ordering::Release);
            drop(guard);
            map.remove(&victim.namespace);
        }
        Ok(())
    }

    /// Fetches (lazily creating or restoring) the tenant for `namespace`
    /// and stamps its LRU touch.
    fn tenant(&self, namespace: &str) -> Result<Arc<Tenant>> {
        validate_namespace(namespace).map_err(Self::bad_namespace)?;
        {
            let map = self.read_map();
            if let Some(tenant) = map.get(namespace) {
                self.touch(tenant);
                return Ok(Arc::clone(tenant));
            }
        }
        let mut map = self.write_map();
        // Double-check: another thread may have created it between locks.
        if let Some(tenant) = map.get(namespace) {
            self.touch(tenant);
            return Ok(Arc::clone(tenant));
        }
        self.make_room(&mut map)?;
        let evicted_file = self.evict_path(namespace).filter(|p| p.exists());
        let tenant = match &evicted_file {
            Some(path) => {
                let text = std::fs::read_to_string(path).map_err(|e| {
                    ClusteringError::InvalidParameter {
                        name: "snapshot",
                        message: format!("restoring tenant `{namespace}`: {e}"),
                    }
                })?;
                Tenant::from_snapshot_text(&text, Some(namespace))?
            }
            None => Tenant::create(namespace, &self.default_spec)?,
        };
        let tenant = Arc::new(tenant);
        self.touch(&tenant);
        map.insert(namespace.to_string(), Arc::clone(&tenant));
        // The tenant is resident again; drop the page-out file so disk and
        // map never disagree about where the live state is.
        if let Some(path) = evicted_file {
            std::fs::remove_file(path).ok();
        }
        Ok(tenant)
    }

    /// Runs `f` under the tenant's backend lock, retrying through the map
    /// if the tenant was evicted between the map lookup and the lock
    /// acquisition (the retry restores it from disk).
    fn with_backend<T>(
        &self,
        namespace: &str,
        mut f: impl FnMut(&mut Backend, &Tenant) -> Result<T>,
    ) -> Result<T> {
        loop {
            let tenant = self.tenant(namespace)?;
            let mut guard = tenant.lock();
            if tenant.evicted.load(Ordering::Acquire) {
                drop(guard);
                continue;
            }
            return f(&mut guard, &tenant);
        }
    }

    /// Creates `namespace` with an explicit spec instead of the engine
    /// default. Only valid before the tenant exists: reconfiguring a live
    /// (or paged-out) stream would invalidate its state.
    ///
    /// # Errors
    /// `tenant_exists` when the tenant is resident or evicted to disk;
    /// `tenant_limit` when the cap is full and no eviction directory is
    /// configured; otherwise spec validation errors.
    pub fn configure(&self, namespace: &str, spec: &EngineSpec) -> Result<(BackendKind, usize)> {
        validate_namespace(namespace).map_err(Self::bad_namespace)?;
        let exists = |namespace: &str| ClusteringError::InvalidParameter {
            name: "tenant_exists",
            message: format!("tenant `{namespace}` already exists"),
        };
        let mut map = self.write_map();
        if map.contains_key(namespace) {
            return Err(exists(namespace));
        }
        if self.evict_path(namespace).is_some_and(|p| p.exists()) {
            return Err(exists(namespace));
        }
        self.make_room(&mut map)?;
        let tenant = Arc::new(Tenant::create(namespace, spec)?);
        self.touch(&tenant);
        let shards = tenant.shards;
        map.insert(namespace.to_string(), tenant);
        Ok((spec.kind, shards))
    }

    /// Which backend lazily created tenants run (and, for an engine built
    /// from [`Engine::new`], the default tenant too).
    #[must_use]
    pub fn kind(&self) -> BackendKind {
        self.default_spec.kind
    }

    /// Ingests one point into a tenant; returns its total points seen
    /// afterwards.
    ///
    /// # Errors
    /// Returns validation errors (dimension mismatch, non-finite
    /// coordinates, empty point, bad namespace); the tenant state is
    /// unchanged on error.
    pub fn ingest_in(&self, namespace: &str, point: &[f64]) -> Result<u64> {
        self.with_backend(namespace, |backend, _| {
            let clusterer = backend.clusterer();
            clusterer.update(point)?;
            Ok(clusterer.points_seen())
        })
    }

    /// Ingests a batch of points atomically into a tenant: the whole batch
    /// is validated against the stream dimension before any point is
    /// consumed, so a rejected batch leaves the tenant untouched.
    ///
    /// # Errors
    /// Returns the first validation failure (with the offending in-batch
    /// index for non-finite coordinates).
    pub fn ingest_batch_in(&self, namespace: &str, points: &[Vec<f64>]) -> Result<u64> {
        let refs: Vec<&[f64]> = points.iter().map(Vec::as_slice).collect();
        self.with_backend(namespace, |backend, _| {
            let clusterer = backend.clusterer();
            // Pre-validate the whole batch so even backends whose
            // `update_batch` is a per-point loop (the sharded coordinator)
            // reject atomically at the serving layer.
            let mut dim = clusterer.dim();
            for (index, point) in refs.iter().enumerate() {
                if point.is_empty() {
                    return Err(ClusteringError::InvalidParameter {
                        name: "point",
                        message: "points must have at least one dimension".to_string(),
                    });
                }
                if let Some(d) = dim {
                    if d != point.len() {
                        return Err(ClusteringError::DimensionMismatch {
                            expected: d,
                            got: point.len(),
                        });
                    }
                }
                if point.iter().any(|x| !x.is_finite()) {
                    return Err(ClusteringError::NonFiniteCoordinate { index });
                }
                dim = Some(point.len());
            }
            clusterer.update_batch(&refs)?;
            Ok(clusterer.points_seen())
        })
    }

    /// Answers a clustering query on the requested read path for one
    /// tenant.
    ///
    /// [`Freshness::Strict`] drains in-flight ingestion under the tenant's
    /// mutex, recomputes, republishes and returns the new epoch — exactly
    /// the pre-freshness behaviour (bit-identical at a fixed seed).
    /// [`Freshness::Cached`] returns the last published epoch without
    /// taking the mutex; when nothing has been published yet it falls back
    /// to one strict query to seed the slot. Touching an evicted tenant
    /// (either path) transparently restores it first.
    ///
    /// # Errors
    /// Returns [`ClusteringError::EmptyInput`] before the tenant's first
    /// point.
    pub fn query_in(
        &self,
        namespace: &str,
        freshness: Freshness,
    ) -> Result<Arc<PublishedClustering>> {
        if freshness == Freshness::Cached {
            let tenant = self.tenant(namespace)?;
            if let Some(published) = tenant.slot.load() {
                return Ok(published);
            }
        }
        self.with_backend(namespace, |backend, tenant| match backend {
            // The sharded stream publishes from inside its own query (its
            // slot is this tenant's slot).
            Backend::ShardedCc(s) => s.query_published(),
            other => {
                let result = other.clusterer().query_clustering()?;
                Ok(tenant.slot.publish(result))
            }
        })
    }

    /// The tenant's currently published answer, if any (never takes the
    /// backend mutex, but restores the tenant if it was evicted).
    ///
    /// # Errors
    /// Returns namespace-validation or restore failures.
    pub fn published_in(&self, namespace: &str) -> Result<Option<Arc<PublishedClustering>>> {
        Ok(self.tenant(namespace)?.slot.load())
    }

    /// Epoch of the tenant's currently published answer (0 before its
    /// first strict query).
    ///
    /// # Errors
    /// Returns namespace-validation or restore failures.
    pub fn epoch_in(&self, namespace: &str) -> Result<u64> {
        Ok(self.tenant(namespace)?.slot.epoch())
    }

    /// Aggregated ingestion statistics for one tenant.
    ///
    /// [`Freshness::Strict`] flushes the coordinator buffers and collects
    /// exact per-shard counts under the tenant's mutex.
    /// [`Freshness::Cached`] answers from the published snapshot without
    /// the mutex: `points_seen` and `last_query` are as of the published
    /// epoch, and `per_shard_points` is empty (per-shard counts require a
    /// drain). Falls back to strict when nothing has been published yet.
    ///
    /// # Errors
    /// Fails when a shard worker is gone (strict path only).
    pub fn stats_in(&self, namespace: &str, freshness: Freshness) -> Result<StreamStats> {
        if freshness == Freshness::Cached {
            let tenant = self.tenant(namespace)?;
            if let Some(published) = tenant.slot.load() {
                return Ok(StreamStats {
                    points_seen: published.points_seen,
                    shards: tenant.shards,
                    per_shard_points: Vec::new(),
                    last_query: Some(published.stats),
                });
            }
        }
        self.with_backend(namespace, |backend, _| backend.stats())
    }

    /// Total points one tenant has ingested so far.
    ///
    /// # Errors
    /// Returns namespace-validation or restore failures.
    pub fn points_seen_in(&self, namespace: &str) -> Result<u64> {
        self.with_backend(namespace, |backend, _| {
            Ok(backend.clusterer().points_seen())
        })
    }

    /// Points held by one tenant's internal structures (paper accounting).
    ///
    /// # Errors
    /// Returns namespace-validation or restore failures.
    pub fn memory_points_in(&self, namespace: &str) -> Result<usize> {
        self.with_backend(namespace, |backend, _| {
            Ok(backend.clusterer().memory_points())
        })
    }

    /// Serializes one tenant's full state into the versioned JSON
    /// envelope.
    ///
    /// # Errors
    /// Fails when a shard has latched an error.
    pub fn snapshot_json_in(&self, namespace: &str) -> Result<String> {
        self.with_backend(namespace, |backend, tenant| tenant.snapshot_string(backend))
    }

    /// Ingests one point into the default tenant ([`Engine::ingest_in`]).
    ///
    /// # Errors
    /// See [`Engine::ingest_in`].
    pub fn ingest(&self, point: &[f64]) -> Result<u64> {
        self.ingest_in(DEFAULT_NAMESPACE, point)
    }

    /// Batch-ingests into the default tenant
    /// ([`Engine::ingest_batch_in`]).
    ///
    /// # Errors
    /// See [`Engine::ingest_batch_in`].
    pub fn ingest_batch(&self, points: &[Vec<f64>]) -> Result<u64> {
        self.ingest_batch_in(DEFAULT_NAMESPACE, points)
    }

    /// Queries the default tenant ([`Engine::query_in`]).
    ///
    /// # Errors
    /// See [`Engine::query_in`].
    pub fn query(&self, freshness: Freshness) -> Result<Arc<PublishedClustering>> {
        self.query_in(DEFAULT_NAMESPACE, freshness)
    }

    /// The default tenant's published answer, if any.
    #[must_use]
    pub fn published(&self) -> Option<Arc<PublishedClustering>> {
        self.published_in(DEFAULT_NAMESPACE).ok().flatten()
    }

    /// The default tenant's publish epoch (0 before the first strict
    /// query).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch_in(DEFAULT_NAMESPACE).unwrap_or(0)
    }

    /// Stats for the default tenant ([`Engine::stats_in`]).
    ///
    /// # Errors
    /// See [`Engine::stats_in`].
    pub fn stats(&self, freshness: Freshness) -> Result<StreamStats> {
        self.stats_in(DEFAULT_NAMESPACE, freshness)
    }

    /// Total points the default tenant has ingested so far.
    #[must_use]
    pub fn points_seen(&self) -> u64 {
        self.points_seen_in(DEFAULT_NAMESPACE).unwrap_or(0)
    }

    /// Points held in memory across **all** resident tenants (paper
    /// accounting; evicted tenants cost disk, not RAM).
    #[must_use]
    pub fn memory_points(&self) -> usize {
        let tenants: Vec<Arc<Tenant>> = self.read_map().values().cloned().collect();
        tenants
            .iter()
            .map(|t| t.lock().clusterer().memory_points())
            .sum()
    }

    /// Serializes the default tenant into the versioned JSON envelope
    /// ([`Engine::snapshot_json_in`]).
    ///
    /// # Errors
    /// See [`Engine::snapshot_json_in`].
    pub fn snapshot_json(&self) -> Result<String> {
        self.snapshot_json_in(DEFAULT_NAMESPACE)
    }

    /// Cold-starts an engine from a snapshot produced by
    /// [`Engine::snapshot_json`] / [`Engine::snapshot_json_in`]. The
    /// restored tenant keeps the namespace recorded in the envelope;
    /// continuing it is bit-identical to continuing the engine the
    /// snapshot was taken from. Tenants created lazily afterwards inherit
    /// the restored backend's shape (see [`DERIVED_SEED`]).
    ///
    /// # Errors
    /// Returns [`ClusteringError::InvalidParameter`] for unparseable
    /// snapshots, unknown backends or unsupported versions.
    pub fn from_snapshot_json(text: &str) -> Result<Self> {
        let tenant = Tenant::from_snapshot_text(text, None)?;
        let default_spec = tenant.lock().derived_spec();
        let mut map = HashMap::new();
        map.insert(tenant.namespace.clone(), Arc::new(tenant));
        Ok(Engine {
            tenants: RwLock::new(map),
            default_spec,
            max_resident: DEFAULT_MAX_RESIDENT,
            evict_dir: None,
            clock: AtomicU64::new(1),
        })
    }

    /// Whether a tenant currently lives on disk (paged out) rather than
    /// in memory. Diagnostic; the answer can change concurrently.
    #[must_use]
    pub fn is_evicted_to_disk(&self, namespace: &str) -> bool {
        !self.read_map().contains_key(namespace)
            && self.evict_path(namespace).is_some_and(|p| p.exists())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kind: BackendKind) -> EngineSpec {
        EngineSpec {
            kind,
            stream: StreamConfig::new(2)
                .with_bucket_size(20)
                .with_kmeans_runs(1)
                .with_lloyd_iterations(2),
            shards: 2,
            batch: 8,
            nesting_depth: 2,
            seed: 7,
        }
    }

    fn feed(engine: &Engine, n: usize, offset: f64) {
        for i in 0..n {
            let x = if i % 2 == 0 { 0.0 } else { 60.0 };
            engine.ingest(&[x + offset, (i % 5) as f64 * 0.1]).unwrap();
        }
    }

    fn feed_in(engine: &Engine, namespace: &str, n: usize, offset: f64) {
        for i in 0..n {
            let x = if i % 2 == 0 { 0.0 } else { 60.0 };
            engine
                .ingest_in(namespace, &[x + offset, (i % 5) as f64 * 0.1])
                .unwrap();
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "skm-engine-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn every_backend_ingests_and_queries() {
        for kind in [
            BackendKind::ShardedCc,
            BackendKind::Cc,
            BackendKind::Ct,
            BackendKind::Rcc,
        ] {
            let engine = Engine::new(&spec(kind)).unwrap();
            assert_eq!(engine.kind(), kind);
            assert_eq!(engine.epoch(), 0, "{kind:?}");
            feed(&engine, 300, 0.0);
            let published = engine.query(Freshness::Strict).unwrap();
            assert_eq!(published.centers.len(), 2, "{kind:?}");
            assert_eq!(published.points_seen, 300, "{kind:?}");
            assert_eq!(published.epoch, 1, "{kind:?}");
            assert!(published.cost.is_finite(), "{kind:?}");
            assert!(published.stats.ran_kmeans, "{kind:?}");
            let s = engine.stats(Freshness::Strict).unwrap();
            assert_eq!(s.points_seen, 300, "{kind:?}");
            assert_eq!(s.per_shard_points.iter().sum::<u64>(), 300, "{kind:?}");
            assert!(engine.memory_points() > 0, "{kind:?}");
        }
    }

    #[test]
    fn cached_queries_reuse_the_published_epoch() {
        for kind in [BackendKind::ShardedCc, BackendKind::Cc] {
            let engine = Engine::new(&spec(kind)).unwrap();
            feed(&engine, 100, 0.0);
            // Nothing published yet: the first cached query falls back to a
            // strict one (seeding the slot) instead of erroring.
            let seeded = engine.query(Freshness::Cached).unwrap();
            assert_eq!(seeded.epoch, 1, "{kind:?}");
            // More ingestion does not move the published answer …
            feed(&engine, 100, 0.5);
            let cached = engine.query(Freshness::Cached).unwrap();
            assert_eq!(cached.epoch, 1, "{kind:?}");
            assert_eq!(cached.points_seen, 100, "{kind:?}");
            assert_eq!(cached.centers, seeded.centers, "{kind:?}");
            // … until the next strict query republishes.
            let strict = engine.query(Freshness::Strict).unwrap();
            assert_eq!(strict.epoch, 2, "{kind:?}");
            assert_eq!(strict.points_seen, 200, "{kind:?}");
            let cached = engine.query(Freshness::Cached).unwrap();
            assert_eq!(cached.epoch, 2, "{kind:?}");

            // Cached stats come from the published snapshot, lock-free.
            let stats = engine.stats(Freshness::Cached).unwrap();
            assert_eq!(stats.points_seen, 200, "{kind:?}");
            assert!(stats.per_shard_points.is_empty(), "{kind:?}");
            assert_eq!(stats.last_query, Some(cached.stats), "{kind:?}");
        }
    }

    #[test]
    fn strict_queries_match_the_direct_clusterer_bit_for_bit() {
        // The engine's strict path must stay bit-identical to driving the
        // clusterer directly (the pre-publish code path) at a fixed seed.
        let engine = Engine::new(&spec(BackendKind::ShardedCc)).unwrap();
        let mut direct = ShardedStream::cc(
            spec(BackendKind::ShardedCc).stream,
            2, // shards, as in `spec`
            8, // batch, as in `spec`
            7, // seed, as in `spec`
        )
        .unwrap();
        for i in 0..300usize {
            let x = if i % 2 == 0 { 0.0 } else { 60.0 };
            let p = [x, (i % 5) as f64 * 0.1];
            engine.ingest(&p).unwrap();
            direct.update(&p).unwrap();
        }
        let served = engine.query(Freshness::Strict).unwrap();
        let expected = direct.query().unwrap();
        assert_eq!(served.centers, expected);
    }

    #[test]
    fn a_panicked_handler_does_not_poison_the_engine() {
        // Regression: a handler thread panicking while holding a tenant's
        // backend lock used to poison it, after which every request on
        // every connection failed until restart. The engine now recovers.
        let engine = Arc::new(Engine::new(&spec(BackendKind::Cc)).unwrap());
        feed(&engine, 50, 0.0);
        let clone = Arc::clone(&engine);
        let panicked = std::thread::spawn(move || {
            let tenant = clone.tenant(DEFAULT_NAMESPACE).unwrap();
            let _guard = tenant.backend.lock().unwrap();
            panic!("handler bug while holding the engine lock");
        })
        .join();
        assert!(panicked.is_err(), "the helper thread must have panicked");

        // Every path still works.
        engine.ingest(&[1.0, 2.0]).unwrap();
        assert_eq!(engine.points_seen(), 51);
        let published = engine.query(Freshness::Strict).unwrap();
        assert_eq!(published.centers.len(), 2);
        engine.query(Freshness::Cached).unwrap();
        engine.stats(Freshness::Strict).unwrap();
        engine.snapshot_json().unwrap();
    }

    #[test]
    fn batch_rejection_is_atomic_for_every_backend() {
        for kind in [BackendKind::ShardedCc, BackendKind::Cc] {
            let engine = Engine::new(&spec(kind)).unwrap();
            engine.ingest(&[1.0, 2.0]).unwrap();
            // Good point followed by a wrong-dimension point: nothing of the
            // batch may be consumed.
            let err = engine
                .ingest_batch(&[vec![3.0, 4.0], vec![5.0]])
                .unwrap_err();
            assert!(matches!(
                err,
                ClusteringError::DimensionMismatch {
                    expected: 2,
                    got: 1
                }
            ));
            let err = engine
                .ingest_batch(&[vec![3.0, 4.0], vec![f64::NAN, 0.0]])
                .unwrap_err();
            assert!(matches!(
                err,
                ClusteringError::NonFiniteCoordinate { index: 1 }
            ));
            assert!(engine.ingest_batch(&[vec![3.0, 4.0], vec![]]).is_err());
            assert_eq!(engine.points_seen(), 1, "{kind:?}");
            // A self-inconsistent first batch on a fresh engine must also be
            // rejected whole.
            let fresh = Engine::new(&spec(kind)).unwrap();
            assert!(fresh
                .ingest_batch(&[vec![1.0, 2.0], vec![1.0, 2.0, 3.0]])
                .is_err());
            assert_eq!(fresh.points_seen(), 0, "{kind:?}");
        }
    }

    #[test]
    fn snapshot_restore_continue_matches_uninterrupted() {
        for kind in [
            BackendKind::ShardedCc,
            BackendKind::Cc,
            BackendKind::Ct,
            BackendKind::Rcc,
        ] {
            let reference = Engine::new(&spec(kind)).unwrap();
            let snapshotted = Engine::new(&spec(kind)).unwrap();
            feed(&reference, 150, 0.0);
            feed(&snapshotted, 150, 0.0);
            let json = snapshotted.snapshot_json().unwrap();
            drop(snapshotted);
            let restored = Engine::from_snapshot_json(&json).unwrap();
            assert_eq!(restored.kind(), kind);
            feed(&reference, 150, 0.5);
            feed(&restored, 150, 0.5);
            let a = reference.query(Freshness::Strict).unwrap();
            let b = restored.query(Freshness::Strict).unwrap();
            assert_eq!(
                a.centers, b.centers,
                "{kind:?} snapshot continuation diverged"
            );
        }
    }

    #[test]
    fn restored_engine_republishes_the_saved_epoch() {
        for kind in [BackendKind::ShardedCc, BackendKind::Cc] {
            let engine = Engine::new(&spec(kind)).unwrap();
            feed(&engine, 150, 0.0);
            engine.query(Freshness::Strict).unwrap();
            engine.query(Freshness::Strict).unwrap();
            let saved = engine.published().unwrap();
            assert_eq!(saved.epoch, 2, "{kind:?}");

            let json = engine.snapshot_json().unwrap();
            let restored = Engine::from_snapshot_json(&json).unwrap();
            // Cached reads resume at the saved epoch, without any query.
            let republished = restored.query(Freshness::Cached).unwrap();
            assert_eq!(republished.as_ref(), saved.as_ref(), "{kind:?}");
            assert_eq!(restored.epoch(), 2, "{kind:?}");
            // The next strict query continues the sequence.
            let next = restored.query(Freshness::Strict).unwrap();
            assert_eq!(next.epoch, 3, "{kind:?}");
        }

        // An engine snapshotted before any query restores with an empty
        // slot (epoch 0), not a fabricated answer.
        let engine = Engine::new(&spec(BackendKind::Cc)).unwrap();
        feed(&engine, 30, 0.0);
        let restored = Engine::from_snapshot_json(&engine.snapshot_json().unwrap()).unwrap();
        assert_eq!(restored.epoch(), 0);
        assert!(restored.published().is_none());
    }

    #[test]
    fn diverging_published_copies_in_a_sharded_snapshot_are_rejected() {
        // A sharded snapshot stores the published answer both in the
        // envelope and inside the stream state (the latter serves
        // in-process ShardedStream restores). The two are written from one
        // slot under one lock hold; a snapshot where they disagree was
        // tampered with or corrupted and must not restore as either copy.
        let engine = Engine::new(&spec(BackendKind::ShardedCc)).unwrap();
        feed(&engine, 150, 0.0);
        engine.query(Freshness::Strict).unwrap();
        let json = engine.snapshot_json().unwrap();

        // The epoch appears exactly twice (envelope + stream state); bump
        // only the first (envelope-level) occurrence.
        assert_eq!(json.matches("\"epoch\":1").count(), 2, "fixture drifted");
        let tampered = json.replacen("\"epoch\":1", "\"epoch\":9", 1);
        assert!(Engine::from_snapshot_json(&tampered).is_err());

        // Untampered, the same snapshot restores fine.
        assert!(Engine::from_snapshot_json(&json).is_ok());
    }

    #[test]
    fn snapshot_envelope_is_versioned_and_validated() {
        let engine = Engine::new(&spec(BackendKind::Cc)).unwrap();
        feed(&engine, 30, 0.0);
        let json = engine.snapshot_json().unwrap();
        assert!(json.contains("\"snapshot_version\":3"));
        assert!(json.contains("\"namespace\":\"default\""));
        assert!(json.contains("\"backend\":\"cc\""));

        assert!(Engine::from_snapshot_json("not json").is_err());
        let wrong_version = json.replace("\"snapshot_version\":3", "\"snapshot_version\":99");
        assert!(Engine::from_snapshot_json(&wrong_version).is_err());
        let wrong_backend = json.replace("\"backend\":\"cc\"", "\"backend\":\"nope\"");
        assert!(Engine::from_snapshot_json(&wrong_backend).is_err());
        // A namespace that could escape the snapshot directory must never
        // come back from disk either.
        let escaping = json.replace("\"namespace\":\"default\"", "\"namespace\":\"../x\"");
        assert!(Engine::from_snapshot_json(&escaping).is_err());
    }

    #[test]
    fn tampered_snapshots_are_rejected_not_restored() {
        let engine = Engine::new(&spec(BackendKind::Cc)).unwrap();
        feed(&engine, 30, 0.0);
        let json = engine.snapshot_json().unwrap();

        // A hand-edited bucket size of 0 would make the partial bucket
        // never flush; both the buffer's own deserializer and the config
        // validation must refuse it.
        let zero_bucket = json.replace("\"bucket_size\":20", "\"bucket_size\":0");
        assert_ne!(zero_bucket, json, "fixture drifted: bucket_size not found");
        assert!(Engine::from_snapshot_json(&zero_bucket).is_err());

        // Same for a config-level k = 0.
        let zero_k = json.replace("\"k\":2", "\"k\":0");
        assert_ne!(zero_k, json, "fixture drifted: k not found");
        assert!(Engine::from_snapshot_json(&zero_k).is_err());
    }

    #[test]
    fn backend_tags_round_trip() {
        for kind in [
            BackendKind::ShardedCc,
            BackendKind::Cc,
            BackendKind::Ct,
            BackendKind::Rcc,
        ] {
            assert_eq!(BackendKind::parse(kind.tag()), Some(kind));
        }
        assert_eq!(BackendKind::parse("SHARDED"), Some(BackendKind::ShardedCc));
        assert_eq!(BackendKind::parse("bogus"), None);
    }

    #[test]
    fn namespaces_are_isolated_streams() {
        let engine = Engine::new(&spec(BackendKind::Cc)).unwrap();
        feed_in(&engine, "a", 100, 0.0);
        feed_in(&engine, "b", 40, 10.0);
        feed(&engine, 10, 0.0);
        assert_eq!(engine.points_seen_in("a").unwrap(), 100);
        assert_eq!(engine.points_seen_in("b").unwrap(), 40);
        assert_eq!(engine.points_seen(), 10);

        let a = engine.query_in("a", Freshness::Strict).unwrap();
        let b = engine.query_in("b", Freshness::Strict).unwrap();
        assert_eq!(a.points_seen, 100);
        assert_eq!(b.points_seen, 40);
        // Epochs are per tenant, not global.
        assert_eq!(a.epoch, 1);
        assert_eq!(b.epoch, 1);
        assert_eq!(engine.epoch(), 0);

        // A tenant that was never touched does not exist until touched.
        let mut resident = engine.resident_tenants();
        resident.sort();
        assert_eq!(resident, vec!["a", "b", "default"]);
    }

    #[test]
    fn bad_namespaces_are_rejected_before_touching_anything() {
        let engine = Engine::new(&spec(BackendKind::Cc)).unwrap();
        for bad in ["", ".", "..", "a/b", "a\\b"] {
            let err = engine.ingest_in(bad, &[1.0, 2.0]).unwrap_err();
            assert!(
                matches!(
                    err,
                    ClusteringError::InvalidParameter {
                        name: "namespace",
                        ..
                    }
                ),
                "{bad:?}: {err:?}"
            );
        }
        assert_eq!(engine.resident_tenants().len(), 1);
    }

    #[test]
    fn lru_tenant_is_evicted_and_transparently_restored() {
        let dir = temp_dir("lru");
        let engine = Engine::with_options(&spec(BackendKind::Cc), 2, Some(dir.clone())).unwrap();
        feed_in(&engine, "a", 60, 0.0);
        engine.query_in("a", Freshness::Strict).unwrap();
        // Touch default so `a` is the LRU when `b` arrives.
        let _ = engine.points_seen();
        feed_in(&engine, "b", 20, 0.0);

        assert!(engine.is_evicted_to_disk("a"), "a should be paged out");
        assert!(dir.join(evict_file_name("a")).exists());

        // Touching `a` restores it (and pages out the new LRU).
        assert_eq!(engine.points_seen_in("a").unwrap(), 60);
        assert!(!dir.join(evict_file_name("a")).exists());
        // Epoch continuity across the round trip.
        assert_eq!(engine.epoch_in("a").unwrap(), 1);
        assert_eq!(engine.resident_tenants().len(), 2);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn evict_restore_continue_is_bit_identical() {
        let dir = temp_dir("bitident");
        // Twin A lives in an engine with an aggressive cap; twin B is
        // never evicted. Identical feeds must give identical answers.
        let evicting = Engine::with_options(&spec(BackendKind::Cc), 1, Some(dir.clone())).unwrap();
        let reference = Engine::new(&spec(BackendKind::Cc)).unwrap();
        feed_in(&evicting, "t", 100, 0.0);
        feed_in(&reference, "t", 100, 0.0);
        let a = evicting.query_in("t", Freshness::Strict).unwrap();
        let b = reference.query_in("t", Freshness::Strict).unwrap();
        assert_eq!(a.centers, b.centers);

        // Force `t` out by touching another tenant (cap is 1).
        feed_in(&evicting, "other", 10, 5.0);
        assert!(evicting.is_evicted_to_disk("t"));

        // Continue both twins; the restored one must not diverge.
        feed_in(&evicting, "t", 100, 0.5);
        feed_in(&reference, "t", 100, 0.5);
        let a = evicting.query_in("t", Freshness::Strict).unwrap();
        let b = reference.query_in("t", Freshness::Strict).unwrap();
        assert_eq!(a.centers, b.centers, "evict→restore→continue diverged");
        assert_eq!(a.epoch, b.epoch, "epoch sequence diverged");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tenant_cap_without_eviction_dir_is_a_hard_limit() {
        let engine = Engine::with_options(&spec(BackendKind::Cc), 2, None).unwrap();
        feed_in(&engine, "a", 10, 0.0);
        let err = engine.ingest_in("b", &[1.0, 2.0]).unwrap_err();
        assert!(
            matches!(
                err,
                ClusteringError::InvalidParameter {
                    name: "tenant_limit",
                    ..
                }
            ),
            "{err:?}"
        );
        // Existing tenants keep working at the cap.
        engine.ingest_in("a", &[1.0, 2.0]).unwrap();
        engine.ingest(&[1.0, 2.0]).unwrap();
    }

    #[test]
    fn configure_creates_and_refuses_duplicates() {
        let engine = Engine::new(&spec(BackendKind::Cc)).unwrap();
        let custom = EngineSpec {
            stream: StreamConfig::new(3)
                .with_bucket_size(30)
                .with_kmeans_runs(1)
                .with_lloyd_iterations(2),
            ..spec(BackendKind::Cc)
        };
        let (kind, shards) = engine.configure("big", &custom).unwrap();
        assert_eq!(kind, BackendKind::Cc);
        assert_eq!(shards, 1);
        feed_in(&engine, "big", 200, 0.0);
        let q = engine.query_in("big", Freshness::Strict).unwrap();
        assert_eq!(q.centers.len(), 3, "configured k must win");

        // Resident duplicate (including the eagerly created default).
        for dup in ["big", DEFAULT_NAMESPACE] {
            let err = engine.configure(dup, &custom).unwrap_err();
            assert!(
                matches!(
                    err,
                    ClusteringError::InvalidParameter {
                        name: "tenant_exists",
                        ..
                    }
                ),
                "{dup}: {err:?}"
            );
        }
        // An evicted (on-disk) tenant is also a duplicate.
        let dir = temp_dir("cfgdup");
        let capped = Engine::with_options(&spec(BackendKind::Cc), 1, Some(dir.clone())).unwrap();
        feed_in(&capped, "t", 10, 0.0);
        let _ = capped.points_seen(); // make default the MRU
        assert!(capped.is_evicted_to_disk("t"));
        let err = capped.configure("t", &custom).unwrap_err();
        assert!(
            matches!(
                err,
                ClusteringError::InvalidParameter {
                    name: "tenant_exists",
                    ..
                }
            ),
            "{err:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn evicted_sharded_tenant_round_trips_with_epoch() {
        let dir = temp_dir("sharded-evict");
        let engine =
            Engine::with_options(&spec(BackendKind::ShardedCc), 1, Some(dir.clone())).unwrap();
        feed_in(&engine, "s", 120, 0.0);
        let before = engine.query_in("s", Freshness::Strict).unwrap();
        feed_in(&engine, "other", 8, 0.0); // evicts `s`
        assert!(engine.is_evicted_to_disk("s"));

        // Cached read on the restored tenant resumes at the saved epoch.
        let cached = engine.query_in("s", Freshness::Cached).unwrap();
        assert_eq!(cached.as_ref(), before.as_ref());
        let strict = engine.query_in("s", Freshness::Strict).unwrap();
        assert_eq!(strict.epoch, before.epoch + 1);

        std::fs::remove_dir_all(&dir).ok();
    }
}
