//! The [`Engine`] facade: one shared clusterer behind a mutex for writes,
//! an atomically swapped published snapshot for reads, plus
//! snapshot/restore.
//!
//! The engine is what connection handler threads talk to. It wraps either a
//! [`ShardedStream`] over per-shard CC clusterers (the default — ingestion
//! parallelism comes from the shard worker threads, so the coordinator
//! mutex is held only for cheap buffering and channel sends) or one of the
//! single-threaded clusterers (CC, CT, RCC) for small deployments.
//!
//! ## The two read paths
//!
//! Every **strict** query runs under the ingest mutex, drains in-flight
//! batches, recomputes the answer and republishes it (with a fresh epoch)
//! through a [`PublishSlot`]. A **cached** query never touches the mutex:
//! it loads the currently published [`PublishedClustering`] — one `Arc`
//! clone — so a slow coreset merge or a burst of ingest batches cannot
//! stall it. Cached answers are stale (up to the time since the last
//! publish) but never torn: epoch, centers, cost and `points_seen` all come
//! from one immutable value.
//!
//! Snapshots serialize the complete backend state — configuration, coreset
//! tree levels, caches, partially filled buckets and RNG positions — into a
//! versioned JSON envelope ([`SnapshotFile`]), so a server restarted from a
//! snapshot continues the stream bit-identically to one that never stopped.
//! The envelope also carries the currently published answer, so a restored
//! engine republishes the same epoch instead of starting readers cold.

use crate::protocol::Freshness;
use serde::{Deserialize, Serialize};
use skm_clustering::error::{ClusteringError, Result};
use skm_stream::{
    CachedCoresetTree, CoresetTreeClusterer, PublishSlot, PublishedClustering, RecursiveCachedTree,
    ShardedStream, ShardedStreamState, StreamConfig, StreamStats, StreamingClusterer,
};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Current snapshot envelope version; bump when [`SnapshotFile`] or any
/// serialized backend state changes shape incompatibly. Version 2 added the
/// `published` field (and the published-answer plumbing inside the sharded
/// backend state).
pub const SNAPSHOT_VERSION: u32 = 2;

/// Which clusterer the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Sharded multi-threaded ingestion over per-shard CC clusterers
    /// (the recommended default).
    ShardedCc,
    /// Single-threaded cached coreset tree.
    Cc,
    /// Single-threaded plain coreset tree (streamkm++).
    Ct,
    /// Single-threaded recursive coreset cache.
    Rcc,
}

impl BackendKind {
    /// The tag stored in snapshot files and accepted by
    /// [`BackendKind::parse`].
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            BackendKind::ShardedCc => "sharded-cc",
            BackendKind::Cc => "cc",
            BackendKind::Ct => "ct",
            BackendKind::Rcc => "rcc",
        }
    }

    /// Parses a backend tag (case-insensitive).
    #[must_use]
    pub fn parse(tag: &str) -> Option<Self> {
        match tag.to_ascii_lowercase().as_str() {
            "sharded-cc" | "sharded" => Some(BackendKind::ShardedCc),
            "cc" => Some(BackendKind::Cc),
            "ct" => Some(BackendKind::Ct),
            "rcc" => Some(BackendKind::Rcc),
            _ => None,
        }
    }
}

/// How to build an [`Engine`].
#[derive(Debug, Clone, Copy)]
pub struct EngineSpec {
    /// Backend to run.
    pub kind: BackendKind,
    /// Shared streaming configuration (k, bucket size, query settings).
    pub stream: StreamConfig,
    /// Shard count (only used by [`BackendKind::ShardedCc`]).
    pub shards: usize,
    /// Points buffered per shard before a batch ships (sharded backend).
    pub batch: usize,
    /// RCC nesting depth (only used by [`BackendKind::Rcc`]).
    pub nesting_depth: u32,
    /// Master RNG seed.
    pub seed: u64,
}

impl EngineSpec {
    /// The default serving spec: sharded CC with `shards` workers.
    #[must_use]
    pub fn sharded_cc(stream: StreamConfig, shards: usize, batch: usize, seed: u64) -> Self {
        Self {
            kind: BackendKind::ShardedCc,
            stream,
            shards,
            batch,
            nesting_depth: 2,
            seed,
        }
    }
}

/// The concrete clusterer behind the engine mutex.
#[derive(Debug)]
enum Backend {
    ShardedCc(ShardedStream<CachedCoresetTree>),
    Cc(CachedCoresetTree),
    Ct(CoresetTreeClusterer),
    Rcc(RecursiveCachedTree),
}

impl Backend {
    fn build(spec: &EngineSpec) -> Result<Self> {
        Ok(match spec.kind {
            BackendKind::ShardedCc => Backend::ShardedCc(ShardedStream::cc(
                spec.stream,
                spec.shards,
                spec.batch,
                spec.seed,
            )?),
            BackendKind::Cc => Backend::Cc(CachedCoresetTree::new(spec.stream, spec.seed)?),
            BackendKind::Ct => Backend::Ct(CoresetTreeClusterer::new(spec.stream, spec.seed)?),
            BackendKind::Rcc => Backend::Rcc(RecursiveCachedTree::new(
                spec.stream,
                spec.nesting_depth,
                spec.seed,
            )?),
        })
    }

    fn kind(&self) -> BackendKind {
        match self {
            Backend::ShardedCc(_) => BackendKind::ShardedCc,
            Backend::Cc(_) => BackendKind::Cc,
            Backend::Ct(_) => BackendKind::Ct,
            Backend::Rcc(_) => BackendKind::Rcc,
        }
    }

    fn clusterer(&mut self) -> &mut dyn StreamingClusterer {
        match self {
            Backend::ShardedCc(s) => s,
            Backend::Cc(c) => c,
            Backend::Ct(c) => c,
            Backend::Rcc(c) => c,
        }
    }

    fn stats(&mut self) -> Result<StreamStats> {
        match self {
            Backend::ShardedCc(s) => s.stats(),
            other => {
                let c = other.clusterer();
                Ok(StreamStats {
                    points_seen: c.points_seen(),
                    shards: 1,
                    per_shard_points: vec![c.points_seen()],
                    last_query: c.last_query_stats(),
                })
            }
        }
    }

    fn state_value(&mut self) -> Result<serde::Value> {
        Ok(match self {
            Backend::ShardedCc(s) => s.snapshot()?.to_value(),
            Backend::Cc(c) => c.to_value(),
            Backend::Ct(c) => c.to_value(),
            Backend::Rcc(c) => c.to_value(),
        })
    }

    fn from_state(kind: BackendKind, state: &serde::Value) -> Result<Self> {
        let restore_err = |e: serde::Error| ClusteringError::InvalidParameter {
            name: "snapshot",
            message: e.to_string(),
        };
        let backend = match kind {
            BackendKind::ShardedCc => {
                // `ShardedStream::restore` validates config and cursor
                // itself.
                let state = ShardedStreamState::from_value(state).map_err(restore_err)?;
                Backend::ShardedCc(ShardedStream::restore(&state)?)
            }
            BackendKind::Cc => {
                Backend::Cc(CachedCoresetTree::from_value(state).map_err(restore_err)?)
            }
            BackendKind::Ct => {
                Backend::Ct(CoresetTreeClusterer::from_value(state).map_err(restore_err)?)
            }
            BackendKind::Rcc => {
                Backend::Rcc(RecursiveCachedTree::from_value(state).map_err(restore_err)?)
            }
        };
        // A tampered single-backend snapshot must not smuggle in a
        // configuration the constructors would have rejected.
        match &backend {
            Backend::ShardedCc(_) => {}
            Backend::Cc(c) => c.config().validate()?,
            Backend::Ct(c) => c.config().validate()?,
            Backend::Rcc(c) => c.config().validate()?,
        }
        Ok(backend)
    }
}

/// Versioned on-disk snapshot envelope: the backend tag picks the concrete
/// state type at restore time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnapshotFile {
    /// Envelope version ([`SNAPSHOT_VERSION`]).
    pub snapshot_version: u32,
    /// Backend tag ([`BackendKind::tag`]).
    pub backend: String,
    /// The answer published at snapshot time, if any; restoring republishes
    /// it so cached reads resume at the saved epoch.
    pub published: Option<PublishedClustering>,
    /// The backend's serialized state.
    pub state: serde::Value,
}

/// The thread-safe serving facade over one streaming clusterer.
///
/// All methods take `&self`; connection handler threads share the engine
/// through an `Arc`. Writes (and strict reads) serialize on the backend
/// mutex; cached reads go through the publish slot only.
#[derive(Debug)]
pub struct Engine {
    inner: Mutex<Backend>,
    /// The published-answer cell cached reads are served from. For the
    /// sharded backend this is the stream's own slot (the stream publishes
    /// from inside its query); for single-threaded backends the engine
    /// publishes after each strict query.
    slot: Arc<PublishSlot>,
    /// Shard count, fixed at construction (reported by cached stats
    /// without taking the lock).
    shards: usize,
}

/// Wraps a freshly built backend with its publish slot and shard count.
fn assemble(backend: Backend) -> Engine {
    let (slot, shards) = match &backend {
        Backend::ShardedCc(s) => (s.publish_slot(), s.shards()),
        _ => (Arc::new(PublishSlot::new()), 1),
    };
    Engine {
        inner: Mutex::new(backend),
        slot,
        shards,
    }
}

impl Engine {
    /// Builds an engine from a spec.
    ///
    /// # Errors
    /// Propagates configuration validation errors.
    pub fn new(spec: &EngineSpec) -> Result<Self> {
        Ok(assemble(Backend::build(spec)?))
    }

    /// Locks the backend, recovering from mutex poisoning.
    ///
    /// A poisoned lock means a handler thread panicked while holding it.
    /// The clusterers maintain their invariants through `Result`s — a panic
    /// indicates a bug, not a routine failure — and before this recovery
    /// existed, one such panic made *every* later request on *every*
    /// connection fail with an "engine poisoned" error until the process
    /// was restarted. Availability wins: recover the guard and keep
    /// serving.
    fn lock(&self) -> MutexGuard<'_, Backend> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Which backend this engine runs.
    #[must_use]
    pub fn kind(&self) -> BackendKind {
        self.lock().kind()
    }

    /// Ingests one point; returns the total points seen afterwards.
    ///
    /// # Errors
    /// Returns validation errors (dimension mismatch, non-finite
    /// coordinates, empty point); the engine state is unchanged on error.
    pub fn ingest(&self, point: &[f64]) -> Result<u64> {
        let mut guard = self.lock();
        let clusterer = guard.clusterer();
        clusterer.update(point)?;
        Ok(clusterer.points_seen())
    }

    /// Ingests a batch of points atomically: the whole batch is validated
    /// against the stream dimension before any point is consumed, so a
    /// rejected batch leaves the engine untouched.
    ///
    /// # Errors
    /// Returns the first validation failure (with the offending in-batch
    /// index for non-finite coordinates).
    pub fn ingest_batch(&self, points: &[Vec<f64>]) -> Result<u64> {
        let refs: Vec<&[f64]> = points.iter().map(Vec::as_slice).collect();
        let mut guard = self.lock();
        let clusterer = guard.clusterer();
        // Pre-validate the whole batch so even backends whose
        // `update_batch` is a per-point loop (the sharded coordinator)
        // reject atomically at the serving layer.
        let mut dim = clusterer.dim();
        for (index, point) in refs.iter().enumerate() {
            if point.is_empty() {
                return Err(ClusteringError::InvalidParameter {
                    name: "point",
                    message: "points must have at least one dimension".to_string(),
                });
            }
            if let Some(d) = dim {
                if d != point.len() {
                    return Err(ClusteringError::DimensionMismatch {
                        expected: d,
                        got: point.len(),
                    });
                }
            }
            if point.iter().any(|x| !x.is_finite()) {
                return Err(ClusteringError::NonFiniteCoordinate { index });
            }
            dim = Some(point.len());
        }
        clusterer.update_batch(&refs)?;
        Ok(clusterer.points_seen())
    }

    /// Answers a clustering query on the requested read path.
    ///
    /// [`Freshness::Strict`] drains in-flight ingestion under the backend
    /// mutex, recomputes, republishes and returns the new epoch — exactly
    /// the pre-freshness behaviour (bit-identical at a fixed seed).
    /// [`Freshness::Cached`] returns the last published epoch without
    /// taking the mutex; when nothing has been published yet it falls back
    /// to one strict query to seed the slot.
    ///
    /// # Errors
    /// Returns [`ClusteringError::EmptyInput`] before the first point.
    pub fn query(&self, freshness: Freshness) -> Result<Arc<PublishedClustering>> {
        if freshness == Freshness::Cached {
            if let Some(published) = self.slot.load() {
                return Ok(published);
            }
        }
        let mut guard = self.lock();
        match &mut *guard {
            // The sharded stream publishes from inside its own query (its
            // slot is this engine's slot).
            Backend::ShardedCc(s) => s.query_published(),
            other => {
                let result = other.clusterer().query_clustering()?;
                Ok(self.slot.publish(result))
            }
        }
    }

    /// The currently published answer, if any (never takes the backend
    /// mutex).
    #[must_use]
    pub fn published(&self) -> Option<Arc<PublishedClustering>> {
        self.slot.load()
    }

    /// Epoch of the currently published answer (0 before the first strict
    /// query).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.slot.epoch()
    }

    /// Aggregated ingestion statistics.
    ///
    /// [`Freshness::Strict`] flushes the coordinator buffers and collects
    /// exact per-shard counts under the backend mutex.
    /// [`Freshness::Cached`] answers from the published snapshot without
    /// the mutex: `points_seen` and `last_query` are as of the published
    /// epoch, and `per_shard_points` is empty (per-shard counts require a
    /// drain). Falls back to strict when nothing has been published yet.
    ///
    /// # Errors
    /// Fails when a shard worker is gone (strict path only).
    pub fn stats(&self, freshness: Freshness) -> Result<StreamStats> {
        if freshness == Freshness::Cached {
            if let Some(published) = self.slot.load() {
                return Ok(StreamStats {
                    points_seen: published.points_seen,
                    shards: self.shards,
                    per_shard_points: Vec::new(),
                    last_query: Some(published.stats),
                });
            }
        }
        self.lock().stats()
    }

    /// Total points ingested so far.
    #[must_use]
    pub fn points_seen(&self) -> u64 {
        self.lock().clusterer().points_seen()
    }

    /// Points held by the backend's internal structures (paper accounting).
    #[must_use]
    pub fn memory_points(&self) -> usize {
        self.lock().clusterer().memory_points()
    }

    /// Serializes the full engine state into the versioned JSON envelope.
    ///
    /// # Errors
    /// Fails when a shard has latched an error.
    pub fn snapshot_json(&self) -> Result<String> {
        let mut guard = self.lock();
        let file = SnapshotFile {
            snapshot_version: SNAPSHOT_VERSION,
            backend: guard.kind().tag().to_string(),
            published: self.slot.load().map(|p| p.as_ref().clone()),
            state: guard.state_value()?,
        };
        serde_json::to_string(&file).map_err(|e| ClusteringError::InvalidParameter {
            name: "snapshot",
            message: e.to_string(),
        })
    }

    /// Cold-starts an engine from a snapshot produced by
    /// [`Engine::snapshot_json`]. Continuing the restored engine is
    /// bit-identical to continuing the engine the snapshot was taken from.
    ///
    /// # Errors
    /// Returns [`ClusteringError::InvalidParameter`] for unparseable
    /// snapshots, unknown backends or unsupported versions.
    pub fn from_snapshot_json(text: &str) -> Result<Self> {
        let invalid = |message: String| ClusteringError::InvalidParameter {
            name: "snapshot",
            message,
        };
        let file: SnapshotFile = serde_json::from_str(text).map_err(|e| invalid(e.to_string()))?;
        if file.snapshot_version != SNAPSHOT_VERSION {
            return Err(invalid(format!(
                "unsupported snapshot version {} (this build reads version {SNAPSHOT_VERSION})",
                file.snapshot_version
            )));
        }
        let kind = BackendKind::parse(&file.backend)
            .ok_or_else(|| invalid(format!("unknown backend `{}`", file.backend)))?;
        let engine = assemble(Backend::from_state(kind, &file.state)?);
        // The sharded backend's state carries its own copy of the published
        // answer (in-process `ShardedStream` restores need it) and has
        // already seeded the slot with it. Both copies were written from
        // the same slot under one lock hold, so a disagreement means the
        // snapshot was tampered with or corrupted — reject it instead of
        // silently letting one copy win.
        if kind == BackendKind::ShardedCc
            && engine.slot.load().map(|p| p.as_ref().clone()) != file.published
        {
            return Err(invalid(
                "published answer in the envelope disagrees with the backend state".to_string(),
            ));
        }
        // Republish the snapshot-time answer so cached reads on the
        // restored engine resume at the saved epoch.
        engine.slot.restore(file.published);
        Ok(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kind: BackendKind) -> EngineSpec {
        EngineSpec {
            kind,
            stream: StreamConfig::new(2)
                .with_bucket_size(20)
                .with_kmeans_runs(1)
                .with_lloyd_iterations(2),
            shards: 2,
            batch: 8,
            nesting_depth: 2,
            seed: 7,
        }
    }

    fn feed(engine: &Engine, n: usize, offset: f64) {
        for i in 0..n {
            let x = if i % 2 == 0 { 0.0 } else { 60.0 };
            engine.ingest(&[x + offset, (i % 5) as f64 * 0.1]).unwrap();
        }
    }

    #[test]
    fn every_backend_ingests_and_queries() {
        for kind in [
            BackendKind::ShardedCc,
            BackendKind::Cc,
            BackendKind::Ct,
            BackendKind::Rcc,
        ] {
            let engine = Engine::new(&spec(kind)).unwrap();
            assert_eq!(engine.kind(), kind);
            assert_eq!(engine.epoch(), 0, "{kind:?}");
            feed(&engine, 300, 0.0);
            let published = engine.query(Freshness::Strict).unwrap();
            assert_eq!(published.centers.len(), 2, "{kind:?}");
            assert_eq!(published.points_seen, 300, "{kind:?}");
            assert_eq!(published.epoch, 1, "{kind:?}");
            assert!(published.cost.is_finite(), "{kind:?}");
            assert!(published.stats.ran_kmeans, "{kind:?}");
            let s = engine.stats(Freshness::Strict).unwrap();
            assert_eq!(s.points_seen, 300, "{kind:?}");
            assert_eq!(s.per_shard_points.iter().sum::<u64>(), 300, "{kind:?}");
            assert!(engine.memory_points() > 0, "{kind:?}");
        }
    }

    #[test]
    fn cached_queries_reuse_the_published_epoch() {
        for kind in [BackendKind::ShardedCc, BackendKind::Cc] {
            let engine = Engine::new(&spec(kind)).unwrap();
            feed(&engine, 100, 0.0);
            // Nothing published yet: the first cached query falls back to a
            // strict one (seeding the slot) instead of erroring.
            let seeded = engine.query(Freshness::Cached).unwrap();
            assert_eq!(seeded.epoch, 1, "{kind:?}");
            // More ingestion does not move the published answer …
            feed(&engine, 100, 0.5);
            let cached = engine.query(Freshness::Cached).unwrap();
            assert_eq!(cached.epoch, 1, "{kind:?}");
            assert_eq!(cached.points_seen, 100, "{kind:?}");
            assert_eq!(cached.centers, seeded.centers, "{kind:?}");
            // … until the next strict query republishes.
            let strict = engine.query(Freshness::Strict).unwrap();
            assert_eq!(strict.epoch, 2, "{kind:?}");
            assert_eq!(strict.points_seen, 200, "{kind:?}");
            let cached = engine.query(Freshness::Cached).unwrap();
            assert_eq!(cached.epoch, 2, "{kind:?}");

            // Cached stats come from the published snapshot, lock-free.
            let stats = engine.stats(Freshness::Cached).unwrap();
            assert_eq!(stats.points_seen, 200, "{kind:?}");
            assert!(stats.per_shard_points.is_empty(), "{kind:?}");
            assert_eq!(stats.last_query, Some(cached.stats), "{kind:?}");
        }
    }

    #[test]
    fn strict_queries_match_the_direct_clusterer_bit_for_bit() {
        // The engine's strict path must stay bit-identical to driving the
        // clusterer directly (the pre-publish code path) at a fixed seed.
        let engine = Engine::new(&spec(BackendKind::ShardedCc)).unwrap();
        let mut direct = ShardedStream::cc(
            spec(BackendKind::ShardedCc).stream,
            2, // shards, as in `spec`
            8, // batch, as in `spec`
            7, // seed, as in `spec`
        )
        .unwrap();
        for i in 0..300usize {
            let x = if i % 2 == 0 { 0.0 } else { 60.0 };
            let p = [x, (i % 5) as f64 * 0.1];
            engine.ingest(&p).unwrap();
            direct.update(&p).unwrap();
        }
        let served = engine.query(Freshness::Strict).unwrap();
        let expected = direct.query().unwrap();
        assert_eq!(served.centers, expected);
    }

    #[test]
    fn a_panicked_handler_does_not_poison_the_engine() {
        // Regression: a handler thread panicking while holding the backend
        // lock used to poison it, after which every request on every
        // connection failed until restart. The engine now recovers.
        let engine = Arc::new(Engine::new(&spec(BackendKind::Cc)).unwrap());
        feed(&engine, 50, 0.0);
        let clone = Arc::clone(&engine);
        let panicked = std::thread::spawn(move || {
            let _guard = clone.lock();
            panic!("handler bug while holding the engine lock");
        })
        .join();
        assert!(panicked.is_err(), "the helper thread must have panicked");

        // Every path still works.
        engine.ingest(&[1.0, 2.0]).unwrap();
        assert_eq!(engine.points_seen(), 51);
        let published = engine.query(Freshness::Strict).unwrap();
        assert_eq!(published.centers.len(), 2);
        engine.query(Freshness::Cached).unwrap();
        engine.stats(Freshness::Strict).unwrap();
        engine.snapshot_json().unwrap();
    }

    #[test]
    fn batch_rejection_is_atomic_for_every_backend() {
        for kind in [BackendKind::ShardedCc, BackendKind::Cc] {
            let engine = Engine::new(&spec(kind)).unwrap();
            engine.ingest(&[1.0, 2.0]).unwrap();
            // Good point followed by a wrong-dimension point: nothing of the
            // batch may be consumed.
            let err = engine
                .ingest_batch(&[vec![3.0, 4.0], vec![5.0]])
                .unwrap_err();
            assert!(matches!(
                err,
                ClusteringError::DimensionMismatch {
                    expected: 2,
                    got: 1
                }
            ));
            let err = engine
                .ingest_batch(&[vec![3.0, 4.0], vec![f64::NAN, 0.0]])
                .unwrap_err();
            assert!(matches!(
                err,
                ClusteringError::NonFiniteCoordinate { index: 1 }
            ));
            assert!(engine.ingest_batch(&[vec![3.0, 4.0], vec![]]).is_err());
            assert_eq!(engine.points_seen(), 1, "{kind:?}");
            // A self-inconsistent first batch on a fresh engine must also be
            // rejected whole.
            let fresh = Engine::new(&spec(kind)).unwrap();
            assert!(fresh
                .ingest_batch(&[vec![1.0, 2.0], vec![1.0, 2.0, 3.0]])
                .is_err());
            assert_eq!(fresh.points_seen(), 0, "{kind:?}");
        }
    }

    #[test]
    fn snapshot_restore_continue_matches_uninterrupted() {
        for kind in [
            BackendKind::ShardedCc,
            BackendKind::Cc,
            BackendKind::Ct,
            BackendKind::Rcc,
        ] {
            let reference = Engine::new(&spec(kind)).unwrap();
            let snapshotted = Engine::new(&spec(kind)).unwrap();
            feed(&reference, 150, 0.0);
            feed(&snapshotted, 150, 0.0);
            let json = snapshotted.snapshot_json().unwrap();
            drop(snapshotted);
            let restored = Engine::from_snapshot_json(&json).unwrap();
            assert_eq!(restored.kind(), kind);
            feed(&reference, 150, 0.5);
            feed(&restored, 150, 0.5);
            let a = reference.query(Freshness::Strict).unwrap();
            let b = restored.query(Freshness::Strict).unwrap();
            assert_eq!(
                a.centers, b.centers,
                "{kind:?} snapshot continuation diverged"
            );
        }
    }

    #[test]
    fn restored_engine_republishes_the_saved_epoch() {
        for kind in [BackendKind::ShardedCc, BackendKind::Cc] {
            let engine = Engine::new(&spec(kind)).unwrap();
            feed(&engine, 150, 0.0);
            engine.query(Freshness::Strict).unwrap();
            engine.query(Freshness::Strict).unwrap();
            let saved = engine.published().unwrap();
            assert_eq!(saved.epoch, 2, "{kind:?}");

            let json = engine.snapshot_json().unwrap();
            let restored = Engine::from_snapshot_json(&json).unwrap();
            // Cached reads resume at the saved epoch, without any query.
            let republished = restored.query(Freshness::Cached).unwrap();
            assert_eq!(republished.as_ref(), saved.as_ref(), "{kind:?}");
            assert_eq!(restored.epoch(), 2, "{kind:?}");
            // The next strict query continues the sequence.
            let next = restored.query(Freshness::Strict).unwrap();
            assert_eq!(next.epoch, 3, "{kind:?}");
        }

        // An engine snapshotted before any query restores with an empty
        // slot (epoch 0), not a fabricated answer.
        let engine = Engine::new(&spec(BackendKind::Cc)).unwrap();
        feed(&engine, 30, 0.0);
        let restored = Engine::from_snapshot_json(&engine.snapshot_json().unwrap()).unwrap();
        assert_eq!(restored.epoch(), 0);
        assert!(restored.published().is_none());
    }

    #[test]
    fn diverging_published_copies_in_a_sharded_snapshot_are_rejected() {
        // A sharded snapshot stores the published answer both in the
        // envelope and inside the stream state (the latter serves
        // in-process ShardedStream restores). The two are written from one
        // slot under one lock hold; a snapshot where they disagree was
        // tampered with or corrupted and must not restore as either copy.
        let engine = Engine::new(&spec(BackendKind::ShardedCc)).unwrap();
        feed(&engine, 150, 0.0);
        engine.query(Freshness::Strict).unwrap();
        let json = engine.snapshot_json().unwrap();

        // The epoch appears exactly twice (envelope + stream state); bump
        // only the first (envelope-level) occurrence.
        assert_eq!(json.matches("\"epoch\":1").count(), 2, "fixture drifted");
        let tampered = json.replacen("\"epoch\":1", "\"epoch\":9", 1);
        assert!(Engine::from_snapshot_json(&tampered).is_err());

        // Untampered, the same snapshot restores fine.
        assert!(Engine::from_snapshot_json(&json).is_ok());
    }

    #[test]
    fn snapshot_envelope_is_versioned_and_validated() {
        let engine = Engine::new(&spec(BackendKind::Cc)).unwrap();
        feed(&engine, 30, 0.0);
        let json = engine.snapshot_json().unwrap();
        assert!(json.contains("\"snapshot_version\":2"));
        assert!(json.contains("\"backend\":\"cc\""));

        assert!(Engine::from_snapshot_json("not json").is_err());
        let wrong_version = json.replace("\"snapshot_version\":2", "\"snapshot_version\":99");
        assert!(Engine::from_snapshot_json(&wrong_version).is_err());
        let wrong_backend = json.replace("\"backend\":\"cc\"", "\"backend\":\"nope\"");
        assert!(Engine::from_snapshot_json(&wrong_backend).is_err());
    }

    #[test]
    fn tampered_snapshots_are_rejected_not_restored() {
        let engine = Engine::new(&spec(BackendKind::Cc)).unwrap();
        feed(&engine, 30, 0.0);
        let json = engine.snapshot_json().unwrap();

        // A hand-edited bucket size of 0 would make the partial bucket
        // never flush; both the buffer's own deserializer and the config
        // validation must refuse it.
        let zero_bucket = json.replace("\"bucket_size\":20", "\"bucket_size\":0");
        assert_ne!(zero_bucket, json, "fixture drifted: bucket_size not found");
        assert!(Engine::from_snapshot_json(&zero_bucket).is_err());

        // Same for a config-level k = 0.
        let zero_k = json.replace("\"k\":2", "\"k\":0");
        assert_ne!(zero_k, json, "fixture drifted: k not found");
        assert!(Engine::from_snapshot_json(&zero_k).is_err());
    }

    #[test]
    fn backend_tags_round_trip() {
        for kind in [
            BackendKind::ShardedCc,
            BackendKind::Cc,
            BackendKind::Ct,
            BackendKind::Rcc,
        ] {
            assert_eq!(BackendKind::parse(kind.tag()), Some(kind));
        }
        assert_eq!(BackendKind::parse("SHARDED"), Some(BackendKind::ShardedCc));
        assert_eq!(BackendKind::parse("bogus"), None);
    }
}
