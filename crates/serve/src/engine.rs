//! The [`Engine`] facade: a concurrent map of per-tenant streams, each one
//! a clusterer behind its own mutex for writes and an atomically swapped
//! published snapshot for reads, plus snapshot/restore and LRU eviction.
//!
//! The engine is what connection handler threads talk to. Each **tenant**
//! (wire-level `namespace`) owns an independent stream: either a
//! [`ShardedStream`] over per-shard CC clusterers (the default — ingestion
//! parallelism comes from the shard worker threads, so the coordinator
//! mutex is held only for cheap buffering and channel sends) or one of the
//! single-threaded clusterers (CC, CT, RCC) for small deployments. Tenants
//! are created lazily on first touch from the engine's default spec, or
//! explicitly with a custom spec via [`Engine::configure`]; requests that
//! carry no namespace run against [`DEFAULT_NAMESPACE`], which exists from
//! construction — so an engine that never sees a namespace behaves exactly
//! like the pre-tenancy single-stream engine.
//!
//! ## The two read paths
//!
//! Every **strict** query runs under its tenant's ingest mutex, drains
//! in-flight batches, recomputes the answer and republishes it (with a
//! fresh epoch) through that tenant's [`PublishSlot`]. A **cached** query
//! never touches the mutex: it loads the currently published
//! [`PublishedClustering`] — one `Arc` clone — so a slow coreset merge or a
//! burst of ingest batches on *any* tenant cannot stall it. Cached answers
//! are stale (up to the time since the last publish) but never torn:
//! epoch, centers, cost and `points_seen` all come from one immutable
//! value.
//!
//! ## Eviction
//!
//! The engine holds at most `max_resident` tenants in memory. When a new
//! tenant would exceed the cap, the least-recently-touched resident is
//! paged out: its complete state is snapshotted to
//! `<dir>/tenant-<namespace>.json` (the same versioned envelope as an
//! explicit snapshot) and it is dropped from the map. The next request
//! that names the evicted tenant transparently restores it from that file
//! and continues the stream **bit-identically** — evict → restore →
//! continue equals never having evicted, including the republished epoch.
//! Without an eviction directory the cap is a hard limit
//! (`tenant_limit`).
//!
//! Snapshots serialize the complete backend state — configuration, coreset
//! tree levels, caches, partially filled buckets and RNG positions — into a
//! versioned JSON envelope ([`SnapshotFile`]), so a server restarted from a
//! snapshot continues the stream bit-identically to one that never stopped.
//! The envelope also carries the currently published answer, so a restored
//! engine republishes the same epoch instead of starting readers cold.

use crate::codec::{decode_replication_record, encode_replication_record};
use crate::protocol::{
    validate_namespace, Freshness, ReplicationRecord, Window, DEFAULT_NAMESPACE,
};
use serde::{Deserialize, Serialize};
use skm_clustering::error::{ClusteringError, Result};
use skm_stream::{
    CachedCoresetTree, CoresetTreeClusterer, PublishSlot, PublishedClustering, RecursiveCachedTree,
    ShardedStream, ShardedStreamState, StreamConfig, StreamStats, StreamingClusterer, WindowInfo,
};
use skm_wal::{Wal, WalError, WalOptions};
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// Current snapshot envelope version; bump when [`SnapshotFile`] or any
/// serialized backend state changes shape incompatibly. Version 2 added the
/// `published` field; version 3 added the `namespace` field (per-tenant
/// snapshots and eviction files).
pub const SNAPSHOT_VERSION: u32 = 3;

/// Default cap on resident (in-memory) tenants.
pub const DEFAULT_MAX_RESIDENT: usize = 64;

/// RNG seed recorded in the derived default spec when an engine is
/// cold-started from a snapshot (the backend's own RNG state is restored
/// bit-exactly from the file; this seed only parameterizes tenants created
/// lazily *afterwards*).
pub const DERIVED_SEED: u64 = 42;

/// The eviction file name for a tenant, relative to the eviction
/// directory. Namespaces pass [`validate_namespace`], so the result is
/// always a bare file name inside the directory.
#[must_use]
pub fn evict_file_name(namespace: &str) -> String {
    format!("tenant-{namespace}.json")
}

/// Durability settings for the engine's per-tenant write-ahead log.
///
/// With a WAL attached ([`Engine::with_wal`]), every accepted state
/// mutation — ingested points plus strict query/stats markers (strict
/// reads consume RNG and publish epochs, so replay must re-run them) — is
/// logged to `<dir>/<namespace>/` *before* it is applied, group-committed
/// on the configured fsync cadence, and periodically folded into an
/// incremental checkpoint. Crash recovery (and follower bootstrap) is
/// checkpoint + tail replay, bit-identical to the uninterrupted run. The
/// WAL also replaces eviction files: paging a tenant out becomes
/// "checkpoint and drop", and the log directory is the single on-disk
/// source of truth.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding one log subdirectory per tenant.
    pub dir: PathBuf,
    /// Group-commit fsync interval in milliseconds; `0` makes every
    /// append durable before it is acknowledged.
    pub fsync_ms: u64,
    /// Fold the log into a fresh checkpoint once the tail exceeds this
    /// many bytes.
    pub checkpoint_bytes: usize,
}

impl WalConfig {
    /// Durability settings rooted at `dir` with the [`WalOptions`]
    /// defaults (5 ms group commit, 4 MiB checkpoint threshold).
    #[must_use]
    pub fn new(dir: PathBuf) -> Self {
        let defaults = WalOptions::default();
        WalConfig {
            dir,
            fsync_ms: defaults.fsync_interval.as_millis() as u64,
            checkpoint_bytes: defaults.checkpoint_bytes,
        }
    }

    /// Replaces the fsync interval (milliseconds; 0 = every append).
    #[must_use]
    pub fn with_fsync_ms(mut self, fsync_ms: u64) -> Self {
        self.fsync_ms = fsync_ms;
        self
    }

    /// Replaces the checkpoint threshold in tail bytes.
    #[must_use]
    pub fn with_checkpoint_bytes(mut self, bytes: usize) -> Self {
        self.checkpoint_bytes = bytes;
        self
    }

    /// The per-tenant log options this configuration expands to.
    #[must_use]
    pub fn options(&self) -> WalOptions {
        WalOptions::default()
            .with_fsync_ms(self.fsync_ms)
            .with_checkpoint_bytes(self.checkpoint_bytes)
    }

    /// The log directory for one tenant. Namespaces pass
    /// [`validate_namespace`], so the result is always directly inside
    /// `dir`.
    #[must_use]
    pub fn tenant_dir(&self, namespace: &str) -> PathBuf {
        self.dir.join(namespace)
    }
}

/// Replication position of a follower engine ([`Engine::with_follower`]),
/// shared between the tailing loop (the writer) and the serving path (the
/// reader). Lag is measured in log records: the primary's last known
/// sequence minus the last sequence applied locally.
#[derive(Debug)]
pub struct FollowerStatus {
    /// Cached reads are refused while the lag exceeds this many records.
    max_lag: u64,
    /// Last record sequence applied locally (0 before the first frame).
    applied_seq: AtomicU64,
    /// Highest primary sequence observed in any replication frame.
    primary_seq: AtomicU64,
    /// True while the tailing connection to the primary is up.
    live: AtomicBool,
    /// True once any bootstrap snapshot has been applied.
    synced: AtomicBool,
}

impl FollowerStatus {
    fn new(max_lag: u64) -> Self {
        FollowerStatus {
            max_lag,
            applied_seq: AtomicU64::new(0),
            primary_seq: AtomicU64::new(0),
            live: AtomicBool::new(false),
            synced: AtomicBool::new(false),
        }
    }

    /// Records a freshly applied bootstrap snapshot covering `seq`.
    pub fn note_snapshot(&self, seq: u64) {
        self.applied_seq.store(seq, Ordering::Release);
        self.primary_seq.fetch_max(seq, Ordering::AcqRel);
        self.synced.store(true, Ordering::Release);
        self.live.store(true, Ordering::Release);
    }

    /// Records one applied replication record and the primary position it
    /// was shipped with.
    pub fn note_record(&self, seq: u64, primary_seq: u64) {
        self.applied_seq.store(seq, Ordering::Release);
        self.primary_seq.fetch_max(primary_seq, Ordering::AcqRel);
        self.live.store(true, Ordering::Release);
    }

    /// Marks the tailing connection up or down.
    pub fn set_live(&self, live: bool) {
        self.live.store(live, Ordering::Release);
    }

    /// Whether a bootstrap snapshot has ever been applied.
    #[must_use]
    pub fn synced(&self) -> bool {
        self.synced.load(Ordering::Acquire)
    }

    /// Last record sequence applied locally.
    #[must_use]
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq.load(Ordering::Acquire)
    }

    /// Current lag bound in records (primary position minus applied).
    #[must_use]
    pub fn lag(&self) -> u64 {
        self.primary_seq
            .load(Ordering::Acquire)
            .saturating_sub(self.applied_seq.load(Ordering::Acquire))
    }

    /// Why cached reads must currently be refused, or `None` when the
    /// follower is inside its lag bound.
    #[must_use]
    pub fn block_reason(&self) -> Option<String> {
        if !self.synced() {
            return Some("follower has not yet synchronized with its primary".to_string());
        }
        if !self.live.load(Ordering::Acquire) {
            return Some("follower lost contact with its primary".to_string());
        }
        let lag = self.lag();
        if lag > self.max_lag {
            return Some(format!(
                "follower lag of {lag} records exceeds the bound of {}",
                self.max_lag
            ));
        }
        None
    }
}

/// Maps a log failure to the engine's error type: corruption keeps its
/// typed identity (`wal_corrupt` ⇒ [`crate::protocol::ErrorCode::WalCorrupt`]),
/// I/O failures surface as internal errors.
fn wal_err(e: WalError) -> ClusteringError {
    ClusteringError::InvalidParameter {
        name: match e {
            WalError::Corrupt { .. } => "wal_corrupt",
            WalError::Io(_) => "wal_io",
        },
        message: e.to_string(),
    }
}

/// Which clusterer the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Sharded multi-threaded ingestion over per-shard CC clusterers
    /// (the recommended default).
    ShardedCc,
    /// Single-threaded cached coreset tree.
    Cc,
    /// Single-threaded plain coreset tree (streamkm++).
    Ct,
    /// Single-threaded recursive coreset cache.
    Rcc,
}

impl BackendKind {
    /// The tag stored in snapshot files and accepted by
    /// [`BackendKind::parse`].
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            BackendKind::ShardedCc => "sharded-cc",
            BackendKind::Cc => "cc",
            BackendKind::Ct => "ct",
            BackendKind::Rcc => "rcc",
        }
    }

    /// Parses a backend tag (case-insensitive).
    #[must_use]
    pub fn parse(tag: &str) -> Option<Self> {
        match tag.to_ascii_lowercase().as_str() {
            "sharded-cc" | "sharded" => Some(BackendKind::ShardedCc),
            "cc" => Some(BackendKind::Cc),
            "ct" => Some(BackendKind::Ct),
            "rcc" => Some(BackendKind::Rcc),
            _ => None,
        }
    }
}

/// How to build one tenant's stream (and, as the engine's default spec,
/// every lazily created tenant).
#[derive(Debug, Clone, Copy)]
pub struct EngineSpec {
    /// Backend to run.
    pub kind: BackendKind,
    /// Shared streaming configuration (k, bucket size, query settings).
    pub stream: StreamConfig,
    /// Shard count (only used by [`BackendKind::ShardedCc`]).
    pub shards: usize,
    /// Points buffered per shard before a batch ships (sharded backend).
    pub batch: usize,
    /// RCC nesting depth (only used by [`BackendKind::Rcc`]).
    pub nesting_depth: u32,
    /// Master RNG seed.
    pub seed: u64,
}

impl EngineSpec {
    /// The default serving spec: sharded CC with `shards` workers.
    #[must_use]
    pub fn sharded_cc(stream: StreamConfig, shards: usize, batch: usize, seed: u64) -> Self {
        Self {
            kind: BackendKind::ShardedCc,
            stream,
            shards,
            batch,
            nesting_depth: 2,
            seed,
        }
    }
}

/// The concrete clusterer behind a tenant's mutex.
#[derive(Debug)]
enum Backend {
    ShardedCc(ShardedStream<CachedCoresetTree>),
    Cc(CachedCoresetTree),
    Ct(CoresetTreeClusterer),
    Rcc(RecursiveCachedTree),
}

impl Backend {
    fn build(spec: &EngineSpec) -> Result<Self> {
        Ok(match spec.kind {
            BackendKind::ShardedCc => Backend::ShardedCc(ShardedStream::cc(
                spec.stream,
                spec.shards,
                spec.batch,
                spec.seed,
            )?),
            BackendKind::Cc => Backend::Cc(CachedCoresetTree::new(spec.stream, spec.seed)?),
            BackendKind::Ct => Backend::Ct(CoresetTreeClusterer::new(spec.stream, spec.seed)?),
            BackendKind::Rcc => Backend::Rcc(RecursiveCachedTree::new(
                spec.stream,
                spec.nesting_depth,
                spec.seed,
            )?),
        })
    }

    fn kind(&self) -> BackendKind {
        match self {
            Backend::ShardedCc(_) => BackendKind::ShardedCc,
            Backend::Cc(_) => BackendKind::Cc,
            Backend::Ct(_) => BackendKind::Ct,
            Backend::Rcc(_) => BackendKind::Rcc,
        }
    }

    /// Reconstructs a spec describing this backend. Used when an engine is
    /// cold-started from a snapshot: the restored tenant keeps its exact
    /// state, and tenants created lazily afterwards inherit this shape
    /// (with [`DERIVED_SEED`], since a backend's original seed is not
    /// recoverable from its mid-stream RNG position).
    fn derived_spec(&self) -> EngineSpec {
        match self {
            Backend::ShardedCc(s) => EngineSpec {
                kind: BackendKind::ShardedCc,
                stream: *s.config(),
                shards: s.shards(),
                batch: s.batch_size(),
                nesting_depth: 2,
                seed: DERIVED_SEED,
            },
            Backend::Cc(c) => EngineSpec {
                kind: BackendKind::Cc,
                stream: *c.config(),
                shards: 1,
                batch: 128,
                nesting_depth: 2,
                seed: DERIVED_SEED,
            },
            Backend::Ct(c) => EngineSpec {
                kind: BackendKind::Ct,
                stream: *c.config(),
                shards: 1,
                batch: 128,
                nesting_depth: 2,
                seed: DERIVED_SEED,
            },
            Backend::Rcc(c) => EngineSpec {
                kind: BackendKind::Rcc,
                stream: *c.config(),
                shards: 1,
                batch: 128,
                nesting_depth: c.nesting_depth(),
                seed: DERIVED_SEED,
            },
        }
    }

    fn clusterer(&mut self) -> &mut dyn StreamingClusterer {
        match self {
            Backend::ShardedCc(s) => s,
            Backend::Cc(c) => c,
            Backend::Ct(c) => c,
            Backend::Rcc(c) => c,
        }
    }

    fn stats(&mut self) -> Result<StreamStats> {
        match self {
            Backend::ShardedCc(s) => s.stats(),
            other => {
                let c = other.clusterer();
                Ok(StreamStats {
                    points_seen: c.points_seen(),
                    shards: 1,
                    per_shard_points: vec![c.points_seen()],
                    last_query: c.last_query_stats(),
                })
            }
        }
    }

    fn state_value(&mut self) -> Result<serde::Value> {
        Ok(match self {
            Backend::ShardedCc(s) => s.snapshot()?.to_value(),
            Backend::Cc(c) => c.to_value(),
            Backend::Ct(c) => c.to_value(),
            Backend::Rcc(c) => c.to_value(),
        })
    }

    fn from_state(kind: BackendKind, state: &serde::Value) -> Result<Self> {
        let restore_err = |e: serde::Error| ClusteringError::InvalidParameter {
            name: "snapshot",
            message: e.to_string(),
        };
        let backend = match kind {
            BackendKind::ShardedCc => {
                // `ShardedStream::restore` validates config and cursor
                // itself.
                let state = ShardedStreamState::from_value(state).map_err(restore_err)?;
                Backend::ShardedCc(ShardedStream::restore(&state)?)
            }
            BackendKind::Cc => {
                Backend::Cc(CachedCoresetTree::from_value(state).map_err(restore_err)?)
            }
            BackendKind::Ct => {
                Backend::Ct(CoresetTreeClusterer::from_value(state).map_err(restore_err)?)
            }
            BackendKind::Rcc => {
                Backend::Rcc(RecursiveCachedTree::from_value(state).map_err(restore_err)?)
            }
        };
        // A tampered single-backend snapshot must not smuggle in a
        // configuration the constructors would have rejected.
        match &backend {
            Backend::ShardedCc(_) => {}
            Backend::Cc(c) => c.config().validate()?,
            Backend::Ct(c) => c.config().validate()?,
            Backend::Rcc(c) => c.config().validate()?,
        }
        Ok(backend)
    }
}

/// Versioned on-disk snapshot envelope: the backend tag picks the concrete
/// state type at restore time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnapshotFile {
    /// Envelope version ([`SNAPSHOT_VERSION`]).
    pub snapshot_version: u32,
    /// The tenant this snapshot belongs to ([`DEFAULT_NAMESPACE`] for the
    /// anonymous pre-tenancy stream).
    pub namespace: String,
    /// Backend tag ([`BackendKind::tag`]).
    pub backend: String,
    /// The answer published at snapshot time, if any; restoring republishes
    /// it so cached reads resume at the saved epoch.
    pub published: Option<PublishedClustering>,
    /// The backend's serialized state.
    pub state: serde::Value,
}

/// Cap on retained arrival-log entries per tenant (entries are coalesced
/// per engine-clock millisecond, so this covers minutes of sustained
/// ingest; overflow folds the oldest entries into the un-timestamped
/// base).
const MAX_ARRIVAL_ENTRIES: usize = 4096;

/// Per-tenant record of *when* points arrived, on the engine's monotone
/// millisecond clock. This is what resolves a `last_secs` wire window to a
/// concrete point count **before** the query is logged, so a replayed
/// `QueryWindow` record never consults a clock.
///
/// Entries are `(ms, cumulative points after that ingest)`, coalesced per
/// millisecond. Points that predate the log — recovered, replicated or
/// restored points, which carry no timestamps — sit in `base` and are
/// older than any time window: **time windows never extend across a
/// restart** (point-count windows do; they are resolved against the
/// summary structure, not this log).
#[derive(Debug, Default)]
struct ArrivalLog {
    /// Points older than every timestamped entry.
    base: u64,
    /// `(engine ms, cumulative points seen after)` — ms strictly
    /// increasing.
    entries: VecDeque<(u64, u64)>,
}

impl ArrivalLog {
    /// Records one ingest: `before`/`after` are the tenant's points-seen
    /// around it. Called under the tenant's backend lock.
    fn record(&mut self, now_ms: u64, before: u64, after: u64) {
        if self.entries.is_empty() {
            self.base = before;
        }
        if let Some(last) = self.entries.back_mut() {
            if last.0 >= now_ms {
                last.1 = after;
                return;
            }
        }
        self.entries.push_back((now_ms, after));
        if self.entries.len() > MAX_ARRIVAL_ENTRIES {
            if let Some((_, cum)) = self.entries.pop_front() {
                self.base = cum;
            }
        }
    }

    /// How many of the tenant's `total` points arrived at or after
    /// `cutoff_ms`. A point that arrived exactly at the cutoff is exactly
    /// the window's span old and still belongs to "the last T seconds" —
    /// in particular, ingests coalesced into engine millisecond 0 must
    /// count when the cutoff saturates to 0.
    fn points_since(&self, cutoff_ms: u64, total: u64) -> u64 {
        let mut old = self.base;
        for &(ms, cum) in &self.entries {
            if ms >= cutoff_ms {
                break;
            }
            old = cum;
        }
        total.saturating_sub(old)
    }
}

/// One resident tenant: its stream behind a mutex, its publish slot, and
/// the bookkeeping eviction needs.
#[derive(Debug)]
struct Tenant {
    namespace: String,
    backend: Mutex<Backend>,
    /// The published-answer cell cached reads are served from. For the
    /// sharded backend this is the stream's own slot (the stream publishes
    /// from inside its query); for single-threaded backends the engine
    /// publishes after each strict query.
    slot: Arc<PublishSlot>,
    /// Shard count, fixed at construction (reported by cached stats
    /// without taking the lock).
    shards: usize,
    /// Set under the backend mutex when this tenant is paged out. An
    /// operation that locked the backend through a stale `Arc` observes
    /// the flag and retries through the map, which restores the tenant —
    /// so no update can land on a zombie copy after its state went to
    /// disk.
    evicted: AtomicBool,
    /// Engine-clock timestamp of the last touch (LRU victim selection).
    last_touch: AtomicU64,
    /// Milliseconds since engine start at the last touch (idle eviction).
    last_touch_ms: AtomicU64,
    /// This tenant's write-ahead log, when the engine runs with one.
    /// Locked strictly **after** the backend mutex (lock order: map →
    /// tenant backend → tenant WAL), so appends serialize with the state
    /// mutations they describe.
    wal: Option<Mutex<Wal>>,
    /// Arrival timestamps for `last_secs` window resolution. Locked only
    /// while the backend mutex is held (same order as the WAL), never
    /// persisted: time windows do not extend across a restart.
    arrivals: Mutex<ArrivalLog>,
}

impl Tenant {
    /// Wraps a freshly built backend with its publish slot and shard count.
    fn assemble(namespace: &str, backend: Backend) -> Self {
        let (slot, shards) = match &backend {
            Backend::ShardedCc(s) => (s.publish_slot(), s.shards()),
            _ => (Arc::new(PublishSlot::new()), 1),
        };
        Tenant {
            namespace: namespace.to_string(),
            backend: Mutex::new(backend),
            slot,
            shards,
            evicted: AtomicBool::new(false),
            last_touch: AtomicU64::new(0),
            last_touch_ms: AtomicU64::new(0),
            wal: None,
            arrivals: Mutex::new(ArrivalLog::default()),
        }
    }

    fn create(namespace: &str, spec: &EngineSpec) -> Result<Self> {
        Ok(Self::assemble(namespace, Backend::build(spec)?))
    }

    /// Locks the backend, recovering from mutex poisoning.
    ///
    /// A poisoned lock means a handler thread panicked while holding it.
    /// The clusterers maintain their invariants through `Result`s — a panic
    /// indicates a bug, not a routine failure — and before this recovery
    /// existed, one such panic made *every* later request on *every*
    /// connection fail with an "engine poisoned" error until the process
    /// was restarted. Availability wins: recover the guard and keep
    /// serving.
    fn lock(&self) -> MutexGuard<'_, Backend> {
        self.backend.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Serializes this tenant into the versioned JSON envelope. Caller
    /// holds the backend guard, so state and published answer are written
    /// from one consistent lock hold.
    fn snapshot_string(&self, backend: &mut Backend) -> Result<String> {
        let file = SnapshotFile {
            snapshot_version: SNAPSHOT_VERSION,
            namespace: self.namespace.clone(),
            backend: backend.kind().tag().to_string(),
            published: self.slot.load().map(|p| p.as_ref().clone()),
            state: backend.state_value()?,
        };
        serde_json::to_string(&file).map_err(|e| ClusteringError::InvalidParameter {
            name: "snapshot",
            message: e.to_string(),
        })
    }

    /// Rebuilds a tenant from a snapshot envelope. `expected_namespace`
    /// pins the envelope to the tenant an eviction file is named after; a
    /// mismatch means the file was renamed or tampered with.
    fn from_snapshot_text(text: &str, expected_namespace: Option<&str>) -> Result<Self> {
        let invalid = |message: String| ClusteringError::InvalidParameter {
            name: "snapshot",
            message,
        };
        let file: SnapshotFile = serde_json::from_str(text).map_err(|e| invalid(e.to_string()))?;
        if file.snapshot_version != SNAPSHOT_VERSION {
            return Err(invalid(format!(
                "unsupported snapshot version {} (this build reads version {SNAPSHOT_VERSION})",
                file.snapshot_version
            )));
        }
        validate_namespace(&file.namespace).map_err(invalid)?;
        if let Some(expected) = expected_namespace {
            if file.namespace != expected {
                return Err(invalid(format!(
                    "snapshot belongs to tenant `{}`, expected `{expected}`",
                    file.namespace
                )));
            }
        }
        let kind = BackendKind::parse(&file.backend)
            .ok_or_else(|| invalid(format!("unknown backend `{}`", file.backend)))?;
        let tenant = Tenant::assemble(&file.namespace, Backend::from_state(kind, &file.state)?);
        // The sharded backend's state carries its own copy of the published
        // answer (in-process `ShardedStream` restores need it) and has
        // already seeded the slot with it. Both copies were written from
        // the same slot under one lock hold, so a disagreement means the
        // snapshot was tampered with or corrupted — reject it instead of
        // silently letting one copy win.
        if kind == BackendKind::ShardedCc
            && tenant.slot.load().map(|p| p.as_ref().clone()) != file.published
        {
            return Err(invalid(
                "published answer in the envelope disagrees with the backend state".to_string(),
            ));
        }
        // Republish the snapshot-time answer so cached reads on the
        // restored tenant resume at the saved epoch.
        tenant.slot.restore(file.published);
        Ok(tenant)
    }
}

/// The thread-safe serving facade over the tenant map.
///
/// All methods take `&self`; connection handler threads share the engine
/// through an `Arc`. Writes (and strict reads) serialize on the target
/// tenant's mutex only — tenants never contend with each other — and
/// cached reads go through the tenant's publish slot without any lock.
/// Lock order is strictly map → tenant; no path acquires the map lock
/// while holding a tenant's backend mutex.
#[derive(Debug)]
pub struct Engine {
    tenants: RwLock<HashMap<String, Arc<Tenant>>>,
    /// Spec used for every lazily created tenant (and the eagerly created
    /// default tenant).
    default_spec: EngineSpec,
    /// Cap on resident tenants (≥ 1).
    max_resident: usize,
    /// Where evicted tenants are paged out to; `None` makes the cap a hard
    /// limit.
    evict_dir: Option<PathBuf>,
    /// Monotone logical clock stamping tenant touches for LRU.
    clock: AtomicU64,
    /// Durability settings. `Some` attaches a per-tenant write-ahead log
    /// and makes the log directory the single on-disk source of truth
    /// (page-out becomes "checkpoint and drop"; eviction files are never
    /// written or read).
    wal: Option<WalConfig>,
    /// Engine start time: the zero point of `last_touch_ms` stamps (idle
    /// eviction measures against this clock).
    started: Instant,
    /// Follower mode: `Some` makes this engine a read-only replica —
    /// writes and strict reads are refused at dispatch, and state arrives
    /// through [`Engine::install_replica_snapshot_in`] /
    /// [`Engine::apply_replication_record_in`].
    follower: Option<FollowerStatus>,
}

impl Engine {
    /// Builds an engine from a spec with the default resident cap and no
    /// eviction directory. The [`DEFAULT_NAMESPACE`] tenant is created
    /// eagerly, so spec validation errors surface here rather than on the
    /// first request.
    ///
    /// # Errors
    /// Propagates configuration validation errors.
    pub fn new(spec: &EngineSpec) -> Result<Self> {
        Self::with_options(spec, DEFAULT_MAX_RESIDENT, None)
    }

    /// Builds an engine with an explicit resident-tenant cap and an
    /// optional eviction directory. A `max_resident` of 0 is treated as 1
    /// (the default tenant always exists).
    ///
    /// # Errors
    /// Propagates configuration validation errors.
    pub fn with_options(
        spec: &EngineSpec,
        max_resident: usize,
        evict_dir: Option<PathBuf>,
    ) -> Result<Self> {
        let default_tenant = Tenant::create(DEFAULT_NAMESPACE, spec)?;
        let mut map = HashMap::new();
        map.insert(DEFAULT_NAMESPACE.to_string(), Arc::new(default_tenant));
        Ok(Engine {
            tenants: RwLock::new(map),
            default_spec: *spec,
            max_resident: max_resident.max(1),
            evict_dir,
            clock: AtomicU64::new(1),
            wal: None,
            started: Instant::now(),
            follower: None,
        })
    }

    /// Replaces the resident cap and eviction directory (builder-style, for
    /// engines cold-started via [`Engine::from_snapshot_json`]).
    #[must_use]
    pub fn with_eviction(mut self, max_resident: usize, evict_dir: Option<PathBuf>) -> Self {
        self.max_resident = max_resident.max(1);
        self.evict_dir = evict_dir;
        self
    }

    /// Attaches a write-ahead log and runs crash recovery (builder-style,
    /// called once at startup before the engine serves requests).
    ///
    /// The default tenant — created fresh by the constructor — is rebuilt
    /// through recovery (checkpoint + tail replay), and every other
    /// tenant directory under the log root is recovered eagerly so
    /// corruption surfaces at startup rather than on first touch.
    ///
    /// # Errors
    /// Propagates I/O failures and [`skm_wal`] corruption verdicts
    /// (`wal_corrupt`).
    pub fn with_wal(mut self, config: WalConfig) -> Result<Self> {
        let root = config.dir.clone();
        std::fs::create_dir_all(&root).map_err(|e| wal_err(WalError::Io(e)))?;
        self.wal = Some(config);
        let default_tenant =
            Arc::new(self.create_or_recover(DEFAULT_NAMESPACE, &self.default_spec)?);
        {
            let mut map = self.write_map();
            // Drop the constructor's fresh default tenant in favour of the
            // recovered one.
            map.clear();
            self.touch(&default_tenant);
            map.insert(DEFAULT_NAMESPACE.to_string(), default_tenant);
        }
        let mut others = Vec::new();
        for entry in std::fs::read_dir(&root).map_err(|e| wal_err(WalError::Io(e)))? {
            let entry = entry.map_err(|e| wal_err(WalError::Io(e)))?;
            if !entry.path().is_dir() {
                continue;
            }
            let Some(name) = entry.file_name().to_str().map(String::from) else {
                continue;
            };
            if name != DEFAULT_NAMESPACE && validate_namespace(&name).is_ok() {
                others.push(name);
            }
        }
        // Deterministic recovery order (read_dir order is not).
        others.sort();
        for namespace in &others {
            self.tenant(namespace)?;
        }
        Ok(self)
    }

    /// Builds (or recovers) one tenant. Without a WAL this is a plain
    /// [`Tenant::create`]. With one, the tenant's log directory is opened
    /// and recovered: state = checkpoint blob + tail replayed through the
    /// same code paths that produced it, bit-identical to the
    /// uninterrupted run. A brand-new tenant writes **checkpoint 0**
    /// immediately — the fresh snapshot carries its configuration and
    /// seed, so recovery never needs a special "empty log" state.
    fn create_or_recover(&self, namespace: &str, spec: &EngineSpec) -> Result<Tenant> {
        let Some(cfg) = &self.wal else {
            return Tenant::create(namespace, spec);
        };
        let recovered = Wal::open(cfg.tenant_dir(namespace), cfg.options()).map_err(wal_err)?;
        let skm_wal::Recovered {
            mut wal,
            checkpoint,
            tail,
        } = recovered;
        let mut tenant = match checkpoint {
            Some((_, blob)) => {
                let text =
                    String::from_utf8(blob).map_err(|e| ClusteringError::InvalidParameter {
                        name: "wal_corrupt",
                        message: format!(
                            "checkpoint blob for tenant `{namespace}` is not UTF-8: {e}"
                        ),
                    })?;
                Tenant::from_snapshot_text(&text, Some(namespace))?
            }
            None => {
                // Records can only exist after checkpoint 0 was written;
                // records without any checkpoint mean the checkpoint was
                // deleted or never survived — unrecoverable.
                if !tail.is_empty() {
                    return Err(ClusteringError::InvalidParameter {
                        name: "wal_corrupt",
                        message: format!(
                            "log for tenant `{namespace}` has {} records but no checkpoint",
                            tail.len()
                        ),
                    });
                }
                let fresh = Tenant::create(namespace, spec)?;
                let json = {
                    let mut guard = fresh.lock();
                    fresh.snapshot_string(&mut guard)?
                };
                wal.checkpoint(json.as_bytes()).map_err(wal_err)?;
                fresh
            }
        };
        {
            let mut guard = tenant.lock();
            for (_, payload) in &tail {
                let record = decode_replication_record(payload).map_err(|message| {
                    ClusteringError::InvalidParameter {
                        name: "wal_corrupt",
                        message,
                    }
                })?;
                Self::apply_record(&mut guard, &tenant, &record)?;
            }
        }
        tenant.wal = Some(Mutex::new(wal));
        Ok(tenant)
    }

    /// Applies one replication record to a backend, through the same code
    /// paths that produced it on the primary (recovery replay and
    /// follower apply share this). Caller holds the backend guard.
    fn apply_record(
        backend: &mut Backend,
        tenant: &Tenant,
        record: &ReplicationRecord,
    ) -> Result<()> {
        match record {
            ReplicationRecord::Ingest { point } => {
                backend.clusterer().update(point)?;
            }
            ReplicationRecord::IngestBatch { points } => {
                let refs: Vec<&[f64]> = points.iter().map(Vec::as_slice).collect();
                backend.clusterer().update_batch(&refs)?;
            }
            // Strict reads mutate: they drain buffers, consume coordinator
            // RNG and publish an epoch. Re-running them is what keeps
            // recovered state bit-identical (including the epoch counter).
            ReplicationRecord::Query {} => match backend {
                Backend::ShardedCc(s) => {
                    s.query_published()?;
                }
                other => {
                    let result = other.clusterer().query_clustering()?;
                    tenant.slot.publish(result);
                }
            },
            ReplicationRecord::Stats {} => {
                backend.stats()?;
            }
            // Windowed strict reads consume the shared query RNG just like
            // whole-stream ones (selection is pure, extraction is not), so
            // they carry the resolved point count and are re-run verbatim.
            // `last_secs` windows were resolved to points before logging,
            // so replay never consults a clock.
            ReplicationRecord::QueryWindow { last_points } => {
                Self::run_window_query(backend, tenant, *last_points)?;
            }
        }
        Ok(())
    }

    /// Runs one strict windowed query against a backend and publishes the
    /// answer through the tenant's slot (the sharded stream publishes from
    /// inside its own query). Caller holds the backend guard.
    fn run_window_query(
        backend: &mut Backend,
        tenant: &Tenant,
        last_points: u64,
    ) -> Result<Arc<PublishedClustering>> {
        match backend {
            Backend::ShardedCc(s) => s.query_window_published(last_points),
            other => {
                let result = other.clusterer().query_window_clustering(last_points)?;
                Ok(tenant.slot.publish(result))
            }
        }
    }

    /// Bucket-granular coverage of a point window against a backend's
    /// summary structure: pure span arithmetic — no merge, no RNG, no
    /// cache traffic. Caller holds the backend guard.
    fn window_coverage(backend: &mut Backend, last_points: u64) -> Result<u64> {
        Ok(match backend {
            Backend::ShardedCc(s) => s.window_coverage(last_points)?,
            Backend::Cc(c) => c.window_coverage(last_points),
            Backend::Ct(c) => c.window_coverage(last_points),
            Backend::Rcc(c) => c.window_coverage(last_points),
        })
    }

    /// The spec lazily created tenants are built from.
    #[must_use]
    pub fn default_spec(&self) -> &EngineSpec {
        &self.default_spec
    }

    /// The resident-tenant cap.
    #[must_use]
    pub fn max_resident(&self) -> usize {
        self.max_resident
    }

    /// Namespaces of the currently resident tenants, in no particular
    /// order.
    #[must_use]
    pub fn resident_tenants(&self) -> Vec<String> {
        self.read_map().keys().cloned().collect()
    }

    fn read_map(&self) -> std::sync::RwLockReadGuard<'_, HashMap<String, Arc<Tenant>>> {
        self.tenants.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write_map(&self) -> std::sync::RwLockWriteGuard<'_, HashMap<String, Arc<Tenant>>> {
        self.tenants.write().unwrap_or_else(PoisonError::into_inner)
    }

    fn touch(&self, tenant: &Tenant) {
        tenant.last_touch.store(
            self.clock.fetch_add(1, Ordering::Relaxed),
            Ordering::Relaxed,
        );
        tenant.last_touch_ms.store(self.now_ms(), Ordering::Relaxed);
    }

    /// Milliseconds since engine construction (the clock `last_touch_ms`
    /// is stamped against).
    fn now_ms(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    fn bad_namespace(message: String) -> ClusteringError {
        ClusteringError::InvalidParameter {
            name: "namespace",
            message,
        }
    }

    fn evict_path(&self, namespace: &str) -> Option<PathBuf> {
        self.evict_dir
            .as_ref()
            .map(|d| d.join(evict_file_name(namespace)))
    }

    /// Pages one resident tenant out to disk. With a WAL this is
    /// "checkpoint and drop" — the tenant's log directory already holds
    /// everything; without one the state goes to an eviction file. The
    /// caller holds the map write lock and removes the victim afterwards.
    fn page_out(&self, victim: &Tenant) -> Result<()> {
        // Snapshot and flag under the victim's backend lock: every
        // operation that raced us either completed before the snapshot
        // (and is in it) or will observe `evicted` and retry through the
        // map (and the restore).
        let mut guard = victim.lock();
        let json = victim.snapshot_string(&mut guard)?;
        if let Some(wal) = &victim.wal {
            wal.lock()
                .unwrap_or_else(PoisonError::into_inner)
                .checkpoint(json.as_bytes())
                .map_err(wal_err)?;
        } else {
            let Some(path) = self.evict_path(&victim.namespace) else {
                return Err(ClusteringError::InvalidParameter {
                    name: "tenant_limit",
                    message: format!(
                        "resident tenant cap {} reached and no eviction directory is configured",
                        self.max_resident
                    ),
                });
            };
            let write_err = |e: std::io::Error| ClusteringError::InvalidParameter {
                name: "snapshot",
                message: format!("evicting tenant `{}`: {e}", victim.namespace),
            };
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent).map_err(write_err)?;
            }
            std::fs::write(&path, json).map_err(write_err)?;
        }
        victim.evicted.store(true, Ordering::Release);
        Ok(())
    }

    /// Evicts least-recently-touched tenants until a new one fits under
    /// the cap. Caller holds the map write lock.
    fn make_room(&self, map: &mut HashMap<String, Arc<Tenant>>) -> Result<()> {
        while map.len() >= self.max_resident {
            let Some(victim) = map
                .values()
                .min_by_key(|t| t.last_touch.load(Ordering::Relaxed))
                .cloned()
            else {
                // `len >= cap >= 1` makes the map non-empty here; if that
                // invariant ever breaks, stop evicting rather than spin.
                return Ok(());
            };
            self.page_out(&victim)?;
            map.remove(&victim.namespace);
        }
        Ok(())
    }

    /// Pages out every tenant that has gone untouched for longer than
    /// `max_idle`, freeing its memory (its state stays on disk and the
    /// next request restores it transparently). A no-op unless the engine
    /// can page tenants to disk (WAL or eviction directory). Returns the
    /// namespaces paged out.
    ///
    /// # Errors
    /// Propagates page-out failures.
    pub fn evict_idle(&self, max_idle: Duration) -> Result<Vec<String>> {
        self.evict_idle_at(max_idle, self.now_ms())
    }

    /// Deterministic core of [`Engine::evict_idle`]: `now_ms` is the
    /// caller's reading of the engine clock (tests pin it).
    fn evict_idle_at(&self, max_idle: Duration, now_ms: u64) -> Result<Vec<String>> {
        if self.wal.is_none() && self.evict_dir.is_none() {
            return Ok(Vec::new());
        }
        let max_idle_ms = u64::try_from(max_idle.as_millis()).unwrap_or(u64::MAX);
        let mut map = self.write_map();
        let victims: Vec<Arc<Tenant>> = map
            .values()
            .filter(|t| {
                now_ms.saturating_sub(t.last_touch_ms.load(Ordering::Relaxed)) > max_idle_ms
            })
            .cloned()
            .collect();
        let mut paged_out = Vec::with_capacity(victims.len());
        for victim in victims {
            self.page_out(&victim)?;
            map.remove(&victim.namespace);
            paged_out.push(victim.namespace.clone());
        }
        Ok(paged_out)
    }

    /// Fetches (lazily creating or restoring) the tenant for `namespace`
    /// and stamps its LRU touch.
    fn tenant(&self, namespace: &str) -> Result<Arc<Tenant>> {
        validate_namespace(namespace).map_err(Self::bad_namespace)?;
        {
            let map = self.read_map();
            if let Some(tenant) = map.get(namespace) {
                self.touch(tenant);
                return Ok(Arc::clone(tenant));
            }
        }
        let mut map = self.write_map();
        // Double-check: another thread may have created it between locks.
        if let Some(tenant) = map.get(namespace) {
            self.touch(tenant);
            return Ok(Arc::clone(tenant));
        }
        self.make_room(&mut map)?;
        // With a WAL the log directory is the only on-disk source of
        // truth: `create_or_recover` both restores paged-out tenants and
        // creates brand-new ones, and eviction files are never consulted.
        let evicted_file = match &self.wal {
            Some(_) => None,
            None => self.evict_path(namespace).filter(|p| p.exists()),
        };
        let tenant = match &evicted_file {
            Some(path) => {
                let text = std::fs::read_to_string(path).map_err(|e| {
                    ClusteringError::InvalidParameter {
                        name: "snapshot",
                        message: format!("restoring tenant `{namespace}`: {e}"),
                    }
                })?;
                Tenant::from_snapshot_text(&text, Some(namespace))?
            }
            None => self.create_or_recover(namespace, &self.default_spec)?,
        };
        let tenant = Arc::new(tenant);
        self.touch(&tenant);
        map.insert(namespace.to_string(), Arc::clone(&tenant));
        // The tenant is resident again; drop the page-out file so disk and
        // map never disagree about where the live state is.
        if let Some(path) = evicted_file {
            std::fs::remove_file(path).ok();
        }
        Ok(tenant)
    }

    /// Runs `f` under the tenant's backend lock, retrying through the map
    /// if the tenant was evicted between the map lookup and the lock
    /// acquisition (the retry restores it from disk).
    fn with_backend<T>(
        &self,
        namespace: &str,
        mut f: impl FnMut(&mut Backend, &Tenant) -> Result<T>,
    ) -> Result<T> {
        loop {
            let tenant = self.tenant(namespace)?;
            let mut guard = tenant.lock();
            if tenant.evicted.load(Ordering::Acquire) {
                drop(guard);
                continue;
            }
            return f(&mut guard, &tenant);
        }
    }

    /// Creates `namespace` with an explicit spec instead of the engine
    /// default. Only valid before the tenant exists: reconfiguring a live
    /// (or paged-out) stream would invalidate its state.
    ///
    /// # Errors
    /// `tenant_exists` when the tenant is resident or evicted to disk;
    /// `tenant_limit` when the cap is full and no eviction directory is
    /// configured; otherwise spec validation errors.
    pub fn configure(&self, namespace: &str, spec: &EngineSpec) -> Result<(BackendKind, usize)> {
        validate_namespace(namespace).map_err(Self::bad_namespace)?;
        let exists = |namespace: &str| ClusteringError::InvalidParameter {
            name: "tenant_exists",
            message: format!("tenant `{namespace}` already exists"),
        };
        let mut map = self.write_map();
        if map.contains_key(namespace) {
            return Err(exists(namespace));
        }
        if self.evict_path(namespace).is_some_and(|p| p.exists()) {
            return Err(exists(namespace));
        }
        // A paged-out WAL tenant is just as much a duplicate as an
        // eviction file.
        if self
            .wal
            .as_ref()
            .is_some_and(|cfg| cfg.tenant_dir(namespace).exists())
        {
            return Err(exists(namespace));
        }
        self.make_room(&mut map)?;
        // `create_or_recover` found no log directory above, so in WAL mode
        // this creates the tenant and writes its checkpoint 0.
        let tenant = Arc::new(self.create_or_recover(namespace, spec)?);
        self.touch(&tenant);
        let shards = tenant.shards;
        map.insert(namespace.to_string(), tenant);
        Ok((spec.kind, shards))
    }

    /// Which backend lazily created tenants run (and, for an engine built
    /// from [`Engine::new`], the default tenant too).
    #[must_use]
    pub fn kind(&self) -> BackendKind {
        self.default_spec.kind
    }

    /// Ingests one point into a tenant; returns its total points seen
    /// afterwards.
    ///
    /// # Errors
    /// Returns validation errors (dimension mismatch, non-finite
    /// coordinates, empty point, bad namespace); the tenant state is
    /// unchanged on error.
    pub fn ingest_in(&self, namespace: &str, point: &[f64]) -> Result<u64> {
        self.with_backend(namespace, |backend, tenant| {
            let clusterer = backend.clusterer();
            let before = clusterer.points_seen();
            if let Some(wal) = &tenant.wal {
                // Log-before-apply. Validation is pulled forward (mirroring
                // the stream drivers' checks) so only records the backend
                // will accept are logged — the log and the applied state
                // stay in lockstep. Without a WAL the backend validates
                // itself and behavior is unchanged.
                if point.is_empty() {
                    return Err(ClusteringError::InvalidParameter {
                        name: "point",
                        message: "points must have at least one dimension".to_string(),
                    });
                }
                if let Some(d) = clusterer.dim() {
                    if d != point.len() {
                        return Err(ClusteringError::DimensionMismatch {
                            expected: d,
                            got: point.len(),
                        });
                    }
                }
                if point.iter().any(|x| !x.is_finite()) {
                    return Err(ClusteringError::NonFiniteCoordinate { index: 0 });
                }
                Self::wal_append(
                    wal,
                    &ReplicationRecord::Ingest {
                        point: point.to_vec(),
                    },
                )?;
            }
            clusterer.update(point)?;
            let seen = clusterer.points_seen();
            tenant
                .arrivals
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .record(self.now_ms(), before, seen);
            Self::wal_checkpoint_if_due(tenant, backend)?;
            Ok(seen)
        })
    }

    /// Appends one record to a tenant's log (buffered; durability follows
    /// the group-commit policy). The caller holds the backend lock — that
    /// lock is what serializes appends with the mutations they describe.
    fn wal_append(wal: &Mutex<Wal>, record: &ReplicationRecord) -> Result<u64> {
        let payload = encode_replication_record(record);
        wal.lock()
            .unwrap_or_else(PoisonError::into_inner)
            .append(&payload)
            .map_err(wal_err)
    }

    /// Folds the log into a fresh checkpoint once the un-checkpointed tail
    /// outgrows the configured threshold. Caller holds the backend lock,
    /// so the snapshot covers exactly the records appended so far.
    fn wal_checkpoint_if_due(tenant: &Tenant, backend: &mut Backend) -> Result<()> {
        let Some(wal) = &tenant.wal else {
            return Ok(());
        };
        let due = wal
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .checkpoint_due();
        if due {
            let json = tenant.snapshot_string(backend)?;
            wal.lock()
                .unwrap_or_else(PoisonError::into_inner)
                .checkpoint(json.as_bytes())
                .map_err(wal_err)?;
        }
        Ok(())
    }

    /// Ingests a batch of points atomically into a tenant: the whole batch
    /// is validated against the stream dimension before any point is
    /// consumed, so a rejected batch leaves the tenant untouched.
    ///
    /// # Errors
    /// Returns the first validation failure (with the offending in-batch
    /// index for non-finite coordinates).
    pub fn ingest_batch_in(&self, namespace: &str, points: &[Vec<f64>]) -> Result<u64> {
        let refs: Vec<&[f64]> = points.iter().map(Vec::as_slice).collect();
        self.with_backend(namespace, |backend, tenant| {
            let clusterer = backend.clusterer();
            let before = clusterer.points_seen();
            // Pre-validate the whole batch so even backends whose
            // `update_batch` is a per-point loop (the sharded coordinator)
            // reject atomically at the serving layer.
            let mut dim = clusterer.dim();
            for (index, point) in refs.iter().enumerate() {
                if point.is_empty() {
                    return Err(ClusteringError::InvalidParameter {
                        name: "point",
                        message: "points must have at least one dimension".to_string(),
                    });
                }
                if let Some(d) = dim {
                    if d != point.len() {
                        return Err(ClusteringError::DimensionMismatch {
                            expected: d,
                            got: point.len(),
                        });
                    }
                }
                if point.iter().any(|x| !x.is_finite()) {
                    return Err(ClusteringError::NonFiniteCoordinate { index });
                }
                dim = Some(point.len());
            }
            if let Some(wal) = &tenant.wal {
                // The whole batch passed validation above; log it as one
                // record so replay preserves batch atomicity.
                Self::wal_append(
                    wal,
                    &ReplicationRecord::IngestBatch {
                        points: points.to_vec(),
                    },
                )?;
            }
            clusterer.update_batch(&refs)?;
            let seen = clusterer.points_seen();
            tenant
                .arrivals
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .record(self.now_ms(), before, seen);
            Self::wal_checkpoint_if_due(tenant, backend)?;
            Ok(seen)
        })
    }

    /// Answers a clustering query on the requested read path for one
    /// tenant.
    ///
    /// [`Freshness::Strict`] drains in-flight ingestion under the tenant's
    /// mutex, recomputes, republishes and returns the new epoch — exactly
    /// the pre-freshness behaviour (bit-identical at a fixed seed).
    /// [`Freshness::Cached`] returns the last published epoch without
    /// taking the mutex; when nothing has been published yet it falls back
    /// to one strict query to seed the slot. Touching an evicted tenant
    /// (either path) transparently restores it first.
    ///
    /// # Errors
    /// Returns [`ClusteringError::EmptyInput`] before the tenant's first
    /// point.
    pub fn query_in(
        &self,
        namespace: &str,
        freshness: Freshness,
    ) -> Result<Arc<PublishedClustering>> {
        if freshness == Freshness::Cached {
            let tenant = self.tenant(namespace)?;
            if let Some(published) = tenant.slot.load() {
                return Ok(published);
            }
            // The seed-the-slot fallback below is a strict query, and
            // strict reads mutate (drain buffers, consume RNG, publish an
            // epoch). On a follower only replicated records may mutate —
            // with nothing published yet there is nothing to serve.
            self.refuse_unpublished_on_follower()?;
        }
        self.with_backend(namespace, |backend, tenant| {
            if let Some(wal) = &tenant.wal {
                // Strict queries mutate: they drain buffers, consume
                // coordinator RNG and publish an epoch. Replay must
                // re-run them, so log a marker — but only for queries
                // that will execute: an empty stream answers `EmptyInput`
                // and mutates nothing, so it is checked (and returned)
                // first.
                if backend.clusterer().points_seen() == 0 {
                    return Err(ClusteringError::EmptyInput);
                }
                Self::wal_append(wal, &ReplicationRecord::Query {})?;
            }
            let published = match &mut *backend {
                // The sharded stream publishes from inside its own query
                // (its slot is this tenant's slot).
                Backend::ShardedCc(s) => s.query_published()?,
                other => {
                    let result = other.clusterer().query_clustering()?;
                    tenant.slot.publish(result)
                }
            };
            Self::wal_checkpoint_if_due(tenant, backend)?;
            Ok(published)
        })
    }

    /// Resolves a validated wire window to a concrete point count for one
    /// tenant. Point windows pass through; time windows consult the
    /// tenant's arrival log against the engine clock reading `now_ms` —
    /// this happens **before** anything is logged or executed, so WAL
    /// replay and followers never consult a clock.
    fn resolve_window(tenant: &Tenant, window: Window, now_ms: u64, seen: u64) -> u64 {
        match window {
            Window::Points(n) => n,
            Window::Secs(t) => {
                // `t` is validated ≤ MAX_WINDOW_SECS (1e12), so the
                // millisecond span fits u64 comfortably; ceil so the span
                // covers at least the requested duration.
                let span_ms = (t * 1000.0).ceil() as u64;
                let cutoff = now_ms.saturating_sub(span_ms);
                tenant
                    .arrivals
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .points_since(cutoff, seen)
            }
        }
    }

    /// Answers a **strict** windowed clustering query: drains in-flight
    /// ingestion, resolves the window to a point count, recomputes from the
    /// smallest stored-summary suffix covering it, republishes and returns
    /// the new epoch. A window spanning the whole stream (or more) takes
    /// the ordinary strict path — bit-identical to an un-windowed query,
    /// and logged as one. Sub-windows are logged as `QueryWindow` records
    /// carrying the resolved point count, so recovery replays them
    /// clock-independently.
    ///
    /// Cached windowed reads never reach here: dispatch serves the
    /// published answer as-is (reporting the window *it* was computed for).
    ///
    /// # Errors
    /// [`ClusteringError::EmptyInput`] before the tenant's first point; a
    /// `window` parameter error (wire: [`crate::protocol::ErrorCode::BadWindow`])
    /// when a time window contains no points.
    pub fn query_window_in(
        &self,
        namespace: &str,
        window: Window,
    ) -> Result<Arc<PublishedClustering>> {
        let now_ms = self.now_ms();
        self.with_backend(namespace, |backend, tenant| {
            let seen = backend.clusterer().points_seen();
            if seen == 0 {
                return Err(ClusteringError::EmptyInput);
            }
            let last_points = Self::resolve_window(tenant, window, now_ms, seen);
            if last_points == 0 {
                return Err(ClusteringError::InvalidParameter {
                    name: "window",
                    message: "the time window contains no points".to_string(),
                });
            }
            if last_points >= seen {
                // Whole-stream normalization: identical to the ordinary
                // strict query, and logged as one.
                if let Some(wal) = &tenant.wal {
                    Self::wal_append(wal, &ReplicationRecord::Query {})?;
                }
                let published = match &mut *backend {
                    Backend::ShardedCc(s) => s.query_published()?,
                    other => {
                        let result = other.clusterer().query_clustering()?;
                        tenant.slot.publish(result)
                    }
                };
                Self::wal_checkpoint_if_due(tenant, backend)?;
                return Ok(published);
            }
            if let Some(wal) = &tenant.wal {
                Self::wal_append(wal, &ReplicationRecord::QueryWindow { last_points })?;
            }
            let published = Self::run_window_query(backend, tenant, last_points)?;
            Self::wal_checkpoint_if_due(tenant, backend)?;
            Ok(published)
        })
    }

    /// **Strict** windowed stats: drains the coordinator buffers, collects
    /// the ordinary stream stats, then probes how many of the most recent
    /// points the stored summaries cover. The probe is pure span
    /// arithmetic — no merge, no RNG, no cache traffic — so the WAL logs
    /// the same `Stats` marker as an un-windowed strict stats request. A
    /// time window that contains no points reports `(0, 0)` coverage
    /// rather than an error: "nothing arrived lately" is an answer.
    ///
    /// # Errors
    /// Fails when a shard worker is gone.
    pub fn stats_window_in(
        &self,
        namespace: &str,
        window: Window,
    ) -> Result<(StreamStats, WindowInfo)> {
        let now_ms = self.now_ms();
        self.with_backend(namespace, |backend, tenant| {
            if let Some(wal) = &tenant.wal {
                // The drain is the mutation replay must repeat; the
                // coverage probe adds no state effects.
                Self::wal_append(wal, &ReplicationRecord::Stats {})?;
            }
            let stats = backend.stats()?;
            let last_points = Self::resolve_window(tenant, window, now_ms, stats.points_seen);
            let covered_points = if last_points == 0 {
                0
            } else {
                Self::window_coverage(backend, last_points)?
            };
            Self::wal_checkpoint_if_due(tenant, backend)?;
            Ok((
                stats,
                WindowInfo {
                    last_points,
                    covered_points,
                },
            ))
        })
    }

    /// The tenant's currently published answer, if any (never takes the
    /// backend mutex, but restores the tenant if it was evicted).
    ///
    /// # Errors
    /// Returns namespace-validation or restore failures.
    pub fn published_in(&self, namespace: &str) -> Result<Option<Arc<PublishedClustering>>> {
        Ok(self.tenant(namespace)?.slot.load())
    }

    /// Epoch of the tenant's currently published answer (0 before its
    /// first strict query).
    ///
    /// # Errors
    /// Returns namespace-validation or restore failures.
    pub fn epoch_in(&self, namespace: &str) -> Result<u64> {
        Ok(self.tenant(namespace)?.slot.epoch())
    }

    /// Aggregated ingestion statistics for one tenant.
    ///
    /// [`Freshness::Strict`] flushes the coordinator buffers and collects
    /// exact per-shard counts under the tenant's mutex.
    /// [`Freshness::Cached`] answers from the published snapshot without
    /// the mutex: `points_seen` and `last_query` are as of the published
    /// epoch, and `per_shard_points` is empty (per-shard counts require a
    /// drain). Falls back to strict when nothing has been published yet.
    ///
    /// # Errors
    /// Fails when a shard worker is gone (strict path only).
    pub fn stats_in(&self, namespace: &str, freshness: Freshness) -> Result<StreamStats> {
        if freshness == Freshness::Cached {
            let tenant = self.tenant(namespace)?;
            if let Some(published) = tenant.slot.load() {
                return Ok(StreamStats {
                    points_seen: published.points_seen,
                    shards: tenant.shards,
                    per_shard_points: Vec::new(),
                    last_query: Some(published.stats),
                });
            }
            // Strict stats drain buffers: never run them implicitly on a
            // follower (see `query_in`).
            self.refuse_unpublished_on_follower()?;
        }
        self.with_backend(namespace, |backend, tenant| {
            if let Some(wal) = &tenant.wal {
                // Strict stats drain the coordinator buffers — a mutation
                // replay must repeat.
                Self::wal_append(wal, &ReplicationRecord::Stats {})?;
            }
            let stats = backend.stats()?;
            Self::wal_checkpoint_if_due(tenant, backend)?;
            Ok(stats)
        })
    }

    /// Total points one tenant has ingested so far.
    ///
    /// # Errors
    /// Returns namespace-validation or restore failures.
    pub fn points_seen_in(&self, namespace: &str) -> Result<u64> {
        self.with_backend(namespace, |backend, _| {
            Ok(backend.clusterer().points_seen())
        })
    }

    /// Points held by one tenant's internal structures (paper accounting).
    ///
    /// # Errors
    /// Returns namespace-validation or restore failures.
    pub fn memory_points_in(&self, namespace: &str) -> Result<usize> {
        self.with_backend(namespace, |backend, _| {
            Ok(backend.clusterer().memory_points())
        })
    }

    /// Serializes one tenant's full state into the versioned JSON
    /// envelope.
    ///
    /// # Errors
    /// Fails when a shard has latched an error.
    pub fn snapshot_json_in(&self, namespace: &str) -> Result<String> {
        self.with_backend(namespace, |backend, tenant| tenant.snapshot_string(backend))
    }

    /// Ingests one point into the default tenant ([`Engine::ingest_in`]).
    ///
    /// # Errors
    /// See [`Engine::ingest_in`].
    pub fn ingest(&self, point: &[f64]) -> Result<u64> {
        self.ingest_in(DEFAULT_NAMESPACE, point)
    }

    /// Batch-ingests into the default tenant
    /// ([`Engine::ingest_batch_in`]).
    ///
    /// # Errors
    /// See [`Engine::ingest_batch_in`].
    pub fn ingest_batch(&self, points: &[Vec<f64>]) -> Result<u64> {
        self.ingest_batch_in(DEFAULT_NAMESPACE, points)
    }

    /// Queries the default tenant ([`Engine::query_in`]).
    ///
    /// # Errors
    /// See [`Engine::query_in`].
    pub fn query(&self, freshness: Freshness) -> Result<Arc<PublishedClustering>> {
        self.query_in(DEFAULT_NAMESPACE, freshness)
    }

    /// The default tenant's published answer, if any.
    #[must_use]
    pub fn published(&self) -> Option<Arc<PublishedClustering>> {
        self.published_in(DEFAULT_NAMESPACE).ok().flatten()
    }

    /// The default tenant's publish epoch (0 before the first strict
    /// query).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch_in(DEFAULT_NAMESPACE).unwrap_or(0)
    }

    /// Stats for the default tenant ([`Engine::stats_in`]).
    ///
    /// # Errors
    /// See [`Engine::stats_in`].
    pub fn stats(&self, freshness: Freshness) -> Result<StreamStats> {
        self.stats_in(DEFAULT_NAMESPACE, freshness)
    }

    /// Total points the default tenant has ingested so far.
    #[must_use]
    pub fn points_seen(&self) -> u64 {
        self.points_seen_in(DEFAULT_NAMESPACE).unwrap_or(0)
    }

    /// Points held in memory across **all** resident tenants (paper
    /// accounting; evicted tenants cost disk, not RAM).
    #[must_use]
    pub fn memory_points(&self) -> usize {
        let tenants: Vec<Arc<Tenant>> = self.read_map().values().cloned().collect();
        tenants
            .iter()
            .map(|t| t.lock().clusterer().memory_points())
            .sum()
    }

    /// Serializes the default tenant into the versioned JSON envelope
    /// ([`Engine::snapshot_json_in`]).
    ///
    /// # Errors
    /// See [`Engine::snapshot_json_in`].
    pub fn snapshot_json(&self) -> Result<String> {
        self.snapshot_json_in(DEFAULT_NAMESPACE)
    }

    /// Cold-starts an engine from a snapshot produced by
    /// [`Engine::snapshot_json`] / [`Engine::snapshot_json_in`]. The
    /// restored tenant keeps the namespace recorded in the envelope;
    /// continuing it is bit-identical to continuing the engine the
    /// snapshot was taken from. Tenants created lazily afterwards inherit
    /// the restored backend's shape (see [`DERIVED_SEED`]).
    ///
    /// # Errors
    /// Returns [`ClusteringError::InvalidParameter`] for unparseable
    /// snapshots, unknown backends or unsupported versions.
    pub fn from_snapshot_json(text: &str) -> Result<Self> {
        let tenant = Tenant::from_snapshot_text(text, None)?;
        let default_spec = tenant.lock().derived_spec();
        let mut map = HashMap::new();
        map.insert(tenant.namespace.clone(), Arc::new(tenant));
        Ok(Engine {
            tenants: RwLock::new(map),
            default_spec,
            max_resident: DEFAULT_MAX_RESIDENT,
            evict_dir: None,
            clock: AtomicU64::new(1),
            wal: None,
            started: Instant::now(),
            follower: None,
        })
    }

    /// Whether a tenant currently lives on disk (paged out) rather than
    /// in memory. Diagnostic; the answer can change concurrently.
    #[must_use]
    pub fn is_evicted_to_disk(&self, namespace: &str) -> bool {
        if self.read_map().contains_key(namespace) {
            return false;
        }
        match &self.wal {
            Some(cfg) => cfg.tenant_dir(namespace).exists(),
            None => self.evict_path(namespace).is_some_and(|p| p.exists()),
        }
    }

    /// Whether this engine runs with a write-ahead log.
    #[must_use]
    pub fn wal_enabled(&self) -> bool {
        self.wal.is_some()
    }

    /// Group-commits every resident tenant's log whose oldest buffered
    /// record has waited at least the fsync interval. The server core
    /// calls this from its poll tick; appends that hit the byte or age
    /// bound sync themselves.
    ///
    /// Takes only each tenant's WAL mutex (never a backend lock), so it
    /// cannot deadlock against the append path's backend → WAL order.
    ///
    /// # Errors
    /// Propagates the first sync failure.
    pub fn wal_sync_all(&self) -> Result<()> {
        let tenants: Vec<Arc<Tenant>> = self.read_map().values().cloned().collect();
        for tenant in tenants {
            if let Some(wal) = &tenant.wal {
                wal.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .maybe_sync()
                    .map_err(wal_err)?;
            }
        }
        Ok(())
    }

    fn wal_required() -> ClusteringError {
        ClusteringError::InvalidParameter {
            name: "wal_io",
            message: "replication requires a write-ahead log".to_string(),
        }
    }

    /// A consistent follower-bootstrap snapshot of one tenant: the log
    /// sequence it covers, the published epoch, and the full state
    /// envelope. The log is group-committed first, so the snapshot never
    /// includes a record a crashed primary could forget — a follower can
    /// never get ahead of what its primary would recover to.
    ///
    /// # Errors
    /// Fails when the engine runs without a WAL, or on snapshot/log
    /// failures.
    pub fn replica_snapshot_in(&self, namespace: &str) -> Result<(u64, u64, String)> {
        self.with_backend(namespace, |backend, tenant| {
            let Some(wal) = &tenant.wal else {
                return Err(Self::wal_required());
            };
            let seq = wal
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .sync()
                .map_err(wal_err)?;
            let snapshot = tenant.snapshot_string(backend)?;
            Ok((seq, tenant.slot.epoch(), snapshot))
        })
    }

    /// One tenant's durable log records with `seq >= from_seq`, plus its
    /// last appended sequence (the follower's lag bound). `None` records
    /// mean `from_seq` was already compacted into a checkpoint — the
    /// follower must resynchronize from [`Engine::replica_snapshot_in`].
    ///
    /// # Errors
    /// Fails when the engine runs without a WAL.
    #[allow(clippy::type_complexity)]
    pub fn wal_tail_in(
        &self,
        namespace: &str,
        from_seq: u64,
    ) -> Result<(Option<Vec<(u64, Vec<u8>)>>, u64)> {
        self.with_backend(namespace, |_, tenant| {
            let Some(wal) = &tenant.wal else {
                return Err(Self::wal_required());
            };
            let wal = wal.lock().unwrap_or_else(PoisonError::into_inner);
            Ok((wal.records_since(from_seq), wal.last_seq()))
        })
    }

    /// Highest sequence number of one tenant's log known to be on stable
    /// storage.
    ///
    /// # Errors
    /// Fails when the engine runs without a WAL.
    pub fn wal_durable_seq_in(&self, namespace: &str) -> Result<u64> {
        self.with_backend(namespace, |_, tenant| {
            let Some(wal) = &tenant.wal else {
                return Err(Self::wal_required());
            };
            Ok(wal
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .durable_seq())
        })
    }

    /// Forces a checkpoint of one tenant's log right now, returning the
    /// sequence it covers. The hot path checkpoints on its own byte
    /// threshold; this is for the CLI `recover` command and tests.
    ///
    /// # Errors
    /// Fails when the engine runs without a WAL, or on snapshot/log
    /// failures.
    pub fn checkpoint_now_in(&self, namespace: &str) -> Result<u64> {
        self.with_backend(namespace, |backend, tenant| {
            let Some(wal) = &tenant.wal else {
                return Err(Self::wal_required());
            };
            let json = tenant.snapshot_string(backend)?;
            wal.lock()
                .unwrap_or_else(PoisonError::into_inner)
                .checkpoint(json.as_bytes())
                .map_err(wal_err)
        })
    }

    /// Applies one replicated record to a tenant through the same code
    /// paths the primary ran. Follower mode: the follower's engine runs
    /// *without* a WAL of its own and feeds the primary's stream through
    /// here, staying bit-identical to the primary's applied state.
    ///
    /// # Errors
    /// Propagates the underlying update/query failure.
    pub fn apply_replication_record_in(
        &self,
        namespace: &str,
        record: &ReplicationRecord,
    ) -> Result<()> {
        self.with_backend(namespace, |backend, tenant| {
            Self::apply_record(backend, tenant, record)
        })
    }

    /// Marks this engine a follower replica (builder-style): writes and
    /// strict reads are refused at dispatch with
    /// [`crate::protocol::ErrorCode::ReplicationLag`], and cached reads
    /// are served only while the replication lag stays within `max_lag`
    /// records.
    #[must_use]
    pub fn with_follower(mut self, max_lag: u64) -> Self {
        self.follower = Some(FollowerStatus::new(max_lag));
        self
    }

    /// This engine's follower status, `None` on a primary.
    #[must_use]
    pub fn follower(&self) -> Option<&FollowerStatus> {
        self.follower.as_ref()
    }

    /// Errors with the replication-lag class when this engine is a
    /// follower — called where a cached read would otherwise fall back to
    /// a mutating strict one.
    fn refuse_unpublished_on_follower(&self) -> Result<()> {
        if self.follower.is_some() {
            return Err(ClusteringError::InvalidParameter {
                name: "replication_lag",
                message: "the follower has not replicated a published answer yet".to_string(),
            });
        }
        Ok(())
    }

    /// Replaces one tenant's state wholesale with a replica-bootstrap
    /// snapshot from [`Engine::replica_snapshot_in`] on the primary.
    /// In-flight reads against the old state finish against it (they hold
    /// their own `Arc`); the next request sees the new state.
    ///
    /// # Errors
    /// Returns [`ClusteringError::InvalidParameter`] for unparseable
    /// snapshots.
    pub fn install_replica_snapshot_in(&self, namespace: &str, snapshot: &str) -> Result<()> {
        let tenant = Arc::new(Tenant::from_snapshot_text(snapshot, Some(namespace))?);
        self.touch(&tenant);
        self.write_map().insert(namespace.to_string(), tenant);
        Ok(())
    }

    /// The resident tenant namespaces, sorted (diagnostics and the CLI
    /// `recover` report).
    #[must_use]
    pub fn namespaces(&self) -> Vec<String> {
        let mut names: Vec<String> = self.read_map().keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kind: BackendKind) -> EngineSpec {
        EngineSpec {
            kind,
            stream: StreamConfig::new(2)
                .with_bucket_size(20)
                .with_kmeans_runs(1)
                .with_lloyd_iterations(2),
            shards: 2,
            batch: 8,
            nesting_depth: 2,
            seed: 7,
        }
    }

    fn feed(engine: &Engine, n: usize, offset: f64) {
        for i in 0..n {
            let x = if i % 2 == 0 { 0.0 } else { 60.0 };
            engine.ingest(&[x + offset, (i % 5) as f64 * 0.1]).unwrap();
        }
    }

    fn feed_in(engine: &Engine, namespace: &str, n: usize, offset: f64) {
        for i in 0..n {
            let x = if i % 2 == 0 { 0.0 } else { 60.0 };
            engine
                .ingest_in(namespace, &[x + offset, (i % 5) as f64 * 0.1])
                .unwrap();
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "skm-engine-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn every_backend_ingests_and_queries() {
        for kind in [
            BackendKind::ShardedCc,
            BackendKind::Cc,
            BackendKind::Ct,
            BackendKind::Rcc,
        ] {
            let engine = Engine::new(&spec(kind)).unwrap();
            assert_eq!(engine.kind(), kind);
            assert_eq!(engine.epoch(), 0, "{kind:?}");
            feed(&engine, 300, 0.0);
            let published = engine.query(Freshness::Strict).unwrap();
            assert_eq!(published.centers.len(), 2, "{kind:?}");
            assert_eq!(published.points_seen, 300, "{kind:?}");
            assert_eq!(published.epoch, 1, "{kind:?}");
            assert!(published.cost.is_finite(), "{kind:?}");
            assert!(published.stats.ran_kmeans, "{kind:?}");
            let s = engine.stats(Freshness::Strict).unwrap();
            assert_eq!(s.points_seen, 300, "{kind:?}");
            assert_eq!(s.per_shard_points.iter().sum::<u64>(), 300, "{kind:?}");
            assert!(engine.memory_points() > 0, "{kind:?}");
        }
    }

    #[test]
    fn cached_queries_reuse_the_published_epoch() {
        for kind in [BackendKind::ShardedCc, BackendKind::Cc] {
            let engine = Engine::new(&spec(kind)).unwrap();
            feed(&engine, 100, 0.0);
            // Nothing published yet: the first cached query falls back to a
            // strict one (seeding the slot) instead of erroring.
            let seeded = engine.query(Freshness::Cached).unwrap();
            assert_eq!(seeded.epoch, 1, "{kind:?}");
            // More ingestion does not move the published answer …
            feed(&engine, 100, 0.5);
            let cached = engine.query(Freshness::Cached).unwrap();
            assert_eq!(cached.epoch, 1, "{kind:?}");
            assert_eq!(cached.points_seen, 100, "{kind:?}");
            assert_eq!(cached.centers, seeded.centers, "{kind:?}");
            // … until the next strict query republishes.
            let strict = engine.query(Freshness::Strict).unwrap();
            assert_eq!(strict.epoch, 2, "{kind:?}");
            assert_eq!(strict.points_seen, 200, "{kind:?}");
            let cached = engine.query(Freshness::Cached).unwrap();
            assert_eq!(cached.epoch, 2, "{kind:?}");

            // Cached stats come from the published snapshot, lock-free.
            let stats = engine.stats(Freshness::Cached).unwrap();
            assert_eq!(stats.points_seen, 200, "{kind:?}");
            assert!(stats.per_shard_points.is_empty(), "{kind:?}");
            assert_eq!(stats.last_query, Some(cached.stats), "{kind:?}");
        }
    }

    #[test]
    fn strict_queries_match_the_direct_clusterer_bit_for_bit() {
        // The engine's strict path must stay bit-identical to driving the
        // clusterer directly (the pre-publish code path) at a fixed seed.
        let engine = Engine::new(&spec(BackendKind::ShardedCc)).unwrap();
        let mut direct = ShardedStream::cc(
            spec(BackendKind::ShardedCc).stream,
            2, // shards, as in `spec`
            8, // batch, as in `spec`
            7, // seed, as in `spec`
        )
        .unwrap();
        for i in 0..300usize {
            let x = if i % 2 == 0 { 0.0 } else { 60.0 };
            let p = [x, (i % 5) as f64 * 0.1];
            engine.ingest(&p).unwrap();
            direct.update(&p).unwrap();
        }
        let served = engine.query(Freshness::Strict).unwrap();
        let expected = direct.query().unwrap();
        assert_eq!(served.centers, expected);
    }

    #[test]
    fn a_panicked_handler_does_not_poison_the_engine() {
        // Regression: a handler thread panicking while holding a tenant's
        // backend lock used to poison it, after which every request on
        // every connection failed until restart. The engine now recovers.
        let engine = Arc::new(Engine::new(&spec(BackendKind::Cc)).unwrap());
        feed(&engine, 50, 0.0);
        let clone = Arc::clone(&engine);
        let panicked = std::thread::spawn(move || {
            let tenant = clone.tenant(DEFAULT_NAMESPACE).unwrap();
            let _guard = tenant.backend.lock().unwrap();
            panic!("handler bug while holding the engine lock");
        })
        .join();
        assert!(panicked.is_err(), "the helper thread must have panicked");

        // Every path still works.
        engine.ingest(&[1.0, 2.0]).unwrap();
        assert_eq!(engine.points_seen(), 51);
        let published = engine.query(Freshness::Strict).unwrap();
        assert_eq!(published.centers.len(), 2);
        engine.query(Freshness::Cached).unwrap();
        engine.stats(Freshness::Strict).unwrap();
        engine.snapshot_json().unwrap();
    }

    #[test]
    fn batch_rejection_is_atomic_for_every_backend() {
        for kind in [BackendKind::ShardedCc, BackendKind::Cc] {
            let engine = Engine::new(&spec(kind)).unwrap();
            engine.ingest(&[1.0, 2.0]).unwrap();
            // Good point followed by a wrong-dimension point: nothing of the
            // batch may be consumed.
            let err = engine
                .ingest_batch(&[vec![3.0, 4.0], vec![5.0]])
                .unwrap_err();
            assert!(matches!(
                err,
                ClusteringError::DimensionMismatch {
                    expected: 2,
                    got: 1
                }
            ));
            let err = engine
                .ingest_batch(&[vec![3.0, 4.0], vec![f64::NAN, 0.0]])
                .unwrap_err();
            assert!(matches!(
                err,
                ClusteringError::NonFiniteCoordinate { index: 1 }
            ));
            assert!(engine.ingest_batch(&[vec![3.0, 4.0], vec![]]).is_err());
            assert_eq!(engine.points_seen(), 1, "{kind:?}");
            // A self-inconsistent first batch on a fresh engine must also be
            // rejected whole.
            let fresh = Engine::new(&spec(kind)).unwrap();
            assert!(fresh
                .ingest_batch(&[vec![1.0, 2.0], vec![1.0, 2.0, 3.0]])
                .is_err());
            assert_eq!(fresh.points_seen(), 0, "{kind:?}");
        }
    }

    #[test]
    fn snapshot_restore_continue_matches_uninterrupted() {
        for kind in [
            BackendKind::ShardedCc,
            BackendKind::Cc,
            BackendKind::Ct,
            BackendKind::Rcc,
        ] {
            let reference = Engine::new(&spec(kind)).unwrap();
            let snapshotted = Engine::new(&spec(kind)).unwrap();
            feed(&reference, 150, 0.0);
            feed(&snapshotted, 150, 0.0);
            let json = snapshotted.snapshot_json().unwrap();
            drop(snapshotted);
            let restored = Engine::from_snapshot_json(&json).unwrap();
            assert_eq!(restored.kind(), kind);
            feed(&reference, 150, 0.5);
            feed(&restored, 150, 0.5);
            let a = reference.query(Freshness::Strict).unwrap();
            let b = restored.query(Freshness::Strict).unwrap();
            assert_eq!(
                a.centers, b.centers,
                "{kind:?} snapshot continuation diverged"
            );
        }
    }

    #[test]
    fn restored_engine_republishes_the_saved_epoch() {
        for kind in [BackendKind::ShardedCc, BackendKind::Cc] {
            let engine = Engine::new(&spec(kind)).unwrap();
            feed(&engine, 150, 0.0);
            engine.query(Freshness::Strict).unwrap();
            engine.query(Freshness::Strict).unwrap();
            let saved = engine.published().unwrap();
            assert_eq!(saved.epoch, 2, "{kind:?}");

            let json = engine.snapshot_json().unwrap();
            let restored = Engine::from_snapshot_json(&json).unwrap();
            // Cached reads resume at the saved epoch, without any query.
            let republished = restored.query(Freshness::Cached).unwrap();
            assert_eq!(republished.as_ref(), saved.as_ref(), "{kind:?}");
            assert_eq!(restored.epoch(), 2, "{kind:?}");
            // The next strict query continues the sequence.
            let next = restored.query(Freshness::Strict).unwrap();
            assert_eq!(next.epoch, 3, "{kind:?}");
        }

        // An engine snapshotted before any query restores with an empty
        // slot (epoch 0), not a fabricated answer.
        let engine = Engine::new(&spec(BackendKind::Cc)).unwrap();
        feed(&engine, 30, 0.0);
        let restored = Engine::from_snapshot_json(&engine.snapshot_json().unwrap()).unwrap();
        assert_eq!(restored.epoch(), 0);
        assert!(restored.published().is_none());
    }

    #[test]
    fn diverging_published_copies_in_a_sharded_snapshot_are_rejected() {
        // A sharded snapshot stores the published answer both in the
        // envelope and inside the stream state (the latter serves
        // in-process ShardedStream restores). The two are written from one
        // slot under one lock hold; a snapshot where they disagree was
        // tampered with or corrupted and must not restore as either copy.
        let engine = Engine::new(&spec(BackendKind::ShardedCc)).unwrap();
        feed(&engine, 150, 0.0);
        engine.query(Freshness::Strict).unwrap();
        let json = engine.snapshot_json().unwrap();

        // The epoch appears exactly twice (envelope + stream state); bump
        // only the first (envelope-level) occurrence.
        assert_eq!(json.matches("\"epoch\":1").count(), 2, "fixture drifted");
        let tampered = json.replacen("\"epoch\":1", "\"epoch\":9", 1);
        assert!(Engine::from_snapshot_json(&tampered).is_err());

        // Untampered, the same snapshot restores fine.
        assert!(Engine::from_snapshot_json(&json).is_ok());
    }

    #[test]
    fn snapshot_envelope_is_versioned_and_validated() {
        let engine = Engine::new(&spec(BackendKind::Cc)).unwrap();
        feed(&engine, 30, 0.0);
        let json = engine.snapshot_json().unwrap();
        assert!(json.contains("\"snapshot_version\":3"));
        assert!(json.contains("\"namespace\":\"default\""));
        assert!(json.contains("\"backend\":\"cc\""));

        assert!(Engine::from_snapshot_json("not json").is_err());
        let wrong_version = json.replace("\"snapshot_version\":3", "\"snapshot_version\":99");
        assert!(Engine::from_snapshot_json(&wrong_version).is_err());
        let wrong_backend = json.replace("\"backend\":\"cc\"", "\"backend\":\"nope\"");
        assert!(Engine::from_snapshot_json(&wrong_backend).is_err());
        // A namespace that could escape the snapshot directory must never
        // come back from disk either.
        let escaping = json.replace("\"namespace\":\"default\"", "\"namespace\":\"../x\"");
        assert!(Engine::from_snapshot_json(&escaping).is_err());
    }

    #[test]
    fn tampered_snapshots_are_rejected_not_restored() {
        let engine = Engine::new(&spec(BackendKind::Cc)).unwrap();
        feed(&engine, 30, 0.0);
        let json = engine.snapshot_json().unwrap();

        // A hand-edited bucket size of 0 would make the partial bucket
        // never flush; both the buffer's own deserializer and the config
        // validation must refuse it.
        let zero_bucket = json.replace("\"bucket_size\":20", "\"bucket_size\":0");
        assert_ne!(zero_bucket, json, "fixture drifted: bucket_size not found");
        assert!(Engine::from_snapshot_json(&zero_bucket).is_err());

        // Same for a config-level k = 0.
        let zero_k = json.replace("\"k\":2", "\"k\":0");
        assert_ne!(zero_k, json, "fixture drifted: k not found");
        assert!(Engine::from_snapshot_json(&zero_k).is_err());
    }

    #[test]
    fn backend_tags_round_trip() {
        for kind in [
            BackendKind::ShardedCc,
            BackendKind::Cc,
            BackendKind::Ct,
            BackendKind::Rcc,
        ] {
            assert_eq!(BackendKind::parse(kind.tag()), Some(kind));
        }
        assert_eq!(BackendKind::parse("SHARDED"), Some(BackendKind::ShardedCc));
        assert_eq!(BackendKind::parse("bogus"), None);
    }

    #[test]
    fn namespaces_are_isolated_streams() {
        let engine = Engine::new(&spec(BackendKind::Cc)).unwrap();
        feed_in(&engine, "a", 100, 0.0);
        feed_in(&engine, "b", 40, 10.0);
        feed(&engine, 10, 0.0);
        assert_eq!(engine.points_seen_in("a").unwrap(), 100);
        assert_eq!(engine.points_seen_in("b").unwrap(), 40);
        assert_eq!(engine.points_seen(), 10);

        let a = engine.query_in("a", Freshness::Strict).unwrap();
        let b = engine.query_in("b", Freshness::Strict).unwrap();
        assert_eq!(a.points_seen, 100);
        assert_eq!(b.points_seen, 40);
        // Epochs are per tenant, not global.
        assert_eq!(a.epoch, 1);
        assert_eq!(b.epoch, 1);
        assert_eq!(engine.epoch(), 0);

        // A tenant that was never touched does not exist until touched.
        let mut resident = engine.resident_tenants();
        resident.sort();
        assert_eq!(resident, vec!["a", "b", "default"]);
    }

    #[test]
    fn bad_namespaces_are_rejected_before_touching_anything() {
        let engine = Engine::new(&spec(BackendKind::Cc)).unwrap();
        for bad in ["", ".", "..", "a/b", "a\\b"] {
            let err = engine.ingest_in(bad, &[1.0, 2.0]).unwrap_err();
            assert!(
                matches!(
                    err,
                    ClusteringError::InvalidParameter {
                        name: "namespace",
                        ..
                    }
                ),
                "{bad:?}: {err:?}"
            );
        }
        assert_eq!(engine.resident_tenants().len(), 1);
    }

    #[test]
    fn lru_tenant_is_evicted_and_transparently_restored() {
        let dir = temp_dir("lru");
        let engine = Engine::with_options(&spec(BackendKind::Cc), 2, Some(dir.clone())).unwrap();
        feed_in(&engine, "a", 60, 0.0);
        engine.query_in("a", Freshness::Strict).unwrap();
        // Touch default so `a` is the LRU when `b` arrives.
        let _ = engine.points_seen();
        feed_in(&engine, "b", 20, 0.0);

        assert!(engine.is_evicted_to_disk("a"), "a should be paged out");
        assert!(dir.join(evict_file_name("a")).exists());

        // Touching `a` restores it (and pages out the new LRU).
        assert_eq!(engine.points_seen_in("a").unwrap(), 60);
        assert!(!dir.join(evict_file_name("a")).exists());
        // Epoch continuity across the round trip.
        assert_eq!(engine.epoch_in("a").unwrap(), 1);
        assert_eq!(engine.resident_tenants().len(), 2);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn evict_restore_continue_is_bit_identical() {
        let dir = temp_dir("bitident");
        // Twin A lives in an engine with an aggressive cap; twin B is
        // never evicted. Identical feeds must give identical answers.
        let evicting = Engine::with_options(&spec(BackendKind::Cc), 1, Some(dir.clone())).unwrap();
        let reference = Engine::new(&spec(BackendKind::Cc)).unwrap();
        feed_in(&evicting, "t", 100, 0.0);
        feed_in(&reference, "t", 100, 0.0);
        let a = evicting.query_in("t", Freshness::Strict).unwrap();
        let b = reference.query_in("t", Freshness::Strict).unwrap();
        assert_eq!(a.centers, b.centers);

        // Force `t` out by touching another tenant (cap is 1).
        feed_in(&evicting, "other", 10, 5.0);
        assert!(evicting.is_evicted_to_disk("t"));

        // Continue both twins; the restored one must not diverge.
        feed_in(&evicting, "t", 100, 0.5);
        feed_in(&reference, "t", 100, 0.5);
        let a = evicting.query_in("t", Freshness::Strict).unwrap();
        let b = reference.query_in("t", Freshness::Strict).unwrap();
        assert_eq!(a.centers, b.centers, "evict→restore→continue diverged");
        assert_eq!(a.epoch, b.epoch, "epoch sequence diverged");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tenant_cap_without_eviction_dir_is_a_hard_limit() {
        let engine = Engine::with_options(&spec(BackendKind::Cc), 2, None).unwrap();
        feed_in(&engine, "a", 10, 0.0);
        let err = engine.ingest_in("b", &[1.0, 2.0]).unwrap_err();
        assert!(
            matches!(
                err,
                ClusteringError::InvalidParameter {
                    name: "tenant_limit",
                    ..
                }
            ),
            "{err:?}"
        );
        // Existing tenants keep working at the cap.
        engine.ingest_in("a", &[1.0, 2.0]).unwrap();
        engine.ingest(&[1.0, 2.0]).unwrap();
    }

    #[test]
    fn configure_creates_and_refuses_duplicates() {
        let engine = Engine::new(&spec(BackendKind::Cc)).unwrap();
        let custom = EngineSpec {
            stream: StreamConfig::new(3)
                .with_bucket_size(30)
                .with_kmeans_runs(1)
                .with_lloyd_iterations(2),
            ..spec(BackendKind::Cc)
        };
        let (kind, shards) = engine.configure("big", &custom).unwrap();
        assert_eq!(kind, BackendKind::Cc);
        assert_eq!(shards, 1);
        feed_in(&engine, "big", 200, 0.0);
        let q = engine.query_in("big", Freshness::Strict).unwrap();
        assert_eq!(q.centers.len(), 3, "configured k must win");

        // Resident duplicate (including the eagerly created default).
        for dup in ["big", DEFAULT_NAMESPACE] {
            let err = engine.configure(dup, &custom).unwrap_err();
            assert!(
                matches!(
                    err,
                    ClusteringError::InvalidParameter {
                        name: "tenant_exists",
                        ..
                    }
                ),
                "{dup}: {err:?}"
            );
        }
        // An evicted (on-disk) tenant is also a duplicate.
        let dir = temp_dir("cfgdup");
        let capped = Engine::with_options(&spec(BackendKind::Cc), 1, Some(dir.clone())).unwrap();
        feed_in(&capped, "t", 10, 0.0);
        let _ = capped.points_seen(); // make default the MRU
        assert!(capped.is_evicted_to_disk("t"));
        let err = capped.configure("t", &custom).unwrap_err();
        assert!(
            matches!(
                err,
                ClusteringError::InvalidParameter {
                    name: "tenant_exists",
                    ..
                }
            ),
            "{err:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn evicted_sharded_tenant_round_trips_with_epoch() {
        let dir = temp_dir("sharded-evict");
        let engine =
            Engine::with_options(&spec(BackendKind::ShardedCc), 1, Some(dir.clone())).unwrap();
        feed_in(&engine, "s", 120, 0.0);
        let before = engine.query_in("s", Freshness::Strict).unwrap();
        feed_in(&engine, "other", 8, 0.0); // evicts `s`
        assert!(engine.is_evicted_to_disk("s"));

        // Cached read on the restored tenant resumes at the saved epoch.
        let cached = engine.query_in("s", Freshness::Cached).unwrap();
        assert_eq!(cached.as_ref(), before.as_ref());
        let strict = engine.query_in("s", Freshness::Strict).unwrap();
        assert_eq!(strict.epoch, before.epoch + 1);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_recovery_matches_uninterrupted_for_every_backend() {
        for kind in [
            BackendKind::ShardedCc,
            BackendKind::Cc,
            BackendKind::Ct,
            BackendKind::Rcc,
        ] {
            let dir = temp_dir(&format!("wal-{}", kind.tag()));
            std::fs::remove_dir_all(&dir).ok();
            let reference = Engine::new(&spec(kind)).unwrap();
            let durable = Engine::new(&spec(kind))
                .unwrap()
                .with_wal(WalConfig::new(dir.clone()))
                .unwrap();
            // Interleave ingest with strict reads so the recovered run
            // must replay query/stats markers to reproduce RNG positions
            // and the epoch counter.
            feed(&reference, 120, 0.0);
            feed(&durable, 120, 0.0);
            reference.query(Freshness::Strict).unwrap();
            durable.query(Freshness::Strict).unwrap();
            reference.stats(Freshness::Strict).unwrap();
            durable.stats(Freshness::Strict).unwrap();
            feed(&reference, 80, 0.5);
            feed(&durable, 80, 0.5);
            // Drop without checkpointing: recovery replays the tail.
            drop(durable);

            let recovered = Engine::new(&spec(kind))
                .unwrap()
                .with_wal(WalConfig::new(dir.clone()))
                .unwrap();
            assert_eq!(recovered.points_seen(), 200, "{kind:?}");
            assert_eq!(recovered.epoch(), 1, "{kind:?} recovered epoch");
            let a = reference.query(Freshness::Strict).unwrap();
            let b = recovered.query(Freshness::Strict).unwrap();
            assert_eq!(a.centers, b.centers, "{kind:?} recovery diverged");
            assert_eq!(a.epoch, b.epoch, "{kind:?} epoch sequence diverged");

            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn wal_checkpoint_compaction_preserves_bit_identity() {
        let dir = temp_dir("wal-ckpt");
        std::fs::remove_dir_all(&dir).ok();
        // A tiny checkpoint threshold forces compaction every few appends;
        // restart must still continue bit-identically.
        let config = WalConfig::new(dir.clone()).with_checkpoint_bytes(512);
        let reference = Engine::new(&spec(BackendKind::Cc)).unwrap();
        let durable = Engine::new(&spec(BackendKind::Cc))
            .unwrap()
            .with_wal(config.clone())
            .unwrap();
        feed(&reference, 150, 0.0);
        feed(&durable, 150, 0.0);
        reference.query(Freshness::Strict).unwrap();
        durable.query(Freshness::Strict).unwrap();
        drop(durable);

        let recovered = Engine::new(&spec(BackendKind::Cc))
            .unwrap()
            .with_wal(config)
            .unwrap();
        feed(&reference, 150, 0.5);
        feed(&recovered, 150, 0.5);
        let a = reference.query(Freshness::Strict).unwrap();
        let b = recovered.query(Freshness::Strict).unwrap();
        assert_eq!(a.centers, b.centers, "compacted recovery diverged");
        assert_eq!(a.epoch, b.epoch);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_supersedes_eviction_files() {
        let dir = temp_dir("wal-evict");
        let evict = temp_dir("wal-evict-files");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&evict).ok();
        std::fs::create_dir_all(&evict).unwrap();
        let engine = Engine::with_options(&spec(BackendKind::Cc), 2, Some(evict.clone()))
            .unwrap()
            .with_wal(WalConfig::new(dir.clone()))
            .unwrap();
        feed_in(&engine, "a", 60, 0.0);
        engine.query_in("a", Freshness::Strict).unwrap();
        let _ = engine.points_seen(); // make default the MRU
        feed_in(&engine, "b", 20, 0.0); // pages `a` out

        assert!(engine.is_evicted_to_disk("a"));
        // Page-out went through the log, not an eviction file.
        assert!(!evict.join(evict_file_name("a")).exists());
        assert!(dir.join("a").exists());

        // Restore continues the stream with its epoch.
        assert_eq!(engine.points_seen_in("a").unwrap(), 60);
        assert_eq!(engine.epoch_in("a").unwrap(), 1);

        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&evict).ok();
    }

    #[test]
    fn idle_tenants_are_paged_out_and_restored() {
        let dir = temp_dir("wal-idle");
        std::fs::remove_dir_all(&dir).ok();
        let engine = Engine::new(&spec(BackendKind::Cc))
            .unwrap()
            .with_wal(WalConfig::new(dir.clone()))
            .unwrap();
        feed_in(&engine, "busy", 40, 0.0);
        feed_in(&engine, "quiet", 40, 0.0);
        engine.query_in("quiet", Freshness::Strict).unwrap();

        // Pin the clock: `quiet` (and `default`) idle past the limit,
        // `busy` stays fresh.
        let now = engine.now_ms() + 10_000;
        engine
            .tenant("busy")
            .unwrap()
            .last_touch_ms
            .store(now, Ordering::Relaxed);
        let mut evicted = engine.evict_idle_at(Duration::from_secs(5), now).unwrap();
        evicted.sort();
        assert_eq!(evicted, vec!["default", "quiet"]);
        assert!(engine.is_evicted_to_disk("quiet"));
        assert!(!engine.is_evicted_to_disk("busy"));

        // Nothing left over the limit: second sweep is a no-op.
        assert!(engine
            .evict_idle_at(Duration::from_secs(5), now)
            .unwrap()
            .is_empty());

        // The paged-out tenant restores bit-identically on next touch.
        assert_eq!(engine.points_seen_in("quiet").unwrap(), 40);
        assert_eq!(engine.epoch_in("quiet").unwrap(), 1);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn evict_idle_without_paging_store_is_a_no_op() {
        let engine = Engine::new(&spec(BackendKind::Cc)).unwrap();
        feed_in(&engine, "a", 10, 0.0);
        // No WAL and no eviction directory: nothing to page to, so nothing
        // is dropped (dropping would lose state).
        let evicted = engine.evict_idle_at(Duration::ZERO, u64::MAX).unwrap();
        assert!(evicted.is_empty());
        assert_eq!(engine.points_seen_in("a").unwrap(), 10);
    }

    #[test]
    fn configure_refuses_a_paged_out_wal_tenant() {
        let dir = temp_dir("wal-cfgdup");
        std::fs::remove_dir_all(&dir).ok();
        let engine = Engine::new(&spec(BackendKind::Cc))
            .unwrap()
            .with_wal(WalConfig::new(dir.clone()))
            .unwrap();
        feed_in(&engine, "t", 10, 0.0);
        let now = engine.now_ms() + 10_000;
        engine.evict_idle_at(Duration::from_secs(5), now).unwrap();
        assert!(engine.is_evicted_to_disk("t"));
        let err = engine.configure("t", &spec(BackendKind::Cc)).unwrap_err();
        assert!(
            matches!(
                err,
                ClusteringError::InvalidParameter {
                    name: "tenant_exists",
                    ..
                }
            ),
            "{err:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replica_snapshot_and_tail_reproduce_the_primary() {
        let dir = temp_dir("wal-replica");
        std::fs::remove_dir_all(&dir).ok();
        // Sync every append: `wal_tail_in` serves only *durable* records
        // (a follower must never get ahead of what the primary would
        // recover to), so the test pins durability to the append.
        let primary = Engine::new(&spec(BackendKind::Cc))
            .unwrap()
            .with_wal(WalConfig::new(dir.clone()).with_fsync_ms(0))
            .unwrap();
        feed(&primary, 100, 0.0);
        primary.query(Freshness::Strict).unwrap();

        // Follower bootstrap: snapshot at seq, then tail from seq + 1.
        let (seq, epoch, snapshot) = primary.replica_snapshot_in(DEFAULT_NAMESPACE).unwrap();
        assert_eq!(epoch, 1);
        let follower = Engine::from_snapshot_json(&snapshot).unwrap();
        assert_eq!(follower.epoch(), 1);

        feed(&primary, 50, 0.5);
        primary.query(Freshness::Strict).unwrap();
        let (records, last_seq) = primary.wal_tail_in(DEFAULT_NAMESPACE, seq + 1).unwrap();
        let records = records.expect("tail not compacted");
        assert_eq!(records.last().map(|(s, _)| *s), Some(last_seq));
        for (_, payload) in &records {
            let record = decode_replication_record(payload).unwrap();
            follower
                .apply_replication_record_in(DEFAULT_NAMESPACE, &record)
                .unwrap();
        }

        // The follower applied the primary's exact input stream through
        // the same code paths: published answers are bit-identical.
        let a = primary.published().unwrap();
        let b = follower.published().unwrap();
        assert_eq!(a.as_ref(), b.as_ref(), "follower diverged from primary");

        // A compacted position forces a resync.
        primary.checkpoint_now_in(DEFAULT_NAMESPACE).unwrap();
        let (records, _) = primary.wal_tail_in(DEFAULT_NAMESPACE, seq + 1).unwrap();
        assert!(records.is_none(), "compacted tail must demand a resync");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_accessors_require_a_wal() {
        let engine = Engine::new(&spec(BackendKind::Cc)).unwrap();
        assert!(!engine.wal_enabled());
        assert!(engine.replica_snapshot_in(DEFAULT_NAMESPACE).is_err());
        assert!(engine.wal_tail_in(DEFAULT_NAMESPACE, 1).is_err());
        assert!(engine.wal_durable_seq_in(DEFAULT_NAMESPACE).is_err());
        assert!(engine.checkpoint_now_in(DEFAULT_NAMESPACE).is_err());
        // The sync tick is harmlessly empty without logs.
        engine.wal_sync_all().unwrap();
    }

    #[test]
    fn rejected_writes_are_not_logged() {
        let dir = temp_dir("wal-reject");
        std::fs::remove_dir_all(&dir).ok();
        let engine = Engine::new(&spec(BackendKind::Cc))
            .unwrap()
            .with_wal(WalConfig::new(dir.clone()))
            .unwrap();
        engine.ingest(&[1.0, 2.0]).unwrap();
        let seq_after_accept = engine.wal_durable_seq_in(DEFAULT_NAMESPACE).ok();

        // Every rejected shape: empty, wrong dimension, non-finite, and a
        // batch poisoned mid-way. None may append a record.
        assert!(engine.ingest(&[]).is_err());
        assert!(engine.ingest(&[1.0]).is_err());
        assert!(engine.ingest(&[f64::NAN, 0.0]).is_err());
        assert!(engine.ingest_batch(&[vec![3.0, 4.0], vec![5.0]]).is_err());
        let (records, last_seq) = engine.wal_tail_in(DEFAULT_NAMESPACE, 1).unwrap();
        assert_eq!(last_seq, 1, "only the accepted ingest is logged");
        let _ = (seq_after_accept, records);

        // Empty-stream strict query answers EmptyInput without logging.
        let fresh_dir = temp_dir("wal-reject-empty");
        std::fs::remove_dir_all(&fresh_dir).ok();
        let fresh = Engine::new(&spec(BackendKind::Cc))
            .unwrap()
            .with_wal(WalConfig::new(fresh_dir.clone()))
            .unwrap();
        assert!(matches!(
            fresh.query(Freshness::Strict).unwrap_err(),
            ClusteringError::EmptyInput
        ));
        let (_, last_seq) = fresh.wal_tail_in(DEFAULT_NAMESPACE, 1).unwrap();
        assert_eq!(last_seq, 0, "a refused query must not be logged");

        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&fresh_dir).ok();
    }
}
