//! The [`Engine`] facade: one shared clusterer behind a mutex, plus
//! snapshot/restore.
//!
//! The engine is what connection handler threads talk to. It wraps either a
//! [`ShardedStream`] over per-shard CC clusterers (the default — ingestion
//! parallelism comes from the shard worker threads, so the coordinator
//! mutex is held only for cheap buffering and channel sends) or one of the
//! single-threaded clusterers (CC, CT, RCC) for small deployments.
//!
//! Snapshots serialize the complete backend state — configuration, coreset
//! tree levels, caches, partially filled buckets and RNG positions — into a
//! versioned JSON envelope ([`SnapshotFile`]), so a server restarted from a
//! snapshot continues the stream bit-identically to one that never stopped.

use serde::{Deserialize, Serialize};
use skm_clustering::error::{ClusteringError, Result};
use skm_clustering::Centers;
use skm_stream::{
    CachedCoresetTree, CoresetTreeClusterer, QueryStats, RecursiveCachedTree, ShardedStream,
    ShardedStreamState, StreamConfig, StreamStats, StreamingClusterer,
};
use std::sync::Mutex;

/// Current snapshot envelope version; bump when [`SnapshotFile`] or any
/// serialized backend state changes shape incompatibly.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Which clusterer the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Sharded multi-threaded ingestion over per-shard CC clusterers
    /// (the recommended default).
    ShardedCc,
    /// Single-threaded cached coreset tree.
    Cc,
    /// Single-threaded plain coreset tree (streamkm++).
    Ct,
    /// Single-threaded recursive coreset cache.
    Rcc,
}

impl BackendKind {
    /// The tag stored in snapshot files and accepted by
    /// [`BackendKind::parse`].
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            BackendKind::ShardedCc => "sharded-cc",
            BackendKind::Cc => "cc",
            BackendKind::Ct => "ct",
            BackendKind::Rcc => "rcc",
        }
    }

    /// Parses a backend tag (case-insensitive).
    #[must_use]
    pub fn parse(tag: &str) -> Option<Self> {
        match tag.to_ascii_lowercase().as_str() {
            "sharded-cc" | "sharded" => Some(BackendKind::ShardedCc),
            "cc" => Some(BackendKind::Cc),
            "ct" => Some(BackendKind::Ct),
            "rcc" => Some(BackendKind::Rcc),
            _ => None,
        }
    }
}

/// How to build an [`Engine`].
#[derive(Debug, Clone, Copy)]
pub struct EngineSpec {
    /// Backend to run.
    pub kind: BackendKind,
    /// Shared streaming configuration (k, bucket size, query settings).
    pub stream: StreamConfig,
    /// Shard count (only used by [`BackendKind::ShardedCc`]).
    pub shards: usize,
    /// Points buffered per shard before a batch ships (sharded backend).
    pub batch: usize,
    /// RCC nesting depth (only used by [`BackendKind::Rcc`]).
    pub nesting_depth: u32,
    /// Master RNG seed.
    pub seed: u64,
}

impl EngineSpec {
    /// The default serving spec: sharded CC with `shards` workers.
    #[must_use]
    pub fn sharded_cc(stream: StreamConfig, shards: usize, batch: usize, seed: u64) -> Self {
        Self {
            kind: BackendKind::ShardedCc,
            stream,
            shards,
            batch,
            nesting_depth: 2,
            seed,
        }
    }
}

/// The concrete clusterer behind the engine mutex.
#[derive(Debug)]
enum Backend {
    ShardedCc(ShardedStream<CachedCoresetTree>),
    Cc(CachedCoresetTree),
    Ct(CoresetTreeClusterer),
    Rcc(RecursiveCachedTree),
}

impl Backend {
    fn build(spec: &EngineSpec) -> Result<Self> {
        Ok(match spec.kind {
            BackendKind::ShardedCc => Backend::ShardedCc(ShardedStream::cc(
                spec.stream,
                spec.shards,
                spec.batch,
                spec.seed,
            )?),
            BackendKind::Cc => Backend::Cc(CachedCoresetTree::new(spec.stream, spec.seed)?),
            BackendKind::Ct => Backend::Ct(CoresetTreeClusterer::new(spec.stream, spec.seed)?),
            BackendKind::Rcc => Backend::Rcc(RecursiveCachedTree::new(
                spec.stream,
                spec.nesting_depth,
                spec.seed,
            )?),
        })
    }

    fn kind(&self) -> BackendKind {
        match self {
            Backend::ShardedCc(_) => BackendKind::ShardedCc,
            Backend::Cc(_) => BackendKind::Cc,
            Backend::Ct(_) => BackendKind::Ct,
            Backend::Rcc(_) => BackendKind::Rcc,
        }
    }

    fn clusterer(&mut self) -> &mut dyn StreamingClusterer {
        match self {
            Backend::ShardedCc(s) => s,
            Backend::Cc(c) => c,
            Backend::Ct(c) => c,
            Backend::Rcc(c) => c,
        }
    }

    fn stats(&mut self) -> Result<StreamStats> {
        match self {
            Backend::ShardedCc(s) => s.stats(),
            other => {
                let c = other.clusterer();
                Ok(StreamStats {
                    points_seen: c.points_seen(),
                    shards: 1,
                    per_shard_points: vec![c.points_seen()],
                    last_query: c.last_query_stats(),
                })
            }
        }
    }

    fn state_value(&mut self) -> Result<serde::Value> {
        Ok(match self {
            Backend::ShardedCc(s) => s.snapshot()?.to_value(),
            Backend::Cc(c) => c.to_value(),
            Backend::Ct(c) => c.to_value(),
            Backend::Rcc(c) => c.to_value(),
        })
    }

    fn from_state(kind: BackendKind, state: &serde::Value) -> Result<Self> {
        let restore_err = |e: serde::Error| ClusteringError::InvalidParameter {
            name: "snapshot",
            message: e.to_string(),
        };
        let backend = match kind {
            BackendKind::ShardedCc => {
                // `ShardedStream::restore` validates config and cursor
                // itself.
                let state = ShardedStreamState::from_value(state).map_err(restore_err)?;
                Backend::ShardedCc(ShardedStream::restore(&state)?)
            }
            BackendKind::Cc => {
                Backend::Cc(CachedCoresetTree::from_value(state).map_err(restore_err)?)
            }
            BackendKind::Ct => {
                Backend::Ct(CoresetTreeClusterer::from_value(state).map_err(restore_err)?)
            }
            BackendKind::Rcc => {
                Backend::Rcc(RecursiveCachedTree::from_value(state).map_err(restore_err)?)
            }
        };
        // A tampered single-backend snapshot must not smuggle in a
        // configuration the constructors would have rejected.
        match &backend {
            Backend::ShardedCc(_) => {}
            Backend::Cc(c) => c.config().validate()?,
            Backend::Ct(c) => c.config().validate()?,
            Backend::Rcc(c) => c.config().validate()?,
        }
        Ok(backend)
    }
}

/// Versioned on-disk snapshot envelope: the backend tag picks the concrete
/// state type at restore time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnapshotFile {
    /// Envelope version ([`SNAPSHOT_VERSION`]).
    pub snapshot_version: u32,
    /// Backend tag ([`BackendKind::tag`]).
    pub backend: String,
    /// The backend's serialized state.
    pub state: serde::Value,
}

/// The thread-safe serving facade over one streaming clusterer.
///
/// All methods take `&self`; connection handler threads share the engine
/// through an `Arc`.
#[derive(Debug)]
pub struct Engine {
    inner: Mutex<Backend>,
}

/// An engine mutex can only be poisoned by a panic inside a clusterer; the
/// state may be mid-update, so refuse to serve from it.
fn poisoned() -> ClusteringError {
    ClusteringError::InvalidParameter {
        name: "engine",
        message: "engine poisoned by an earlier panic".to_string(),
    }
}

impl Engine {
    /// Builds an engine from a spec.
    ///
    /// # Errors
    /// Propagates configuration validation errors.
    pub fn new(spec: &EngineSpec) -> Result<Self> {
        Ok(Self {
            inner: Mutex::new(Backend::build(spec)?),
        })
    }

    /// Which backend this engine runs.
    ///
    /// # Errors
    /// Fails only when the engine is poisoned.
    pub fn kind(&self) -> Result<BackendKind> {
        Ok(self.inner.lock().map_err(|_| poisoned())?.kind())
    }

    /// Ingests one point; returns the total points seen afterwards.
    ///
    /// # Errors
    /// Returns validation errors (dimension mismatch, non-finite
    /// coordinates, empty point); the engine state is unchanged on error.
    pub fn ingest(&self, point: &[f64]) -> Result<u64> {
        let mut guard = self.inner.lock().map_err(|_| poisoned())?;
        let clusterer = guard.clusterer();
        clusterer.update(point)?;
        Ok(clusterer.points_seen())
    }

    /// Ingests a batch of points atomically: the whole batch is validated
    /// against the stream dimension before any point is consumed, so a
    /// rejected batch leaves the engine untouched.
    ///
    /// # Errors
    /// Returns the first validation failure (with the offending in-batch
    /// index for non-finite coordinates).
    pub fn ingest_batch(&self, points: &[Vec<f64>]) -> Result<u64> {
        let refs: Vec<&[f64]> = points.iter().map(Vec::as_slice).collect();
        let mut guard = self.inner.lock().map_err(|_| poisoned())?;
        let clusterer = guard.clusterer();
        // Pre-validate the whole batch so even backends whose
        // `update_batch` is a per-point loop (the sharded coordinator)
        // reject atomically at the serving layer.
        let mut dim = clusterer.dim();
        for (index, point) in refs.iter().enumerate() {
            if point.is_empty() {
                return Err(ClusteringError::InvalidParameter {
                    name: "point",
                    message: "points must have at least one dimension".to_string(),
                });
            }
            if let Some(d) = dim {
                if d != point.len() {
                    return Err(ClusteringError::DimensionMismatch {
                        expected: d,
                        got: point.len(),
                    });
                }
            }
            if point.iter().any(|x| !x.is_finite()) {
                return Err(ClusteringError::NonFiniteCoordinate { index });
            }
            dim = Some(point.len());
        }
        clusterer.update_batch(&refs)?;
        Ok(clusterer.points_seen())
    }

    /// Answers a clustering query.
    ///
    /// # Errors
    /// Returns [`ClusteringError::EmptyInput`] before the first point.
    pub fn query(&self) -> Result<(Centers, QueryStats, u64)> {
        let mut guard = self.inner.lock().map_err(|_| poisoned())?;
        let clusterer = guard.clusterer();
        let centers = clusterer.query()?;
        let stats = clusterer.last_query_stats().unwrap_or_default();
        Ok((centers, stats, clusterer.points_seen()))
    }

    /// Aggregated ingestion statistics.
    ///
    /// # Errors
    /// Fails when the engine is poisoned or a shard worker is gone.
    pub fn stats(&self) -> Result<StreamStats> {
        self.inner.lock().map_err(|_| poisoned())?.stats()
    }

    /// Total points ingested so far.
    ///
    /// # Errors
    /// Fails only when the engine is poisoned.
    pub fn points_seen(&self) -> Result<u64> {
        Ok(self
            .inner
            .lock()
            .map_err(|_| poisoned())?
            .clusterer()
            .points_seen())
    }

    /// Points held by the backend's internal structures (paper accounting).
    ///
    /// # Errors
    /// Fails only when the engine is poisoned.
    pub fn memory_points(&self) -> Result<usize> {
        Ok(self
            .inner
            .lock()
            .map_err(|_| poisoned())?
            .clusterer()
            .memory_points())
    }

    /// Serializes the full engine state into the versioned JSON envelope.
    ///
    /// # Errors
    /// Fails when the engine is poisoned or a shard has latched an error.
    pub fn snapshot_json(&self) -> Result<String> {
        let mut guard = self.inner.lock().map_err(|_| poisoned())?;
        let file = SnapshotFile {
            snapshot_version: SNAPSHOT_VERSION,
            backend: guard.kind().tag().to_string(),
            state: guard.state_value()?,
        };
        serde_json::to_string(&file).map_err(|e| ClusteringError::InvalidParameter {
            name: "snapshot",
            message: e.to_string(),
        })
    }

    /// Cold-starts an engine from a snapshot produced by
    /// [`Engine::snapshot_json`]. Continuing the restored engine is
    /// bit-identical to continuing the engine the snapshot was taken from.
    ///
    /// # Errors
    /// Returns [`ClusteringError::InvalidParameter`] for unparseable
    /// snapshots, unknown backends or unsupported versions.
    pub fn from_snapshot_json(text: &str) -> Result<Self> {
        let invalid = |message: String| ClusteringError::InvalidParameter {
            name: "snapshot",
            message,
        };
        let file: SnapshotFile = serde_json::from_str(text).map_err(|e| invalid(e.to_string()))?;
        if file.snapshot_version != SNAPSHOT_VERSION {
            return Err(invalid(format!(
                "unsupported snapshot version {} (this build reads version {SNAPSHOT_VERSION})",
                file.snapshot_version
            )));
        }
        let kind = BackendKind::parse(&file.backend)
            .ok_or_else(|| invalid(format!("unknown backend `{}`", file.backend)))?;
        Ok(Self {
            inner: Mutex::new(Backend::from_state(kind, &file.state)?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kind: BackendKind) -> EngineSpec {
        EngineSpec {
            kind,
            stream: StreamConfig::new(2)
                .with_bucket_size(20)
                .with_kmeans_runs(1)
                .with_lloyd_iterations(2),
            shards: 2,
            batch: 8,
            nesting_depth: 2,
            seed: 7,
        }
    }

    fn feed(engine: &Engine, n: usize, offset: f64) {
        for i in 0..n {
            let x = if i % 2 == 0 { 0.0 } else { 60.0 };
            engine.ingest(&[x + offset, (i % 5) as f64 * 0.1]).unwrap();
        }
    }

    #[test]
    fn every_backend_ingests_and_queries() {
        for kind in [
            BackendKind::ShardedCc,
            BackendKind::Cc,
            BackendKind::Ct,
            BackendKind::Rcc,
        ] {
            let engine = Engine::new(&spec(kind)).unwrap();
            assert_eq!(engine.kind().unwrap(), kind);
            feed(&engine, 300, 0.0);
            let (centers, stats, seen) = engine.query().unwrap();
            assert_eq!(centers.len(), 2, "{kind:?}");
            assert_eq!(seen, 300, "{kind:?}");
            assert!(stats.ran_kmeans, "{kind:?}");
            let s = engine.stats().unwrap();
            assert_eq!(s.points_seen, 300, "{kind:?}");
            assert_eq!(s.per_shard_points.iter().sum::<u64>(), 300, "{kind:?}");
            assert!(engine.memory_points().unwrap() > 0, "{kind:?}");
        }
    }

    #[test]
    fn batch_rejection_is_atomic_for_every_backend() {
        for kind in [BackendKind::ShardedCc, BackendKind::Cc] {
            let engine = Engine::new(&spec(kind)).unwrap();
            engine.ingest(&[1.0, 2.0]).unwrap();
            // Good point followed by a wrong-dimension point: nothing of the
            // batch may be consumed.
            let err = engine
                .ingest_batch(&[vec![3.0, 4.0], vec![5.0]])
                .unwrap_err();
            assert!(matches!(
                err,
                ClusteringError::DimensionMismatch {
                    expected: 2,
                    got: 1
                }
            ));
            let err = engine
                .ingest_batch(&[vec![3.0, 4.0], vec![f64::NAN, 0.0]])
                .unwrap_err();
            assert!(matches!(
                err,
                ClusteringError::NonFiniteCoordinate { index: 1 }
            ));
            assert!(engine.ingest_batch(&[vec![3.0, 4.0], vec![]]).is_err());
            assert_eq!(engine.points_seen().unwrap(), 1, "{kind:?}");
            // A self-inconsistent first batch on a fresh engine must also be
            // rejected whole.
            let fresh = Engine::new(&spec(kind)).unwrap();
            assert!(fresh
                .ingest_batch(&[vec![1.0, 2.0], vec![1.0, 2.0, 3.0]])
                .is_err());
            assert_eq!(fresh.points_seen().unwrap(), 0, "{kind:?}");
        }
    }

    #[test]
    fn snapshot_restore_continue_matches_uninterrupted() {
        for kind in [
            BackendKind::ShardedCc,
            BackendKind::Cc,
            BackendKind::Ct,
            BackendKind::Rcc,
        ] {
            let reference = Engine::new(&spec(kind)).unwrap();
            let snapshotted = Engine::new(&spec(kind)).unwrap();
            feed(&reference, 150, 0.0);
            feed(&snapshotted, 150, 0.0);
            let json = snapshotted.snapshot_json().unwrap();
            drop(snapshotted);
            let restored = Engine::from_snapshot_json(&json).unwrap();
            assert_eq!(restored.kind().unwrap(), kind);
            feed(&reference, 150, 0.5);
            feed(&restored, 150, 0.5);
            let (a, _, _) = reference.query().unwrap();
            let (b, _, _) = restored.query().unwrap();
            assert_eq!(a, b, "{kind:?} snapshot continuation diverged");
        }
    }

    #[test]
    fn snapshot_envelope_is_versioned_and_validated() {
        let engine = Engine::new(&spec(BackendKind::Cc)).unwrap();
        feed(&engine, 30, 0.0);
        let json = engine.snapshot_json().unwrap();
        assert!(json.contains("\"snapshot_version\":1"));
        assert!(json.contains("\"backend\":\"cc\""));

        assert!(Engine::from_snapshot_json("not json").is_err());
        let wrong_version = json.replace("\"snapshot_version\":1", "\"snapshot_version\":99");
        assert!(Engine::from_snapshot_json(&wrong_version).is_err());
        let wrong_backend = json.replace("\"backend\":\"cc\"", "\"backend\":\"nope\"");
        assert!(Engine::from_snapshot_json(&wrong_backend).is_err());
    }

    #[test]
    fn tampered_snapshots_are_rejected_not_restored() {
        let engine = Engine::new(&spec(BackendKind::Cc)).unwrap();
        feed(&engine, 30, 0.0);
        let json = engine.snapshot_json().unwrap();

        // A hand-edited bucket size of 0 would make the partial bucket
        // never flush; both the buffer's own deserializer and the config
        // validation must refuse it.
        let zero_bucket = json.replace("\"bucket_size\":20", "\"bucket_size\":0");
        assert_ne!(zero_bucket, json, "fixture drifted: bucket_size not found");
        assert!(Engine::from_snapshot_json(&zero_bucket).is_err());

        // Same for a config-level k = 0.
        let zero_k = json.replace("\"k\":2", "\"k\":0");
        assert_ne!(zero_k, json, "fixture drifted: k not found");
        assert!(Engine::from_snapshot_json(&zero_k).is_err());
    }

    #[test]
    fn backend_tags_round_trip() {
        for kind in [
            BackendKind::ShardedCc,
            BackendKind::Cc,
            BackendKind::Ct,
            BackendKind::Rcc,
        ] {
            assert_eq!(BackendKind::parse(kind.tag()), Some(kind));
        }
        assert_eq!(BackendKind::parse("SHARDED"), Some(BackendKind::ShardedCc));
        assert_eq!(BackendKind::parse("bogus"), None);
    }
}
