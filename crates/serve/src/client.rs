//! A small blocking client for the newline-delimited JSON protocol, used by
//! the load generator, the examples and the protocol tests.

use crate::protocol::{Freshness, Request, Response, TenantConfig};
use skm_stream::StreamStats;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One protocol connection, optionally pinned to a tenant namespace: when
/// set, every request built by the convenience methods carries it.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    namespace: Option<String>,
}

/// Maps a protocol-level surprise (unparseable response line) to `io::Error`.
fn protocol_error(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        // Request/response round trips are latency-bound: without NODELAY,
        // Nagle + delayed ACKs put a ~40 ms floor under every request.
        stream.set_nodelay(true)?;
        Ok(Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            namespace: None,
        })
    }

    /// Pins this connection to a tenant namespace (builder-style): every
    /// request built by the convenience methods carries it from now on.
    #[must_use]
    pub fn with_namespace(mut self, namespace: impl Into<String>) -> Self {
        self.namespace = Some(namespace.into());
        self
    }

    /// Switches the tenant the convenience methods target (`None` means
    /// the server-side default tenant).
    pub fn set_namespace(&mut self, namespace: Option<String>) {
        self.namespace = namespace;
    }

    /// The tenant the convenience methods currently target.
    #[must_use]
    pub fn namespace(&self) -> Option<&str> {
        self.namespace.as_deref()
    }

    /// Sends one request and reads the matching response.
    ///
    /// # Errors
    /// Propagates socket errors; an unparseable response or a server that
    /// hung up mid-exchange is reported as [`io::ErrorKind::InvalidData`] /
    /// [`io::ErrorKind::UnexpectedEof`].
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        self.send_raw_line(&request.to_line())
    }

    /// Sends a raw line verbatim (the protocol tests use this to exercise
    /// malformed input) and reads one response.
    ///
    /// # Errors
    /// Same failure modes as [`Client::call`].
    pub fn send_raw_line(&mut self, line: &str) -> io::Result<Response> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Response::from_line(reply.trim()).map_err(protocol_error)
    }

    /// Ingests one point.
    ///
    /// # Errors
    /// Propagates transport errors ([`Client::call`]).
    pub fn ingest(&mut self, point: Vec<f64>) -> io::Result<Response> {
        let namespace = self.namespace.clone();
        self.call(&Request::Ingest { point, namespace })
    }

    /// Ingests a batch of points.
    ///
    /// # Errors
    /// Propagates transport errors ([`Client::call`]).
    pub fn ingest_batch(&mut self, points: Vec<Vec<f64>>) -> io::Result<Response> {
        let namespace = self.namespace.clone();
        self.call(&Request::IngestBatch { points, namespace })
    }

    /// Queries the current centers on the strict read path, returning the
    /// full response.
    ///
    /// # Errors
    /// Propagates transport errors ([`Client::call`]).
    pub fn query(&mut self) -> io::Result<Response> {
        self.query_with(Freshness::Strict)
    }

    /// Queries on the requested read path (strict or cached), returning
    /// the full response.
    ///
    /// # Errors
    /// Propagates transport errors ([`Client::call`]).
    pub fn query_with(&mut self, freshness: Freshness) -> io::Result<Response> {
        let namespace = self.namespace.clone();
        self.call(&Request::Query {
            freshness,
            namespace,
        })
    }

    /// Queries (strict) and unwraps the center rows, mapping a server-side
    /// error response to [`io::ErrorKind::Other`].
    ///
    /// # Errors
    /// Transport errors, plus any typed server error.
    pub fn query_centers(&mut self) -> io::Result<Vec<Vec<f64>>> {
        match self.query()? {
            Response::Centers { centers, .. } => Ok(centers),
            other => Err(io::Error::other(format!("query failed: {other:?}"))),
        }
    }

    /// Fetches ingestion statistics on the strict read path, mapping a
    /// server-side error response to [`io::ErrorKind::Other`].
    ///
    /// # Errors
    /// Transport errors, plus any typed server error.
    pub fn stats(&mut self) -> io::Result<StreamStats> {
        self.stats_with(Freshness::Strict)
    }

    /// Fetches ingestion statistics on the requested read path, mapping a
    /// server-side error response to [`io::ErrorKind::Other`].
    ///
    /// # Errors
    /// Transport errors, plus any typed server error.
    pub fn stats_with(&mut self, freshness: Freshness) -> io::Result<StreamStats> {
        let namespace = self.namespace.clone();
        match self.call(&Request::Stats {
            freshness,
            namespace,
        })? {
            Response::Stats { stats } => Ok(stats),
            other => Err(io::Error::other(format!("stats failed: {other:?}"))),
        }
    }

    /// Asks the server to persist a snapshot under `file`.
    ///
    /// # Errors
    /// Propagates transport errors ([`Client::call`]).
    pub fn snapshot(&mut self, file: &str) -> io::Result<Response> {
        let namespace = self.namespace.clone();
        self.call(&Request::Snapshot {
            file: file.to_string(),
            namespace,
        })
    }

    /// Creates this connection's tenant with non-default settings. Must
    /// happen before the tenant's first ingest/query (a lazily created
    /// tenant uses the server defaults and cannot be reconfigured).
    ///
    /// # Errors
    /// Propagates transport errors ([`Client::call`]).
    pub fn configure(&mut self, config: TenantConfig) -> io::Result<Response> {
        let namespace = self.namespace.clone();
        self.call(&Request::Configure { namespace, config })
    }

    /// Asks the server to shut down.
    ///
    /// # Errors
    /// Propagates transport errors ([`Client::call`]).
    pub fn shutdown(&mut self) -> io::Result<Response> {
        self.call(&Request::Shutdown {})
    }
}
