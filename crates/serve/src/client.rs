//! A small blocking client for the protocol, used by the load generator,
//! the examples and the protocol tests.
//!
//! Connections are built with [`Client::builder`] ([`ClientBuilder`]):
//! address, default tenant namespace, wire codec (JSON or binary — the
//! builder performs the `Hello` handshake), and socket timeouts. Requests
//! take typed per-request options ([`RequestOptions`]: freshness +
//! namespace override) through the `*_opts` methods; the plain methods are
//! the strict/default-tenant conveniences.
//!
//! ```no_run
//! use skm_serve::client::{Client, RequestOptions};
//! use skm_serve::codec::CodecKind;
//!
//! let mut client = Client::builder("127.0.0.1:7878")
//!     .namespace("tenant-a")
//!     .codec(CodecKind::Binary)
//!     .connect()
//!     .unwrap();
//! client.ingest(vec![1.0, 2.0]).unwrap();
//! let cached = client.query_opts(&RequestOptions::cached()).unwrap();
//! # let _ = cached;
//! ```
//!
//! The pre-1.3 surface (`with_namespace`, `set_namespace`, `query_with`,
//! `stats_with`) had a one-release `#[deprecated]` grace window and has
//! been removed.

use crate::codec::{codec, Codec, CodecKind, MAX_FRAME_BYTES};
use crate::protocol::{Freshness, Request, Response, TenantConfig, WindowSpec};
use skm_stream::StreamStats;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Per-request options: which read path, (optionally) which tenant —
/// overriding the connection's default namespace for this request only —
/// and (optionally, revision 1.5) a window restricting `Query`/`Stats` to
/// the most recent part of the stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RequestOptions {
    /// Tenant override; `None` falls back to the connection's namespace.
    pub namespace: Option<String>,
    /// Read path for `Query`/`Stats` (ignored by other requests).
    pub freshness: Freshness,
    /// Window for `Query`/`Stats` (ignored by other requests). `None` — the
    /// pre-1.5 shape, byte-identical on the wire — means the whole stream.
    pub window: Option<WindowSpec>,
}

impl RequestOptions {
    /// Default options: strict freshness, connection namespace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Strict-freshness options (same as [`RequestOptions::new`]).
    #[must_use]
    pub fn strict() -> Self {
        Self::default()
    }

    /// Cached-freshness options.
    #[must_use]
    pub fn cached() -> Self {
        Self {
            freshness: Freshness::Cached,
            ..Self::default()
        }
    }

    /// Targets `namespace` for this request only.
    #[must_use]
    pub fn with_namespace(mut self, namespace: impl Into<String>) -> Self {
        self.namespace = Some(namespace.into());
        self
    }

    /// Selects the read path.
    #[must_use]
    pub fn with_freshness(mut self, freshness: Freshness) -> Self {
        self.freshness = freshness;
        self
    }

    /// Restricts `Query`/`Stats` to a window over the most recent part of
    /// the stream (revision 1.5; build the spec with
    /// [`WindowSpec::points`] or [`WindowSpec::secs`]).
    #[must_use]
    pub fn with_window(mut self, window: WindowSpec) -> Self {
        self.window = Some(window);
        self
    }
}

/// Configures and connects a [`Client`]; see the module docs for an
/// example.
#[derive(Debug)]
pub struct ClientBuilder<A: ToSocketAddrs> {
    addr: A,
    namespace: Option<String>,
    codec: CodecKind,
    connect_timeout: Option<Duration>,
    io_timeout: Option<Duration>,
}

impl<A: ToSocketAddrs> ClientBuilder<A> {
    /// Pins the connection to a default tenant namespace: every request
    /// without a per-request override carries it.
    #[must_use]
    pub fn namespace(mut self, namespace: impl Into<String>) -> Self {
        self.namespace = Some(namespace.into());
        self
    }

    /// Selects the wire codec. [`CodecKind::Binary`] makes
    /// [`ClientBuilder::connect`] perform the `Hello` handshake; the
    /// default is JSON, which needs none (and works against pre-1.3
    /// servers).
    #[must_use]
    pub fn codec(mut self, codec: CodecKind) -> Self {
        self.codec = codec;
        self
    }

    /// Bounds the TCP connect.
    #[must_use]
    pub fn connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = Some(timeout);
        self
    }

    /// Bounds every read and write on the connected socket.
    #[must_use]
    pub fn io_timeout(mut self, timeout: Duration) -> Self {
        self.io_timeout = Some(timeout);
        self
    }

    /// Connects (and, for the binary codec, handshakes).
    ///
    /// # Errors
    /// Socket errors; a refused or malformed handshake is reported as
    /// [`io::ErrorKind::InvalidData`].
    pub fn connect(self) -> io::Result<Client> {
        let stream = match self.connect_timeout {
            None => TcpStream::connect(&self.addr)?,
            Some(timeout) => {
                let mut last_err = None;
                let mut connected = None;
                for addr in self.addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&addr, timeout) {
                        Ok(stream) => {
                            connected = Some(stream);
                            break;
                        }
                        Err(e) => last_err = Some(e),
                    }
                }
                match connected {
                    Some(stream) => stream,
                    None => {
                        return Err(last_err.unwrap_or_else(|| {
                            io::Error::new(
                                io::ErrorKind::InvalidInput,
                                "address resolved to no socket addresses",
                            )
                        }))
                    }
                }
            }
        };
        // Request/response round trips are latency-bound: without NODELAY,
        // Nagle + delayed ACKs put a ~40 ms floor under every request.
        stream.set_nodelay(true)?;
        stream.set_read_timeout(self.io_timeout)?;
        stream.set_write_timeout(self.io_timeout)?;
        let mut client = Client {
            stream,
            codec: codec(CodecKind::Json),
            read_buf: Vec::new(),
            namespace: self.namespace,
        };
        if self.codec == CodecKind::Binary {
            client.handshake(CodecKind::Binary)?;
        }
        Ok(client)
    }
}

/// One protocol connection. Build with [`Client::builder`] (or the
/// JSON-default [`Client::connect`]).
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    codec: &'static dyn Codec,
    read_buf: Vec<u8>,
    namespace: Option<String>,
}

/// Maps a protocol-level surprise (unparseable response frame) to
/// `io::Error`.
fn protocol_error(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

impl Client {
    /// Starts a [`ClientBuilder`] for `addr`.
    pub fn builder<A: ToSocketAddrs>(addr: A) -> ClientBuilder<A> {
        ClientBuilder {
            addr,
            namespace: None,
            codec: CodecKind::Json,
            connect_timeout: None,
            io_timeout: None,
        }
    }

    /// Connects with the defaults: JSON codec, no namespace, no timeouts.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        Self::builder(addr).connect()
    }

    /// Negotiates `kind` as the first exchange on this connection (the
    /// `Hello` travels in the current codec; the switch takes effect after
    /// the server's accept).
    fn handshake(&mut self, kind: CodecKind) -> io::Result<()> {
        let response = self.call(&Request::Hello {
            codec: kind.as_str().to_string(),
        })?;
        match response {
            Response::Hello { .. } => {
                self.codec = codec(kind);
                Ok(())
            }
            Response::Error { code, message } => Err(protocol_error(format!(
                "handshake refused ({code:?}): {message}"
            ))),
            other => Err(protocol_error(format!("handshake answered with {other:?}"))),
        }
    }

    /// The wire codec this connection speaks.
    #[must_use]
    pub fn codec_kind(&self) -> CodecKind {
        self.codec.kind()
    }

    /// The tenant the convenience methods currently target.
    #[must_use]
    pub fn namespace(&self) -> Option<&str> {
        self.namespace.as_deref()
    }

    /// The namespace a request should carry: the per-request override, or
    /// this connection's default.
    fn resolve_namespace(&self, options: &RequestOptions) -> Option<String> {
        options.namespace.clone().or_else(|| self.namespace.clone())
    }

    /// Sends one request and reads the matching response.
    ///
    /// # Errors
    /// Propagates socket errors; an unparseable response or a server that
    /// hung up mid-exchange is reported as [`io::ErrorKind::InvalidData`] /
    /// [`io::ErrorKind::UnexpectedEof`].
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        let mut wire = Vec::new();
        self.codec.encode_request(request, &mut wire);
        self.stream.write_all(&wire)?;
        self.read_response()
    }

    /// Sends every request back-to-back in one write, then reads the
    /// responses in order — request pipelining: the server answers frame
    /// by frame without waiting for the client to read.
    ///
    /// # Errors
    /// Same failure modes as [`Client::call`]; on error the connection
    /// state is indeterminate (some responses may be unread).
    pub fn pipeline(&mut self, requests: &[Request]) -> io::Result<Vec<Response>> {
        let mut wire = Vec::new();
        for request in requests {
            self.codec.encode_request(request, &mut wire);
        }
        self.stream.write_all(&wire)?;
        let mut responses = Vec::with_capacity(requests.len());
        for _ in requests {
            responses.push(self.read_response()?);
        }
        Ok(responses)
    }

    /// Sends a raw JSON line verbatim (the protocol tests use this to
    /// exercise malformed input) and reads one response. Only meaningful
    /// on a JSON connection.
    ///
    /// # Errors
    /// Same failure modes as [`Client::call`].
    pub fn send_raw_line(&mut self, line: &str) -> io::Result<Response> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.read_response()
    }

    /// Reads exactly one response frame in the connection's codec.
    fn read_response(&mut self) -> io::Result<Response> {
        loop {
            match self.codec.next_frame(&self.read_buf) {
                Ok(Some(frame)) => {
                    let Some(payload) = self.read_buf.get(frame.start..frame.end) else {
                        return Err(protocol_error(
                            "codec produced an out-of-bounds frame".to_string(),
                        ));
                    };
                    let response = self.codec.decode_response(payload).map_err(protocol_error);
                    self.read_buf.drain(..frame.consumed);
                    return response;
                }
                Ok(None) => {}
                Err(frame_error) => return Err(protocol_error(frame_error.message)),
            }
            if self.read_buf.len() > MAX_FRAME_BYTES {
                return Err(protocol_error(
                    "response frame exceeds the protocol frame cap".to_string(),
                ));
            }
            let mut chunk = [0u8; 16 * 1024];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            match chunk.get(..n) {
                Some(filled) => self.read_buf.extend_from_slice(filled),
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "read reported more bytes than the buffer holds",
                    ))
                }
            }
        }
    }

    /// Ingests one point into the connection's tenant.
    ///
    /// # Errors
    /// Propagates transport errors ([`Client::call`]).
    pub fn ingest(&mut self, point: Vec<f64>) -> io::Result<Response> {
        self.ingest_opts(point, &RequestOptions::new())
    }

    /// Ingests one point with explicit options.
    ///
    /// # Errors
    /// Propagates transport errors ([`Client::call`]).
    pub fn ingest_opts(
        &mut self,
        point: Vec<f64>,
        options: &RequestOptions,
    ) -> io::Result<Response> {
        let namespace = self.resolve_namespace(options);
        self.call(&Request::Ingest { point, namespace })
    }

    /// Ingests a batch of points into the connection's tenant.
    ///
    /// # Errors
    /// Propagates transport errors ([`Client::call`]).
    pub fn ingest_batch(&mut self, points: Vec<Vec<f64>>) -> io::Result<Response> {
        self.ingest_batch_opts(points, &RequestOptions::new())
    }

    /// Ingests a batch with explicit options.
    ///
    /// # Errors
    /// Propagates transport errors ([`Client::call`]).
    pub fn ingest_batch_opts(
        &mut self,
        points: Vec<Vec<f64>>,
        options: &RequestOptions,
    ) -> io::Result<Response> {
        let namespace = self.resolve_namespace(options);
        self.call(&Request::IngestBatch { points, namespace })
    }

    /// Queries the current centers on the strict read path, returning the
    /// full response.
    ///
    /// # Errors
    /// Propagates transport errors ([`Client::call`]).
    pub fn query(&mut self) -> io::Result<Response> {
        self.query_opts(&RequestOptions::new())
    }

    /// Queries with explicit options (read path and/or tenant override).
    ///
    /// # Errors
    /// Propagates transport errors ([`Client::call`]).
    pub fn query_opts(&mut self, options: &RequestOptions) -> io::Result<Response> {
        let namespace = self.resolve_namespace(options);
        self.call(&Request::Query {
            freshness: options.freshness,
            namespace,
            window: options.window,
        })
    }

    /// Queries (strict) and unwraps the center rows, mapping a server-side
    /// error response to [`io::ErrorKind::Other`].
    ///
    /// # Errors
    /// Transport errors, plus any typed server error.
    pub fn query_centers(&mut self) -> io::Result<Vec<Vec<f64>>> {
        match self.query()? {
            Response::Centers { centers, .. } => Ok(centers),
            other => Err(io::Error::other(format!("query failed: {other:?}"))),
        }
    }

    /// Fetches ingestion statistics on the strict read path, mapping a
    /// server-side error response to [`io::ErrorKind::Other`].
    ///
    /// # Errors
    /// Transport errors, plus any typed server error.
    pub fn stats(&mut self) -> io::Result<StreamStats> {
        self.stats_opts(&RequestOptions::new())
    }

    /// Fetches ingestion statistics with explicit options, mapping a
    /// server-side error response to [`io::ErrorKind::Other`].
    ///
    /// # Errors
    /// Transport errors, plus any typed server error.
    pub fn stats_opts(&mut self, options: &RequestOptions) -> io::Result<StreamStats> {
        let namespace = self.resolve_namespace(options);
        match self.call(&Request::Stats {
            freshness: options.freshness,
            namespace,
            window: options.window,
        })? {
            Response::Stats { stats, .. } => Ok(stats),
            other => Err(io::Error::other(format!("stats failed: {other:?}"))),
        }
    }

    /// Asks the server to persist a snapshot under `file`.
    ///
    /// # Errors
    /// Propagates transport errors ([`Client::call`]).
    pub fn snapshot(&mut self, file: &str) -> io::Result<Response> {
        self.snapshot_opts(file, &RequestOptions::new())
    }

    /// Snapshots with explicit options.
    ///
    /// # Errors
    /// Propagates transport errors ([`Client::call`]).
    pub fn snapshot_opts(&mut self, file: &str, options: &RequestOptions) -> io::Result<Response> {
        let namespace = self.resolve_namespace(options);
        self.call(&Request::Snapshot {
            file: file.to_string(),
            namespace,
        })
    }

    /// Creates this connection's tenant with non-default settings. Must
    /// happen before the tenant's first ingest/query (a lazily created
    /// tenant uses the server defaults and cannot be reconfigured).
    ///
    /// # Errors
    /// Propagates transport errors ([`Client::call`]).
    pub fn configure(&mut self, config: TenantConfig) -> io::Result<Response> {
        self.configure_opts(config, &RequestOptions::new())
    }

    /// Configures a tenant with explicit options.
    ///
    /// # Errors
    /// Propagates transport errors ([`Client::call`]).
    pub fn configure_opts(
        &mut self,
        config: TenantConfig,
        options: &RequestOptions,
    ) -> io::Result<Response> {
        let namespace = self.resolve_namespace(options);
        self.call(&Request::Configure { namespace, config })
    }

    /// Asks the server to shut down.
    ///
    /// # Errors
    /// Propagates transport errors ([`Client::call`]).
    pub fn shutdown(&mut self) -> io::Result<Response> {
        self.call(&Request::Shutdown {})
    }

    /// Subscribes this connection to the server's replication stream for
    /// the connection's tenant, resuming after `from_seq` (0 = bootstrap
    /// from a fresh snapshot). Unlike [`Client::call`] this sends the
    /// request **without reading a response**: the server turns the
    /// connection into a one-way stream of `ReplicaSnapshot` / `Replicate`
    /// frames, which the caller drains with [`Client::recv`].
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn replicate(&mut self, from_seq: u64) -> io::Result<()> {
        self.replicate_opts(from_seq, &RequestOptions::new())
    }

    /// Subscribes to the replication stream with explicit options (the
    /// freshness field is ignored).
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn replicate_opts(&mut self, from_seq: u64, options: &RequestOptions) -> io::Result<()> {
        let namespace = self.resolve_namespace(options);
        let mut wire = Vec::new();
        self.codec.encode_request(
            &Request::Replicate {
                namespace,
                from_seq,
            },
            &mut wire,
        );
        self.stream.write_all(&wire)
    }

    /// Reads the next server frame without sending anything — the receive
    /// half of a replication subscription started with
    /// [`Client::replicate`].
    ///
    /// # Errors
    /// Same failure modes as [`Client::call`]; with an I/O timeout set, a
    /// quiet stream surfaces as [`io::ErrorKind::WouldBlock`] /
    /// [`io::ErrorKind::TimedOut`] and the read can simply be retried.
    pub fn recv(&mut self) -> io::Result<Response> {
        self.read_response()
    }
}
