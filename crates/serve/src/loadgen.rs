//! The built-in load generator: N concurrent connections driving a
//! configurable ingest:query mix, with per-request latency collection.
//!
//! The caller supplies the points (so it can later evaluate the returned
//! centers against exactly the data that was served); the generator
//! partitions them round-robin across connections, ships them in
//! `IngestBatch` requests and interleaves `Query` requests at the
//! configured rate. Latencies are whole request/response round trips as a
//! client observes them — loopback RTT included, because that is what a
//! remote caller experiences.

use crate::client::Client;
use crate::protocol::{Freshness, Response};
use std::io;
use std::net::SocketAddr;
use std::thread;
use std::time::Instant;

/// Load-generator settings.
#[derive(Debug, Clone, Copy)]
pub struct LoadSpec {
    /// Server to drive.
    pub addr: SocketAddr,
    /// Concurrent connections (each runs on its own thread).
    pub connections: usize,
    /// Points per `IngestBatch` request.
    pub batch: usize,
    /// Issue one `Query` after every `query_every` ingest requests per
    /// connection (0 disables interleaved queries).
    pub query_every: usize,
    /// Read path of the interleaved queries (strict = recompute under the
    /// ingest lock, cached = last published epoch).
    pub freshness: Freshness,
}

/// Latencies and counters collected by [`run_load`], pooled across all
/// connections.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// One sample per `IngestBatch` request, in nanoseconds.
    pub ingest_ns: Vec<f64>,
    /// One sample per `Query` request, in nanoseconds.
    pub query_ns: Vec<f64>,
    /// Total points acknowledged by the server.
    pub points_sent: u64,
    /// Total queries answered with centers.
    pub queries: u64,
    /// Typed error responses received (0 on a healthy run).
    pub server_errors: u64,
}

impl LoadReport {
    fn merge(&mut self, other: LoadReport) {
        self.ingest_ns.extend(other.ingest_ns);
        self.query_ns.extend(other.query_ns);
        self.points_sent += other.points_sent;
        self.queries += other.queries;
        self.server_errors += other.server_errors;
    }
}

/// One connection's share of the stream: points `i`, `i + C`, `i + 2C`, …
/// (round-robin keeps every connection's sub-stream statistically similar,
/// so per-shard clusterers never see a skewed slice).
fn connection_share(points: &[Vec<f64>], connection: usize, connections: usize) -> Vec<Vec<f64>> {
    points
        .iter()
        .skip(connection)
        .step_by(connections)
        .cloned()
        .collect()
}

fn drive_connection(spec: &LoadSpec, share: Vec<Vec<f64>>) -> io::Result<LoadReport> {
    let mut client = Client::connect(spec.addr)?;
    let mut report = LoadReport::default();
    let mut since_query = 0usize;
    for chunk in share.chunks(spec.batch.max(1)) {
        let start = Instant::now();
        let response = client.ingest_batch(chunk.to_vec())?;
        report.ingest_ns.push(start.elapsed().as_nanos() as f64);
        match response {
            Response::Ingested { accepted, .. } => report.points_sent += accepted,
            Response::Error { .. } => report.server_errors += 1,
            _ => {}
        }
        since_query += 1;
        if spec.query_every > 0 && since_query >= spec.query_every {
            since_query = 0;
            run_query(&mut client, spec.freshness, &mut report)?;
        }
    }
    // Short shares may never reach `query_every` ingest requests; issue one
    // end-of-share query anyway so a query-mixing run always produces at
    // least one query sample per connection.
    if spec.query_every > 0 && report.query_ns.is_empty() && !share.is_empty() {
        run_query(&mut client, spec.freshness, &mut report)?;
    }
    Ok(report)
}

/// Issues one timed `Query` request, recording the latency and outcome.
fn run_query(client: &mut Client, freshness: Freshness, report: &mut LoadReport) -> io::Result<()> {
    let start = Instant::now();
    let response = client.query_with(freshness)?;
    report.query_ns.push(start.elapsed().as_nanos() as f64);
    match response {
        Response::Centers { .. } => report.queries += 1,
        Response::Error { .. } => report.server_errors += 1,
        _ => {}
    }
    Ok(())
}

/// Drives the server with `spec.connections` concurrent clients ingesting
/// `points` (split round-robin) and interleaving queries, and returns the
/// pooled per-request latencies.
///
/// # Errors
/// Propagates connection/transport failures from any connection thread
/// (typed server error *responses* are counted, not failures).
pub fn run_load(spec: &LoadSpec, points: &[Vec<f64>]) -> io::Result<LoadReport> {
    let connections = spec.connections.max(1);
    let mut threads = Vec::with_capacity(connections);
    for connection in 0..connections {
        let share = connection_share(points, connection, connections);
        let spec = LoadSpec {
            connections,
            ..*spec
        };
        threads.push(thread::spawn(move || drive_connection(&spec, share)));
    }
    let mut report = LoadReport::default();
    for handle in threads {
        let per_connection = handle
            .join()
            .map_err(|_| io::Error::other("load-generator thread panicked"))??;
        report.merge(per_connection);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_partition_the_stream_without_overlap() {
        let points: Vec<Vec<f64>> = (0..10).map(|i| vec![f64::from(i)]).collect();
        let shares: Vec<Vec<Vec<f64>>> = (0..3).map(|c| connection_share(&points, c, 3)).collect();
        assert_eq!(shares[0].len(), 4);
        assert_eq!(shares[1].len(), 3);
        assert_eq!(shares[2].len(), 3);
        let mut all: Vec<f64> = shares.iter().flatten().map(|p| p[0]).collect();
        all.sort_by(f64::total_cmp);
        assert_eq!(all, (0..10).map(f64::from).collect::<Vec<_>>());
    }

    #[test]
    fn merge_pools_samples_and_counters() {
        let mut a = LoadReport {
            ingest_ns: vec![1.0],
            query_ns: vec![2.0],
            points_sent: 10,
            queries: 1,
            server_errors: 0,
        };
        a.merge(LoadReport {
            ingest_ns: vec![3.0],
            query_ns: vec![],
            points_sent: 5,
            queries: 0,
            server_errors: 2,
        });
        assert_eq!(a.ingest_ns, vec![1.0, 3.0]);
        assert_eq!(a.points_sent, 15);
        assert_eq!(a.server_errors, 2);
    }
}
