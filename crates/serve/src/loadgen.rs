//! The built-in load generator: N concurrent connections driving a
//! configurable ingest:query mix over one or many tenants, with
//! per-request latency collection.
//!
//! The caller supplies the points (so it can later evaluate the returned
//! centers against exactly the data that was served); the generator
//! partitions them round-robin across connections, ships them in
//! `IngestBatch` requests and interleaves `Query` requests at the
//! configured rate. With `tenants > 1` each batch is addressed to a tenant
//! (`t0` … `t{N-1}`) drawn from a Zipf(`zipf_s`) distribution — rank 1
//! (`t0`) is the hottest, matching the skewed per-user traffic a
//! multi-tenant server actually sees — and the draw is a deterministic
//! hash of `(connection, batch index)`, so a run is reproducible without
//! any shared RNG state across threads. Latencies are whole
//! request/response round trips as a client observes them — loopback RTT
//! included, because that is what a remote caller experiences.
//!
//! Revision 1.3 additions: the driving connections speak a configurable
//! [`CodecKind`] (JSON or negotiated binary), and an optional pool of
//! `idle_conns` extra connections is opened before the load and held open
//! across it — the "10k idle connections" scenario the evented core
//! exists for — then spot-checked for liveness with a `Stats` request.

use crate::client::{Client, RequestOptions};
use crate::codec::CodecKind;
use crate::protocol::{ErrorCode, Freshness, Response};
use std::io;
use std::net::SocketAddr;
use std::thread;
use std::time::Instant;

/// Load-generator settings. Build with [`LoadSpec::new`] plus the `with_*`
/// setters; every field is also public for direct struct updates.
#[derive(Debug, Clone, Copy)]
pub struct LoadSpec {
    /// Server to drive.
    pub addr: SocketAddr,
    /// Concurrent connections (each runs on its own thread).
    pub connections: usize,
    /// Points per `IngestBatch` request.
    pub batch: usize,
    /// Issue one `Query` after every `query_every` ingest requests per
    /// connection (0 disables interleaved queries).
    pub query_every: usize,
    /// Read path of the interleaved queries (strict = recompute under the
    /// ingest lock, cached = last published epoch).
    pub freshness: Freshness,
    /// Tenant streams to spread the load over. 0 or 1 sends every request
    /// without a namespace — byte-for-byte the pre-tenancy behaviour.
    pub tenants: usize,
    /// Zipf skew exponent `s` of the tenant mix (`weight(rank) ∝
    /// 1/rank^s`); 0.0 is uniform. Ignored when `tenants <= 1`.
    pub zipf_s: f64,
    /// Wire codec the driving connections speak (binary is negotiated on
    /// connect).
    pub codec: CodecKind,
    /// Extra connections opened before the load and held idle across it
    /// (0 disables the idle pool).
    pub idle_conns: usize,
    /// A follower replica to exercise alongside the primary: every
    /// interleaved primary query is paired with a **cached** query
    /// against this address, measuring what a read-scaled deployment
    /// serves while the primary takes the writes (`None` disables it).
    pub follower: Option<SocketAddr>,
}

impl LoadSpec {
    /// A spec with the defaults: 1 connection, batches of 64, no
    /// interleaved queries, strict freshness, single tenant, JSON codec,
    /// no idle pool.
    #[must_use]
    pub fn new(addr: SocketAddr) -> Self {
        Self {
            addr,
            connections: 1,
            batch: 64,
            query_every: 0,
            freshness: Freshness::Strict,
            tenants: 1,
            zipf_s: 0.0,
            codec: CodecKind::Json,
            idle_conns: 0,
            follower: None,
        }
    }

    /// Sets the concurrent connection count.
    #[must_use]
    pub fn with_connections(mut self, connections: usize) -> Self {
        self.connections = connections;
        self
    }

    /// Sets the points per `IngestBatch` request.
    #[must_use]
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Interleaves one `Query` after every `query_every` ingest requests.
    #[must_use]
    pub fn with_query_every(mut self, query_every: usize) -> Self {
        self.query_every = query_every;
        self
    }

    /// Sets the read path of the interleaved queries.
    #[must_use]
    pub fn with_freshness(mut self, freshness: Freshness) -> Self {
        self.freshness = freshness;
        self
    }

    /// Spreads the load over `tenants` tenant streams with Zipf skew
    /// `zipf_s`.
    #[must_use]
    pub fn with_tenants(mut self, tenants: usize, zipf_s: f64) -> Self {
        self.tenants = tenants;
        self.zipf_s = zipf_s;
        self
    }

    /// Sets the wire codec of the driving connections.
    #[must_use]
    pub fn with_codec(mut self, codec: CodecKind) -> Self {
        self.codec = codec;
        self
    }

    /// Holds `idle_conns` extra idle connections open across the load.
    #[must_use]
    pub fn with_idle_conns(mut self, idle_conns: usize) -> Self {
        self.idle_conns = idle_conns;
        self
    }

    /// Pairs every interleaved primary query with a cached query against
    /// the follower replica at `addr`.
    #[must_use]
    pub fn with_follower_of(mut self, addr: SocketAddr) -> Self {
        self.follower = Some(addr);
        self
    }
}

/// Cumulative distribution over tenant ranks `1..=n` with Zipf weights
/// `1/rank^s`, normalized to end at 1.0.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let weights: Vec<f64> = (1..=n).map(|rank| (rank as f64).powf(-s)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

/// SplitMix64: a deterministic, well-mixed hash of the (connection, batch
/// index) pair, giving each batch an independent uniform draw in [0, 1)
/// with no cross-thread RNG state.
fn mix_to_unit(connection: u64, batch_index: u64) -> f64 {
    let mut z = connection
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(batch_index)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // 53 mantissa bits → uniform in [0, 1).
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Draws the tenant rank (0-based) for one batch from the precomputed CDF.
fn pick_tenant(cdf: &[f64], connection: u64, batch_index: u64) -> usize {
    let u = mix_to_unit(connection, batch_index);
    cdf.iter()
        .position(|&c| u < c)
        .unwrap_or(cdf.len().saturating_sub(1))
}

/// The namespace the load generator uses for tenant rank `rank` (0-based).
#[must_use]
pub fn tenant_name(rank: usize) -> String {
    format!("t{rank}")
}

/// Latencies and counters collected by [`run_load`], pooled across all
/// connections.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// One sample per `IngestBatch` request, in nanoseconds.
    pub ingest_ns: Vec<f64>,
    /// One sample per `Query` request, in nanoseconds.
    pub query_ns: Vec<f64>,
    /// Total points acknowledged by the server.
    pub points_sent: u64,
    /// Total queries answered with centers.
    pub queries: u64,
    /// Typed error responses received (0 on a healthy run).
    pub server_errors: u64,
    /// Idle connections successfully held open across the whole load
    /// (equals the spec's `idle_conns` on a healthy run).
    pub idle_held: u64,
    /// One sample per cached `Query` against the follower, in nanoseconds
    /// (empty without [`LoadSpec::with_follower_of`]).
    pub follower_query_ns: Vec<f64>,
    /// Follower queries answered with centers.
    pub follower_queries: u64,
    /// Follower queries refused with `ReplicationLag` — expected while
    /// the follower bootstraps or falls behind its lag bound, so they are
    /// counted apart from `server_errors`.
    pub follower_lag_refusals: u64,
}

impl LoadReport {
    fn merge(&mut self, other: LoadReport) {
        self.ingest_ns.extend(other.ingest_ns);
        self.query_ns.extend(other.query_ns);
        self.points_sent += other.points_sent;
        self.queries += other.queries;
        self.server_errors += other.server_errors;
        self.idle_held += other.idle_held;
        self.follower_query_ns.extend(other.follower_query_ns);
        self.follower_queries += other.follower_queries;
        self.follower_lag_refusals += other.follower_lag_refusals;
    }
}

/// One connection's share of the stream: points `i`, `i + C`, `i + 2C`, …
/// (round-robin keeps every connection's sub-stream statistically similar,
/// so per-shard clusterers never see a skewed slice).
fn connection_share(points: &[Vec<f64>], connection: usize, connections: usize) -> Vec<Vec<f64>> {
    points
        .iter()
        .skip(connection)
        .step_by(connections)
        .cloned()
        .collect()
}

fn drive_connection(
    spec: &LoadSpec,
    connection: usize,
    share: Vec<Vec<f64>>,
) -> io::Result<LoadReport> {
    let mut client = Client::builder(spec.addr).codec(spec.codec).connect()?;
    // The follower connection speaks the same codec and targets the same
    // namespaces as the primary queries; it only ever issues cached reads
    // (the follower refuses everything else).
    let mut follower = match spec.follower {
        Some(addr) => Some(Client::builder(addr).codec(spec.codec).connect()?),
        None => None,
    };
    let mut report = LoadReport::default();
    let mut since_query = 0usize;
    // `None` (tenants <= 1) keeps every request namespace-free: the exact
    // pre-tenancy wire traffic.
    let cdf = (spec.tenants > 1).then(|| zipf_cdf(spec.tenants, spec.zipf_s));
    let mut options = RequestOptions::new().with_freshness(spec.freshness);
    for (batch_index, chunk) in share.chunks(spec.batch.max(1)).enumerate() {
        if let Some(cdf) = &cdf {
            let rank = pick_tenant(cdf, connection as u64, batch_index as u64);
            options.namespace = Some(tenant_name(rank));
        }
        let start = Instant::now();
        let response = client.ingest_batch_opts(chunk.to_vec(), &options)?;
        report.ingest_ns.push(start.elapsed().as_nanos() as f64);
        match response {
            Response::Ingested { accepted, .. } => report.points_sent += accepted,
            Response::Error { .. } => report.server_errors += 1,
            _ => {}
        }
        since_query += 1;
        if spec.query_every > 0 && since_query >= spec.query_every {
            since_query = 0;
            // The query targets whichever tenant the last batch went to
            // (the options keep its namespace), mirroring a user querying
            // the stream they just fed.
            run_query(&mut client, &options, &mut report)?;
            if let Some(follower) = &mut follower {
                run_follower_query(follower, &options, &mut report)?;
            }
        }
    }
    // Short shares may never reach `query_every` ingest requests; issue one
    // end-of-share query anyway so a query-mixing run always produces at
    // least one query sample per connection.
    if spec.query_every > 0 && report.query_ns.is_empty() && !share.is_empty() {
        run_query(&mut client, &options, &mut report)?;
        if let Some(follower) = &mut follower {
            run_follower_query(follower, &options, &mut report)?;
        }
    }
    Ok(report)
}

/// Issues one timed **cached** `Query` against the follower replica,
/// counting `ReplicationLag` refusals apart from hard errors (a follower
/// mid-bootstrap or past its lag bound refuses by design).
fn run_follower_query(
    client: &mut Client,
    options: &RequestOptions,
    report: &mut LoadReport,
) -> io::Result<()> {
    let cached = options.clone().with_freshness(Freshness::Cached);
    let start = Instant::now();
    let response = client.query_opts(&cached)?;
    report
        .follower_query_ns
        .push(start.elapsed().as_nanos() as f64);
    match response {
        Response::Centers { .. } => report.follower_queries += 1,
        Response::Error {
            code: ErrorCode::ReplicationLag,
            ..
        } => report.follower_lag_refusals += 1,
        Response::Error { .. } => report.server_errors += 1,
        _ => {}
    }
    Ok(())
}

/// Issues one timed `Query` request, recording the latency and outcome.
fn run_query(
    client: &mut Client,
    options: &RequestOptions,
    report: &mut LoadReport,
) -> io::Result<()> {
    let start = Instant::now();
    let response = client.query_opts(options)?;
    report.query_ns.push(start.elapsed().as_nanos() as f64);
    match response {
        Response::Centers { .. } => report.queries += 1,
        Response::Error { .. } => report.server_errors += 1,
        _ => {}
    }
    Ok(())
}

/// Drives the server with `spec.connections` concurrent clients ingesting
/// `points` (split round-robin) and interleaving queries, and returns the
/// pooled per-request latencies. With `idle_conns > 0`, that many extra
/// connections are opened first, held idle across the whole load, then
/// spot-checked for liveness (a `Stats` request on a sample) before the
/// report is returned.
///
/// # Errors
/// Propagates connection/transport failures from any connection thread,
/// idle-pool connect failures, and a dead idle connection at the closing
/// liveness check (typed server error *responses* are counted, not
/// failures).
pub fn run_load(spec: &LoadSpec, points: &[Vec<f64>]) -> io::Result<LoadReport> {
    // The idle pool opens before the load so the driven requests are
    // served while the connections are resident in the server's poll set.
    let mut idle_pool = Vec::with_capacity(spec.idle_conns);
    for _ in 0..spec.idle_conns {
        idle_pool.push(Client::connect(spec.addr)?);
    }
    let connections = spec.connections.max(1);
    let mut threads = Vec::with_capacity(connections);
    for connection in 0..connections {
        let share = connection_share(points, connection, connections);
        let spec = LoadSpec {
            connections,
            ..*spec
        };
        threads.push(thread::spawn(move || {
            drive_connection(&spec, connection, share)
        }));
    }
    let mut report = LoadReport::default();
    for handle in threads {
        let per_connection = handle
            .join()
            .map_err(|_| io::Error::other("load-generator thread panicked"))??;
        report.merge(per_connection);
    }
    // Liveness spot-check: a sample of the idle pool must still answer
    // after sitting in the poll set for the whole run.
    let sample = idle_pool.len().min(8);
    for idle in idle_pool.iter_mut().take(sample) {
        idle.stats()?;
    }
    report.idle_held = idle_pool.len() as u64;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_partition_the_stream_without_overlap() {
        let points: Vec<Vec<f64>> = (0..10).map(|i| vec![f64::from(i)]).collect();
        let shares: Vec<Vec<Vec<f64>>> = (0..3).map(|c| connection_share(&points, c, 3)).collect();
        assert_eq!(shares[0].len(), 4);
        assert_eq!(shares[1].len(), 3);
        assert_eq!(shares[2].len(), 3);
        let mut all: Vec<f64> = shares.iter().flatten().map(|p| p[0]).collect();
        all.sort_by(f64::total_cmp);
        assert_eq!(all, (0..10).map(f64::from).collect::<Vec<_>>());
    }

    #[test]
    fn zipf_cdf_is_monotone_and_skewed() {
        let cdf = zipf_cdf(8, 1.1);
        assert_eq!(cdf.len(), 8);
        assert!(cdf.windows(2).all(|w| w[0] < w[1]), "CDF must be monotone");
        assert!((cdf[7] - 1.0).abs() < 1e-12, "CDF must end at 1");
        // Rank 1 dominates at s = 1.1.
        assert!(cdf[0] > 0.3, "rank-1 mass {} too small", cdf[0]);

        // s = 0 degenerates to uniform.
        let uniform = zipf_cdf(4, 0.0);
        assert!((uniform[0] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn tenant_picks_are_deterministic_and_skewed() {
        let cdf = zipf_cdf(8, 1.1);
        let mut counts = [0usize; 8];
        for conn in 0..4u64 {
            for batch in 0..250u64 {
                let a = pick_tenant(&cdf, conn, batch);
                let b = pick_tenant(&cdf, conn, batch);
                assert_eq!(a, b, "picks must be reproducible");
                counts[a] += 1;
            }
        }
        assert_eq!(counts.iter().sum::<usize>(), 1000);
        assert!(
            counts[0] > counts[7],
            "rank 1 ({}) must outdraw rank 8 ({})",
            counts[0],
            counts[7]
        );
        // Every rank gets some traffic at this sample size.
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
    }

    #[test]
    fn tenant_names_are_stable() {
        assert_eq!(tenant_name(0), "t0");
        assert_eq!(tenant_name(7), "t7");
    }

    #[test]
    fn spec_builder_fills_typed_fields() {
        let addr: SocketAddr = "127.0.0.1:9".parse().unwrap();
        let spec = LoadSpec::new(addr)
            .with_connections(4)
            .with_batch(128)
            .with_query_every(8)
            .with_freshness(Freshness::Cached)
            .with_tenants(8, 1.1)
            .with_codec(CodecKind::Binary)
            .with_idle_conns(100);
        assert_eq!(spec.connections, 4);
        assert_eq!(spec.batch, 128);
        assert_eq!(spec.query_every, 8);
        assert_eq!(spec.freshness, Freshness::Cached);
        assert_eq!((spec.tenants, spec.zipf_s), (8, 1.1));
        assert_eq!(spec.codec, CodecKind::Binary);
        assert_eq!(spec.idle_conns, 100);
    }

    #[test]
    fn merge_pools_samples_and_counters() {
        let mut a = LoadReport {
            ingest_ns: vec![1.0],
            query_ns: vec![2.0],
            points_sent: 10,
            queries: 1,
            server_errors: 0,
            idle_held: 0,
            ..LoadReport::default()
        };
        a.merge(LoadReport {
            ingest_ns: vec![3.0],
            query_ns: vec![],
            points_sent: 5,
            queries: 0,
            server_errors: 2,
            idle_held: 0,
            follower_query_ns: vec![4.0],
            follower_queries: 1,
            follower_lag_refusals: 2,
        });
        assert_eq!(a.ingest_ns, vec![1.0, 3.0]);
        assert_eq!(a.points_sent, 15);
        assert_eq!(a.server_errors, 2);
        assert_eq!(a.follower_query_ns, vec![4.0]);
        assert_eq!((a.follower_queries, a.follower_lag_refusals), (1, 2));
    }
}
