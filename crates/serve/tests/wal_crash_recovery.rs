//! Out-of-process crash recovery: start the real `skm-serve` binary with a
//! write-ahead log, feed it acknowledged writes, kill it with SIGKILL (no
//! drain, no Drop — the closest a test gets to yanking the power cord),
//! restart it on the same log directory and require the recovered state to
//! continue **bit-identically** to an uninterrupted in-process run of the
//! same workload. Also exercises the `recover` subcommand as an offline
//! replay + compaction pass.

use skm_serve::engine::{BackendKind, Engine, EngineSpec};
use skm_serve::prelude::*;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

const K: usize = 2;
const SHARDS: usize = 2;
const BATCH: usize = 8;
const SEED: u64 = 7;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("skm-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The CLI builds its engine from `StreamConfig::new(k)` defaults; the
/// in-process reference must match exactly for bit-identity.
fn cli_spec() -> EngineSpec {
    EngineSpec {
        kind: BackendKind::ShardedCc,
        stream: StreamConfig::new(K),
        shards: SHARDS,
        batch: BATCH,
        nesting_depth: 2,
        seed: SEED,
    }
}

/// Starts the real binary with `--fsync-ms 0` (every acknowledged write is
/// durable) on an ephemeral port, and parses the bound address from its
/// startup banner.
fn spawn_server(wal_dir: &Path) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_skm-serve"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--wal-dir",
            wal_dir.to_str().unwrap(),
            "--fsync-ms",
            "0",
            "--k",
            &K.to_string(),
            "--shards",
            &SHARDS.to_string(),
            "--batch",
            &BATCH.to_string(),
            "--seed",
            &SEED.to_string(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn skm-serve");
    let stdout = child.stdout.take().expect("captured stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("server printed its banner")
            .expect("readable stdout");
        if let Some(rest) = line.strip_prefix("skm-serve listening on ") {
            let addr = rest.split_whitespace().next().expect("address token");
            break addr.parse::<SocketAddr>().expect("parseable address");
        }
    };
    (child, addr)
}

fn point(i: usize, offset: f64) -> Vec<f64> {
    let x = if i.is_multiple_of(2) { 0.0 } else { 60.0 };
    vec![x + offset, (i % 5) as f64 * 0.1]
}

fn served_strict_centers(client: &mut Client) -> (Vec<Vec<f64>>, u64, u64) {
    match client.query().unwrap() {
        Response::Centers {
            centers,
            epoch,
            points_seen,
            ..
        } => (centers, epoch, points_seen),
        other => panic!("strict query answered {other:?}"),
    }
}

#[test]
fn sigkill_then_restart_continues_bit_identically() {
    let dir = temp_dir("kill9");

    // Uninterrupted in-process reference over the identical workload:
    // 150 ingests, a strict query, 50 more ingests, a closing strict
    // query. Recovery of the killed server must land exactly here.
    let reference = Engine::new(&cli_spec()).unwrap();
    for i in 0..150 {
        reference.ingest(&point(i, 0.0)).unwrap();
    }
    let _ = reference
        .query_in(DEFAULT_NAMESPACE, Freshness::Strict)
        .unwrap();
    for i in 0..50 {
        reference.ingest(&point(i, 1.0)).unwrap();
    }
    let expected = reference
        .query_in(DEFAULT_NAMESPACE, Freshness::Strict)
        .unwrap();

    // Run 1: feed the same prefix through the wire, then SIGKILL the
    // process with 50 acknowledged-but-uncheckpointed writes in the log.
    let (mut child, addr) = spawn_server(&dir);
    let mut client = Client::connect(addr).unwrap();
    for i in 0..150 {
        match client.ingest(point(i, 0.0)).unwrap() {
            Response::Ingested { .. } => {}
            other => panic!("ingest answered {other:?}"),
        }
    }
    let (run1_centers, run1_epoch, run1_seen) = served_strict_centers(&mut client);
    assert_eq!((run1_epoch, run1_seen), (1, 150));
    for i in 0..50 {
        match client.ingest(point(i, 1.0)).unwrap() {
            Response::Ingested { .. } => {}
            other => panic!("ingest answered {other:?}"),
        }
    }
    drop(client);
    child.kill().expect("SIGKILL the server");
    let _ = child.wait();
    // Sanity: run 1 was on the reference trajectory before the crash.
    {
        let probe = Engine::new(&cli_spec()).unwrap();
        for i in 0..150 {
            probe.ingest(&point(i, 0.0)).unwrap();
        }
        let probe_q = probe
            .query_in(DEFAULT_NAMESPACE, Freshness::Strict)
            .unwrap();
        assert_eq!(run1_centers, probe_q.centers.to_rows());
    }

    // Run 2: same log directory. Recovery = checkpoint + tail replay; the
    // next strict query must equal the uninterrupted run's, bit for bit.
    let (mut child, addr) = spawn_server(&dir);
    let mut client = Client::connect(addr).unwrap();
    let (recovered_centers, recovered_epoch, recovered_seen) = served_strict_centers(&mut client);
    assert_eq!(recovered_seen, 200, "all acknowledged writes survived");
    assert_eq!(recovered_epoch, expected.epoch, "published epoch recovered");
    assert_eq!(
        recovered_centers,
        expected.centers.to_rows(),
        "recovered centers must be bit-identical to the uninterrupted run"
    );
    client.shutdown().unwrap();
    let status = child.wait().expect("server exits after Shutdown");
    assert!(
        status.success(),
        "clean shutdown after recovery: {status:?}"
    );

    // Offline `recover` replays and compacts the same directory.
    let output = Command::new(env!("CARGO_BIN_EXE_skm-serve"))
        .args([
            "recover",
            "--wal-dir",
            dir.to_str().unwrap(),
            "--k",
            &K.to_string(),
            "--shards",
            &SHARDS.to_string(),
            "--batch",
            &BATCH.to_string(),
            "--seed",
            &SEED.to_string(),
        ])
        .output()
        .expect("run skm-serve recover");
    assert!(output.status.success(), "recover failed: {output:?}");
    let report = String::from_utf8_lossy(&output.stdout);
    assert!(
        report.contains("recovered tenant `default`"),
        "recover report: {report}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_torn_trailing_record_is_truncated_not_fatal() {
    let dir = temp_dir("torn");

    // Produce a real log via the binary, SIGKILL it, then tear the last
    // segment by chopping bytes off its end — the shape a crash mid-write
    // leaves behind.
    let (mut child, addr) = spawn_server(&dir);
    let mut client = Client::connect(addr).unwrap();
    for i in 0..60 {
        client.ingest(point(i, 0.0)).unwrap();
    }
    drop(client);
    child.kill().expect("SIGKILL the server");
    let _ = child.wait();

    let tenant_dir = dir.join("default");
    let mut segments: Vec<PathBuf> = std::fs::read_dir(&tenant_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("seg-") && n.ends_with(".wal"))
        })
        .collect();
    segments.sort();
    let last = segments.last().expect("at least one segment").clone();
    let bytes = std::fs::read(&last).unwrap();
    assert!(bytes.len() > 7, "segment long enough to tear");
    std::fs::write(&last, &bytes[..bytes.len() - 7]).unwrap();

    // Restart: the torn tail is truncated, everything before it survives.
    let (mut child, addr) = spawn_server(&dir);
    let mut client = Client::connect(addr).unwrap();
    let (_, _, seen) = served_strict_centers(&mut client);
    assert!(
        seen < 60,
        "the torn trailing record must be dropped (saw {seen})"
    );
    assert!(seen >= 58, "only the torn tail may be lost (saw {seen})");
    client.shutdown().unwrap();
    let status = child.wait().unwrap();
    assert!(status.success());
    let _ = std::fs::remove_dir_all(&dir);
}
