//! The durability subsystem's core property, swept across a
//! `(seed, shards, batch)` grid: for any interleaving of single ingests,
//! batch ingests and strict reads, *open a WAL-backed engine, run the
//! workload, drop it cold, recover* ends bit-identical to running the same
//! workload on an engine that was never interrupted — centers, published
//! epoch, cost, and `points_seen`, exactly.
//!
//! The WAL engines run with a tiny checkpoint threshold so every cell also
//! crosses at least one compaction (checkpoint + covered-segment deletion)
//! mid-workload — recovery exercises checkpoint *plus* tail replay, not
//! just one of them.

use skm_serve::engine::WalConfig;
use skm_serve::prelude::*;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("skm-replay-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn grid_spec(kind: BackendKind, seed: u64, shards: usize, batch: usize) -> EngineSpec {
    EngineSpec {
        kind,
        stream: StreamConfig::new(2)
            .with_bucket_size(20)
            .with_kmeans_runs(1)
            .with_lloyd_iterations(2),
        shards,
        batch,
        nesting_depth: 2,
        seed,
    }
}

/// A deterministic mixed workload: single ingests, a batch ingest every 5
/// rounds, a strict query (a logged, state-mutating read) every 60 points,
/// and a *windowed* strict query (logged as a resolved `QueryWindow`
/// record, revision 1.5) every 7 rounds. Seed-dependent so different grid
/// cells take different paths.
fn run_workload(engine: &Engine, seed: u64) {
    let mut fed = 0usize;
    for i in 0..30usize {
        for j in 0..4usize {
            let x = if (i + j).is_multiple_of(2) { 0.0 } else { 60.0 };
            let y = ((i * 7 + j + seed as usize) % 5) as f64 * 0.1;
            engine.ingest(&[x, y]).unwrap();
            fed += 1;
        }
        if i % 5 == 4 {
            let batch: Vec<Vec<f64>> = (0..6usize)
                .map(|j| {
                    let x = if j.is_multiple_of(2) { 30.0 } else { 90.0 };
                    vec![x, (j + i) as f64 * 0.01]
                })
                .collect();
            engine.ingest_batch_in(DEFAULT_NAMESPACE, &batch).unwrap();
            fed += 6;
        }
        if fed >= 60 && fed % 60 < 10 {
            let _ = engine
                .query_in(DEFAULT_NAMESPACE, Freshness::Strict)
                .unwrap();
        }
        if fed >= 60 && i % 7 == 6 {
            // Windowed strict reads consume RNG and publish epochs like
            // whole-stream ones, so replay must reproduce them exactly.
            let _ = engine
                .query_window_in(DEFAULT_NAMESPACE, Window::Points(40))
                .unwrap();
        }
    }
}

/// Asserts witness and recovered answer the same *windowed* strict query
/// bit-identically — centers, epoch, `points_seen` and coverage.
fn assert_windowed_reads_match(witness: &Engine, recovered: &Engine, cell: &str) {
    let expected = witness
        .query_window_in(DEFAULT_NAMESPACE, Window::Points(50))
        .unwrap();
    let actual = recovered
        .query_window_in(DEFAULT_NAMESPACE, Window::Points(50))
        .unwrap();
    assert_eq!(
        actual.points_seen, expected.points_seen,
        "windowed points_seen diverged in {cell}"
    );
    assert_eq!(
        actual.epoch, expected.epoch,
        "windowed epoch diverged in {cell}"
    );
    assert_eq!(
        actual.window, expected.window,
        "window coverage diverged in {cell}"
    );
    assert_eq!(
        actual.centers.to_rows(),
        expected.centers.to_rows(),
        "windowed centers diverged in {cell}"
    );
}

#[test]
fn recovery_is_bit_identical_across_the_seed_shards_batch_grid() {
    for &seed in &[3u64, 11] {
        for &shards in &[1usize, 2] {
            for &batch in &[8usize, 64] {
                let dir = temp_dir(&format!("grid-{seed}-{shards}-{batch}"));
                let spec = grid_spec(BackendKind::ShardedCc, seed, shards, batch);

                // Uninterrupted witness, no WAL.
                let witness = Engine::new(&spec).unwrap();
                run_workload(&witness, seed);

                // Same workload with a WAL: fsync every append, checkpoint
                // after every ~2 KiB of tail so compaction happens mid-run.
                let durable = Engine::new(&spec)
                    .unwrap()
                    .with_wal(
                        WalConfig::new(dir.clone())
                            .with_fsync_ms(0)
                            .with_checkpoint_bytes(2048),
                    )
                    .unwrap();
                run_workload(&durable, seed);
                drop(durable); // cold stop: recovery starts from disk only

                let recovered = Engine::new(&spec)
                    .unwrap()
                    .with_wal(WalConfig::new(dir.clone()).with_fsync_ms(0))
                    .unwrap();

                let cell = format!("(seed {seed}, shards {shards}, batch {batch})");
                let expected = witness
                    .query_in(DEFAULT_NAMESPACE, Freshness::Strict)
                    .unwrap();
                let actual = recovered
                    .query_in(DEFAULT_NAMESPACE, Freshness::Strict)
                    .unwrap();
                assert_eq!(
                    actual.points_seen, expected.points_seen,
                    "points_seen diverged in {cell}"
                );
                assert_eq!(actual.epoch, expected.epoch, "epoch diverged in {cell}");
                assert_eq!(
                    actual.centers.to_rows(),
                    expected.centers.to_rows(),
                    "centers diverged in {cell}"
                );
                assert!(
                    actual.cost == expected.cost,
                    "cost diverged in {cell}: {} vs {}",
                    actual.cost,
                    expected.cost
                );
                assert_windowed_reads_match(&witness, &recovered, &cell);

                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
}

#[test]
fn recovery_is_bit_identical_for_the_single_threaded_backends_too() {
    for kind in [BackendKind::Cc, BackendKind::Ct, BackendKind::Rcc] {
        let dir = temp_dir(&format!("single-{}", kind.tag()));
        let spec = grid_spec(kind, 5, 1, 8);

        let witness = Engine::new(&spec).unwrap();
        run_workload(&witness, 5);

        let durable = Engine::new(&spec)
            .unwrap()
            .with_wal(
                WalConfig::new(dir.clone())
                    .with_fsync_ms(0)
                    .with_checkpoint_bytes(2048),
            )
            .unwrap();
        run_workload(&durable, 5);
        drop(durable);

        let recovered = Engine::new(&spec)
            .unwrap()
            .with_wal(WalConfig::new(dir.clone()).with_fsync_ms(0))
            .unwrap();

        let expected = witness
            .query_in(DEFAULT_NAMESPACE, Freshness::Strict)
            .unwrap();
        let actual = recovered
            .query_in(DEFAULT_NAMESPACE, Freshness::Strict)
            .unwrap();
        assert_eq!(actual.points_seen, expected.points_seen, "{}", kind.tag());
        assert_eq!(actual.epoch, expected.epoch, "{}", kind.tag());
        assert_eq!(
            actual.centers.to_rows(),
            expected.centers.to_rows(),
            "{}",
            kind.tag()
        );
        assert_windowed_reads_match(&witness, &recovered, kind.tag());

        let _ = std::fs::remove_dir_all(&dir);
    }
}
