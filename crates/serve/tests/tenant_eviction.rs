//! Acceptance for snapshot-backed tenant eviction: paging a tenant out to
//! disk and transparently restoring it on the next touch must be invisible
//! to the tenant — bit-identical centers, continued epoch sequence — and
//! the LRU policy must pick the coldest resident tenant.

use skm_serve::engine::{evict_file_name, BackendKind, Engine, EngineSpec};
use skm_serve::protocol::Freshness;
use skm_serve::{Client, RequestOptions, Response, Server};
use skm_stream::StreamConfig;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn spec(kind: BackendKind, seed: u64, shards: usize, batch: usize) -> EngineSpec {
    EngineSpec {
        kind,
        stream: StreamConfig::new(2)
            .with_bucket_size(20)
            .with_kmeans_runs(1)
            .with_lloyd_iterations(2),
        shards,
        batch,
        nesting_depth: 2,
        seed,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "skm-evict-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The deterministic two-blob stream every test feeds (same shape as the
/// engine unit tests, offset so tenants can be told apart).
fn point(i: usize, offset: f64) -> [f64; 2] {
    let x = if i.is_multiple_of(2) { 0.0 } else { 60.0 };
    [x + offset, (i % 5) as f64 * 0.1]
}

fn feed_range(engine: &Engine, namespace: &str, range: std::ops::Range<usize>, offset: f64) {
    for i in range {
        engine.ingest_in(namespace, &point(i, offset)).unwrap();
    }
}

/// The tentpole property: for every (seed, shards, batch) in the grid, a
/// tenant that is evicted to disk mid-stream and transparently restored
/// answers exactly like a twin that was never evicted — same centers bit
/// for bit, same points_seen, same republished epoch.
#[test]
fn evict_restore_continue_is_bit_identical_to_an_uninterrupted_twin() {
    for (seed, shards, batch) in [(7u64, 2usize, 8usize), (11, 1, 16), (23, 4, 4)] {
        let tag = format!("prop-{seed}-{shards}-{batch}");
        let dir = temp_dir(&tag);
        let spec = spec(BackendKind::ShardedCc, seed, shards, batch);

        // Twin B: never evicted (cap high enough for everything).
        let twin = Engine::with_options(&spec, 64, None).unwrap();
        // Engine A: cap 2 (default + one more), eviction directory set.
        let engine = Engine::with_options(&spec, 2, Some(dir.clone())).unwrap();

        // Identical prefix into tenant `x` on both, with a mid-stream
        // strict query so the published epoch is non-zero before eviction.
        feed_range(&engine, "x", 0..137, 0.0);
        feed_range(&twin, "x", 0..137, 0.0);
        let a1 = engine.query_in("x", Freshness::Strict).unwrap();
        let b1 = twin.query_in("x", Freshness::Strict).unwrap();
        assert_eq!(a1.centers, b1.centers, "({seed},{shards},{batch}) prefix");
        assert_eq!(a1.epoch, 1);

        // Make `x` the LRU on A (touch default), then create `y`: the map
        // is at its cap, so `x` is paged out to disk.
        let _ = engine.points_seen();
        engine.ingest_in("y", &point(0, 500.0)).unwrap();
        assert!(
            engine.is_evicted_to_disk("x"),
            "({seed},{shards},{batch}) expected x on disk"
        );
        assert!(dir.join(evict_file_name("x")).exists());
        assert!(!engine.resident_tenants().contains(&"x".to_string()));

        // Continue the identical suffix on both. Touching `x` on A
        // restores it transparently (and removes the evict file).
        feed_range(&engine, "x", 137..300, 0.0);
        feed_range(&twin, "x", 137..300, 0.0);
        assert!(
            !dir.join(evict_file_name("x")).exists(),
            "({seed},{shards},{batch}) evict file must be deleted on restore"
        );

        let a2 = engine.query_in("x", Freshness::Strict).unwrap();
        let b2 = twin.query_in("x", Freshness::Strict).unwrap();
        assert_eq!(
            a2.centers, b2.centers,
            "({seed},{shards},{batch}) evict→restore→continue diverged"
        );
        assert_eq!(a2.points_seen, 300);
        assert_eq!(b2.points_seen, 300);
        assert_eq!(
            a2.epoch, b2.epoch,
            "({seed},{shards},{batch}) epoch sequence must survive eviction"
        );
        assert_eq!(a2.epoch, 2, "strict query after restore republishes");

        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Single-threaded backends round-trip through eviction too (they share
/// the same envelope but a different state payload).
#[test]
fn single_threaded_backends_survive_eviction_bit_identically() {
    for kind in [BackendKind::Cc, BackendKind::Ct, BackendKind::Rcc] {
        let dir = temp_dir(&format!("kind-{}", kind.tag()));
        let spec = spec(kind, 7, 2, 8);
        let twin = Engine::with_options(&spec, 64, None).unwrap();
        let engine = Engine::with_options(&spec, 2, Some(dir.clone())).unwrap();

        feed_range(&engine, "x", 0..90, 0.0);
        feed_range(&twin, "x", 0..90, 0.0);
        let _ = engine.points_seen();
        engine.ingest_in("y", &point(0, 500.0)).unwrap();
        assert!(engine.is_evicted_to_disk("x"), "{kind:?}");

        feed_range(&engine, "x", 90..200, 0.0);
        feed_range(&twin, "x", 90..200, 0.0);
        let restored = engine.query_in("x", Freshness::Strict).unwrap();
        let reference = twin.query_in("x", Freshness::Strict).unwrap();
        assert_eq!(restored.centers, reference.centers, "{kind:?}");
        assert_eq!(restored.epoch, reference.epoch, "{kind:?}");

        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The LRU policy pages out the least-recently-touched tenant, not an
/// arbitrary one.
#[test]
fn the_least_recently_touched_tenant_is_the_victim() {
    let dir = temp_dir("lru-victim");
    // Cap 3: default + two more stay resident.
    let engine =
        Engine::with_options(&spec(BackendKind::Cc, 7, 1, 8), 3, Some(dir.clone())).unwrap();
    feed_range(&engine, "a", 0..30, 0.0);
    feed_range(&engine, "b", 0..30, 100.0);
    // Touch order now (coldest first): default, a, b. Refresh default so
    // `a` becomes the coldest resident — and therefore the victim.
    let _ = engine.points_seen();
    engine.ingest_in("c", &point(0, 200.0)).unwrap();
    assert!(engine.is_evicted_to_disk("a"), "expected `a` paged out");
    assert!(!engine.is_evicted_to_disk("b"));
    let resident = engine.resident_tenants();
    assert!(resident.contains(&"b".to_string()), "{resident:?}");
    assert!(resident.contains(&"c".to_string()), "{resident:?}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Without an eviction directory the resident cap is a hard limit: the
/// engine refuses new tenants instead of silently dropping state.
#[test]
fn the_cap_is_hard_without_an_eviction_directory() {
    let engine = Engine::with_options(&spec(BackendKind::Cc, 7, 1, 8), 2, None).unwrap();
    feed_range(&engine, "a", 0..10, 0.0);
    let err = engine.ingest_in("b", &point(0, 100.0)).unwrap_err();
    assert!(
        matches!(
            err,
            skm_clustering::error::ClusteringError::InvalidParameter {
                name: "tenant_limit",
                ..
            }
        ),
        "{err:?}"
    );
    // The existing tenants keep working.
    feed_range(&engine, "a", 10..20, 0.0);
    assert_eq!(engine.points_seen_in("a").unwrap(), 20);
}

/// The server's timer-driven idle sweep (`--idle-evict-secs` on the CLI,
/// [`Server::with_idle_evict`] in-process) pages a quiet tenant out to
/// disk without any client traffic, and the next touch restores it with
/// its published answer intact.
#[test]
fn the_server_sweeps_idle_tenants_to_disk_and_restores_them_on_touch() {
    let dir = temp_dir("idle-sweep");
    let engine = Arc::new(
        Engine::with_options(&spec(BackendKind::ShardedCc, 7, 2, 8), 8, Some(dir.clone())).unwrap(),
    );
    let server = Server::bind("127.0.0.1:0", Arc::clone(&engine), None)
        .unwrap()
        .with_idle_evict(Duration::from_millis(200))
        .spawn()
        .unwrap();

    let mut client = Client::builder(server.addr())
        .namespace("x")
        .connect()
        .unwrap();
    for i in 0..120 {
        client.ingest(point(i, 0.0).to_vec()).unwrap();
    }
    let published = match client.query().unwrap() {
        Response::Centers { centers, epoch, .. } => (centers, epoch),
        other => panic!("strict query answered {other:?}"),
    };

    // No traffic at all now: the sweep alone must page `x` out.
    let deadline = Instant::now() + Duration::from_secs(10);
    while !engine.is_evicted_to_disk("x") {
        assert!(
            Instant::now() < deadline,
            "idle sweep never paged the quiet tenant out"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(dir.join(evict_file_name("x")).exists());

    // The next cached read restores it transparently, answer intact.
    match client.query_opts(&RequestOptions::cached()).unwrap() {
        Response::Centers { centers, epoch, .. } => {
            assert_eq!((centers, epoch), published, "restore changed the answer");
        }
        other => panic!("cached query after restore answered {other:?}"),
    }
    assert!(!engine.is_evicted_to_disk("x"));

    client.shutdown().unwrap();
    server.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Cached reads also restore an evicted tenant (the published slot is part
/// of the envelope, so the cached answer survives the round trip).
#[test]
fn cached_reads_survive_eviction() {
    let dir = temp_dir("cached");
    let engine =
        Engine::with_options(&spec(BackendKind::ShardedCc, 7, 2, 8), 2, Some(dir.clone())).unwrap();
    feed_range(&engine, "x", 0..120, 0.0);
    let published = engine.query_in("x", Freshness::Strict).unwrap();
    let _ = engine.points_seen();
    engine.ingest_in("y", &point(0, 500.0)).unwrap();
    assert!(engine.is_evicted_to_disk("x"));

    let cached = engine.query_in("x", Freshness::Cached).unwrap();
    assert_eq!(cached.epoch, published.epoch);
    assert_eq!(cached.centers, published.centers);
    assert_eq!(cached.points_seen, published.points_seen);
    std::fs::remove_dir_all(&dir).ok();
}
