//! Codec property tests: every `Request`/`Response` variant survives the
//! JSON and binary framings byte-exactly, truncated frames are reported as
//! incomplete (never as garbage), oversized length prefixes die with the
//! typed `FrameTooLarge` error, hostile bytes never panic the decoder, and
//! pipelined frames concatenated on one buffer come back in order.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use skm_serve::codec::{codec, CodecKind, MAX_FRAME_BYTES};
use skm_serve::protocol::{ErrorCode, Freshness, Request, Response, TenantConfig, WindowSpec};
use skm_stream::{QueryStats, StreamStats, WindowInfo};

const ROUNDS: usize = 64;

/// Finite floats that survive a decimal JSON round trip exactly: dyadic
/// rationals print with a finite decimal expansion.
fn nice_f64(rng: &mut ChaCha8Rng) -> f64 {
    f64::from(rng.gen_range(-1_000_000i32..1_000_000)) / 8.0
}

fn point(rng: &mut ChaCha8Rng) -> Vec<f64> {
    (0..rng.gen_range(1..5)).map(|_| nice_f64(rng)).collect()
}

fn maybe_namespace(rng: &mut ChaCha8Rng) -> Option<String> {
    rng.gen_bool(0.5)
        .then(|| format!("t{}", rng.gen_range(0..100)))
}

/// Half the generated `Query`/`Stats` requests carry a revision-1.5
/// window (point- or time-based); the other half are the pre-1.5 shape.
fn maybe_window(rng: &mut ChaCha8Rng) -> Option<WindowSpec> {
    if rng.gen_bool(0.5) {
        return None;
    }
    Some(if rng.gen_bool(0.5) {
        WindowSpec::points(rng.gen_range(1..1_000_000))
    } else {
        WindowSpec::secs(nice_f64(rng).abs() + 0.125)
    })
}

fn maybe_window_info(rng: &mut ChaCha8Rng) -> Option<WindowInfo> {
    rng.gen_bool(0.5).then(|| WindowInfo {
        last_points: rng.gen_range(1..1_000_000),
        covered_points: rng.gen_range(0..2_000_000),
    })
}

fn freshness(rng: &mut ChaCha8Rng) -> Freshness {
    if rng.gen_bool(0.5) {
        Freshness::Strict
    } else {
        Freshness::Cached
    }
}

fn query_stats(rng: &mut ChaCha8Rng) -> QueryStats {
    QueryStats {
        coresets_merged: rng.gen_range(0..50),
        candidate_points: rng.gen_range(0..10_000),
        coreset_level: rng.gen_bool(0.5).then(|| rng.gen_range(0..20)),
        used_cache: rng.gen_bool(0.5),
        ran_kmeans: rng.gen_bool(0.5),
    }
}

fn stream_stats(rng: &mut ChaCha8Rng) -> StreamStats {
    StreamStats {
        points_seen: rng.gen_range(0..1_000_000),
        shards: rng.gen_range(1..9),
        per_shard_points: (0..rng.gen_range(0..5))
            .map(|_| rng.gen_range(0..1000))
            .collect(),
        last_query: rng.gen_bool(0.5).then(|| query_stats(rng)),
    }
}

/// One value per `Request` variant, with randomized field contents; the
/// `variant` index makes a sweep over `0..8` cover the whole enum.
fn request(variant: usize, rng: &mut ChaCha8Rng) -> Request {
    match variant % 8 {
        0 => Request::Hello {
            codec: if rng.gen_bool(0.5) { "json" } else { "binary" }.to_string(),
        },
        1 => Request::Ingest {
            point: point(rng),
            namespace: maybe_namespace(rng),
        },
        2 => Request::IngestBatch {
            points: (0..rng.gen_range(0..6)).map(|_| point(rng)).collect(),
            namespace: maybe_namespace(rng),
        },
        3 => Request::Query {
            freshness: freshness(rng),
            namespace: maybe_namespace(rng),
            window: maybe_window(rng),
        },
        4 => Request::Stats {
            freshness: freshness(rng),
            namespace: maybe_namespace(rng),
            window: maybe_window(rng),
        },
        5 => Request::Configure {
            namespace: maybe_namespace(rng),
            config: TenantConfig {
                k: rng.gen_bool(0.5).then(|| rng.gen_range(1..16)),
                backend: rng.gen_bool(0.5).then(|| "cc".to_string()),
                shards: rng.gen_bool(0.5).then(|| rng.gen_range(1..8)),
                batch: rng.gen_bool(0.5).then(|| rng.gen_range(1..512)),
                seed: rng.gen_bool(0.5).then(|| rng.gen()),
            },
        },
        6 => Request::Snapshot {
            file: format!("snap-{}.json", rng.gen_range(0..100)),
            namespace: maybe_namespace(rng),
        },
        _ => Request::Shutdown {},
    }
}

const ERROR_CODES: [ErrorCode; 17] = [
    ErrorCode::MalformedRequest,
    ErrorCode::LineTooLong,
    ErrorCode::DimensionMismatch,
    ErrorCode::NonFiniteCoordinate,
    ErrorCode::InvalidPoint,
    ErrorCode::BatchTooLarge,
    ErrorCode::EmptyStream,
    ErrorCode::SnapshotUnavailable,
    ErrorCode::BadNamespace,
    ErrorCode::TenantLimit,
    ErrorCode::TenantExists,
    ErrorCode::BadCodec,
    ErrorCode::FrameTooLarge,
    ErrorCode::Internal,
    ErrorCode::ReplicationLag,
    ErrorCode::WalCorrupt,
    ErrorCode::BadWindow,
];

/// One value per `Response` variant.
fn response(variant: usize, rng: &mut ChaCha8Rng) -> Response {
    match variant % 8 {
        0 => Response::Hello {
            codec: "binary".to_string(),
            revision: "1.3".to_string(),
        },
        1 => Response::Ingested {
            accepted: rng.gen_range(0..5000),
            points_seen: rng.gen_range(0..1_000_000),
        },
        2 => Response::Centers {
            centers: (0..rng.gen_range(1..5)).map(|_| point(rng)).collect(),
            points_seen: rng.gen_range(0..1_000_000),
            epoch: rng.gen_range(0..100),
            cost: nice_f64(rng).abs(),
            stats: query_stats(rng),
            window: maybe_window_info(rng),
        },
        3 => Response::Stats {
            stats: stream_stats(rng),
            window: maybe_window_info(rng),
        },
        4 => Response::Configured {
            namespace: format!("t{}", rng.gen_range(0..100)),
            backend: "sharded-cc".to_string(),
            k: rng.gen_range(1..16),
            shards: rng.gen_range(1..8),
        },
        5 => Response::Snapshotted {
            file: "/tmp/snap.json".to_string(),
            bytes: rng.gen_range(0..1_000_000),
        },
        6 => Response::Bye {},
        _ => Response::Error {
            code: ERROR_CODES[rng.gen_range(0..ERROR_CODES.len())],
            message: format!("synthetic failure {}", rng.gen_range(0..1000)),
        },
    }
}

/// Frames `value` with `kind`, re-frames it off the buffer, decodes, and
/// checks the frame consumed the whole buffer.
fn frame_round_trip<T, E, D>(kind: CodecKind, encode: E, decode: D) -> T
where
    T: Clone,
    E: Fn(&mut Vec<u8>),
    D: Fn(&[u8]) -> Result<T, String>,
{
    let c = codec(kind);
    let mut wire = Vec::new();
    encode(&mut wire);
    let frame = c
        .next_frame(&wire)
        .expect("framing a freshly encoded value")
        .expect("a complete frame");
    assert_eq!(
        frame.consumed,
        wire.len(),
        "{kind:?} frame left trailing bytes"
    );
    decode(&wire[frame.start..frame.end]).expect("decoding a freshly encoded value")
}

#[test]
fn every_request_variant_round_trips_through_both_codecs() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xC0DEC);
    for round in 0..ROUNDS {
        for kind in [CodecKind::Json, CodecKind::Binary] {
            let c = codec(kind);
            let original = request(round, &mut rng);
            let back = frame_round_trip(
                kind,
                |out| c.encode_request(&original, out),
                |payload| c.decode_request(payload),
            );
            assert_eq!(back, original, "{kind:?} round {round}");
        }
    }
}

#[test]
fn every_response_variant_round_trips_through_both_codecs() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xFACADE);
    for round in 0..ROUNDS {
        for kind in [CodecKind::Json, CodecKind::Binary] {
            let c = codec(kind);
            let original = response(round, &mut rng);
            let back = frame_round_trip(
                kind,
                |out| c.encode_response(&original, out),
                |payload| c.decode_response(payload),
            );
            assert_eq!(back, original, "{kind:?} round {round}");
        }
    }
}

#[test]
fn every_truncation_of_a_binary_frame_is_incomplete_not_garbage() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let c = codec(CodecKind::Binary);
    for round in 0..8 {
        let mut wire = Vec::new();
        c.encode_request(&request(round, &mut rng), &mut wire);
        for cut in 0..wire.len() {
            match c.next_frame(&wire[..cut]) {
                Ok(None) => {}
                other => panic!("prefix of {cut}/{} bytes: {other:?}", wire.len()),
            }
        }
    }
}

#[test]
fn every_truncation_of_a_json_frame_is_incomplete_not_garbage() {
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let c = codec(CodecKind::Json);
    for round in 0..8 {
        let mut wire = Vec::new();
        c.encode_request(&request(round, &mut rng), &mut wire);
        // Up to (not including) the newline, the frame must be incomplete.
        for cut in 0..wire.len() - 1 {
            match c.next_frame(&wire[..cut]) {
                Ok(None) => {}
                other => panic!("prefix of {cut}/{} bytes: {other:?}", wire.len()),
            }
        }
    }
}

#[test]
fn an_oversized_length_prefix_is_the_typed_frame_too_large_error() {
    let c = codec(CodecKind::Binary);
    let oversized = (MAX_FRAME_BYTES as u32 + 1).to_le_bytes();
    let err = c.next_frame(&oversized).expect_err("must be rejected");
    assert_eq!(err.code, ErrorCode::FrameTooLarge);
    // The limit itself is fine (frame merely incomplete at 4 header bytes).
    let at_limit = (MAX_FRAME_BYTES as u32).to_le_bytes();
    assert!(matches!(c.next_frame(&at_limit), Ok(None)));
}

#[test]
fn random_garbage_never_panics_either_decoder() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xBAD);
    for _ in 0..256 {
        let len = rng.gen_range(0..200);
        let garbage: Vec<u8> = (0..len).map(|_| rng.gen::<u32>() as u8).collect();
        for kind in [CodecKind::Json, CodecKind::Binary] {
            let c = codec(kind);
            // Framing may fail or succeed; decoding whatever frame appears
            // may fail — but nothing panics.
            if let Ok(Some(frame)) = c.next_frame(&garbage) {
                let _ = c.decode_request(&garbage[frame.start..frame.end]);
                let _ = c.decode_response(&garbage[frame.start..frame.end]);
            }
        }
    }
}

#[test]
fn pipelined_frames_on_one_buffer_come_back_in_order() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x91951);
    for kind in [CodecKind::Json, CodecKind::Binary] {
        let c = codec(kind);
        let originals: Vec<Request> = (0..16).map(|v| request(v, &mut rng)).collect();
        let mut wire = Vec::new();
        for r in &originals {
            c.encode_request(r, &mut wire);
        }
        let mut decoded = Vec::new();
        let mut pos = 0;
        while pos < wire.len() {
            let frame = c
                .next_frame(&wire[pos..])
                .expect("well-formed pipeline")
                .expect("complete frame");
            decoded.push(
                c.decode_request(&wire[pos + frame.start..pos + frame.end])
                    .unwrap(),
            );
            pos += frame.consumed;
        }
        assert_eq!(decoded, originals, "{kind:?}");
    }
}
