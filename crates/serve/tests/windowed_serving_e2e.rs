//! End-to-end acceptance for revision 1.5's time-scoped window queries:
//! strict windowed reads serve centers plus honest coverage over both
//! codecs, a whole-stream-equivalent window is indistinguishable from an
//! omitted one, the `(seed, shards, batch, window)` grid is bit-identical
//! across independent servers, pre-1.5 frames still get pre-1.5 bytes
//! (pinned over a raw TCP socket, below the client library), and cached
//! windowed reads serve the published answer as-is.

use skm_serve::prelude::*;
use std::sync::Arc;

const K: usize = 2;

fn spec(seed: u64, shards: usize, batch: usize) -> EngineSpec {
    EngineSpec::sharded_cc(
        StreamConfig::new(K)
            .with_bucket_size(20)
            .with_kmeans_runs(1)
            .with_lloyd_iterations(2),
        shards,
        batch,
        seed,
    )
}

fn start(seed: u64, shards: usize, batch: usize) -> ServerHandle {
    let engine = Arc::new(Engine::new(&spec(seed, shards, batch)).unwrap());
    Server::bind("127.0.0.1:0", engine, None)
        .unwrap()
        .spawn()
        .unwrap()
}

/// A deterministic two-blob stream (no RNG: the tests below compare runs
/// across servers, so the data must be a pure function of `i`).
fn two_blobs(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            let x = if i % 2 == 0 { 0.0 } else { 80.0 };
            vec![x, (i % 7) as f64 * 0.1]
        })
        .collect()
}

fn feed(client: &mut Client, points: &[Vec<f64>]) {
    for chunk in points.chunks(64) {
        match client.ingest_batch(chunk.to_vec()).unwrap() {
            Response::Ingested { .. } => {}
            other => panic!("ingest failed: {other:?}"),
        }
    }
}

#[test]
fn strict_windowed_queries_serve_centers_and_coverage_on_both_codecs() {
    let handle = start(7, 2, 8);
    let mut feeder = Client::connect(handle.addr()).unwrap();
    feed(&mut feeder, &two_blobs(600));

    for kind in [CodecKind::Json, CodecKind::Binary] {
        let mut client = Client::builder(handle.addr())
            .codec(kind)
            .connect()
            .unwrap();

        match client
            .query_opts(&RequestOptions::strict().with_window(WindowSpec::points(100)))
            .unwrap()
        {
            Response::Centers {
                centers,
                points_seen,
                window,
                ..
            } => {
                assert_eq!(centers.len(), K, "{kind:?}");
                assert_eq!(points_seen, 600, "{kind:?}");
                let info = window.expect("windowed query must report its window");
                assert_eq!(info.last_points, 100, "{kind:?}");
                // Coverage is bucket-granular: at least what was asked,
                // never more than the stream.
                assert!(
                    (100..=600).contains(&info.covered_points),
                    "{kind:?}: covered {} out of range",
                    info.covered_points
                );
            }
            other => panic!("{kind:?} windowed query failed: {other:?}"),
        }

        match client
            .call(&Request::Stats {
                freshness: Freshness::Strict,
                namespace: None,
                window: Some(WindowSpec::points(100)),
            })
            .unwrap()
        {
            Response::Stats { stats, window } => {
                assert_eq!(stats.points_seen, 600, "{kind:?}");
                let info = window.expect("windowed stats must report coverage");
                assert_eq!(info.last_points, 100, "{kind:?}");
                assert!(
                    (100..=600).contains(&info.covered_points),
                    "{kind:?}: covered {} out of range",
                    info.covered_points
                );
            }
            other => panic!("{kind:?} windowed stats failed: {other:?}"),
        }
    }

    feeder.shutdown().unwrap();
    handle.shutdown().unwrap();
}

#[test]
fn a_time_window_resolves_against_the_arrival_log_over_the_wire() {
    let handle = start(7, 2, 8);
    let mut client = Client::connect(handle.addr()).unwrap();
    feed(&mut client, &two_blobs(200));

    // Everything arrived within the last ~1e6 seconds, so the resolved
    // point window is the whole stream.
    match client
        .call(&Request::Stats {
            freshness: Freshness::Strict,
            namespace: None,
            window: Some(WindowSpec::secs(1e6)),
        })
        .unwrap()
    {
        Response::Stats { stats, window } => {
            assert_eq!(stats.points_seen, 200);
            let info = window.unwrap();
            assert_eq!(info.last_points, 200);
            assert_eq!(info.covered_points, 200);
        }
        other => panic!("time-window stats failed: {other:?}"),
    }

    // A whole-stream-covering time window normalizes to the ordinary
    // strict query: the response carries no window (it IS the whole
    // stream).
    match client
        .query_opts(&RequestOptions::strict().with_window(WindowSpec::secs(1e6)))
        .unwrap()
    {
        Response::Centers { window, .. } => assert_eq!(window, None),
        other => panic!("time-window query failed: {other:?}"),
    }

    client.shutdown().unwrap();
    handle.shutdown().unwrap();
}

#[test]
fn a_whole_stream_window_is_bit_identical_to_an_omitted_window() {
    let points = two_blobs(300);

    // Server A: plain strict query. Server B: strict query windowed to (at
    // least) the whole stream. Same seed, same single-connection arrival
    // order — the responses must match field for field, including the
    // absent window (the normalized query takes the ordinary path, RNG
    // draws and all).
    let run = |window: Option<WindowSpec>| {
        let handle = start(11, 2, 8);
        let mut client = Client::connect(handle.addr()).unwrap();
        feed(&mut client, &points);
        let mut options = RequestOptions::strict();
        if let Some(w) = window {
            options = options.with_window(w);
        }
        let response = client.query_opts(&options).unwrap();
        client.shutdown().unwrap();
        handle.shutdown().unwrap();
        response
    };

    let omitted = run(None);
    let whole = run(Some(WindowSpec::points(300)));
    let beyond = run(Some(WindowSpec::points(1 << 50)));
    assert_eq!(omitted, whole, "window == stream length diverged");
    assert_eq!(omitted, beyond, "window beyond stream length diverged");
    match omitted {
        Response::Centers { window, .. } => assert_eq!(window, None),
        other => panic!("strict query failed: {other:?}"),
    }
}

#[test]
fn the_seed_shards_batch_window_grid_is_bit_identical_across_servers() {
    let points = two_blobs(240);
    for &seed in &[3u64, 11] {
        for &shards in &[1usize, 2] {
            for &(batch, window) in &[(8usize, 60u64), (64, 180)] {
                let cell =
                    format!("(seed {seed}, shards {shards}, batch {batch}, window {window})");
                let run = || {
                    let handle = start(seed, shards, batch);
                    let mut client = Client::connect(handle.addr()).unwrap();
                    feed(&mut client, &points);
                    let response = client
                        .query_opts(
                            &RequestOptions::strict().with_window(WindowSpec::points(window)),
                        )
                        .unwrap();
                    client.shutdown().unwrap();
                    handle.shutdown().unwrap();
                    response
                };
                let first = run();
                let second = run();
                assert_eq!(first, second, "windowed answer diverged in {cell}");
                match first {
                    Response::Centers {
                        centers,
                        window: info,
                        ..
                    } => {
                        assert_eq!(centers.len(), K, "{cell}");
                        let info = info.expect("windowed answer must carry coverage");
                        assert_eq!(info.last_points, window, "{cell}");
                        assert!(info.covered_points >= window, "{cell}");
                    }
                    other => panic!("windowed query failed in {cell}: {other:?}"),
                }
            }
        }
    }
}

/// The compat pin the revision bump hangs on: frames a pre-1.5 client can
/// send must be answered with byte-for-byte pre-1.5 responses. Built on a
/// raw TCP socket so no post-1.5 client code can leak into the bytes.
#[test]
fn pre_1_5_frames_get_pre_1_5_bytes_on_both_codecs() {
    use std::io::{BufRead, BufReader, Read, Write};

    let handle = start(7, 2, 8);
    let mut feeder = Client::connect(handle.addr()).unwrap();
    feed(&mut feeder, &two_blobs(120));

    // JSON: a windowless Query/Stats line must be answered without any
    // `window` key at all — pre-1.5 parsers reject unknown fields.
    let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut reply = String::new();
    for request in ["{\"Query\":{}}", "{\"Stats\":{}}"] {
        stream.write_all(request.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        reply.clear();
        reader.read_line(&mut reply).unwrap();
        assert!(
            !reply.contains("window"),
            "pre-1.5 JSON response grew a window field: {reply}"
        );
        assert!(
            Response::from_line(reply.trim()).is_ok(),
            "pre-1.5 JSON response unparseable: {reply}"
        );
    }
    drop(stream);

    // Binary: hand-built pre-1.5 frames (tag, freshness, no namespace —
    // and no window section), answered with the pre-1.5 response tags.
    let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    stream
        .write_all(b"{\"Hello\":{\"codec\":\"binary\"}}\n")
        .unwrap();
    reply.clear();
    reader.read_line(&mut reply).unwrap();
    assert!(
        matches!(
            Response::from_line(reply.trim()).unwrap(),
            Response::Hello { .. }
        ),
        "binary handshake refused: {reply}"
    );
    // (request tag, expected response tag): Query → Centers 0x82,
    // Stats → Stats 0x83. The windowed tags are 0x8B/0x8C; seeing one
    // here would break every pre-1.5 binary client.
    for (request_tag, response_tag) in [(0x03u8, 0x82u8), (0x04, 0x83)] {
        let payload = [request_tag, 0x00, 0x00];
        stream
            .write_all(&u32::try_from(payload.len()).unwrap().to_le_bytes())
            .unwrap();
        stream.write_all(&payload).unwrap();
        let mut len = [0u8; 4];
        reader.read_exact(&mut len).unwrap();
        let mut response = vec![0u8; u32::from_le_bytes(len) as usize];
        reader.read_exact(&mut response).unwrap();
        assert_eq!(
            response[0], response_tag,
            "pre-1.5 binary request 0x{request_tag:02x} answered with tag 0x{:02x}",
            response[0]
        );
    }
    drop(stream);

    feeder.shutdown().unwrap();
    handle.shutdown().unwrap();
}

#[test]
fn cached_windowed_reads_serve_the_published_answer_as_is() {
    let handle = start(7, 2, 8);
    let mut client = Client::connect(handle.addr()).unwrap();
    feed(&mut client, &two_blobs(400));

    // Publish a windowed answer.
    let published = match client
        .query_opts(&RequestOptions::strict().with_window(WindowSpec::points(120)))
        .unwrap()
    {
        Response::Centers {
            centers,
            epoch,
            window,
            ..
        } => (centers, epoch, window.unwrap()),
        other => panic!("strict windowed query failed: {other:?}"),
    };

    // A cached read — windowed or not — serves that published answer
    // verbatim and reports the window *it* was computed for, not the one
    // the request asked about. It consumes no RNG and publishes no epoch.
    for options in [
        RequestOptions::cached(),
        RequestOptions::cached().with_window(WindowSpec::points(777)),
    ] {
        match client.query_opts(&options).unwrap() {
            Response::Centers {
                centers,
                epoch,
                window,
                ..
            } => {
                assert_eq!(centers, published.0);
                assert_eq!(epoch, published.1);
                assert_eq!(window, Some(published.2));
            }
            other => panic!("cached read failed: {other:?}"),
        }
    }

    // Cached windowed stats report the published window too; without a
    // window in the request they stay pre-1.5-shaped.
    match client
        .call(&Request::Stats {
            freshness: Freshness::Cached,
            namespace: None,
            window: Some(WindowSpec::points(777)),
        })
        .unwrap()
    {
        Response::Stats { window, .. } => assert_eq!(window, Some(published.2)),
        other => panic!("cached windowed stats failed: {other:?}"),
    }
    match client
        .call(&Request::Stats {
            freshness: Freshness::Cached,
            namespace: None,
            window: None,
        })
        .unwrap()
    {
        Response::Stats { window, .. } => assert_eq!(window, None),
        other => panic!("cached stats failed: {other:?}"),
    }

    client.shutdown().unwrap();
    handle.shutdown().unwrap();
}
