//! End-to-end acceptance for the serving subsystem:
//!
//! 1. A server fed ≥50k points by 4 concurrent client threads (with
//!    interleaved queries) returns k centers whose cost on the ingested
//!    data is in the same envelope as an in-process `ShardedStream` run at
//!    the same `(seed, shards, batch)`.
//! 2. Snapshot → kill the server → restore → continue is bit-identical to
//!    an uninterrupted run at a fixed seed.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use skm_clustering::cost::kmeans_cost;
use skm_clustering::PointSet;
use skm_serve::prelude::*;
use skm_stream::{ShardedStream, StreamingClusterer};
use std::sync::Arc;

const K: usize = 4;
const SHARDS: usize = 4;
const BATCH: usize = 128;
const SEED: u64 = 42;

fn config() -> StreamConfig {
    StreamConfig::new(K)
        .with_bucket_size(20 * K)
        .with_kmeans_runs(1)
        .with_lloyd_iterations(5)
}

/// A well-separated 4-blob mixture in 3 dimensions.
fn dataset(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let anchors = [
        [0.0, 0.0, 0.0],
        [60.0, 0.0, 10.0],
        [0.0, 60.0, -10.0],
        [60.0, 60.0, 0.0],
    ];
    (0..n)
        .map(|i| {
            let a = anchors[i % anchors.len()];
            (0..3).map(|d| a[d] + rng.gen::<f64>()).collect()
        })
        .collect()
}

fn cost_on(points: &[Vec<f64>], centers: &[Vec<f64>]) -> f64 {
    let mut set = PointSet::new(points[0].len());
    for p in points {
        set.push(p, 1.0);
    }
    let centers = skm_clustering::Centers::from_rows(points[0].len(), centers).unwrap();
    kmeans_cost(&set, &centers).unwrap()
}

#[test]
fn four_concurrent_clients_match_the_in_process_cost_envelope() {
    let points = dataset(50_000, SEED);

    // In-process reference at the same (seed, shards, batch).
    let mut local = ShardedStream::cc(config(), SHARDS, BATCH, SEED).unwrap();
    for p in &points {
        local.update(p).unwrap();
    }
    let local_centers = local.query().unwrap();
    let local_cost = cost_on(&points, &local_centers.to_rows());

    // Served run: 4 concurrent connections, interleaved queries.
    let engine =
        Arc::new(Engine::new(&EngineSpec::sharded_cc(config(), SHARDS, BATCH, SEED)).unwrap());
    let handle = Server::bind("127.0.0.1:0", Arc::clone(&engine), None)
        .unwrap()
        .spawn()
        .unwrap();
    let spec = LoadSpec::new(handle.addr())
        .with_connections(4)
        .with_batch(BATCH)
        .with_query_every(16)
        .with_freshness(Freshness::Strict);
    let report = run_load(&spec, &points).unwrap();
    assert_eq!(report.points_sent, 50_000);
    assert_eq!(report.server_errors, 0);
    assert!(
        report.queries >= 4,
        "interleaved queries ran while ingestion was live"
    );
    assert!(report.ingest_ns.len() >= 4 * (points.len() / 4 / BATCH));

    let mut client = Client::connect(handle.addr()).unwrap();
    let served_centers = client.query_centers().unwrap();
    assert_eq!(served_centers.len(), K);
    let stats = client.stats().unwrap();
    assert_eq!(stats.points_seen, 50_000);
    assert_eq!(stats.shards, SHARDS);
    assert_eq!(stats.per_shard_points.iter().sum::<u64>(), 50_000);

    client.shutdown().unwrap();
    handle.shutdown().unwrap();

    // Same approximation envelope: the arrival interleaving across the 4
    // connections is nondeterministic, so the served centers are not
    // bit-identical to the local ones — but on the same data, with the
    // same algorithm and parameters, the costs must stay close. (On this
    // well-separated mixture both runs find the 4 blobs; the envelope is
    // generous against k-means++ seeding noise.)
    let served_cost = cost_on(&points, &served_centers);
    assert!(
        served_cost <= 2.0 * local_cost && local_cost <= 2.0 * served_cost,
        "served cost {served_cost:.4e} vs in-process cost {local_cost:.4e} out of envelope"
    );
}

#[test]
fn snapshot_kill_restore_continue_is_bit_identical_over_the_wire() {
    let points = dataset(8_000, SEED + 1);
    let cut = 3_977; // mid-bucket, mid-batch

    // Uninterrupted reference: one server consumes the whole stream from a
    // single connection (single connection => deterministic arrival order).
    let reference_engine =
        Arc::new(Engine::new(&EngineSpec::sharded_cc(config(), SHARDS, BATCH, SEED)).unwrap());
    let handle = Server::bind("127.0.0.1:0", Arc::clone(&reference_engine), None)
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    for chunk in points.chunks(64) {
        client.ingest_batch(chunk.to_vec()).unwrap();
    }
    let expected = client.query_centers().unwrap();
    client.shutdown().unwrap();
    handle.shutdown().unwrap();

    // Interrupted run: ingest a prefix, snapshot over the wire, kill the
    // server, cold-start a new one from the snapshot file, continue.
    let dir = std::env::temp_dir().join(format!("skm-serve-e2e-{}", std::process::id()));
    let engine =
        Arc::new(Engine::new(&EngineSpec::sharded_cc(config(), SHARDS, BATCH, SEED)).unwrap());
    let handle = Server::bind("127.0.0.1:0", engine, Some(dir.clone()))
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    for chunk in points[..cut].chunks(64) {
        client.ingest_batch(chunk.to_vec()).unwrap();
    }
    let snapshot_path = match client.snapshot("mid.json").unwrap() {
        Response::Snapshotted { file, .. } => file,
        other => panic!("snapshot failed: {other:?}"),
    };
    client.shutdown().unwrap();
    handle.shutdown().unwrap(); // the "kill"

    let snapshot = std::fs::read_to_string(&snapshot_path).unwrap();
    let restored = Arc::new(Engine::from_snapshot_json(&snapshot).unwrap());
    assert_eq!(restored.points_seen(), cut as u64);
    let handle = Server::bind("127.0.0.1:0", restored, None)
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    for chunk in points[cut..].chunks(64) {
        client.ingest_batch(chunk.to_vec()).unwrap();
    }
    let resumed = client.query_centers().unwrap();
    client.shutdown().unwrap();
    handle.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(
        resumed, expected,
        "snapshot→kill→restore→continue diverged from the uninterrupted run"
    );
}
