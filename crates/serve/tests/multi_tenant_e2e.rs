//! End-to-end acceptance for multi-tenant serving over TCP: namespace
//! isolation, wire-level back-compat of the omitted namespace, `Configure`
//! with custom per-tenant settings, the typed namespace/limit errors, and
//! transparent eviction/restore under live request traffic.

use skm_serve::engine::{Engine, EngineSpec};
use skm_serve::prelude::*;
use skm_serve::server::ServerHandle;

use std::path::PathBuf;
use std::sync::Arc;

fn spec() -> EngineSpec {
    EngineSpec::sharded_cc(
        StreamConfig::new(2)
            .with_bucket_size(20)
            .with_kmeans_runs(1)
            .with_lloyd_iterations(2),
        2,
        8,
        7,
    )
}

fn start_server() -> ServerHandle {
    let engine = Arc::new(Engine::new(&spec()).unwrap());
    Server::bind("127.0.0.1:0", engine, None)
        .unwrap()
        .spawn()
        .unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "skm-mt-e2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Two well-separated blobs, offset per tenant so centers are tellable.
fn feed(client: &mut Client, n: usize, offset: f64) {
    feed_opts(client, &RequestOptions::new(), n, offset);
}

/// Like [`feed`], but addressed with explicit per-request options.
fn feed_opts(client: &mut Client, opts: &RequestOptions, n: usize, offset: f64) {
    for i in 0..n {
        let x = if i % 2 == 0 { 0.0 } else { 60.0 };
        client
            .ingest_opts(vec![x + offset, (i % 5) as f64 * 0.1], opts)
            .unwrap();
    }
}

/// Queries with explicit options and unwraps the centers.
fn centers_opts(client: &mut Client, opts: &RequestOptions) -> Vec<Vec<f64>> {
    match client.query_opts(opts).unwrap() {
        Response::Centers { centers, .. } => centers,
        other => panic!("query failed: {other:?}"),
    }
}

/// Successive strict queries re-run k-means from an advanced RNG position,
/// which can permute the returned rows; compare centers order-insensitively.
fn sorted(mut centers: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
    centers.sort_by(|a, b| a.partial_cmp(b).unwrap());
    centers
}

fn expect_error(response: Response, code: ErrorCode) {
    match response {
        Response::Error { code: got, .. } => assert_eq!(got, code),
        other => panic!("expected {code:?} error, got {other:?}"),
    }
}

#[test]
fn tenants_are_isolated_and_the_default_is_untouched() {
    let handle = start_server();
    let mut alpha = Client::builder(handle.addr())
        .namespace("alpha")
        .connect()
        .unwrap();
    let mut beta = Client::builder(handle.addr())
        .namespace("beta")
        .connect()
        .unwrap();

    feed(&mut alpha, 60, 0.0);
    feed(&mut beta, 40, 1000.0);

    // Per-tenant counts are independent.
    assert_eq!(alpha.stats().unwrap().points_seen, 60);
    assert_eq!(beta.stats().unwrap().points_seen, 40);

    // Centers come from each tenant's own stream: beta's blobs live 1000
    // units away from alpha's.
    let alpha_centers = alpha.query_centers().unwrap();
    let beta_centers = beta.query_centers().unwrap();
    assert!(
        alpha_centers.iter().all(|c| c[0] < 500.0),
        "{alpha_centers:?}"
    );
    assert!(
        beta_centers.iter().all(|c| c[0] > 500.0),
        "{beta_centers:?}"
    );

    // The default tenant saw none of that traffic.
    let mut plain = Client::connect(handle.addr()).unwrap();
    match plain.query().unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::EmptyStream),
        other => panic!("default tenant should be empty, got {other:?}"),
    }

    plain.shutdown().unwrap();
    handle.shutdown().unwrap();
}

#[test]
fn an_omitted_namespace_is_the_default_tenant() {
    let handle = start_server();
    // One client sends pre-tenancy requests (no namespace), the other
    // explicitly addresses `default`: both must hit the same stream.
    let mut plain = Client::connect(handle.addr()).unwrap();
    let mut explicit = Client::builder(handle.addr())
        .namespace(DEFAULT_NAMESPACE)
        .connect()
        .unwrap();

    feed(&mut plain, 30, 0.0);
    feed(&mut explicit, 30, 0.0);

    assert_eq!(plain.stats().unwrap().points_seen, 60);
    assert_eq!(explicit.stats().unwrap().points_seen, 60);
    let a = sorted(plain.query_centers().unwrap());
    let b = sorted(explicit.query_centers().unwrap());
    assert_eq!(a, b, "same tenant must serve both spellings");

    plain.shutdown().unwrap();
    handle.shutdown().unwrap();
}

#[test]
fn configure_creates_a_tenant_with_custom_settings_once() {
    let handle = start_server();
    let mut client = Client::builder(handle.addr())
        .namespace("big")
        .connect()
        .unwrap();

    // k=3 on the single-threaded CC backend, overriding the server default
    // (k=2 sharded).
    let config = TenantConfig {
        k: Some(3),
        backend: Some("cc".to_string()),
        ..TenantConfig::default()
    };
    match client.configure(config.clone()).unwrap() {
        Response::Configured {
            namespace,
            backend,
            k,
            shards,
        } => {
            assert_eq!(namespace, "big");
            assert_eq!(backend, "cc");
            assert_eq!(k, 3);
            assert_eq!(shards, 1);
        }
        other => panic!("configure failed: {other:?}"),
    }

    // The stream really runs with k=3.
    for i in 0..120 {
        let x = [0.0, 60.0, 120.0][i % 3];
        client.ingest(vec![x, (i % 5) as f64 * 0.1]).unwrap();
    }
    assert_eq!(client.query_centers().unwrap().len(), 3);

    // A second Configure on the same tenant is refused — even with the
    // same settings (create-once semantics, not upsert).
    expect_error(client.configure(config).unwrap(), ErrorCode::TenantExists);
    // The default tenant pre-exists, so it can never be configured.
    let mut plain = Client::connect(handle.addr()).unwrap();
    expect_error(
        plain.configure(TenantConfig::default()).unwrap(),
        ErrorCode::TenantExists,
    );
    // Unknown backend tags and k=0 are malformed, not tenant errors.
    let mut bad = Client::builder(handle.addr())
        .namespace("oops")
        .connect()
        .unwrap();
    expect_error(
        bad.configure(TenantConfig {
            backend: Some("quantum".to_string()),
            ..TenantConfig::default()
        })
        .unwrap(),
        ErrorCode::MalformedRequest,
    );
    expect_error(
        bad.configure(TenantConfig {
            k: Some(0),
            ..TenantConfig::default()
        })
        .unwrap(),
        ErrorCode::MalformedRequest,
    );

    plain.shutdown().unwrap();
    handle.shutdown().unwrap();
}

#[test]
fn escaping_and_oversized_namespaces_get_the_typed_error() {
    let handle = start_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    for bad in ["../evil", "a/b", "a\\b", "", ".", ".."] {
        let opts = RequestOptions::new().with_namespace(bad);
        expect_error(
            client.ingest_opts(vec![1.0, 2.0], &opts).unwrap(),
            ErrorCode::BadNamespace,
        );
        expect_error(client.query_opts(&opts).unwrap(), ErrorCode::BadNamespace);
    }
    let oversized = RequestOptions::new().with_namespace("x".repeat(129));
    expect_error(
        client.ingest_opts(vec![1.0, 2.0], &oversized).unwrap(),
        ErrorCode::BadNamespace,
    );

    // The connection survives every rejection, and a valid namespace works.
    let fine = RequestOptions::new().with_namespace("fine");
    match client.ingest_opts(vec![1.0, 2.0], &fine).unwrap() {
        Response::Ingested { accepted, .. } => assert_eq!(accepted, 1),
        other => panic!("valid namespace refused: {other:?}"),
    }
    client.shutdown().unwrap();
    handle.shutdown().unwrap();
}

#[test]
fn the_tenant_limit_is_a_typed_error_without_an_eviction_directory() {
    // Cap 2 and no directory: default + one tenant fit, the next is refused.
    let engine = Arc::new(Engine::with_options(&spec(), 2, None).unwrap());
    let handle = Server::bind("127.0.0.1:0", engine, None)
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = Client::builder(handle.addr())
        .namespace("t1")
        .connect()
        .unwrap();
    feed(&mut client, 10, 0.0);
    let t2 = RequestOptions::new().with_namespace("t2");
    expect_error(
        client.ingest_opts(vec![1.0, 2.0], &t2).unwrap(),
        ErrorCode::TenantLimit,
    );
    // Existing tenants keep serving (the client's default namespace).
    assert_eq!(client.stats().unwrap().points_seen, 10);
    client.shutdown().unwrap();
    handle.shutdown().unwrap();
}

#[test]
fn eviction_and_restore_are_transparent_under_live_traffic() {
    // Cap 2 with an eviction directory: ping-ponging between tenants pages
    // them in and out underneath the protocol without any visible effect.
    let dir = temp_dir("live");
    let engine = Arc::new(Engine::with_options(&spec(), 2, Some(dir.clone())).unwrap());
    let handle = Server::bind("127.0.0.1:0", Arc::clone(&engine), None)
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let hot = RequestOptions::new().with_namespace("hot");
    let cold = RequestOptions::new().with_namespace("cold");

    feed_opts(&mut client, &hot, 40, 0.0);
    let hot_before = sorted(centers_opts(&mut client, &hot));

    // Creating `cold` forces an eviction (cap 2: default + one): the
    // victim is whichever of {default, hot} is colder — touch default so
    // `hot` is paged out.
    let mut plain = Client::connect(handle.addr()).unwrap();
    let _ = plain.query(); // touches default (EmptyStream is fine)
    feed_opts(&mut client, &cold, 20, 1000.0);
    assert!(engine.is_evicted_to_disk("hot"));

    // Going back to `hot` restores it mid-connection; counts, centers and
    // further ingestion all continue as if nothing happened.
    assert_eq!(client.stats_opts(&hot).unwrap().points_seen, 40);
    assert_eq!(sorted(centers_opts(&mut client, &hot)), hot_before);
    feed_opts(&mut client, &hot, 10, 0.0);
    assert_eq!(client.stats_opts(&hot).unwrap().points_seen, 50);

    client.shutdown().unwrap();
    handle.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
